"""Spot price predictors: backtests and deployed-cost comparison.

The paper's Fig. 14 uses three predictors (opt / p0 / window-max) and
finds that on the patternless AWS trace, sophistication hurts.  This
example extends the line-up with EWMA, seasonal-naive, AR(1) and
quantile predictors, backtests everything on both synthetic trace
families, then deploys the paper's k-means job under the two most
interesting predictors and compares realized costs.

Run:  python examples/predictor_comparison.py
"""

from repro.cloud.traces import aws_like_trace, electricity_like_trace
from repro.core import (
    CurrentPricePredictor,
    MarginBidder,
    NetworkConditions,
    OptimalPredictor,
    PlannerJob,
    SeasonalNaivePredictor,
    WindowMaxPredictor,
    extended_predictor_suite,
    forecast_errors,
    run_spot_scenario,
)


def main() -> None:
    traces = {
        "electricity-like (diurnal)": electricity_like_trace(days=30, seed=7),
        "aws-like (patternless)": aws_like_trace(days=30, seed=7),
    }
    predictors = (
        [CurrentPricePredictor(), WindowMaxPredictor(5)]
        + extended_predictor_suite()
    )

    print("== forecast backtest (12 h horizon, MAE in $/h) ==")
    for trace_name, trace in traces.items():
        print(f"\n  {trace_name}")
        scored = sorted(
            (forecast_errors(p, trace, horizon_hours=12)["mae"], p.name)
            for p in predictors
        )
        for mae, name in scored:
            print(f"    {name:>12}  {mae:.4f}")

    # Deploy under the two headline predictors on the diurnal trace.
    job = PlannerJob(name="kmeans", input_gb=8.0)
    network = NetworkConditions.from_mbit_s(16.0)
    trace = traces["electricity-like (diurnal)"]
    offsets = [24.0 * day + 6 for day in range(1, 10)]
    print("\n== deployed cost, 9 start offsets, diurnal trace ==")
    lineup = [
        OptimalPredictor(),
        CurrentPricePredictor(),
        SeasonalNaivePredictor(),
        MarginBidder(CurrentPricePredictor(), margin=0.3),
    ]
    for predictor in lineup:
        result = run_spot_scenario(
            job,
            trace,
            predictor,
            deadline_hours=12.0,
            start_offsets=offsets,
            network=network,
        )
        summary = result.summary
        print(
            f"  {predictor.name:>12}  avg ${summary['average']:5.2f}  "
            f"max ${summary['maximum']:5.2f}  std {summary['stddev']:.2f}  "
            f"replans {sum(result.replans)}"
        )


if __name__ == "__main__":
    main()
