"""Planning over the full 2011 EC2 menu, with reserved instances.

The paper's opening motivation: "for its EC2 service alone, Amazon
offers eleven different types of VM instances, and it is unclear how a
computation's performance will change if run on different instance
types."  This example hands the planner that whole menu:

1. print the eleven-type price sheet with projected vs Fig.-1-corrected
   throughput (the divergence the paper measures);
2. plan the 32 GB k-means job over the full menu and report which types
   the LP actually selects;
3. add a one-year reserved m1.large offer at several utilizations and
   show where the reservation starts beating on-demand.

Run:  python examples/instance_menu.py
"""

from repro.cloud import (
    INSTANCE_SPECS,
    RESERVED_M1_LARGE,
    full_instance_catalog,
    projected_throughput,
    s3,
)
from repro.core import Goal, NetworkConditions, PlannerJob, plan_job


def main() -> None:
    print("== the eleven EC2 types of 2011 (Fig. 1 correction applied) ==")
    print(f"{'type':>12}  {'ECU':>5}  {'$/h':>6}  {'projected':>9}  {'measured':>8}")
    for spec in INSTANCE_SPECS:
        print(
            f"{spec.name:>12}  {spec.ecu:5.1f}  {spec.price_per_hour:6.3f}  "
            f"{projected_throughput(spec.ecu):8.2f}   {spec.throughput():7.2f}"
        )

    job = PlannerJob(name="kmeans", input_gb=32.0)
    network = NetworkConditions.from_mbit_s(16.0)
    services = full_instance_catalog() + [s3()]
    plan = plan_job(
        job, services, Goal.min_cost(deadline_hours=6.0), network=network
    )
    print("\n== plan over the full menu (32 GB, 6 h deadline) ==")
    print(f"  cost ${plan.predicted_cost:.2f}, "
          f"finishes in {plan.predicted_completion_hours:.1f} h")
    for service in services:
        hours = plan.total_node_hours(service.name)
        if hours > 0:
            print(f"  uses {service.name}: {hours:.0f} node-hours")

    print("\n== reserved m1.large (1-year, $910 upfront, $0.12/h) ==")
    on_demand = 0.34
    break_even = RESERVED_M1_LARGE.break_even_utilization(on_demand)
    print(f"  break-even utilization vs on-demand: {break_even:.0%}")
    for utilization in (0.25, 0.5, 0.75, 1.0):
        rate = RESERVED_M1_LARGE.amortized_rate(utilization)
        verdict = "reserved wins" if rate < on_demand else "on-demand wins"
        print(f"  at {utilization:4.0%} utilization: ${rate:.3f}/h  ({verdict})")


if __name__ == "__main__":
    main()
