#!/usr/bin/env python
"""Watching Conductor adapt to a mispredicted node speed (paper Fig. 12).

The model believes m1.large instances process 1.44 GB/h; in reality they
do 0.44 GB/h.  The job controller monitors progress, detects the
shortfall after the first hour, rebuilds the model from the current
system state, and triples the allocation — still meeting the deadline.

Run:  python examples/adaptive_replanning.py
"""

from repro.cloud import public_cloud
from repro.core import Goal, NetworkConditions, PlannerJob
from repro.core.conditions import ActualConditions
from repro.core.controller import ControllerConfig, JobController


def main() -> None:
    believed = [
        s.replace(throughput_gb_per_hour=1.44) if s.name == "ec2.m1.large" else s
        for s in public_cloud()
    ]
    controller = JobController(
        PlannerJob(name="kmeans", input_gb=32.0),
        believed,
        Goal.min_cost(deadline_hours=6.0),
        network=NetworkConditions.from_mbit_s(16.0),
        config=ControllerConfig(split_mb=25.0),
    )
    reality = ActualConditions(
        throughput_gb_per_hour={"ec2.m1.large": 0.44, "ec2.m1.xlarge": 0.30}
    )

    result = controller.run(reality)

    print("initial plan (believed 1.44 GB/h per node):")
    for hour, nodes in result.plans[0].node_allocation_series():
        print(f"  hour {hour:.0f}: {nodes} nodes")
    print("\nwhat actually ran (after adaptation):")
    for hour, nodes in result.node_series:
        print(f"  hour {hour:.0f}: {nodes} nodes")
    print(f"\nre-plans:        {result.replans}")
    print(f"completed:       {result.completed} at {result.completion_hours:.1f} h")
    print(f"deadline met:    {result.deadline_met}")
    print(f"total cost:      ${result.total_cost:.2f}")
    print(f"tasks completed: {result.total_tasks}")

    print("\njob progress (Fig. 12b):")
    for hour, tasks in result.task_series:
        bar = "#" * (tasks // 40)
        print(f"  {hour:4.1f}h {tasks:5d} {bar}")


if __name__ == "__main__":
    main()
