#!/usr/bin/env python
"""Quickstart: plan a MapReduce job's cloud deployment with Conductor.

The customer only states the job (32 GB k-means) and the goal (cheapest
deployment finishing within 6 hours); Conductor models the AWS service
catalog as a linear program and returns the execution plan: how many
instances to rent each hour, where to upload which data, when to read,
reduce and download.

Run:  python examples/quickstart.py
"""

from repro.cloud import public_cloud
from repro.core import Goal, NetworkConditions, PlannerJob, plan_job


def main() -> None:
    # The paper's evaluation job: 32 GB of k-means points, processed at
    # 0.44 GB/h per m1.large node, over a 16 Mbit/s customer uplink.
    job = PlannerJob(name="kmeans", input_gb=32.0)
    network = NetworkConditions.from_mbit_s(16.0)

    plan = plan_job(
        job,
        public_cloud(),               # EC2 m1.large/xlarge + S3, July 2011 prices
        Goal.min_cost(deadline_hours=6.0),
        network=network,
    )

    print(plan.describe())
    print()
    print(f"predicted cost:        ${plan.predicted_cost:.2f}")
    print(f"predicted completion:  {plan.predicted_completion_hours:.1f} h")
    print(f"peak instances:        {plan.peak_nodes()}")
    print(f"total node-hours:      {plan.total_node_hours():.0f}")
    print("cost breakdown:")
    for key, value in sorted(plan.predicted_cost_breakdown.items()):
        if value > 1e-4:
            print(f"  {key:28s} ${value:.3f}")

    # What would a 3-hour deadline cost instead?  (More parallelism, the
    # same upload bottleneck.)
    try:
        rushed = plan_job(
            job, public_cloud(), Goal.min_cost(deadline_hours=5.0), network=network
        )
        print(f"\nwith a 5 h deadline:   ${rushed.predicted_cost:.2f} "
              f"(peak {rushed.peak_nodes()} instances)")
    except Exception as exc:  # infeasible deadlines raise PlanningError
        print(f"\n5 h deadline: {exc}")


if __name__ == "__main__":
    main()
