"""Multi-stage Pig pipeline: compile, plan, and survive data loss.

The paper's Section 2.1 motivates reliability-aware storage with Pig
programs that "compile down to multi-staged MapReduce computations".
This example runs that whole arc:

1. write a Pig-Latin script (site-level clickstream rollup);
2. compile it to MapReduce stages and check the record-level semantics
   on a toy dataset (direct interpretation == staged execution);
3. plan the full-size pipeline with Conductor's LP planner, letting the
   reliability model pick a storage tier per intermediate;
4. Monte-Carlo execute the plan against injected data loss and compare
   the realized cost with the expected-cost model.

Run:  python examples/pig_pipeline.py
"""

from repro.cloud import public_cloud
from repro.core import (
    Goal,
    NetworkConditions,
    RetentionPolicy,
    StorageTier,
    estimate_run_distribution,
    plan_pipeline,
)
from repro.pig import canonical, compile_script, evaluate_logical, run_pipeline_local

SCRIPT = """
clicks  = LOAD 'clicks' AS (url:chararray, site:chararray, ms:int);
ok      = FILTER clicks BY ms >= 0;
bysite  = GROUP ok BY site;
rollup  = FOREACH bysite GENERATE group, COUNT(ok) AS hits, AVG(ok.ms) AS lat;
slow    = FILTER rollup BY lat > 50;
ranked  = ORDER slow BY hits DESC;
STORE ranked INTO 'hot-sites';
"""

TOY_CLICKS = [
    ("a/1", "a.com", 120), ("a/2", "a.com", 80), ("a/3", "a.com", -1),
    ("b/1", "b.com", 30), ("b/2", "b.com", 35),
    ("c/1", "c.com", 200), ("c/2", "c.com", 90), ("c/3", "c.com", 150),
]


def main() -> None:
    pipeline = compile_script(SCRIPT)
    print("== compiled stages ==")
    print(pipeline.describe())
    print(f"pipeline depth: {pipeline.depth}\n")

    # Semantics check on toy data: the compiler's staged execution must
    # match direct interpretation of the logical plan.
    direct = evaluate_logical(pipeline.plan, {"clicks": TOY_CLICKS})
    staged = run_pipeline_local(pipeline, {"clicks": TOY_CLICKS})
    assert canonical(direct["hot-sites"]) == canonical(staged["hot-sites"])
    print("== toy-data result (both engines agree) ==")
    for row in staged["hot-sites"]:
        print(f"  {row}")
    print()

    # Plan the full-size job: 24 GB of clicks, 10 h deadline, with a
    # cheap single-replica tier and a 3x-replicated durable tier.
    jobs = pipeline.to_planner_jobs({"clicks": 24.0})
    tiers = [
        StorageTier.from_replication(
            "1x-disk", 0.5e-4, replication=1, node_loss_per_hour=5e-3
        ),
        StorageTier.from_replication(
            "3x-disk", 0.5e-4, replication=3, node_loss_per_hour=5e-3
        ),
    ]
    plan = plan_pipeline(
        jobs,
        public_cloud(),
        Goal.min_cost(deadline_hours=10.0),
        NetworkConditions.from_mbit_s(16.0),
        tiers=tiers,
        retention=RetentionPolicy.DISCARD_AFTER_USE,
    )
    print("== pipeline plan ==")
    print(plan.describe())
    print()

    # Execute against injected data loss.
    dist = estimate_run_distribution(plan, samples=300, seed=42)
    print("== 300 failure-injected runs ==")
    print(f"  mean cost      ${dist['mean_cost']:.2f} "
          f"(expected ${plan.expected_cost:.2f}, "
          f"failure-free ${plan.total_planned_cost:.2f})")
    print(f"  worst cost     ${dist['max_cost']:.2f}")
    print(f"  mean duration  {dist['mean_hours']:.2f} h")
    print(f"  runs with loss {dist['loss_run_fraction']:.0%}")


if __name__ == "__main__":
    main()
