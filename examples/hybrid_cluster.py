#!/usr/bin/env python
"""Hybrid deployment: the customer's own cluster plus the public cloud.

Section 6.3 of the paper: a local 5-node cluster is free but too small
to meet a 4-hour deadline alone; Conductor models it as just another
provider (price 0, hard node cap) and fills the gap with EC2, deciding
how to split data between local disks, EC2 virtual disks and S3.

Run:  python examples/hybrid_cluster.py
"""

from repro.cloud import hybrid_cloud, local_cluster
from repro.core import Goal, NetworkConditions, PlannerJob, PlanningProblem, Planner


def main() -> None:
    job = PlannerJob(name="kmeans", input_gb=32.0)
    network = NetworkConditions.from_mbit_s(16.0)
    planner = Planner()

    # How far can the local cluster alone go?  5 nodes x 0.44 GB/h need
    # ~14.5 h for 32 GB — nowhere near a 4 h deadline.
    local_only_hours = job.input_gb / (5 * 0.44)
    print(f"local cluster alone would need {local_only_hours:.1f} h")

    plan = planner.plan(
        PlanningProblem(
            job=job,
            services=hybrid_cloud(local_nodes=5),
            network=network,
            goal=Goal.min_cost(deadline_hours=4.0),
            constant_nodes=True,  # the paper's hybrid plan style
        )
    )
    print()
    print(plan.describe())
    print()
    print(f"EC2 instances chosen:  {plan.peak_nodes('ec2.m1.large')} "
          "(paper: 16)")
    print(f"local nodes used:      {plan.peak_nodes('local.cluster')} of 5")
    print(f"predicted cost:        ${plan.predicted_cost:.2f} (paper: ~$20)")

    # Sweep the local cluster size: more own hardware, less rented.
    print("\nlocal cluster size sweep (4 h deadline):")
    for nodes in (0, 3, 5, 10, 20):
        services = hybrid_cloud(local_nodes=nodes) if nodes else hybrid_cloud(1)
        if nodes == 0:
            services = [s for s in services if s.provider != "local"]
        try:
            swept = planner.plan(
                PlanningProblem(
                    job=job,
                    services=services,
                    network=network,
                    goal=Goal.min_cost(deadline_hours=4.0),
                )
            )
            print(f"  {nodes:2d} local nodes -> ${swept.predicted_cost:6.2f}, "
                  f"EC2 peak {swept.peak_nodes('ec2.m1.large'):2d}")
        except Exception as exc:
            print(f"  {nodes:2d} local nodes -> infeasible ({exc})")


if __name__ == "__main__":
    main()
