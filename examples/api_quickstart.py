"""Public-API quickstart: declare a job, plan it, deploy it.

The whole library surface in one page: build a :class:`JobSpec` (what to
run, toward which goal, over which catalog), hand it to the
:class:`Orchestrator`, and the system does the rest — `plan()` returns
the LP's optimal execution plan, `deploy()` runs the deploy/monitor/
adapt controller loop and streams every executed interval back as a
versioned :class:`DeployEventV1`.

Run with::

    PYTHONPATH=src python examples/api_quickstart.py
"""

from repro.api import (
    GoalSpec,
    JobSpec,
    NetworkSpec,
    Orchestrator,
    OrchestratorError,
    encode,
)


def main() -> None:
    # Declare the computation: the paper's k-means job, scaled down, on
    # the public EC2+S3 catalog, cheapest plan inside a 4-hour deadline.
    spec = JobSpec(
        name="kmeans",
        input_gb=8.0,
        goal=GoalSpec(deadline_hours=4.0),
        network=NetworkSpec(uplink_mbit_s=16.0),
    )

    orchestrator = Orchestrator()

    # -- plan: spec in, execution plan out --------------------------------
    plan = orchestrator.plan(spec)
    print(plan.describe())
    print(f"\npredicted cost: ${plan.predicted_cost:.2f}, "
          f"completion {plan.predicted_completion_hours:.1f} h\n")

    # -- deploy: run the controller loop, streaming interval events -------
    # Each event is a wire-format schema object; `encode` is exactly what
    # `repro deploy --stream` and a future HTTP transport would emit.
    print("deployment stream:")
    result = orchestrator.deploy(
        spec, tenant="quickstart", on_event=lambda event: print(" ", encode(event))
    )
    print(f"\ndeployed: ${result.total_cost:.2f} in "
          f"{result.completion_hours:.1f} h with {result.replans} re-plans "
          f"({'met' if result.deadline_met else 'MISSED'} the deadline)")

    # -- structured failure: no plan inside one hour ----------------------
    try:
        orchestrator.plan(
            JobSpec(name="too-tight", input_gb=64.0,
                    goal=GoalSpec(deadline_hours=1.0))
        )
    except OrchestratorError as exc:
        print(f"\nas expected: [{exc.error.code}] {exc.error.message}")


if __name__ == "__main__":
    main()
