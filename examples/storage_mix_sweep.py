#!/usr/bin/env python
"""The Fig. 8 experiment as a user would run it: where should data live?

Sweeps the fraction of input stored on EC2 virtual disks vs S3 for the
paper's modified job (8 Mbit/s uplink, fast per-node rate) and prints the
cost curve — the "non-obvious resource utilization plan" of Section 6.2:
neither pure option wins; the planner mixes them.

Also demonstrates the service-description XML round trip: the catalog is
serialized to the paper's Fig. 3 format and read back before planning.

Run:  python examples/storage_mix_sweep.py
"""

import tempfile

from repro.cloud import (
    KMEANS_FAST_THROUGHPUT_GB_H,
    KMEANS_THROUGHPUT_GB_H,
    ec2_m1_large,
    load_services,
    s3,
    save_services,
)
from repro.core import Goal, NetworkConditions, PlannerJob, plan_job


def main() -> None:
    # Publish the catalog as a Fig.-3-style XML document and load it back
    # (this is how third parties would feed Conductor service offerings).
    catalog = [ec2_m1_large(), s3().replace(avg_op_mb=1.0)]
    with tempfile.NamedTemporaryFile("w", suffix=".xml", delete=False) as handle:
        path = handle.name
    save_services(catalog, path)
    services = load_services(path)
    print(f"loaded {len(services)} services from {path}\n")

    job = PlannerJob(
        name="kmeans-fast",
        input_gb=32.0,
        throughput_scale=KMEANS_FAST_THROUGHPUT_GB_H / KMEANS_THROUGHPUT_GB_H,
    )
    network = NetworkConditions.from_mbit_s(8.0)

    print("fraction on EC2   cost      (32 GB, min-cost, 12 h horizon)")
    best = (None, float("inf"))
    for i in range(11):
        fraction = i / 10
        plan = plan_job(
            job,
            services,
            Goal.min_cost(deadline_hours=12.0),
            network=network,
            upload_fractions={
                "ec2.m1.large": fraction,
                "s3": 1.0 - fraction,
            },
        )
        marker = ""
        if plan.predicted_cost < best[1]:
            best = (fraction, plan.predicted_cost)
        bar = "#" * int(plan.predicted_cost * 12)
        print(f"      {fraction:.1f}        ${plan.predicted_cost:5.2f}  {bar}")
    print(f"\nminimum at fraction {best[0]:.1f} (${best[1]:.2f}) — "
          "the paper found roughly two thirds")

    # And what the unconstrained planner does when *it* chooses:
    free = plan_job(job, services, Goal.min_cost(deadline_hours=12.0), network=network)
    ec2_share = free.total_uploaded_gb("ec2.m1.large") / 32.0
    print(f"unconstrained plan stores {ec2_share:.0%} on EC2 for ${free.predicted_cost:.2f}")


if __name__ == "__main__":
    main()
