#!/usr/bin/env python
"""Deploying on the EC2 spot market with price predictors.

Section 6.5 of the paper: Conductor plugs estimated spot prices into the
plan's objective, bids accordingly, and re-plans when it is out-bid or
prices deviate from the estimate.  This example runs the same job on a
diurnal electricity-style trace and a patternless AWS-style trace under
three predictors and compares realized costs against on-demand pricing.

Run:  python examples/spot_bidding.py
"""

from repro.cloud import aws_like_trace, electricity_like_trace
from repro.core import (
    CurrentPricePredictor,
    OptimalPredictor,
    PlannerJob,
    WindowMaxPredictor,
)
from repro.core.spot_sim import run_regular_baseline, run_spot_scenario


def main() -> None:
    job = PlannerJob(name="kmeans", input_gb=32.0)
    deadline = 10.0

    regular = run_regular_baseline(job, deadline_hours=deadline)
    print(f"regular on-demand cost: ${regular.costs[0]:.2f}\n")

    offsets = [24, 48, 72, 96, 120]
    predictors = [OptimalPredictor(), CurrentPricePredictor(), WindowMaxPredictor(5)]
    for trace in (aws_like_trace(days=7, seed=7), electricity_like_trace(days=7, seed=7)):
        print(f"--- {trace.label} trace "
              f"(min ${trace.prices.min():.2f}, max ${trace.prices.max():.2f}) ---")
        for predictor in predictors:
            result = run_spot_scenario(
                job, trace, predictor,
                deadline_hours=deadline, start_offsets=offsets,
            )
            summary = result.summary
            saving = 1 - summary["average"] / regular.costs[0]
            print(
                f"  {predictor.name:4s} avg ${summary['average']:6.2f} "
                f"max ${summary['maximum']:6.2f} "
                f"(saves {saving:.0%} vs on-demand, "
                f"{sum(result.replans)} re-plans)"
            )
        print()


if __name__ == "__main__":
    main()
