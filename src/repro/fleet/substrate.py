"""The shared cloud substrate: one market, one fault process, one clock.

Before the fleet runtime, every :class:`JobController` simulated its own
private world.  The :class:`Substrate` inverts that: it owns the spot
price traces (:mod:`repro.cloud.spot`, :mod:`repro.cloud.traces`), a
deterministic :class:`FailureInjector` and per-service capacity limits,
and *narrates* what happens each hour as the typed events of
:mod:`repro.fleet.events`.  Every deployment in a
:class:`~repro.fleet.scheduler.FleetScheduler` executes against the same
substrate, so a price spike at hour 17 is the *same* spike for all of
them — the precondition for coalescing their re-plans into one solve.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Iterable, Mapping, Sequence

from ..cloud.spot import SpotTrace
from ..sim.rng import generator
from .events import (
    CapacityChange,
    NodeFailure,
    PriceSpike,
    SpotEviction,
    SubstrateEvent,
)

__all__ = ["FailureInjector", "FailureSpec", "Substrate"]


@dataclass(frozen=True)
class FailureSpec:
    """One scheduled node-failure episode."""

    hour: float
    service: str
    severity: float = 0.5
    duration_hours: float = 2.0


class FailureInjector:
    """Deterministic node-failure process over the substrate's services.

    Two sources compose: an explicit ``schedule`` of
    :class:`FailureSpec` (reproducible experiments, tests) and a seeded
    random process drawing one failure per (service, hour) with
    probability ``rate_per_hour``.  The random draw is hash-derived per
    (seed, service, hour) — :func:`repro.sim.rng.generator` — so the
    event stream is identical however the simulation is chunked.
    """

    def __init__(
        self,
        rate_per_hour: float = 0.0,
        severity: float = 0.5,
        duration_hours: float = 2.0,
        seed: int = 0,
        schedule: Iterable[FailureSpec] = (),
    ) -> None:
        if not 0.0 <= rate_per_hour < 1.0:
            raise ValueError("rate_per_hour must be in [0, 1)")
        if not 0.0 < severity <= 1.0:
            raise ValueError("severity must be in (0, 1]")
        self.rate_per_hour = rate_per_hour
        self.severity = severity
        self.duration_hours = duration_hours
        self.seed = seed
        self.schedule = sorted(schedule, key=lambda f: f.hour)

    def failures_at(self, hour: int, services: Sequence[str]) -> list[FailureSpec]:
        """Failure episodes starting within ``[hour, hour + 1)``."""
        out = [
            spec
            for spec in self.schedule
            if hour <= spec.hour < hour + 1 and spec.service in services
        ]
        if self.rate_per_hour > 0:
            for service in services:
                draw = generator(self.seed, "fleet-failure", service, hour).random()
                if draw < self.rate_per_hour:
                    out.append(
                        FailureSpec(
                            hour=float(hour),
                            service=service,
                            severity=self.severity,
                            duration_hours=self.duration_hours,
                        )
                    )
        return out


class Substrate:
    """Shared simulated cloud conditions for a fleet of deployments.

    Parameters
    ----------
    traces:
        Spot price history per (spot) service name.  All deployments
        read prices — and suffer evictions — from these same traces.
    spike_threshold:
        Relative hour-over-hour price move that emits a
        :class:`PriceSpike` event (default 25%, matching the
        controller's price-deviation threshold).
    eviction_bids:
        Per-service bid ceiling; when the market rises above it, a
        :class:`SpotEviction` is emitted (the controller never bids
        above the on-demand price, so that price is the natural
        ceiling).  Services absent here emit no eviction events.
    capacity:
        Initial available node count per service (``None`` = unlimited).
    capacity_schedule:
        ``(hour, service, nodes)`` changes applied — and announced as
        :class:`CapacityChange` events — as the clock passes them.
    failures:
        The :class:`FailureInjector` (``None`` = no failures).
    """

    def __init__(
        self,
        traces: Mapping[str, SpotTrace] | None = None,
        *,
        spike_threshold: float = 0.25,
        eviction_bids: Mapping[str, float] | None = None,
        capacity: Mapping[str, int] | None = None,
        capacity_schedule: Iterable[tuple[float, str, int]] = (),
        failures: FailureInjector | None = None,
    ) -> None:
        if spike_threshold <= 0:
            raise ValueError("spike_threshold must be positive")
        self.traces = dict(traces or {})
        self.spike_threshold = spike_threshold
        self.eviction_bids = dict(eviction_bids or {})
        self.capacity = dict(capacity or {})
        self.capacity_schedule = sorted(capacity_schedule, key=lambda c: c[0])
        self.failures = failures
        #: Services whose ongoing above-ceiling episode was already
        #: announced (one eviction event per episode, not per hour).
        self._evicting: set[str] = set()
        #: All services the substrate knows about (traces, capacity,
        #: scheduled failures).
        scheduled = set() if failures is None else {f.service for f in failures.schedule}
        self.services = sorted(
            set(self.traces) | set(self.capacity) | scheduled
            | {service for _, service, _ in self.capacity_schedule}
        )

    # -- queries -----------------------------------------------------------

    def price(self, service: str, hour: float) -> float:
        """Market price of ``service`` at ``hour`` (requires a trace)."""
        return self.traces[service].price_at(hour)

    def capacity_of(self, service: str) -> int | None:
        """Currently available nodes for ``service``; ``None`` = unlimited."""
        return self.capacity.get(service)

    # -- the event stream --------------------------------------------------

    def advance(self, start_hour: float, end_hour: float) -> list[SubstrateEvent]:
        """Events occurring in ``[start_hour, end_hour)``, in time order.

        Idempotent for price-spike and failure events (they are derived
        from the traces and the hash-seeded injector); *forward-stateful*
        for the rest, matching how a lockstep scheduler calls it over
        contiguous, advancing windows: capacity-schedule entries passed
        by the clock update :attr:`capacity` and are reported exactly
        once, and an above-ceiling eviction episode is announced exactly
        once — including an episode already in progress at the first
        narrated hour (a fleet may start mid-spike).
        """
        events: list[SubstrateEvent] = []
        first = int(math.floor(start_hour))
        last = int(math.ceil(end_hour))
        for hour in range(first, last):
            if not start_hour <= hour < end_hour:
                continue
            events.extend(self._price_events(hour))
            events.extend(self._failure_events(hour))
        events.extend(self._capacity_events(start_hour, end_hour))
        events.sort(key=lambda e: (e.hour, e.kind, e.service))
        return events

    def _price_events(self, hour: int) -> list[SubstrateEvent]:
        events: list[SubstrateEvent] = []
        for name, trace in sorted(self.traces.items()):
            current = trace.price_at(hour)
            previous = trace.price_at(hour - 1) if hour >= 1 else current
            if previous > 0:
                move = abs(current - previous) / previous
                if move > self.spike_threshold:
                    events.append(
                        PriceSpike(
                            hour=float(hour),
                            service=name,
                            old_price=previous,
                            new_price=current,
                        )
                    )
            ceiling = self.eviction_bids.get(name)
            if ceiling is None:
                continue
            if current > ceiling:
                if name not in self._evicting:
                    self._evicting.add(name)
                    events.append(
                        SpotEviction(
                            hour=float(hour),
                            service=name,
                            price=current,
                            bid_ceiling=ceiling,
                        )
                    )
            else:
                self._evicting.discard(name)
        return events

    def _failure_events(self, hour: int) -> list[SubstrateEvent]:
        if self.failures is None:
            return []
        services = self.services or sorted(self.traces)
        return [
            NodeFailure(
                hour=spec.hour,
                service=spec.service,
                severity=spec.severity,
                duration_hours=spec.duration_hours,
            )
            for spec in self.failures.failures_at(hour, services)
        ]

    def _capacity_events(
        self, start_hour: float, end_hour: float
    ) -> list[SubstrateEvent]:
        events: list[SubstrateEvent] = []
        for hour, service, nodes in self.capacity_schedule:
            if start_hour <= hour < end_hour:
                self.capacity[service] = nodes
                events.append(
                    CapacityChange(hour=float(hour), service=service, nodes=nodes)
                )
        return events
