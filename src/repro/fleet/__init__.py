"""The adaptive fleet runtime: many deployments, one cloud, live re-plans.

Conductor's headline claim (paper Figs. 12-14) is *adaptation* —
deployments re-plan mid-flight when spot prices spike, instances are
reclaimed, nodes fail, or predictions deviate.  This package is the
layer that makes adaptation a fleet-level property rather than a
per-job one:

- :class:`~repro.fleet.substrate.Substrate` — one simulated cloud shared
  by every deployment: the spot market (price traces), a deterministic
  :class:`~repro.fleet.substrate.FailureInjector`, and per-service
  capacity limits.  It narrates each hour as typed events
  (:class:`~repro.fleet.events.PriceSpike`,
  :class:`~repro.fleet.events.SpotEviction`,
  :class:`~repro.fleet.events.NodeFailure`,
  :class:`~repro.fleet.events.CapacityChange`).
- :class:`~repro.fleet.scheduler.FleetScheduler` — steps N concurrent
  deployments in lockstep over the substrate and turns each event into
  targeted re-plan requests for exactly the deployments it concerns,
  under per-deployment re-plan budgets
  (:class:`~repro.fleet.scheduler.FleetConfig`).
- :class:`~repro.fleet.replanner.CachingPlanner` — one warm plan cache
  (the planning service's fingerprint + LRU machinery) in front of one
  solver, so N identical re-plans provoked by one shared event coalesce
  into a single solve.

Quickstart::

    from repro.cloud.traces import electricity_like_trace
    from repro.core import Goal, PlannerJob, WindowMaxPredictor
    from repro.core.spot_sim import spot_services
    from repro.fleet import FleetConfig, FleetScheduler, Substrate

    trace = electricity_like_trace(days=8, seed=7)
    substrate = Substrate({"ec2.m1.large.spot": trace},
                          eviction_bids={"ec2.m1.large.spot": 0.34})
    fleet = FleetScheduler(substrate, FleetConfig(mode="event"))
    for i in range(8):
        fleet.add(f"tenant-{i}", PlannerJob(name="kmeans", input_gb=4.0),
                  spot_services(), Goal.min_cost(deadline_hours=12.0),
                  predictor=WindowMaxPredictor(5))
    result = fleet.run()
    print(result.describe())

The same run is available as ``python -m repro fleet`` (streaming each
interval and re-plan as versioned ``deploy_event`` JSON lines) and is
benchmarked against fixed-interval re-planning in
``benchmarks/bench_fleet_adaptation.py``.  The trigger taxonomy the
events map onto lives in :mod:`repro.core.triggers`; the narrative
documentation is ``docs/adaptation.md``.
"""

from .events import (
    CapacityChange,
    NodeFailure,
    PriceSpike,
    SpotEviction,
    SubstrateEvent,
)
from .replanner import CachingPlanner
from .scheduler import (
    MODES,
    FleetConfig,
    FleetDeployment,
    FleetDeploymentSummary,
    FleetResult,
    FleetScheduler,
    fleet_summary,
)
from .substrate import FailureInjector, FailureSpec, Substrate

__all__ = [
    "CachingPlanner",
    "CapacityChange",
    "FailureInjector",
    "FailureSpec",
    "FleetConfig",
    "FleetDeployment",
    "FleetDeploymentSummary",
    "FleetResult",
    "FleetScheduler",
    "MODES",
    "NodeFailure",
    "PriceSpike",
    "SpotEviction",
    "Substrate",
    "SubstrateEvent",
    "fleet_summary",
]
