"""Typed substrate events — what the shared cloud does *to* deployments.

Conductor's adaptation story (paper Sections 5.4, 6.4-6.5) is driven by
things the deployment did not choose: spot prices spike, spot instances
are reclaimed, nodes fail, a provider caps capacity.  In the fleet
runtime one :class:`~repro.fleet.substrate.Substrate` owns those
conditions for *all* concurrent deployments and narrates them as the
frozen event types below; the scheduler turns each event into targeted
re-plans for the deployments it concerns.

Every event carries the absolute substrate ``hour`` it happened and the
``service`` it concerns, plus a ``kind`` from the replan-trigger
taxonomy (:data:`repro.core.triggers.TRIGGER_KINDS`) so events map 1:1
onto the ``replan`` records they cause.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = [
    "CapacityChange",
    "NodeFailure",
    "PriceSpike",
    "SpotEviction",
    "SubstrateEvent",
]


@dataclass(frozen=True)
class SubstrateEvent:
    """Base: something observable changed in the shared substrate."""

    hour: float
    service: str

    kind = "substrate"

    def describe(self) -> str:
        return f"t={self.hour:g}h {self.service}: {self.kind}"


@dataclass(frozen=True)
class PriceSpike(SubstrateEvent):
    """The spot market moved sharply between consecutive hours.

    Emitted for moves in *either* direction past the substrate's
    ``spike_threshold`` — a crash is as actionable as a spike (cheap
    hours are when a cost-minimizing plan wants to run).
    """

    old_price: float = 0.0
    new_price: float = 0.0

    kind = "price"

    @property
    def rel_change(self) -> float:
        if self.old_price <= 0:
            return 0.0
        return (self.new_price - self.old_price) / self.old_price

    def describe(self) -> str:
        return (
            f"t={self.hour:g}h {self.service}: price "
            f"${self.old_price:.3f} -> ${self.new_price:.3f} "
            f"({self.rel_change:+.0%})"
        )


@dataclass(frozen=True)
class SpotEviction(SubstrateEvent):
    """The market rose above the fleet's bid ceiling: every deployment
    holding this service's instances is terminated this hour (the
    controller caps bids at the on-demand price, so a market above that
    ceiling evicts all bidders)."""

    price: float = 0.0
    bid_ceiling: float = 0.0

    kind = "eviction"

    def describe(self) -> str:
        return (
            f"t={self.hour:g}h {self.service}: evicted "
            f"(market ${self.price:.3f} > ceiling ${self.bid_ceiling:.3f})"
        )


@dataclass(frozen=True)
class NodeFailure(SubstrateEvent):
    """A fraction of the service's node capability failed for a while.

    The scheduler applies it as a throughput degradation on affected
    deployments' :class:`~repro.core.conditions.ActualConditions` —
    ``severity=0.5`` halves the observed per-node rate for
    ``duration_hours`` — which the controllers then *observe* as rate
    deviations, exactly how a real deployment would notice.
    """

    severity: float = 0.5
    duration_hours: float = 2.0

    kind = "failure"

    def describe(self) -> str:
        return (
            f"t={self.hour:g}h {self.service}: node failure "
            f"({self.severity:.0%} degraded for {self.duration_hours:g}h)"
        )


@dataclass(frozen=True)
class CapacityChange(SubstrateEvent):
    """The provider's available node count for a service changed."""

    nodes: int = 0

    kind = "capacity"

    def describe(self) -> str:
        return f"t={self.hour:g}h {self.service}: capacity -> {self.nodes} nodes"
