"""The fleet scheduler: event-driven replanning across deployments.

This is the runtime that makes the reproduction behave like a
multi-tenant Conductor instead of N independent ones.  A
:class:`FleetScheduler` steps many concurrent deployments in lockstep
over one shared :class:`~repro.fleet.substrate.Substrate`, and reacts to
the substrate's typed events (price spikes, evictions, node failures,
capacity changes) by asking exactly the *affected* deployments to
re-plan — immediately, not at the next polling interval:

- ``mode="event"`` (the adaptive runtime): deployments re-plan on a
  fixed safety cadence **plus** whenever a substrate event or an
  observed deviation concerns them, subject to a per-deployment
  ``replan_budget``;
- ``mode="interval"`` (the baseline): the same fleet, the same
  substrate, but re-planning happens *only* on the fixed cadence — the
  non-adaptive strawman ``benchmarks/bench_fleet_adaptation.py``
  measures against.

Re-plans triggered by one shared event coalesce: every controller in
the fleet plans through one :class:`~repro.fleet.replanner.CachingPlanner`,
so deployments in identical states solve once and the rest hit the warm
plan cache (the same fingerprint + LRU machinery the planning service
uses for tenant requests).

A replan budget of zero disables the event-driven path entirely, so a
zero-budget ``"event"`` fleet behaves exactly like an ``"interval"``
one — that equivalence is pinned by the fleet tests.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..core.conditions import ActualConditions
from ..core.controller import ControllerConfig, ControllerResult, JobController
from ..core.planner import Planner
from ..core.problem import Goal, NetworkConditions, PlannerJob
from ..core.predictor import SpotPredictor
from ..core.triggers import default_trigger_policy, interval_trigger_policy
from .events import CapacityChange, NodeFailure, SubstrateEvent
from .replanner import CachingPlanner
from .substrate import Substrate

_EPS = 1e-9

#: Fleet scheduling modes.
MODES = ("event", "interval")


@dataclass
class FleetConfig:
    """Scheduling policy for one fleet run."""

    #: ``"event"`` reacts to substrate events and observed deviations;
    #: ``"interval"`` re-plans only on the fixed cadence.
    mode: str = "event"
    #: Fixed re-plan cadence (hours) both modes share as a safety net.
    interval_cadence_hours: float = 6.0
    #: Event-driven re-plans allowed per deployment (0 = interval-only).
    replan_budget: int = 16
    #: Simulated step size; must match the deployments' interval length.
    step_hours: float = 1.0
    #: Absolute substrate hour at which the fleet starts (trace offset).
    start_hour: float = 0.0
    #: Execution backend every fleet deployment runs on
    #: (see :data:`repro.exec.BACKENDS`).
    backend: str = "sim"
    #: Backend knobs for the real-execution backends (``None`` = defaults).
    backend_options: dict | None = None

    def __post_init__(self) -> None:
        if self.mode not in MODES:
            raise ValueError(f"unknown mode {self.mode!r}; pick one of {MODES}")
        if self.interval_cadence_hours <= 0:
            raise ValueError("interval_cadence_hours must be positive")
        if self.replan_budget < 0:
            raise ValueError("replan_budget must be non-negative")
        if self.step_hours <= 0:
            raise ValueError("step_hours must be positive")


class FleetDeployment:
    """One deployment under fleet control (created by ``add``)."""

    def __init__(
        self,
        index: int,
        name: str,
        controller: JobController,
        actual: ActualConditions,
        budget: int,
        base_rates: dict[str, float],
    ) -> None:
        self.index = index
        self.name = name
        self.controller = controller
        self.actual = actual
        #: Event-driven re-plans this deployment may still spend.
        self.budget = budget
        #: Undegraded actual per-node rates (failure recovery targets).
        self.base_rates = base_rates
        self.run = None  # ControllerRun, created when the fleet starts
        self.event_replans = 0
        #: (end_hour, service, severity) entries for in-flight failures.
        self.active_failures: list[tuple[float, str, float]] = []

    @property
    def service_names(self) -> set[str]:
        return {s.name for s in self.controller.services}

    @property
    def active(self) -> bool:
        return self.run is not None and not self.run.done


@dataclass
class FleetDeploymentSummary:
    """Per-deployment outcome of a fleet run."""

    name: str
    result: ControllerResult
    event_replans: int
    budget_remaining: int


@dataclass
class FleetResult:
    """Everything a fleet run produced, plus shared-solver statistics."""

    mode: str
    deployments: list[FleetDeploymentSummary]
    events: list[SubstrateEvent] = field(default_factory=list)
    solves: int = 0
    cache_hits: int = 0
    #: Solves answered warm by the incremental solver (subset of solves).
    warm_solves: int = 0
    #: Warm attempts that fell back cold (structural change or a
    #: candidate that failed certification).
    warm_fallbacks: int = 0
    #: Re-plans certified through block-diagonal batch solves.
    batched_replans: int = 0
    #: Peak concurrent node demand per service across the whole fleet.
    peak_demand: dict[str, int] = field(default_factory=dict)

    @property
    def total_cost(self) -> float:
        return sum(d.result.total_cost for d in self.deployments)

    @property
    def total_replans(self) -> int:
        return sum(d.result.replans for d in self.deployments)

    @property
    def completed(self) -> int:
        return sum(1 for d in self.deployments if d.result.completed)

    @property
    def deadlines_met(self) -> int:
        return sum(1 for d in self.deployments if d.result.deadline_met)

    @property
    def makespan_hours(self) -> float:
        return max(
            (d.result.completion_hours for d in self.deployments), default=0.0
        )

    def describe(self) -> str:
        """Human-readable fleet summary (the ``repro fleet`` report)."""
        lines = [
            f"fleet ({self.mode}): {len(self.deployments)} deployments, "
            f"{self.completed} completed, {self.deadlines_met} met deadline",
            f"cost:     ${self.total_cost:.2f} total, "
            f"makespan {self.makespan_hours:.1f} h",
            f"re-plans: {self.total_replans} total "
            f"({sum(d.event_replans for d in self.deployments)} event-driven), "
            f"{self.solves} solves + {self.cache_hits} plan-cache hits",
            f"events:   {len(self.events)} substrate events",
        ]
        for summary in self.deployments:
            result = summary.result
            lines.append(
                f"  {summary.name:16s} ${result.total_cost:7.2f}  "
                f"{result.completion_hours:5.1f} h  "
                f"{result.replans} re-plans "
                f"({'met' if result.deadline_met else 'MISSED'})"
            )
        return "\n".join(lines)


def fleet_summary(result: FleetResult) -> dict:
    """The deterministic fleet summary the ``run_end`` trace record carries.

    Everything here is a pure function of the scenario (no wall-clock
    data), so verify-mode replay can compare it across runs.
    """
    return {
        "mode": result.mode,
        "total_cost": result.total_cost,
        "total_replans": result.total_replans,
        "completed": result.completed,
        "deadlines_met": result.deadlines_met,
        "makespan_hours": result.makespan_hours,
        "solves": result.solves,
        "cache_hits": result.cache_hits,
        "warm_solves": result.warm_solves,
        "warm_fallbacks": result.warm_fallbacks,
        "batched_replans": result.batched_replans,
        "substrate_events": len(result.events),
        "deployments": [
            {
                "name": summary.name,
                "cost": summary.result.total_cost,
                "completion_hours": summary.result.completion_hours,
                "replans": summary.result.replans,
                "completed": summary.result.completed,
                "deadline_met": summary.result.deadline_met,
                "event_replans": summary.event_replans,
            }
            for summary in result.deployments
        ],
    }


class FleetScheduler:
    """Runs many deployments against one substrate, reactively.

    Usage::

        substrate = Substrate({"ec2.m1.large.spot": trace},
                              eviction_bids={"ec2.m1.large.spot": 0.34})
        fleet = FleetScheduler(substrate, FleetConfig(mode="event"))
        for i in range(8):
            fleet.add(f"tenant-{i}", job, spot_services(),
                      Goal.min_cost(deadline_hours=12.0),
                      predictor=WindowMaxPredictor(5))
        result = fleet.run(on_event=print)

    ``on_event`` receives every interval and re-plan as a versioned
    :class:`~repro.api.schemas.DeployEventV1` — the same wire format the
    ``repro fleet`` CLI streams.
    """

    def __init__(
        self,
        substrate: Substrate,
        config: FleetConfig | None = None,
        *,
        planner: Planner | None = None,
        cache_capacity: int = 512,
        metrics=None,
    ) -> None:
        self.substrate = substrate
        self.config = config or FleetConfig()
        self.replanner = CachingPlanner(
            planner, capacity=cache_capacity, metrics=metrics
        )
        self.deployments: list[FleetDeployment] = []

    # -- building ----------------------------------------------------------

    def add(
        self,
        name: str,
        job: PlannerJob,
        services,
        goal: Goal,
        *,
        network: NetworkConditions | None = None,
        predictor: SpotPredictor | None = None,
        controller_config: ControllerConfig | None = None,
        actual_rates: dict[str, float] | None = None,
        problem_kwargs: dict | None = None,
    ) -> FleetDeployment:
        """Register one deployment with the fleet.

        The controller is wired for fleet control: it plans through the
        shared :class:`CachingPlanner`, runs the fixed-cadence
        :func:`interval_trigger_policy` internally (event reactions are
        the *scheduler's* job), executes against the substrate's spot
        traces, and starts at the substrate's ``start_hour``.
        ``actual_rates`` injects ground-truth per-node throughputs (the
        Fig. 12 misprediction experiments); substrate node failures
        degrade these live.
        """
        services = list(services)
        problem_kwargs = dict(problem_kwargs or {})
        interval = float(problem_kwargs.get("interval_hours", 1.0))
        if abs(interval - self.config.step_hours) > _EPS:
            raise ValueError(
                f"deployment interval of {interval} h does not match the "
                f"fleet step of {self.config.step_hours} h"
            )
        spot_names = [s.name for s in services if s.is_spot]
        trace = None
        for spot_name in spot_names:
            if spot_name not in self.substrate.traces:
                raise ValueError(
                    f"spot service {spot_name!r} has no trace in the substrate"
                )
            trace = trace or self.substrate.traces[spot_name]
        controller = JobController(
            job,
            services,
            goal,
            network=network,
            planner=self.replanner,
            config=controller_config,
            predictor=predictor,
            trace=trace,
            trace_offset_hours=self.config.start_hour,
            problem_kwargs=problem_kwargs,
            triggers=interval_trigger_policy(self.config.interval_cadence_hours),
            backend=self.config.backend,
            backend_options=self.config.backend_options,
        )
        base_rates = {
            s.name: (actual_rates or {}).get(s.name, s.throughput_gb_per_hour)
            for s in services
            if s.can_compute
        }
        actual = ActualConditions(
            throughput_gb_per_hour=dict(actual_rates or {}),
            spot_traces={
                spot_name: self.substrate.traces[spot_name]
                for spot_name in spot_names
            },
        )
        deployment = FleetDeployment(
            index=len(self.deployments) + 1,
            name=name,
            controller=controller,
            actual=actual,
            budget=self.config.replan_budget,
            base_rates=base_rates,
        )
        self.deployments.append(deployment)
        return deployment

    # -- running -----------------------------------------------------------

    def run(
        self,
        on_event=None,
        max_hours: float | None = None,
        tracer=None,
    ) -> FleetResult:
        """Drive every deployment to completion; returns the fleet record.

        Each simulated step: collect the substrate's events for the
        hour, apply ground-truth effects (node failures degrade rates in
        *both* modes — the world does not care about the policy), route
        events to affected deployments as re-plan requests (event mode,
        budget permitting), then step every active deployment one
        interval.  ``on_event`` receives a
        :class:`~repro.api.schemas.DeployEventV1` per executed interval
        and per adopted re-plan, in causal order.

        ``tracer`` (a :class:`~repro.obs.trace.RunTracer` on which
        ``begin`` has been called) additionally narrates the run into
        the durable trace log: per-deployment lifecycle records, every
        substrate event, the same interval/replan events the stream
        carries, solver span timings, and the deterministic ``run_end``
        summary.  The whole loop is single-threaded, so trace record
        order is a pure function of the scenario.
        """
        # Local import: repro.api sits below the fleet in the layer
        # diagram but importing it at module scope would cycle through
        # repro.api.__init__ -> orchestrator -> (lazy) fleet.
        from ..api.schemas import DeployEventV1

        config = self.config
        event_policy = default_trigger_policy()
        all_events: list[SubstrateEvent] = []
        peak_demand: dict[str, int] = {}
        finished: set[int] = set()

        def emit(wire) -> None:
            if on_event is not None:
                on_event(wire)
            if tracer is not None:
                tracer.deploy_event(wire)

        def emit_replan(deployment: FleetDeployment, record) -> None:
            if on_event is None and tracer is None:
                return
            emit(DeployEventV1.from_replan(
                record,
                tenant=deployment.name,
                session_id=deployment.index,
                index=len(deployment.run.outcomes),
            ))

        def finish(deployment: FleetDeployment, hour: float) -> None:
            """Log the lifecycle close-out for a deployment, once."""
            if tracer is None or deployment.index in finished:
                return
            finished.add(deployment.index)
            run = deployment.run
            completed = run._executor.is_complete(run.state)
            tracer.lifecycle(
                deployment.name,
                "completed" if completed else "failed",
                hour=hour,
                session_id=deployment.index,
                cost=run.ledger.total(),
                replans=run.replans,
                completion_hours=run.state.hour,
            )

        if tracer is not None:
            self.replanner.on_solve = lambda seconds: tracer.record_span(
                "fleet.solve", seconds
            )

        for deployment in self.deployments:
            # Initial plans coalesce across identical deployments too:
            # the shared CachingPlanner serves one solve to all of them.
            deployment.run = deployment.controller.start(
                deployment.actual,
                on_replan=lambda record, d=deployment: emit_replan(d, record),
            )
            if tracer is not None:
                tracer.lifecycle(
                    deployment.name,
                    "started",
                    hour=config.start_hour,
                    session_id=deployment.index,
                    backend=config.backend if config.backend != "sim" else "",
                )

        elapsed = 0.0
        horizon = max_hours if max_hours is not None else max(
            (d.run.max_hours for d in self.deployments), default=0.0
        )
        while elapsed < horizon - _EPS:
            active = [d for d in self.deployments if d.active]
            if not active:
                break
            now = config.start_hour + elapsed
            events = self.substrate.advance(now, now + config.step_hours)
            all_events.extend(events)
            if tracer is not None:
                for event in events:
                    tracer.substrate_event(event)
            self._restore_failures(elapsed)
            for event in events:
                self._apply_event(event, active, elapsed)
            self._prefetch_replans(active)
            demand: dict[str, int] = {}
            for deployment in active:
                outcome = deployment.run.step()
                if outcome is None:
                    continue
                for service, nodes in outcome.nodes.items():
                    demand[service] = demand.get(service, 0) + nodes
                if on_event is not None or tracer is not None:
                    emit(DeployEventV1.from_outcome(
                        outcome,
                        tenant=deployment.name,
                        session_id=deployment.index,
                    ))
                if deployment.run.done:
                    finish(deployment, now + config.step_hours)
                elif config.mode == "event":
                    self._react_to_outcome(deployment, outcome, event_policy)
            for service, nodes in demand.items():
                peak_demand[service] = max(peak_demand.get(service, 0), nodes)
            elapsed += config.step_hours

        warm_stats = (
            self.replanner.incremental.stats
            if self.replanner.incremental is not None
            else None
        )
        result = FleetResult(
            mode=config.mode,
            deployments=[
                FleetDeploymentSummary(
                    name=d.name,
                    result=d.run.result(),
                    event_replans=d.event_replans,
                    budget_remaining=d.budget,
                )
                for d in self.deployments
            ],
            events=all_events,
            solves=self.replanner.solves,
            cache_hits=self.replanner.hits,
            warm_solves=warm_stats.warm if warm_stats else 0,
            warm_fallbacks=(
                warm_stats.structural_fallbacks + warm_stats.rejected_fallbacks
                if warm_stats
                else 0
            ),
            batched_replans=warm_stats.batched_problems if warm_stats else 0,
            peak_demand=peak_demand,
        )
        if tracer is not None:
            end_hour = config.start_hour + elapsed
            for deployment in self.deployments:
                finish(deployment, end_hour)
            tracer.end(fleet_summary(result), hour=end_hour)
        for deployment in self.deployments:
            if deployment.run is not None:
                deployment.run.close()
        return result

    def _prefetch_replans(self, active: list[FleetDeployment]) -> None:
        """Batch the step's pending re-plans into one prefetch solve.

        Every deployment with a re-plan pending exposes the exact
        problem it is about to solve (:meth:`ControllerRun.
        peek_replan_problem`); pushing them through the shared planner's
        :meth:`~repro.fleet.replanner.CachingPlanner.plan_batch` turns N
        concurrent warm certifications into one block-diagonal LP and
        pre-publishes the plans, so the subsequent ``step()`` calls
        adopt them from the cache.  A single pending re-plan solves just
        as fast inline, so batching only kicks in at two or more.
        """
        if self.replanner.incremental is None:
            return  # plan_batch would no-op; skip the peeks entirely
        pending = [
            problem
            for deployment in active
            if (problem := deployment.run.peek_replan_problem()) is not None
        ]
        if len(pending) >= 2:
            self.replanner.plan_batch(pending)

    # -- event routing -----------------------------------------------------

    def _apply_event(
        self,
        event: SubstrateEvent,
        active: list[FleetDeployment],
        elapsed: float,
    ) -> None:
        """Ground-truth effects for everyone; re-plan requests in event mode."""
        concerned = [d for d in active if event.service in d.service_names]
        if isinstance(event, NodeFailure):
            for deployment in concerned:
                already_failing = any(
                    name == event.service
                    for _, name, _ in deployment.active_failures
                )
                self._degrade(deployment, event, elapsed)
                factor = 1.0 - event.severity
                if (
                    self.config.mode == "event"
                    and factor > 0
                    and not already_failing
                ):
                    # The event names its severity, so the immediate
                    # re-plan can model the degradation instead of
                    # re-solving on stale beliefs and paying a second
                    # replan once the slowdown is observed.  Scaled only
                    # for the episode's *first* event — ground truth
                    # composes overlapping failures as a max, not a
                    # product — and corrected back up by observation
                    # (``learn``) once the episode ends.  (A total
                    # outage is left to observation: a zero rate has no
                    # meaning to the planner.)
                    deployment.controller.scale_belief(event.service, factor)
        if isinstance(event, CapacityChange):
            capacity = self.substrate.capacity_of(event.service)
            # The new limit enters every concerned deployment's service
            # catalog (``max_nodes``), so the next re-plan — whoever
            # triggers it — solves within it; an immediate re-plan is
            # only worth a budget unit for deployments whose active plan
            # violates the limit.
            for deployment in concerned:
                self._apply_capacity(deployment, event.service, capacity)
            concerned = [
                d for d in concerned
                if capacity is not None
                and d.run.plans[-1].peak_nodes(event.service) > capacity
            ]
        if self.config.mode != "event":
            return
        for deployment in concerned:
            self._request(deployment, event.kind, event.describe())

    def _apply_capacity(
        self, deployment: FleetDeployment, service: str, capacity: int | None
    ) -> None:
        if capacity is None:
            return
        controller = deployment.controller
        controller.services = [
            s.replace(max_nodes=capacity) if s.name == service else s
            for s in controller.services
        ]

    def _react_to_outcome(
        self, deployment: FleetDeployment, outcome, policy
    ) -> None:
        """Deviation/price/eviction reactions the controller's interval
        policy no longer performs — in fleet mode they belong here."""
        decision = policy.check(deployment.run.trigger_context(outcome))
        if decision is not None:
            self._request(
                deployment, decision.kind, decision.reason, learn=True
            )

    def _request(
        self,
        deployment: FleetDeployment,
        kind: str,
        reason: str,
        learn: bool = False,
    ) -> None:
        if deployment.budget <= 0:
            return
        if deployment.run.request_replan(reason, kind=kind, learn=learn):
            deployment.budget -= 1
            deployment.event_replans += 1

    # -- failures ----------------------------------------------------------

    def _degrade(
        self, deployment: FleetDeployment, event: NodeFailure, elapsed: float
    ) -> None:
        if event.service not in deployment.base_rates:
            return
        deployment.active_failures.append(
            (elapsed + event.duration_hours, event.service, event.severity)
        )
        self._apply_failure_rate(deployment, event.service)

    def _restore_failures(self, elapsed: float) -> None:
        for deployment in self.deployments:
            if not deployment.active_failures:
                continue
            expired = {
                service
                for end_hour, service, _ in deployment.active_failures
                if end_hour <= elapsed + _EPS
            }
            deployment.active_failures = [
                entry for entry in deployment.active_failures
                if entry[0] > elapsed + _EPS
            ]
            for service in expired:
                self._apply_failure_rate(deployment, service)

    def _apply_failure_rate(
        self, deployment: FleetDeployment, service: str
    ) -> None:
        """Set a service's actual rate from its *worst active* failure —
        overlapping episodes compose as a max, and expiry of one episode
        must not cancel another still in flight."""
        base = deployment.base_rates.get(service)
        if base is None:
            return
        severities = [
            severity
            for _, name, severity in deployment.active_failures
            if name == service
        ]
        degraded = base * (1.0 - max(severities)) if severities else base
        deployment.actual.throughput_gb_per_hour[service] = degraded
