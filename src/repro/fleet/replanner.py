"""Fleet-wide plan reuse: one warm cache in front of one solver.

When a substrate event touches N deployments at once, the scheduler asks
each of them to re-plan — but deployments that are in the same state and
asking the same question must pay for **one** solve, not N.  This reuses
the multi-tenant service's machinery from the plan-cache work: canonical
:func:`~repro.service.fingerprint.problem_fingerprint` keys into the
same :class:`~repro.service.cache.LRUCache`, so identical re-plans
coalesce into one warm-cache solve exactly like identical tenant
requests do in :class:`~repro.service.service.PlanningService`.
"""

from __future__ import annotations

import time

from ..core.plan import ExecutionPlan
from ..core.planner import Planner
from ..core.problem import PlanningProblem
from ..service.cache import LRUCache
from ..service.fingerprint import problem_fingerprint

__all__ = ["CachingPlanner"]


class CachingPlanner:
    """A :class:`Planner` façade sharing one plan cache across a fleet.

    Duck-types ``Planner.plan`` so a :class:`JobController` can use it
    unchanged.  Only optimal plans are published to the cache (the same
    rule the planning service applies: a cut-off incumbent shaped by one
    caller must not be served to everyone).

    ``on_solve`` (assignable any time, e.g. by the fleet scheduler when
    a tracer is attached) observes each cache-miss solve's wall-clock
    seconds — the span-timer hook of the observability layer.
    """

    def __init__(
        self, planner: Planner | None = None, capacity: int = 512
    ) -> None:
        self.planner = planner or Planner()
        self.cache: LRUCache[ExecutionPlan] = LRUCache(capacity)
        self.solves = 0
        self.hits = 0
        #: Optional callable(seconds) invoked after every real solve.
        self.on_solve = None

    def plan(self, problem: PlanningProblem) -> ExecutionPlan:
        """Solve ``problem``, serving identical problems from the cache."""
        fingerprint = problem_fingerprint(problem)
        cached = self.cache.get(fingerprint)
        if cached is not None:
            self.hits += 1
            return cached
        start = time.perf_counter()
        plan = self.planner.plan(problem)
        seconds = time.perf_counter() - start
        self.solves += 1
        if plan.solver_status == "optimal":
            self.cache.put(fingerprint, plan)
        if self.on_solve is not None:
            self.on_solve(seconds)
        return plan

    @property
    def lookups(self) -> int:
        return self.solves + self.hits

    @property
    def hit_rate(self) -> float:
        return self.hits / self.lookups if self.lookups else 0.0
