"""Fleet-wide plan reuse: one warm cache in front of one solver.

When a substrate event touches N deployments at once, the scheduler asks
each of them to re-plan — but deployments that are in the same state and
asking the same question must pay for **one** solve, not N.  This reuses
the multi-tenant service's machinery from the plan-cache work: canonical
:func:`~repro.service.fingerprint.problem_fingerprint` keys into the
same :class:`~repro.service.cache.LRUCache`, so identical re-plans
coalesce into one warm-cache solve exactly like identical tenant
requests do in :class:`~repro.service.service.PlanningService`.

Below the exact cache sits the
:class:`~repro.service.incremental.IncrementalSolver`: re-plans that are
not byte-identical but *structurally* identical (same horizon, same
service set — the replan hot path, where only prices, progress and
bounds moved) restart warm from the previously retained matrix instead
of running a fresh branch & bound.  :meth:`CachingPlanner.plan_batch`
additionally lets the scheduler push every re-plan pending in one step
through a single block-diagonal certification solve.
"""

from __future__ import annotations

import time

from ..core.model_builder import PlanningError
from ..core.plan import ExecutionPlan
from ..core.planner import Planner
from ..core.problem import PlanningProblem
from ..service.cache import LRUCache
from ..service.fingerprint import problem_fingerprint
from ..service.incremental import IncrementalSolver

__all__ = ["CachingPlanner"]


class CachingPlanner:
    """A :class:`Planner` façade sharing one plan cache across a fleet.

    Duck-types ``Planner.plan`` so a :class:`JobController` can use it
    unchanged.  Only optimal plans are published to the cache (the same
    rule the planning service applies: a cut-off incumbent shaped by one
    caller must not be served to everyone).

    Cache misses go to the incremental solver when one is active:
    ``incremental=None`` (the default) builds one automatically when
    ``planner`` is a real :class:`Planner` (mirroring its time limit,
    gap and backend); pass ``incremental=False`` to force every miss
    through ``planner.plan`` unchanged, or a ready-made
    :class:`IncrementalSolver` to share/tune one.  Custom duck-typed
    planners (test stubs) never get a solver implicitly — their
    ``plan`` stays the only solve path.

    ``on_solve`` (assignable any time, e.g. by the fleet scheduler when
    a tracer is attached) observes each cache-miss solve's wall-clock
    seconds — the span-timer hook of the observability layer.

    ``metrics`` (a :class:`~repro.obs.registry.MetricsRegistry`) gets
    ``plan_cache.hit`` / ``plan_cache.miss`` counters bumped per lookup
    and is handed to the incremental solver for its own counters.
    """

    def __init__(
        self,
        planner: Planner | None = None,
        capacity: int = 512,
        incremental: IncrementalSolver | bool | None = None,
        metrics=None,
    ) -> None:
        self.planner = planner or Planner()
        self.cache: LRUCache[ExecutionPlan] = LRUCache(capacity)
        if incremental is None and isinstance(self.planner, Planner):
            incremental = IncrementalSolver(
                time_limit=self.planner.time_limit,
                mip_gap=self.planner.mip_gap,
                backend=self.planner.backend,
            )
        self.incremental: IncrementalSolver | None = (
            incremental if isinstance(incremental, IncrementalSolver) else None
        )
        self.metrics = metrics
        if self.incremental is not None and metrics is not None:
            self.incremental.metrics = metrics
        self.solves = 0
        self.hits = 0
        #: Optional callable(seconds) invoked after every real solve.
        self.on_solve = None
        #: Fingerprints solved by :meth:`plan_batch` whose owner has not
        #: picked the plan up yet; the pickup is that deployment's own
        #: (already-counted) solve, not a coalescing cache hit.
        self._prefetched: set[str] = set()

    def plan(self, problem: PlanningProblem) -> ExecutionPlan:
        """Solve ``problem``, serving identical problems from the cache."""
        fingerprint = problem_fingerprint(problem)
        cached = self.cache.get(fingerprint)
        if cached is not None:
            if fingerprint in self._prefetched:
                self._prefetched.discard(fingerprint)
            else:
                self.hits += 1
                self._bump("plan_cache.hit")
            return cached
        self._bump("plan_cache.miss")
        start = time.perf_counter()
        plan = self._solve(problem)
        seconds = time.perf_counter() - start
        self.solves += 1
        self._publish(fingerprint, plan)
        if self.on_solve is not None:
            self.on_solve(seconds)
        return plan

    def plan_batch(self, problems: list[PlanningProblem]) -> None:
        """Prefetch plans for several problems in one batched solve.

        Deduplicates by exact fingerprint, skips problems whose plan is
        already cached, and pushes the remaining uniques through
        :meth:`IncrementalSolver.solve_many` — concurrent warm
        candidates certify in one block-diagonal LP.  Optimal plans are
        published to the cache so the subsequent per-deployment
        :meth:`plan` calls hit; failures are left uncached and simply
        re-raise on that deployment's own ``plan`` call (preserving its
        fallback semantics, e.g. horizon extension).  Without an
        incremental solver this is a no-op — per-deployment ``plan``
        calls already coalesce identical problems.
        """
        if self.incremental is None:
            return
        self._prefetched.clear()
        unique: dict[str, PlanningProblem] = {}
        for problem in problems:
            fingerprint = problem_fingerprint(problem)
            if fingerprint not in unique and fingerprint not in self.cache:
                unique[fingerprint] = problem
        if not unique:
            return
        start = time.perf_counter()
        results = self.incremental.solve_many(list(unique.values()))
        seconds = (time.perf_counter() - start) / len(unique)
        for fingerprint, result in zip(unique, results):
            if isinstance(result, PlanningError):
                continue
            self.solves += 1
            self._bump("plan_cache.miss")
            self._publish(fingerprint, result)
            if result.solver_status == "optimal":
                self._prefetched.add(fingerprint)
            if self.on_solve is not None:
                self.on_solve(seconds)

    # -- internals --------------------------------------------------------

    def _solve(self, problem: PlanningProblem) -> ExecutionPlan:
        if self.incremental is not None:
            return self.incremental.solve(problem)
        return self.planner.plan(problem)

    def _publish(self, fingerprint: str, plan: ExecutionPlan) -> None:
        if plan.solver_status == "optimal":
            self.cache.put(fingerprint, plan)

    def _bump(self, name: str) -> None:
        if self.metrics is not None:
            self.metrics.counter(name).increment()

    @property
    def lookups(self) -> int:
        return self.solves + self.hits

    @property
    def hit_rate(self) -> float:
        return self.hits / self.lookups if self.lookups else 0.0
