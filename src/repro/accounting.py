"""Fine-grained internal cost accounting.

The paper instrumented its prototype "to account for all operations over
cloud resources ... because it enabled us to track the per experiment cost
and at a much finer granularity" than Amazon's billing (Section 6.1).
:class:`CostLedger` is that instrument: every node-hour, GB-hour, request
batch and transferred GB lands here as a line item, and the figure benches
aggregate the ledger into the paper's stacked-bar categories.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Callable, Iterable


class CostCategory(enum.Enum):
    COMPUTE = "compute"
    STORAGE = "storage"
    TRANSFER = "transfer"
    REQUESTS = "requests"


@dataclass(frozen=True)
class LedgerEntry:
    """One billable line item."""

    hour: float
    service: str
    category: CostCategory
    detail: str
    quantity: float
    unit: str
    unit_price: float

    @property
    def amount(self) -> float:
        return self.quantity * self.unit_price


class CostLedger:
    """Append-only collection of :class:`LedgerEntry` with aggregations."""

    def __init__(self) -> None:
        self._entries: list[LedgerEntry] = []

    def __len__(self) -> int:
        return len(self._entries)

    def __iter__(self):
        return iter(self._entries)

    def add(
        self,
        hour: float,
        service: str,
        category: CostCategory,
        detail: str,
        quantity: float,
        unit: str,
        unit_price: float,
    ) -> LedgerEntry:
        if quantity < 0:
            raise ValueError(f"negative quantity for {detail!r}: {quantity}")
        if unit_price < 0:
            raise ValueError(f"negative unit price for {detail!r}: {unit_price}")
        entry = LedgerEntry(hour, service, category, detail, quantity, unit, unit_price)
        self._entries.append(entry)
        return entry

    def merge(self, other: "CostLedger") -> None:
        self._entries.extend(other._entries)

    # -- aggregation ----------------------------------------------------------

    def total(self) -> float:
        return sum(e.amount for e in self._entries)

    def by_category(self) -> dict[CostCategory, float]:
        return self._group(lambda e: e.category)

    def by_service(self) -> dict[str, float]:
        return self._group(lambda e: e.service)

    def by_service_category(self) -> dict[tuple[str, CostCategory], float]:
        return self._group(lambda e: (e.service, e.category))

    def filtered(self, predicate: Callable[[LedgerEntry], bool]) -> "CostLedger":
        ledger = CostLedger()
        for entry in self._entries:
            if predicate(entry):
                ledger._entries.append(entry)
        return ledger

    def _group(self, key: Callable[[LedgerEntry], object]) -> dict:
        groups: dict = {}
        for entry in self._entries:
            groups[key(entry)] = groups.get(key(entry), 0.0) + entry.amount
        return groups

    # -- paper-figure views ----------------------------------------------------

    def figure5_breakdown(self) -> dict[str, float]:
        """Aggregate into the stacked categories of the paper's Fig. 5:
        network transfer, computation/EC2, storage/S3, storage/EC2."""
        breakdown = {
            "network transfer": 0.0,
            "computation/EC2": 0.0,
            "storage/S3": 0.0,
            "storage/EC2": 0.0,
        }
        for entry in self._entries:
            is_s3 = "s3" in entry.service.lower()
            if entry.category is CostCategory.TRANSFER:
                breakdown["network transfer"] += entry.amount
            elif entry.category is CostCategory.COMPUTE:
                breakdown["computation/EC2"] += entry.amount
            elif is_s3:
                breakdown["storage/S3"] += entry.amount  # storage + requests
            else:
                breakdown["storage/EC2"] += entry.amount
        return breakdown

    def rows(self) -> list[tuple]:
        """Ledger as printable tuples (time, service, category, detail, $)."""
        return [
            (round(e.hour, 3), e.service, e.category.value, e.detail, round(e.amount, 6))
            for e in self._entries
        ]


def combine(ledgers: Iterable[CostLedger]) -> CostLedger:
    merged = CostLedger()
    for ledger in ledgers:
        merged.merge(ledger)
    return merged
