"""The versioned public API — the only way work enters the system.

Three layers:

- **schemas** (:mod:`repro.api.schemas`): frozen, serializable request/
  response types tagged with a ``schema_version`` — :class:`JobSpec`,
  :class:`GoalSpec`, :class:`NetworkSpec`, :class:`PlanRequestV1`,
  :class:`PlanResponseV1`, :class:`DeployEventV1`, :class:`ErrorV1` —
  plus :func:`decode`/:func:`encode` for the JSON-lines wire format;
- **facade** (:mod:`repro.api.orchestrator`): the :class:`Orchestrator`
  with ``plan(spec)`` / ``submit(spec)`` / ``deploy(spec)``, shared by
  library users, the CLI and the planning service;
- **adapters** (:mod:`repro.api.adapters`): :func:`from_pig`,
  :func:`from_mapreduce_job` and :func:`from_workload` compile the
  existing front-ends into ``JobSpec``.

Quickstart::

    from repro.api import GoalSpec, JobSpec, Orchestrator

    spec = JobSpec(input_gb=32.0, goal=GoalSpec(deadline_hours=6.0))
    plan = Orchestrator().plan(spec)
    print(plan.describe())
"""

from .schemas import (
    CATALOGS,
    DEPLOY_EVENT_KINDS,
    DeployEventV1,
    ERROR_CODES,
    ErrorV1,
    GoalSpec,
    HelloV1,
    JobSpec,
    NetworkSpec,
    PlanRequestV1,
    PlanResponseV1,
    RESPONSE_STATUSES,
    SCHEMA_VERSION,
    SchemaError,
    decode,
    encode,
)
from .errors import error_v1_for_result, error_v1_from_exception
from .adapters import (
    PIG_SCRIPT,
    SCENARIOS,
    from_mapreduce_job,
    from_pig,
    from_workload,
)
from .compiler import (
    DEFAULT_SPOT_PRICE,
    compile_spec,
    resolve_services,
    scenario_for,
    spot_estimates_for,
)
from .orchestrator import Orchestrator, OrchestratorError

__all__ = [
    "CATALOGS",
    "DEPLOY_EVENT_KINDS",
    "DEFAULT_SPOT_PRICE",
    "DeployEventV1",
    "ERROR_CODES",
    "ErrorV1",
    "GoalSpec",
    "HelloV1",
    "JobSpec",
    "NetworkSpec",
    "Orchestrator",
    "OrchestratorError",
    "PIG_SCRIPT",
    "PlanRequestV1",
    "PlanResponseV1",
    "RESPONSE_STATUSES",
    "SCENARIOS",
    "SCHEMA_VERSION",
    "SchemaError",
    "compile_spec",
    "decode",
    "encode",
    "error_v1_for_result",
    "error_v1_from_exception",
    "from_mapreduce_job",
    "from_pig",
    "from_workload",
    "resolve_services",
    "scenario_for",
    "spot_estimates_for",
]
