"""Versioned, serializable schemas — the public wire format (v1).

Everything that enters or leaves the orchestrator is one of these frozen
dataclasses.  Each type carries a ``schema_version`` and a ``kind`` tag,
serializes with :meth:`to_dict` / :meth:`from_dict`, and round-trips
exactly: ``from_dict(to_dict(x)) == x``.  :func:`decode` dispatches a raw
JSON payload to the right type and rejects unknown versions or kinds with
a :class:`SchemaError` — a structured ``bad_schema`` error, never a
traceback.

The vocabulary:

- :class:`JobSpec` — a declared computation: MapReduce aggregates plus a
  :class:`GoalSpec`, a :class:`NetworkSpec`, and a service-catalog
  selector;
- :class:`PlanRequestV1` / :class:`PlanResponseV1` — one planning
  round-trip through the service (tenant, priority, SLOs in; plan
  summary, cache provenance, timings out);
- :class:`DeployEventV1` — one executed interval of a deployment stream;
- :class:`ErrorV1` — machine-readable failure with a stable code;
- :class:`HelloV1` — the service's greeting (build + schema version).
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field, fields
from typing import Any, ClassVar, Mapping

#: The wire-format version this build speaks.
SCHEMA_VERSION = 1

#: Stable machine-readable error codes (:class:`ErrorV1.code`).
ERROR_CODES = frozenset(
    {
        "bad_schema",      # payload does not parse as a known schema/version
        "bad_request",     # well-formed payload describing an invalid job
        "infeasible",      # no deployment meets the deadline
        "budget_exceeded", # no deployment fits the budget
        "timeout",         # turnaround/solver wait exceeded
        "expired",         # turnaround SLO passed while queued
        "rejected",        # refused by admission control or shutdown
        "solver_error",    # the LP backend failed on a valid model
        "internal",        # anything else (bug, broken pool, ...)
    }
)


class SchemaError(ValueError):
    """A payload that cannot be decoded into any supported schema."""


# ---------------------------------------------------------------------------
# decoding helpers


_REQUIRED = object()


def _mapping(data: Any, kind: str) -> dict:
    if not isinstance(data, Mapping):
        raise SchemaError(f"{kind}: payload must be a JSON object, "
                          f"got {type(data).__name__}")
    return dict(data)


def _envelope(data: dict, kind: str) -> dict:
    """Strip and check the ``schema_version``/``kind`` envelope.

    Nested payloads may omit the envelope (the parent already carried
    it); when present it must match.
    """
    version = data.pop("schema_version", SCHEMA_VERSION)
    if version != SCHEMA_VERSION:
        raise SchemaError(
            f"unsupported schema_version {version!r} "
            f"(this build speaks version {SCHEMA_VERSION})"
        )
    tag = data.pop("kind", kind)
    if tag != kind:
        raise SchemaError(f"expected kind {kind!r}, got {tag!r}")
    return data


def _finish(data: dict, kind: str) -> None:
    if data:
        raise SchemaError(f"{kind}: unknown fields {sorted(data)}")


def _take(data: dict, name: str, coerce, default=_REQUIRED):
    if name not in data:
        if default is _REQUIRED:
            raise SchemaError(f"missing required field {name!r}")
        return default
    return coerce(data.pop(name), name)


def _float(value: Any, name: str) -> float:
    if isinstance(value, bool) or not isinstance(value, (int, float)):
        raise SchemaError(f"field {name!r} must be a number, got {value!r}")
    return float(value)


def _opt_float(value: Any, name: str) -> float | None:
    return None if value is None else _float(value, name)


def _int(value: Any, name: str) -> int:
    if isinstance(value, bool) or not isinstance(value, int):
        raise SchemaError(f"field {name!r} must be an integer, got {value!r}")
    return value


def _opt_int(value: Any, name: str) -> int | None:
    return None if value is None else _int(value, name)


def _bool(value: Any, name: str) -> bool:
    if not isinstance(value, bool):
        raise SchemaError(f"field {name!r} must be a boolean, got {value!r}")
    return value


def _str(value: Any, name: str) -> str:
    if not isinstance(value, str):
        raise SchemaError(f"field {name!r} must be a string, got {value!r}")
    return value


def _opt_str(value: Any, name: str) -> str | None:
    return None if value is None else _str(value, name)


def _float_map(value: Any, name: str) -> dict[str, float]:
    if not isinstance(value, Mapping):
        raise SchemaError(f"field {name!r} must be an object, got {value!r}")
    return {_str(k, name): _float(v, name) for k, v in value.items()}


def _int_map(value: Any, name: str) -> dict[str, int]:
    if not isinstance(value, Mapping):
        raise SchemaError(f"field {name!r} must be an object, got {value!r}")
    return {_str(k, name): _int(v, name) for k, v in value.items()}


def _str_map(value: Any, name: str) -> dict[str, str]:
    if not isinstance(value, Mapping):
        raise SchemaError(f"field {name!r} must be an object, got {value!r}")
    return {_str(k, name): _str(v, name) for k, v in value.items()}


def _str_tuple(value: Any, name: str) -> tuple[str, ...]:
    if isinstance(value, str) or not isinstance(value, (list, tuple)):
        raise SchemaError(f"field {name!r} must be a list, got {value!r}")
    return tuple(_str(v, name) for v in value)


def _set(obj: Any, name: str, value: Any) -> None:
    """Normalize a field on a frozen dataclass during __post_init__."""
    object.__setattr__(obj, name, value)


def _require(condition: bool, message: str) -> None:
    if not condition:
        raise SchemaError(message)


# ---------------------------------------------------------------------------
# schema types


@dataclass(frozen=True)
class GoalSpec:
    """The customer's optimization objective (paper Sections 1-3).

    ``minimize-cost`` needs a ``deadline_hours``; ``minimize-time`` needs
    a ``budget_usd`` (``deadline_hours`` then bounds the search horizon,
    48 h when omitted).
    """

    KIND: ClassVar[str] = "goal_spec"

    objective: str = "minimize-cost"
    deadline_hours: float | None = 6.0
    budget_usd: float | None = None
    schema_version: int = SCHEMA_VERSION

    def __post_init__(self) -> None:
        _require(self.schema_version == SCHEMA_VERSION,
                 f"unsupported schema_version {self.schema_version!r}")
        _require(self.objective in ("minimize-cost", "minimize-time"),
                 f"unknown objective {self.objective!r}")
        _set(self, "deadline_hours",
             None if self.deadline_hours is None else float(self.deadline_hours))
        _set(self, "budget_usd",
             None if self.budget_usd is None else float(self.budget_usd))
        if self.objective == "minimize-cost":
            _require(self.deadline_hours is not None and self.deadline_hours > 0,
                     "minimize-cost requires a positive deadline_hours")
        else:
            _require(self.budget_usd is not None and self.budget_usd > 0,
                     "minimize-time requires a positive budget_usd")
            _require(self.deadline_hours is None or self.deadline_hours > 0,
                     "deadline_hours must be positive when given")

    def to_dict(self) -> dict:
        return {
            "schema_version": self.schema_version,
            "kind": self.KIND,
            "objective": self.objective,
            "deadline_hours": self.deadline_hours,
            "budget_usd": self.budget_usd,
        }

    @classmethod
    def from_dict(cls, data: Mapping) -> "GoalSpec":
        data = _envelope(_mapping(data, cls.KIND), cls.KIND)
        spec = cls(
            objective=_take(data, "objective", _str, "minimize-cost"),
            deadline_hours=_take(data, "deadline_hours", _opt_float, 6.0),
            budget_usd=_take(data, "budget_usd", _opt_float, None),
        )
        _finish(data, cls.KIND)
        return spec

    def to_goal(self):
        """Compile to the core :class:`~repro.core.problem.Goal`."""
        from ..core.problem import Goal

        if self.objective == "minimize-cost":
            return Goal.min_cost(deadline_hours=float(self.deadline_hours))
        return Goal.min_time(
            budget_usd=float(self.budget_usd),
            horizon_hours=float(self.deadline_hours or 48.0),
        )

    @classmethod
    def from_goal(cls, goal) -> "GoalSpec":
        return cls(
            objective=goal.kind.value,
            deadline_hours=goal.deadline_hours,
            budget_usd=goal.budget_usd,
        )


@dataclass(frozen=True)
class NetworkSpec:
    """WAN/LAN capacities, in the units a customer quotes them.

    Defaults mirror the paper's setup (16 Mbit/s uplink, Section 6.1)
    and compile to the core defaults exactly.
    """

    KIND: ClassVar[str] = "network_spec"

    uplink_mbit_s: float = 16.0
    #: ``None`` means symmetric with the uplink.
    downlink_mbit_s: float | None = None
    local_mb_s: float = 100.0
    interservice_mb_s: float = 400.0
    schema_version: int = SCHEMA_VERSION

    def __post_init__(self) -> None:
        _require(self.schema_version == SCHEMA_VERSION,
                 f"unsupported schema_version {self.schema_version!r}")
        _set(self, "uplink_mbit_s", float(self.uplink_mbit_s))
        _set(self, "downlink_mbit_s",
             None if self.downlink_mbit_s is None else float(self.downlink_mbit_s))
        _set(self, "local_mb_s", float(self.local_mb_s))
        _set(self, "interservice_mb_s", float(self.interservice_mb_s))
        for name in ("uplink_mbit_s", "local_mb_s", "interservice_mb_s"):
            _require(getattr(self, name) > 0, f"{name} must be positive")
        _require(self.downlink_mbit_s is None or self.downlink_mbit_s > 0,
                 "downlink_mbit_s must be positive when given")

    def to_dict(self) -> dict:
        return {
            "schema_version": self.schema_version,
            "kind": self.KIND,
            "uplink_mbit_s": self.uplink_mbit_s,
            "downlink_mbit_s": self.downlink_mbit_s,
            "local_mb_s": self.local_mb_s,
            "interservice_mb_s": self.interservice_mb_s,
        }

    @classmethod
    def from_dict(cls, data: Mapping) -> "NetworkSpec":
        data = _envelope(_mapping(data, cls.KIND), cls.KIND)
        spec = cls(
            uplink_mbit_s=_take(data, "uplink_mbit_s", _float, 16.0),
            downlink_mbit_s=_take(data, "downlink_mbit_s", _opt_float, None),
            local_mb_s=_take(data, "local_mb_s", _float, 100.0),
            interservice_mb_s=_take(data, "interservice_mb_s", _float, 400.0),
        )
        _finish(data, cls.KIND)
        return spec

    def to_conditions(self):
        """Compile to :class:`~repro.core.problem.NetworkConditions`."""
        from ..core.problem import NetworkConditions
        from ..units import mb_s_to_gb_h, mbit_s_to_mb_s

        downlink = (
            self.uplink_mbit_s if self.downlink_mbit_s is None
            else self.downlink_mbit_s
        )
        return NetworkConditions(
            uplink_gb_per_hour=mb_s_to_gb_h(mbit_s_to_mb_s(self.uplink_mbit_s)),
            downlink_gb_per_hour=mb_s_to_gb_h(mbit_s_to_mb_s(downlink)),
            local_gb_per_hour=mb_s_to_gb_h(self.local_mb_s),
            interservice_gb_per_hour=mb_s_to_gb_h(self.interservice_mb_s),
        )


#: Service-catalog selectors a JobSpec may name.
CATALOGS = ("public", "hybrid", "spot", "xml")


@dataclass(frozen=True)
class JobSpec:
    """A declared computation: what to run, toward which goal, over what.

    This is the *only* way work enters the system — the CLI, the planning
    service's wire protocol and library callers all compile a ``JobSpec``
    down to the internal :class:`~repro.core.problem.PlanningProblem`
    through one compiler (:func:`repro.api.compiler.compile_spec`).
    """

    KIND: ClassVar[str] = "job_spec"

    name: str = "job"
    input_gb: float = 16.0
    map_output_ratio: float = 0.002
    reduce_output_ratio: float = 1.0
    throughput_scale: float = 1.0
    reduce_speed_factor: float = 4.0
    goal: GoalSpec = field(default_factory=GoalSpec)
    network: NetworkSpec = field(default_factory=NetworkSpec)
    #: One of :data:`CATALOGS`: ``public`` (the paper's EC2+S3 menu),
    #: ``hybrid`` (public plus ``local_nodes`` owned machines), ``spot``
    #: (spot compute + S3), or ``xml`` (a Fig. 3 catalog document at
    #: ``services_xml``).
    catalog: str = "public"
    local_nodes: int = 0
    #: Flat per-interval spot price estimate (``spot`` catalog only;
    #: ``None`` uses the service default).
    spot_price: float | None = None
    services_xml: str | None = None
    interval_hours: float = 1.0
    constant_nodes: bool = False
    allow_migration: bool = True
    #: Optional Fig. 8/9 constraint: service name -> input fraction.
    upload_fractions: dict[str, float] = field(default_factory=dict)
    schema_version: int = SCHEMA_VERSION

    def __post_init__(self) -> None:
        _require(self.schema_version == SCHEMA_VERSION,
                 f"unsupported schema_version {self.schema_version!r}")
        _require(bool(self.name), "name must be non-empty")
        for name in ("input_gb", "throughput_scale", "reduce_speed_factor",
                     "interval_hours"):
            _set(self, name, float(getattr(self, name)))
            _require(getattr(self, name) > 0, f"{name} must be positive")
        for name in ("map_output_ratio", "reduce_output_ratio"):
            _set(self, name, float(getattr(self, name)))
            _require(getattr(self, name) >= 0, f"{name} must be non-negative")
        _require(self.catalog in CATALOGS,
                 f"unknown catalog {self.catalog!r}; pick one of {CATALOGS}")
        _require(self.local_nodes >= 0, "local_nodes must be non-negative")
        if self.catalog == "hybrid":
            _require(self.local_nodes > 0,
                     "catalog 'hybrid' requires local_nodes > 0")
        if self.catalog == "xml":
            _require(bool(self.services_xml),
                     "catalog 'xml' requires services_xml")
        _set(self, "spot_price",
             None if self.spot_price is None else float(self.spot_price))
        _require(self.spot_price is None or self.spot_price > 0,
                 "spot_price must be positive when given")
        _set(self, "upload_fractions",
             {str(k): float(v) for k, v in dict(self.upload_fractions).items()})

    def to_dict(self) -> dict:
        return {
            "schema_version": self.schema_version,
            "kind": self.KIND,
            "name": self.name,
            "input_gb": self.input_gb,
            "map_output_ratio": self.map_output_ratio,
            "reduce_output_ratio": self.reduce_output_ratio,
            "throughput_scale": self.throughput_scale,
            "reduce_speed_factor": self.reduce_speed_factor,
            "goal": self.goal.to_dict(),
            "network": self.network.to_dict(),
            "catalog": self.catalog,
            "local_nodes": self.local_nodes,
            "spot_price": self.spot_price,
            "services_xml": self.services_xml,
            "interval_hours": self.interval_hours,
            "constant_nodes": self.constant_nodes,
            "allow_migration": self.allow_migration,
            "upload_fractions": dict(self.upload_fractions),
        }

    @classmethod
    def from_dict(cls, data: Mapping) -> "JobSpec":
        data = _envelope(_mapping(data, cls.KIND), cls.KIND)
        goal = data.pop("goal", None)
        network = data.pop("network", None)
        spec = cls(
            name=_take(data, "name", _str, "job"),
            input_gb=_take(data, "input_gb", _float, 16.0),
            map_output_ratio=_take(data, "map_output_ratio", _float, 0.002),
            reduce_output_ratio=_take(data, "reduce_output_ratio", _float, 1.0),
            throughput_scale=_take(data, "throughput_scale", _float, 1.0),
            reduce_speed_factor=_take(data, "reduce_speed_factor", _float, 4.0),
            goal=GoalSpec() if goal is None else GoalSpec.from_dict(goal),
            network=(NetworkSpec() if network is None
                     else NetworkSpec.from_dict(network)),
            catalog=_take(data, "catalog", _str, "public"),
            local_nodes=_take(data, "local_nodes", _int, 0),
            spot_price=_take(data, "spot_price", _opt_float, None),
            services_xml=_take(data, "services_xml", _opt_str, None),
            interval_hours=_take(data, "interval_hours", _float, 1.0),
            constant_nodes=_take(data, "constant_nodes", _bool, False),
            allow_migration=_take(data, "allow_migration", _bool, True),
            upload_fractions=_take(data, "upload_fractions", _float_map, {}),
        )
        _finish(data, cls.KIND)
        return spec

    def cache_key(self) -> tuple:
        """A hashable identity for compiled-problem caching.

        Specs are frozen value objects; the only unhashable field is the
        ``upload_fractions`` mapping, flattened here.  Two equal specs
        always produce equal keys.  Memoized per instance (immutability
        makes that safe): resubmitting one spec is the service's hottest
        path and must not rebuild the key every time.
        """
        cached = getattr(self, "_cache_key", None)
        if cached is not None:
            return cached
        key = (
            self.name,
            self.input_gb,
            self.map_output_ratio,
            self.reduce_output_ratio,
            self.throughput_scale,
            self.reduce_speed_factor,
            self.goal,
            self.network,
            self.catalog,
            self.local_nodes,
            self.spot_price,
            self.services_xml,
            self.interval_hours,
            self.constant_nodes,
            self.allow_migration,
            tuple(sorted(self.upload_fractions.items())),
        )
        _set(self, "_cache_key", key)
        return key

    def to_planner_job(self):
        """Compile the computation part to a core ``PlannerJob``."""
        from ..core.problem import PlannerJob

        return PlannerJob(
            name=self.name,
            input_gb=self.input_gb,
            map_output_ratio=self.map_output_ratio,
            reduce_output_ratio=self.reduce_output_ratio,
            throughput_scale=self.throughput_scale,
            reduce_speed_factor=self.reduce_speed_factor,
        )


@dataclass(frozen=True)
class ErrorV1:
    """A machine-readable failure with a stable :data:`ERROR_CODES` code."""

    KIND: ClassVar[str] = "error"

    code: str
    message: str = ""
    details: dict[str, str] = field(default_factory=dict)
    schema_version: int = SCHEMA_VERSION

    def __post_init__(self) -> None:
        _require(self.schema_version == SCHEMA_VERSION,
                 f"unsupported schema_version {self.schema_version!r}")
        _require(self.code in ERROR_CODES,
                 f"unknown error code {self.code!r}")
        _set(self, "details", dict(self.details))

    def to_dict(self) -> dict:
        return {
            "schema_version": self.schema_version,
            "kind": self.KIND,
            "code": self.code,
            "message": self.message,
            "details": dict(self.details),
        }

    @classmethod
    def from_dict(cls, data: Mapping) -> "ErrorV1":
        data = _envelope(_mapping(data, cls.KIND), cls.KIND)
        error = cls(
            code=_take(data, "code", _str),
            message=_take(data, "message", _str, ""),
            details=_take(data, "details", _str_map, {}),
        )
        _finish(data, cls.KIND)
        return error


@dataclass(frozen=True)
class PlanRequestV1:
    """One tenant's planning request, as it travels on the wire."""

    KIND: ClassVar[str] = "plan_request"

    job: JobSpec
    tenant: str = "default"
    priority: int = 1
    #: Turnaround SLO in seconds (see ``repro.service.requests``).
    deadline_s: float | None = None
    #: Cap on the solver's own cut-off when this request solves.
    time_budget_s: float | None = None
    #: Client-assigned correlation id, echoed in the response.
    request_id: str = ""
    schema_version: int = SCHEMA_VERSION

    def __post_init__(self) -> None:
        _require(self.schema_version == SCHEMA_VERSION,
                 f"unsupported schema_version {self.schema_version!r}")
        _require(isinstance(self.job, JobSpec), "job must be a JobSpec")
        _require(bool(self.tenant), "tenant must be non-empty")
        _set(self, "deadline_s",
             None if self.deadline_s is None else float(self.deadline_s))
        _set(self, "time_budget_s",
             None if self.time_budget_s is None else float(self.time_budget_s))
        _require(self.deadline_s is None or self.deadline_s > 0,
                 "deadline_s must be positive when given")
        _require(self.time_budget_s is None or self.time_budget_s > 0,
                 "time_budget_s must be positive when given")

    def to_dict(self) -> dict:
        return {
            "schema_version": self.schema_version,
            "kind": self.KIND,
            "job": self.job.to_dict(),
            "tenant": self.tenant,
            "priority": self.priority,
            "deadline_s": self.deadline_s,
            "time_budget_s": self.time_budget_s,
            "request_id": self.request_id,
        }

    @classmethod
    def from_dict(cls, data: Mapping) -> "PlanRequestV1":
        data = _envelope(_mapping(data, cls.KIND), cls.KIND)
        if "job" not in data:
            raise SchemaError("missing required field 'job'")
        request = cls(
            job=JobSpec.from_dict(data.pop("job")),
            tenant=_take(data, "tenant", _str, "default"),
            priority=_take(data, "priority", _int, 1),
            deadline_s=_take(data, "deadline_s", _opt_float, None),
            time_budget_s=_take(data, "time_budget_s", _opt_float, None),
            request_id=_take(data, "request_id", _str, ""),
        )
        _finish(data, cls.KIND)
        return request


#: Statuses a response may carry (the service's terminal lifecycle states).
RESPONSE_STATUSES = ("completed", "failed", "rejected", "expired")


@dataclass(frozen=True)
class PlanResponseV1:
    """The service's answer to a :class:`PlanRequestV1`."""

    KIND: ClassVar[str] = "plan_response"

    status: str
    tenant: str = "default"
    request_id: str = ""
    cached: bool = False
    fingerprint: str = ""
    predicted_cost: float | None = None
    predicted_completion_hours: float | None = None
    peak_nodes: int | None = None
    solver_status: str = ""
    queue_wait_s: float = 0.0
    solve_s: float = 0.0
    total_s: float = 0.0
    error: ErrorV1 | None = None
    schema_version: int = SCHEMA_VERSION

    def __post_init__(self) -> None:
        _require(self.schema_version == SCHEMA_VERSION,
                 f"unsupported schema_version {self.schema_version!r}")
        _require(self.status in RESPONSE_STATUSES,
                 f"unknown status {self.status!r}")
        _require(self.error is None or isinstance(self.error, ErrorV1),
                 "error must be an ErrorV1")
        for name in ("queue_wait_s", "solve_s", "total_s"):
            _set(self, name, float(getattr(self, name)))
        _set(self, "predicted_cost",
             None if self.predicted_cost is None else float(self.predicted_cost))
        _set(self, "predicted_completion_hours",
             None if self.predicted_completion_hours is None
             else float(self.predicted_completion_hours))

    @property
    def ok(self) -> bool:
        return self.status == "completed" and self.error is None

    def to_dict(self) -> dict:
        return {
            "schema_version": self.schema_version,
            "kind": self.KIND,
            "status": self.status,
            "tenant": self.tenant,
            "request_id": self.request_id,
            "cached": self.cached,
            "fingerprint": self.fingerprint,
            "predicted_cost": self.predicted_cost,
            "predicted_completion_hours": self.predicted_completion_hours,
            "peak_nodes": self.peak_nodes,
            "solver_status": self.solver_status,
            "queue_wait_s": self.queue_wait_s,
            "solve_s": self.solve_s,
            "total_s": self.total_s,
            "error": None if self.error is None else self.error.to_dict(),
        }

    @classmethod
    def from_dict(cls, data: Mapping) -> "PlanResponseV1":
        data = _envelope(_mapping(data, cls.KIND), cls.KIND)
        error = data.pop("error", None)
        response = cls(
            status=_take(data, "status", _str),
            tenant=_take(data, "tenant", _str, "default"),
            request_id=_take(data, "request_id", _str, ""),
            cached=_take(data, "cached", _bool, False),
            fingerprint=_take(data, "fingerprint", _str, ""),
            predicted_cost=_take(data, "predicted_cost", _opt_float, None),
            predicted_completion_hours=_take(
                data, "predicted_completion_hours", _opt_float, None
            ),
            peak_nodes=_take(data, "peak_nodes", _opt_int, None),
            solver_status=_take(data, "solver_status", _str, ""),
            queue_wait_s=_take(data, "queue_wait_s", _float, 0.0),
            solve_s=_take(data, "solve_s", _float, 0.0),
            total_s=_take(data, "total_s", _float, 0.0),
            error=None if error is None else ErrorV1.from_dict(error),
        )
        _finish(data, cls.KIND)
        return response


#: Kinds of deploy events a v1 stream may carry.  ``interval`` is one
#: executed plan interval; ``replan`` (additive in the fleet runtime
#: work) announces an adopted re-plan, with ``trigger`` naming the
#: taxonomy entry (see :data:`repro.core.triggers.TRIGGER_KINDS`) and
#: ``reason`` the human-readable cause.
DEPLOY_EVENT_KINDS = ("interval", "replan")


@dataclass(frozen=True)
class DeployEventV1:
    """One event of a streaming deployment.

    The wire form of :class:`~repro.core.executor.IntervalOutcome` — what
    a front-end needs to render live progress (Fig. 12's series are
    exactly these events, accumulated).  ``event="replan"`` marks an
    adaptation round instead of an executed interval: the numeric fields
    are zero, ``trigger``/``reason`` say why, and ``start_hour`` is when
    the new plan was adopted.  All three fields default to the historical
    meaning, so pre-fleet v1 payloads decode unchanged.

    Ordering: events arrive in causal stream order.  ``index`` is not a
    stream position — interval indices are plan-local and restart with
    every adopted re-plan (exactly as the controller's plans do).
    """

    KIND: ClassVar[str] = "deploy_event"

    index: int
    start_hour: float
    duration_hours: float
    nodes: dict[str, int] = field(default_factory=dict)
    uploaded_gb: float = 0.0
    map_gb: float = 0.0
    reduce_gb: float = 0.0
    downloaded_gb: float = 0.0
    cost: float = 0.0
    outbid_services: tuple[str, ...] = ()
    spot_data_lost_gb: float = 0.0
    #: Services whose workers died/timed out (real execution backends
    #: only; additive — absent on the wire when empty, so sim-backend
    #: interval payloads are unchanged).
    failed_services: tuple[str, ...] = ()
    tenant: str = "default"
    session_id: int = 0
    #: One of :data:`DEPLOY_EVENT_KINDS` (additive; default = historical).
    event: str = "interval"
    #: Replan-trigger taxonomy entry (``replan`` events only).
    trigger: str = ""
    #: Human-readable cause of a re-plan (``replan`` events only).
    reason: str = ""
    schema_version: int = SCHEMA_VERSION

    def __post_init__(self) -> None:
        _require(self.schema_version == SCHEMA_VERSION,
                 f"unsupported schema_version {self.schema_version!r}")
        _require(self.event in DEPLOY_EVENT_KINDS,
                 f"unknown deploy event kind {self.event!r}")
        _require(self.event != "interval" or not (self.trigger or self.reason),
                 "interval events carry no trigger/reason")
        for name in ("start_hour", "duration_hours", "uploaded_gb", "map_gb",
                     "reduce_gb", "downloaded_gb", "cost", "spot_data_lost_gb"):
            _set(self, name, float(getattr(self, name)))
        _set(self, "nodes", {str(k): int(v) for k, v in dict(self.nodes).items()})
        _set(self, "outbid_services", tuple(self.outbid_services))
        _set(self, "failed_services", tuple(self.failed_services))

    def to_dict(self) -> dict:
        payload = {
            "schema_version": self.schema_version,
            "kind": self.KIND,
            "index": self.index,
            "start_hour": self.start_hour,
            "duration_hours": self.duration_hours,
            "nodes": dict(self.nodes),
            "uploaded_gb": self.uploaded_gb,
            "map_gb": self.map_gb,
            "reduce_gb": self.reduce_gb,
            "downloaded_gb": self.downloaded_gb,
            "cost": self.cost,
            "outbid_services": list(self.outbid_services),
            "spot_data_lost_gb": self.spot_data_lost_gb,
            "tenant": self.tenant,
            "session_id": self.session_id,
        }
        if self.failed_services:
            payload["failed_services"] = list(self.failed_services)
        if self.event != "interval":
            # The additive fields appear only on the new event kinds, so
            # interval payloads stay byte-identical to what pre-fleet v1
            # readers (which reject unknown fields) already accept.
            payload["event"] = self.event
            payload["trigger"] = self.trigger
            payload["reason"] = self.reason
        return payload

    @classmethod
    def from_dict(cls, data: Mapping) -> "DeployEventV1":
        data = _envelope(_mapping(data, cls.KIND), cls.KIND)
        event = cls(
            index=_take(data, "index", _int),
            start_hour=_take(data, "start_hour", _float),
            duration_hours=_take(data, "duration_hours", _float),
            nodes=_take(data, "nodes", _int_map, {}),
            uploaded_gb=_take(data, "uploaded_gb", _float, 0.0),
            map_gb=_take(data, "map_gb", _float, 0.0),
            reduce_gb=_take(data, "reduce_gb", _float, 0.0),
            downloaded_gb=_take(data, "downloaded_gb", _float, 0.0),
            cost=_take(data, "cost", _float, 0.0),
            outbid_services=_take(data, "outbid_services", _str_tuple, ()),
            spot_data_lost_gb=_take(data, "spot_data_lost_gb", _float, 0.0),
            failed_services=_take(data, "failed_services", _str_tuple, ()),
            tenant=_take(data, "tenant", _str, "default"),
            session_id=_take(data, "session_id", _int, 0),
            event=_take(data, "event", _str, "interval"),
            trigger=_take(data, "trigger", _str, ""),
            reason=_take(data, "reason", _str, ""),
        )
        _finish(data, cls.KIND)
        return event

    @classmethod
    def from_outcome(
        cls, outcome, *, tenant: str = "default", session_id: int = 0
    ) -> "DeployEventV1":
        """Wrap a core :class:`IntervalOutcome` for the wire."""
        return cls(
            index=outcome.index,
            start_hour=outcome.start_hour,
            duration_hours=outcome.duration_hours,
            nodes=dict(outcome.nodes),
            uploaded_gb=outcome.uploaded_gb,
            map_gb=outcome.map_gb,
            reduce_gb=outcome.reduce_gb,
            downloaded_gb=outcome.downloaded_gb,
            cost=outcome.cost,
            outbid_services=tuple(outcome.outbid_services),
            spot_data_lost_gb=outcome.spot_data_lost_gb,
            failed_services=tuple(
                getattr(outcome, "failed_services", ()) or ()
            ),
            tenant=tenant,
            session_id=session_id,
        )

    @classmethod
    def from_replan(
        cls,
        record,
        *,
        tenant: str = "default",
        session_id: int = 0,
        index: int = 0,
    ) -> "DeployEventV1":
        """Wrap a core :class:`~repro.core.controller.ReplanRecord`.

        ``index`` is the count of intervals executed before the re-plan
        was adopted.  Note it is *not* comparable to interval events'
        ``index``, which is plan-local and restarts with every adopted
        plan; stream position (arrival order) is the ordering contract.
        """
        return cls(
            index=index,
            start_hour=record.hour,
            duration_hours=0.0,
            tenant=tenant,
            session_id=session_id,
            event="replan",
            trigger=record.kind,
            reason=record.reason,
        )


@dataclass(frozen=True)
class HelloV1:
    """The service's greeting: build version + spoken schema version."""

    KIND: ClassVar[str] = "hello"

    service: str = "conductor-repro"
    version: str = ""
    schema_version: int = SCHEMA_VERSION

    def __post_init__(self) -> None:
        _require(self.schema_version == SCHEMA_VERSION,
                 f"unsupported schema_version {self.schema_version!r}")

    def to_dict(self) -> dict:
        return {
            "schema_version": self.schema_version,
            "kind": self.KIND,
            "service": self.service,
            "version": self.version,
        }

    @classmethod
    def from_dict(cls, data: Mapping) -> "HelloV1":
        data = _envelope(_mapping(data, cls.KIND), cls.KIND)
        hello = cls(
            service=_take(data, "service", _str, "conductor-repro"),
            version=_take(data, "version", _str, ""),
        )
        _finish(data, cls.KIND)
        return hello


# ---------------------------------------------------------------------------
# dispatch

_KINDS = {
    cls.KIND: cls
    for cls in (
        GoalSpec,
        NetworkSpec,
        JobSpec,
        ErrorV1,
        PlanRequestV1,
        PlanResponseV1,
        DeployEventV1,
        HelloV1,
    )
}


def decode(payload):
    """Decode a JSON string/object into the schema type it declares.

    The top-level payload must carry an explicit ``schema_version`` and
    ``kind``; unknown versions and kinds raise :class:`SchemaError` so a
    server can answer with a structured ``bad_schema`` error instead of a
    traceback.
    """
    if isinstance(payload, (str, bytes, bytearray)):
        try:
            payload = json.loads(payload)
        except json.JSONDecodeError as exc:
            raise SchemaError(f"payload is not valid JSON: {exc}") from None
    data = _mapping(payload, "payload")
    if "schema_version" not in data:
        raise SchemaError("missing schema_version")
    version = data["schema_version"]
    if version != SCHEMA_VERSION:
        raise SchemaError(
            f"unsupported schema_version {version!r} "
            f"(this build speaks version {SCHEMA_VERSION})"
        )
    kind = data.get("kind")
    if kind not in _KINDS:
        raise SchemaError(
            f"unknown kind {kind!r}; expected one of {sorted(_KINDS)}"
        )
    return _KINDS[kind].from_dict(data)


def encode(message) -> str:
    """One JSON line for any schema object — the wire format."""
    return json.dumps(message.to_dict(), sort_keys=True)


__all__ = [
    "CATALOGS",
    "DEPLOY_EVENT_KINDS",
    "DeployEventV1",
    "ERROR_CODES",
    "ErrorV1",
    "GoalSpec",
    "HelloV1",
    "JobSpec",
    "NetworkSpec",
    "PlanRequestV1",
    "PlanResponseV1",
    "RESPONSE_STATUSES",
    "SCHEMA_VERSION",
    "SchemaError",
    "decode",
    "encode",
]
