"""The one ``JobSpec`` -> internal-representation compiler.

Every front-end (CLI, planning service, library callers, the workload
generator) declares work as a :class:`~repro.api.schemas.JobSpec`; this
module is the single place that turns the declaration into the planner's
:class:`~repro.core.problem.PlanningProblem` (or, for the Section-6
discrete simulations, a :class:`~repro.core.deployments.DeploymentScenario`).
"""

from __future__ import annotations

import math

from ..cloud.catalog import hybrid_cloud, local_cluster, public_cloud
from ..cloud.descriptions import load_services
from ..core.problem import PlanningProblem
from ..core.spot_sim import spot_services
from .schemas import JobSpec

#: Flat spot-price estimate used when a ``spot``-catalog spec names none
#: (the workload generator's historical default).
DEFAULT_SPOT_PRICE = 0.2


def resolve_services(spec: JobSpec) -> list:
    """The service catalog a spec plans over."""
    if spec.catalog == "public":
        return list(public_cloud())
    if spec.catalog == "hybrid":
        return list(hybrid_cloud(local_nodes=spec.local_nodes))
    if spec.catalog == "spot":
        return list(spot_services())
    # Validated by JobSpec.__post_init__: catalog == "xml" has a path.
    return list(load_services(spec.services_xml))


def spot_estimates_for(spec: JobSpec, services) -> dict[str, list[float]]:
    """Per-service flat price series ``E[b(i,t)]`` over the horizon."""
    spot_names = [s.name for s in services if s.is_spot]
    if not spot_names:
        return {}
    price = DEFAULT_SPOT_PRICE if spec.spot_price is None else spec.spot_price
    deadline = float(spec.goal.deadline_hours or 48.0)
    horizon = max(1, math.ceil(deadline / spec.interval_hours - 1e-9))
    return {name: [price] * horizon for name in spot_names}


def compile_spec(spec: JobSpec) -> PlanningProblem:
    """Compile a declared job into the planner's input vocabulary."""
    if not isinstance(spec, JobSpec):
        raise TypeError(f"expected a JobSpec, got {type(spec).__name__}")
    services = resolve_services(spec)
    return PlanningProblem(
        job=spec.to_planner_job(),
        services=services,
        network=spec.network.to_conditions(),
        goal=spec.goal.to_goal(),
        interval_hours=spec.interval_hours,
        spot_price_estimates=spot_estimates_for(spec, services),
        upload_fractions=dict(spec.upload_fractions),
        allow_migration=spec.allow_migration,
        constant_nodes=spec.constant_nodes,
    )


def scenario_for(spec: JobSpec):
    """Compile a spec into the Section-6 discrete-deployment scenario.

    Used by ``repro deploy``: the scenario drives the MapReduce substrate
    simulation (Conductor vs. the Hadoop baselines), so only the fields
    that substrate models are carried over.
    """
    from ..core.deployments import DeploymentScenario

    deadline = float(spec.goal.deadline_hours or 0.0)
    if deadline <= 0:
        raise ValueError("deploy scenarios need a goal with a deadline")
    return DeploymentScenario(
        input_gb=spec.input_gb,
        map_output_ratio=spec.map_output_ratio,
        reduce_output_ratio=spec.reduce_output_ratio,
        uplink_mbit_s=spec.network.uplink_mbit_s,
        deadline_hours=deadline,
        local=local_cluster(spec.local_nodes) if spec.local_nodes else None,
        local_nodes=spec.local_nodes,
        constant_node_plan=spec.constant_nodes,
    )


__all__ = [
    "DEFAULT_SPOT_PRICE",
    "compile_spec",
    "resolve_services",
    "scenario_for",
    "spot_estimates_for",
]
