"""Front-end adapters: compile existing entry points into ``JobSpec``.

The Pig compiler, the MapReduce engine and the service's scenario
shorthand all predate the public API; these adapters turn each of them
into the one declarative vocabulary so that *every* way into the system
funnels through :func:`repro.api.compiler.compile_spec`.
"""

from __future__ import annotations

from functools import lru_cache
from typing import Mapping

from ..units import MB_PER_GB
from .schemas import GoalSpec, JobSpec, NetworkSpec, SchemaError

#: Scenario names the planning-service shorthand understands.
SCENARIOS = ("quickstart", "hybrid", "spot", "pig")

#: Clickstream rollup used by the ``pig`` scenario (examples/pig_pipeline).
PIG_SCRIPT = (
    "clicks = LOAD 'clicks' AS (url:chararray, site:chararray, ms:int);\n"
    "ok     = FILTER clicks BY ms >= 0;\n"
    "bysite = GROUP ok BY site;\n"
    "rollup = FOREACH bysite GENERATE group, COUNT(ok) AS hits;\n"
    "STORE rollup INTO 'hot-sites';\n"
)


def _spec_from_planner_job(
    job,
    *,
    goal: GoalSpec,
    network: NetworkSpec,
    catalog: str = "public",
    local_nodes: int = 0,
    spot_price: float | None = None,
) -> JobSpec:
    return JobSpec(
        name=job.name,
        input_gb=job.input_gb,
        map_output_ratio=job.map_output_ratio,
        reduce_output_ratio=job.reduce_output_ratio,
        throughput_scale=job.throughput_scale,
        reduce_speed_factor=job.reduce_speed_factor,
        goal=goal,
        network=network,
        catalog=catalog,
        local_nodes=local_nodes,
        spot_price=spot_price,
    )


def from_pig(
    script: str,
    *,
    input_gb: float | Mapping[str, float] = 16.0,
    goal: GoalSpec | None = None,
    network: NetworkSpec | None = None,
    catalog: str = "public",
    local_nodes: int = 0,
) -> tuple[JobSpec, ...]:
    """Compile a Pig-Latin script into one ``JobSpec`` per stage.

    ``input_gb`` is either the total input size (split evenly across the
    script's LOADs) or an explicit ``path -> GB`` mapping.  Stage specs
    share the goal/network/catalog; the pipeline planner decides how the
    deadline is apportioned between them.
    """
    from ..pig import compile_script

    pipeline = compile_script(script)
    loads = pipeline.plan.loads
    if isinstance(input_gb, Mapping):
        per_load = dict(input_gb)
    else:
        per_load = {load.path: float(input_gb) / len(loads) for load in loads}
    goal = goal or GoalSpec()
    network = network or NetworkSpec()
    return tuple(
        _spec_from_planner_job(
            job, goal=goal, network=network,
            catalog=catalog, local_nodes=local_nodes,
        )
        for job in pipeline.to_planner_jobs(per_load)
    )


def from_mapreduce_job(
    job,
    *,
    goal: GoalSpec | None = None,
    network: NetworkSpec | None = None,
    catalog: str = "public",
    local_nodes: int = 0,
    throughput_scale: float = 1.0,
) -> JobSpec:
    """Lift a task-level :class:`~repro.mapreduce.job.MapReduceJob` to the
    planner's aggregate view (GB in, output ratios, relative speeds)."""
    return JobSpec(
        name=job.name,
        input_gb=job.input_mb / MB_PER_GB,
        map_output_ratio=job.map_output_ratio,
        reduce_output_ratio=job.reduce_output_ratio,
        throughput_scale=throughput_scale,
        reduce_speed_factor=job.reduce_speed_factor,
        goal=goal or GoalSpec(),
        network=network or NetworkSpec(),
        catalog=catalog,
        local_nodes=local_nodes,
    )


@lru_cache(maxsize=64)
def _pig_stage_specs(
    input_gb: float, deadline_hours: float, uplink_mbit: float
) -> tuple[JobSpec, ...]:
    """Stage specs for the canned Pig pipeline (compiled once per shape)."""
    return from_pig(
        PIG_SCRIPT,
        input_gb=input_gb,
        goal=GoalSpec(deadline_hours=deadline_hours),
        network=NetworkSpec(uplink_mbit_s=uplink_mbit),
    )


def from_workload(
    scenario: str,
    *,
    input_gb: float = 16.0,
    deadline_hours: float = 6.0,
    uplink_mbit: float = 16.0,
    local_nodes: int = 5,
    spot_price: float = 0.2,
    stage: int = 0,
) -> JobSpec:
    """The ``JobSpec`` one scenario-shorthand request stands for.

    This is the adapter behind the synthetic workload generator and any
    client still thinking in scenario names:

    - ``quickstart`` — the paper's public-cloud k-means problem;
    - ``hybrid``     — public cloud plus ``local_nodes`` owned machines;
    - ``spot``       — spot compute with a flat estimated price;
    - ``pig``        — stage ``stage`` of the canned Pig pipeline.
    """
    goal = GoalSpec(deadline_hours=deadline_hours)
    network = NetworkSpec(uplink_mbit_s=uplink_mbit)
    if scenario == "quickstart":
        return JobSpec(name="kmeans", input_gb=input_gb,
                       goal=goal, network=network)
    if scenario == "hybrid":
        return JobSpec(name="kmeans", input_gb=input_gb, goal=goal,
                       network=network, catalog="hybrid",
                       local_nodes=local_nodes)
    if scenario == "spot":
        return JobSpec(name="kmeans", input_gb=input_gb, goal=goal,
                       network=network, catalog="spot", spot_price=spot_price)
    if scenario == "pig":
        specs = _pig_stage_specs(
            float(input_gb), float(deadline_hours), float(uplink_mbit)
        )
        return specs[stage % len(specs)]
    raise SchemaError(
        f"unknown scenario {scenario!r}; pick one of {SCENARIOS}"
    )


__all__ = [
    "PIG_SCRIPT",
    "SCENARIOS",
    "from_mapreduce_job",
    "from_pig",
    "from_workload",
]
