"""Mapping internal failures to stable, machine-readable ``ErrorV1``.

The planner raises :class:`~repro.core.model_builder.PlanningError`, the
solver pool times out, the broker rejects — clients should never have to
parse those strings.  The service classifies each failure into one of
:data:`~repro.api.schemas.ERROR_CODES`
(:func:`repro.service.requests.error_code_for_exception`); this module
wraps the classification into wire-format payloads.
"""

from __future__ import annotations

from .schemas import ERROR_CODES, ErrorV1


def error_v1_from_exception(exc: BaseException) -> ErrorV1:
    """Wrap any exception as a structured error with a stable code."""
    from ..service.requests import error_code_for_exception

    from .schemas import SchemaError

    if isinstance(exc, SchemaError):
        code = "bad_schema"
    else:
        code = error_code_for_exception(exc)
    return ErrorV1(code=code, message=str(exc) or type(exc).__name__)


def error_v1_for_result(result) -> ErrorV1 | None:
    """The structured error a failed :class:`PlanResult` stands for."""
    if result.ok or not (result.error or result.error_code):
        return None
    code = result.error_code if result.error_code in ERROR_CODES else "internal"
    return ErrorV1(code=code, message=result.error)


__all__ = ["error_v1_for_result", "error_v1_from_exception"]
