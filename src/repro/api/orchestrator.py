"""The ``Orchestrator`` facade: one entry point for all work.

Library users, the CLI and the wire protocol all drive the system
through this class:

- :meth:`Orchestrator.plan` — compile a :class:`JobSpec` and solve it
  synchronously (the library quickstart path);
- :meth:`Orchestrator.submit` — route a request through the multi-tenant
  :class:`~repro.service.service.PlanningService` (queues, plan cache,
  solver pool) and get an async handle;
- :meth:`Orchestrator.deploy` — run the deploy/monitor/adapt controller
  loop, streaming each interval and re-plan as a :class:`DeployEventV1`;
- :meth:`Orchestrator.fleet` — run many deployments over one shared
  :class:`~repro.fleet.substrate.Substrate` with event-driven
  re-planning (the :mod:`repro.fleet` runtime).

Failures surface as :class:`OrchestratorError` carrying a structured
:class:`~repro.api.schemas.ErrorV1`, never a raw solver traceback.
"""

from __future__ import annotations

import threading

from ..core.controller import ReplanRecord
from ..core.model_builder import PlanningError
from ..core.plan import ExecutionPlan
from ..core.planner import Planner
from ..core.problem import PlanningProblem
from ..service.broker import AdmissionError
from ..service.requests import PlanRequest, PlanResult, SubmittedRequest
from ..service.service import PlanningService, ServiceConfig
from ..service.session import SessionManager
from .compiler import compile_spec, resolve_services
from .errors import error_v1_for_result, error_v1_from_exception
from .schemas import (
    DeployEventV1,
    ErrorV1,
    JobSpec,
    PlanRequestV1,
    PlanResponseV1,
    SchemaError,
)


class OrchestratorError(RuntimeError):
    """A request failed; :attr:`error` is the wire-format explanation."""

    def __init__(self, error: ErrorV1) -> None:
        super().__init__(f"{error.code}: {error.message}")
        self.error = error


class Orchestrator:
    """Wraps planner, planning service and deploy sessions behind specs.

    Parameters
    ----------
    planner:
        The synchronous :class:`Planner` behind :meth:`plan` and the
        controller loops (defaults to the paper's solver configuration).
    service:
        An existing :class:`PlanningService` to submit through.  When
        omitted, one is created lazily from ``service_config`` on the
        first :meth:`submit` and stopped by :meth:`close` / ``with``.
    service_config:
        Configuration for the lazily-created service.
    sessions:
        The :class:`SessionManager` tracking :meth:`deploy` runs.
    """

    def __init__(
        self,
        *,
        planner: Planner | None = None,
        service: PlanningService | None = None,
        service_config: ServiceConfig | None = None,
        sessions: SessionManager | None = None,
    ) -> None:
        self.planner = planner or Planner()
        self.sessions = sessions or SessionManager()
        self._service = service
        self._service_config = service_config
        self._owns_service = service is None
        self._service_lock = threading.Lock()
        #: spec cache-key -> compiled PlanningProblem.  Compilation is
        #: deterministic for value-object specs, so repeated submits of
        #: one spec (the warm-cache fast path) skip catalog resolution
        #: and problem validation entirely.
        self._compiled: dict[tuple, PlanningProblem] = {}
        self._compiled_lock = threading.Lock()

    # -- lifecycle --------------------------------------------------------

    @property
    def service(self) -> PlanningService:
        """The planning service, created lazily when first needed."""
        with self._service_lock:
            if self._service is None:
                self._service = PlanningService(self._service_config)
            return self._service

    def close(self) -> None:
        """Stop the service if this orchestrator created it."""
        with self._service_lock:
            service, owned = self._service, self._owns_service
        if service is not None and owned:
            service.stop()

    def __enter__(self) -> "Orchestrator":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # -- compile ----------------------------------------------------------

    def compile(self, spec: JobSpec) -> PlanningProblem:
        """The internal planning problem a spec declares.

        Raises :class:`OrchestratorError` (``bad_schema`` for payloads
        that do not name a valid spec, ``bad_request`` for specs the
        compiler rejects, e.g. a missing catalog file).  Compiled
        problems are memoized per spec — except for ``xml`` catalogs,
        whose backing file may change between calls.
        """
        key = None
        if isinstance(spec, JobSpec) and spec.catalog != "xml":
            key = spec.cache_key()
            problem = self._compiled.get(key)
            if problem is not None:
                return problem
        try:
            problem = compile_spec(spec)
        except SchemaError as exc:
            raise OrchestratorError(
                ErrorV1(code="bad_schema", message=str(exc))
            ) from exc
        except (TypeError, ValueError, OSError) as exc:
            raise OrchestratorError(
                ErrorV1(code="bad_request", message=str(exc))
            ) from exc
        if key is not None:
            with self._compiled_lock:
                while len(self._compiled) >= 512:
                    self._compiled.pop(next(iter(self._compiled)))
                self._compiled[key] = problem
        return problem

    # -- synchronous planning ---------------------------------------------

    def plan(self, spec: JobSpec) -> ExecutionPlan:
        """Compile and solve one spec on the calling thread."""
        problem = self.compile(spec)
        try:
            return self.planner.plan(problem)
        except PlanningError as exc:
            raise OrchestratorError(error_v1_from_exception(exc)) from exc

    # -- service submission -----------------------------------------------

    def submit(
        self,
        request: PlanRequestV1 | JobSpec,
        *,
        tenant: str = "default",
        priority: int = 1,
        deadline_s: float | None = None,
        time_budget_s: float | None = None,
        block: bool = False,
    ) -> SubmittedRequest:
        """Submit through the planning service; returns the async handle.

        ``request`` is either a full wire request or a bare spec (the
        keyword arguments then supply the scheduling metadata).  Raises
        :class:`OrchestratorError` with code ``rejected`` when admission
        control refuses the request.
        """
        if isinstance(request, JobSpec):
            # Fast path: a bare spec skips the wire-envelope wrapper (its
            # scheduling metadata arrives as keyword arguments instead).
            spec = request
        elif isinstance(request, PlanRequestV1):
            spec = request.job
            tenant = request.tenant
            priority = request.priority
            deadline_s = request.deadline_s
            time_budget_s = request.time_budget_s
        else:
            raise TypeError(
                f"expected a PlanRequestV1 or JobSpec, "
                f"got {type(request).__name__}"
            )
        problem = self.compile(spec)
        try:
            ticket = self.service.submit_request(
                PlanRequest(
                    tenant=tenant,
                    problem=problem,
                    priority=priority,
                    deadline_s=deadline_s,
                    time_budget_s=time_budget_s,
                ),
                block=block,
            )
        except AdmissionError as exc:
            raise OrchestratorError(
                ErrorV1(code="rejected", message=str(exc))
            ) from exc
        return ticket

    def respond(self, result: PlanResult, request_id: str = "") -> PlanResponseV1:
        """Wrap a service result as the versioned wire response."""
        plan = result.plan
        return PlanResponseV1(
            status=result.status.value,
            tenant=result.tenant,
            request_id=request_id,
            cached=result.cached,
            fingerprint=result.fingerprint,
            predicted_cost=None if plan is None else plan.predicted_cost,
            predicted_completion_hours=(
                None if plan is None else plan.predicted_completion_hours
            ),
            peak_nodes=None if plan is None else plan.peak_nodes(),
            solver_status="" if plan is None else plan.solver_status,
            queue_wait_s=result.queue_wait_s,
            solve_s=result.solve_s,
            total_s=result.total_s,
            error=error_v1_for_result(result),
        )

    def plan_v1(
        self, request: PlanRequestV1, timeout: float | None = None
    ) -> PlanResponseV1:
        """One full request/response round-trip; never raises.

        The synchronous convenience over :meth:`submit`: every failure
        mode — admission, compile, solve, turnaround timeout — comes back
        as a structured response, exactly as it would on the wire.
        """
        try:
            ticket = self.submit(request)
        except OrchestratorError as exc:
            return PlanResponseV1(
                status="rejected",
                tenant=request.tenant,
                request_id=request.request_id,
                error=exc.error,
            )
        try:
            result = ticket.result(timeout=timeout)
        except TimeoutError as exc:
            return PlanResponseV1(
                status="failed",
                tenant=request.tenant,
                request_id=request.request_id,
                error=ErrorV1(code="timeout", message=str(exc)),
            )
        return self.respond(result, request_id=request.request_id)

    # -- deployment -------------------------------------------------------

    def _controller_inputs(self, spec: JobSpec):
        """Unpack a spec into ``JobController`` inputs (deploy + fleet).

        Raises :class:`OrchestratorError` for non-specs and for specs
        the catalog/goal/network compilation rejects (``bad_request``).
        """
        if not isinstance(spec, JobSpec):
            raise TypeError(f"expected a JobSpec, got {type(spec).__name__}")
        try:
            services = resolve_services(spec)
            goal = spec.goal.to_goal()
            network = spec.network.to_conditions()
        except (ValueError, OSError) as exc:
            raise OrchestratorError(
                ErrorV1(code="bad_request", message=str(exc))
            ) from exc
        problem_kwargs = {
            "interval_hours": spec.interval_hours,
            "constant_nodes": spec.constant_nodes,
            "allow_migration": spec.allow_migration,
        }
        if spec.upload_fractions:
            problem_kwargs["upload_fractions"] = dict(spec.upload_fractions)
        return services, goal, network, problem_kwargs

    def deploy(
        self,
        spec: JobSpec,
        *,
        tenant: str = "default",
        actual=None,
        on_event=None,
        controller_config=None,
        predictor=None,
        trace=None,
        trace_offset_hours: float = 0.0,
        event_timeout: float | None = None,
        tracer=None,
        backend: str = "sim",
        backend_options: dict | None = None,
    ):
        """Run the deploy/monitor/adapt loop for one spec to completion.

        ``backend`` selects the execution substrate (see
        :data:`repro.exec.BACKENDS`): the deterministic fluid simulator
        (``"sim"``, the default), the local process-pool MapReduce
        runner (``"pool"``), or the stub container backend (``"stub"``).
        ``backend_options`` tunes the real backends (task sizing,
        timeouts, worker count — :data:`repro.exec.DEFAULT_OPTIONS`).

        Streams each executed interval — and each adopted re-plan, as an
        ``event="replan"`` record carrying its trigger and reason — to
        ``on_event`` as a :class:`DeployEventV1`, and returns the full
        :class:`~repro.core.controller.ControllerResult`.  ``actual``
        injects real-world conditions (the Fig. 12 deviation experiments);
        ``predictor``/``trace`` are required for ``spot``-catalog specs.

        ``tracer`` (a :class:`~repro.obs.trace.RunTracer`) captures the
        run as a durable event-sourced trace.  If ``begin`` has not been
        called yet, the orchestrator opens it here — on the calling
        thread, before the session thread exists — with the canonical
        deploy scenario (``tenant``, ``spec.to_dict()``, plus the
        serializable conditions/config knobs), so identical deployments
        trace under identical run ids and replay can rebuild the run.
        A spot-catalog deploy (price ``trace``/``spot_traces``) is not
        replayable from a deploy scenario — trace those under the fleet
        runtime, whose scenario names its synthetic trace — so auto-begin
        rejects it; a caller that begins the tracer itself takes over
        that responsibility.
        """
        services, goal, network, problem_kwargs = self._controller_inputs(spec)
        if tracer is not None and not tracer.run_id:
            if trace is not None or (actual is not None and actual.spot_traces):
                raise OrchestratorError(ErrorV1(
                    code="bad_request",
                    message="a spot-trace deploy cannot be traced "
                    "replayably; run it under the fleet runtime",
                ))
            from dataclasses import asdict

            from .. import __version__

            scenario = {"tenant": tenant, "spec": spec.to_dict()}
            if actual is not None:
                scenario["actual"] = {
                    "throughput_gb_per_hour": dict(
                        actual.throughput_gb_per_hour
                    ),
                    "uplink_factor": actual.uplink_factor,
                    "downlink_factor": actual.downlink_factor,
                    "spot_storage_volatile": actual.spot_storage_volatile,
                }
            if controller_config is not None:
                scenario["controller_config"] = asdict(controller_config)
            if trace_offset_hours:
                scenario["trace_offset_hours"] = trace_offset_hours
            if backend != "sim":
                # Recorded so replay refuses to --verify a trace whose
                # run was nondeterministic; sim scenarios (and their run
                # ids) are unchanged.
                scenario["backend"] = backend
            tracer.begin("deploy", scenario, version=__version__)
        try:
            session = self.sessions.start(
                tenant,
                spec.to_planner_job(),
                services,
                goal,
                network=network,
                actual=actual,
                planner=self.planner,
                config=controller_config,
                predictor=predictor,
                trace=trace,
                trace_offset_hours=trace_offset_hours,
                problem_kwargs=problem_kwargs,
                tracer=tracer,
                backend=backend,
                backend_options=backend_options,
            )
        except ValueError as exc:
            raise OrchestratorError(
                ErrorV1(code="bad_request", message=str(exc))
            ) from exc
        intervals = 0
        try:
            for event in session.events(
                timeout=event_timeout, include_replans=True
            ):
                if isinstance(event, ReplanRecord):
                    wire = DeployEventV1.from_replan(
                        event,
                        tenant=tenant,
                        session_id=session.session_id,
                        index=intervals,
                    )
                else:
                    intervals += 1
                    wire = DeployEventV1.from_outcome(
                        event,
                        tenant=tenant,
                        session_id=session.session_id,
                    )
                if on_event is not None:
                    on_event(wire)
        except PlanningError as exc:
            raise OrchestratorError(error_v1_from_exception(exc)) from exc
        return session.wait(timeout=30.0)

    # -- fleet ------------------------------------------------------------

    def fleet(
        self,
        specs,
        substrate,
        *,
        fleet_config=None,
        controller_config=None,
        predictor=None,
        on_event=None,
        actual_rates=None,
        tracer=None,
    ):
        """Run many deployments over one shared substrate (:mod:`repro.fleet`).

        ``specs`` is a sequence of :class:`JobSpec` or ``(tenant, spec)``
        pairs; each is resolved through the one spec compiler and added
        to a :class:`~repro.fleet.scheduler.FleetScheduler` driving the
        given :class:`~repro.fleet.substrate.Substrate`.  Every executed
        interval and adopted re-plan streams to ``on_event`` as a
        :class:`DeployEventV1` (the ``repro fleet`` CLI's line format);
        the return value is the
        :class:`~repro.fleet.scheduler.FleetResult`.

        ``predictor`` applies to every spot-catalog deployment;
        ``actual_rates`` optionally maps tenant -> ground-truth per-node
        rates for deviation experiments.  ``tracer`` must already have
        ``begin`` called — only the caller knows the fleet's scenario
        dict (see :func:`repro.obs.replay.fleet_inputs`); the scheduler
        then narrates lifecycle, substrate, interval/replan, span and
        ``run_end`` records into it.
        """
        # Imported lazily: repro.fleet sits *above* the api layer and
        # importing it at module scope would be circular.
        from ..fleet import FleetScheduler

        scheduler = FleetScheduler(
            substrate, fleet_config, planner=self.planner
        )
        for position, entry in enumerate(specs, 1):
            tenant, spec = (
                entry if isinstance(entry, tuple) else (f"tenant-{position}", entry)
            )
            services, goal, network, problem_kwargs = self._controller_inputs(
                spec
            )
            try:
                scheduler.add(
                    tenant,
                    spec.to_planner_job(),
                    services,
                    goal,
                    network=network,
                    predictor=predictor,
                    controller_config=controller_config,
                    actual_rates=(actual_rates or {}).get(tenant),
                    problem_kwargs=problem_kwargs,
                )
            except ValueError as exc:
                raise OrchestratorError(
                    ErrorV1(code="bad_request", message=str(exc))
                ) from exc
        try:
            return scheduler.run(on_event=on_event, tracer=tracer)
        except PlanningError as exc:
            raise OrchestratorError(error_v1_from_exception(exc)) from exc


__all__ = ["Orchestrator", "OrchestratorError"]
