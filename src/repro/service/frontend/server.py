"""The asyncio socket frontend of the planning service.

One event loop, many connections, N broker shards.  The wire dialect is
*exactly* the one ``repro serve`` speaks over stdin/stdout — a versioned
``hello`` line first, then ``plan_request`` JSON lines in and
``plan_response`` / ``error`` lines out — so any client of the stream
protocol works unchanged over TCP.  Responses are per-connection and
arrive in completion order (the ``request_id`` correlates them);
per-tenant processing order is the service's strict per-tenant FIFO.

Flow control, all bounded:

- **admission** — each broker shard's queue bounds apply; a refused
  request is answered immediately with a structured ``rejected``
  response (never a dropped line);
- **deadline shedding** — requests whose turnaround deadline the
  shard's rolling queue-wait estimate cannot meet are shed at admission
  (also ``rejected``) instead of expiring uselessly in queue;
- **slow clients** — responses leave through a bounded per-connection
  send queue drained by a writer task under TCP backpressure
  (``drain()``); a client that stops reading until its queue fills is
  disconnected rather than buffered without bound;
- **disconnects** — a closed connection cooperatively cancels its
  still-queued requests, so abandoned work never reaches the solver.

Completions happen on service worker threads; they hop onto the event
loop via ``call_soon_threadsafe`` and are encoded/enqueued there.
"""

from __future__ import annotations

import asyncio
import contextlib
import signal
import sys
from dataclasses import dataclass

from ...api import (
    ErrorV1,
    HelloV1,
    OrchestratorError,
    PlanRequestV1,
    PlanResponseV1,
    SchemaError,
    decode,
    encode,
)
from ...api.orchestrator import Orchestrator
from ...obs.registry import MetricsRegistry
from ..metrics import ServiceMetrics
from ..service import ServiceConfig
from .sharding import ShardedPlanningService

__all__ = ["FrontendConfig", "FrontendServer", "run_server"]


@dataclass
class FrontendConfig:
    """Socket-level knobs of the frontend (service knobs live in
    :class:`~repro.service.service.ServiceConfig`)."""

    host: str = "127.0.0.1"
    #: 0 lets the OS pick (the bound port is in :attr:`FrontendServer.address`).
    port: int = 0
    #: Broker shards (each a full PlanningService; see ``sharding``).
    shards: int = 4
    #: Reader line limit; an overlong line is a ``bad_schema`` error.
    max_line_bytes: int = 1 << 20
    #: Bounded per-connection send queue (responses); a client that lets
    #: it fill is disconnected as a slow consumer.
    send_queue_limit: int = 1024
    #: Listen backlog.  Connection storms (the loadgen opens thousands
    #: of sockets at once) overflow the kernel's default SYN queue,
    #: leaving clients stuck in multi-second TCP retransmit.
    backlog: int = 4096


class FrontendServer:
    """Serves the JSON-lines planning dialect over TCP.

    Owns nothing it is not given: the caller supplies the service
    (usually a :class:`ShardedPlanningService`) and remains responsible
    for stopping it; :func:`run_server` is the assembled entry point the
    CLI uses.
    """

    def __init__(
        self,
        service: ShardedPlanningService,
        config: FrontendConfig | None = None,
    ) -> None:
        self.service = service
        self.config = config or FrontendConfig()
        self.orchestrator = Orchestrator(service=service)
        #: Socket-layer counters, merged into the service snapshot by
        #: :meth:`merged_metrics`.
        self.registry = MetricsRegistry()
        for name in (
            "frontend.connections",
            "frontend.disconnects",
            "frontend.requests",
            "frontend.responses",
            "frontend.bad_lines",
            "frontend.shed",
            "frontend.slow_client_disconnects",
            "frontend.cancelled_on_disconnect",
        ):
            self.registry.counter(name)
        self._server: asyncio.base_events.Server | None = None

    # -- lifecycle --------------------------------------------------------

    async def start(self) -> "FrontendServer":
        self.service.start()
        self._server = await asyncio.start_server(
            self._handle_connection,
            host=self.config.host,
            port=self.config.port,
            limit=self.config.max_line_bytes,
            backlog=self.config.backlog,
        )
        return self

    @property
    def address(self) -> tuple[str, int]:
        """The actually-bound (host, port)."""
        assert self._server is not None, "server not started"
        sock = self._server.sockets[0]
        host, port = sock.getsockname()[:2]
        return host, port

    async def close(self) -> None:
        """Stop accepting and close listening sockets (connections in
        flight finish their own teardown; the service is the caller's)."""
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None

    # -- metrics ----------------------------------------------------------

    def merged_metrics(self) -> ServiceMetrics:
        """Cross-shard service metrics with the socket counters folded in."""
        merged = self.service.metrics
        merged.registry.merge(self.registry)
        return merged

    # -- connection handling ----------------------------------------------

    async def _handle_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        self.registry.counter("frontend.connections").increment()
        loop = asyncio.get_running_loop()
        send_queue: asyncio.Queue[str | None] = asyncio.Queue(
            maxsize=self.config.send_queue_limit
        )
        #: wire request_id (or synthetic) -> live ticket, for cancellation.
        outstanding: dict[int, object] = {}
        closing = False

        def enqueue(line: str) -> bool:
            """Queue one response line; False means the client is too slow
            (its bounded send queue is full) and the connection must go."""
            nonlocal closing
            if closing:
                return False
            try:
                send_queue.put_nowait(line)
                return True
            except asyncio.QueueFull:
                self.registry.counter(
                    "frontend.slow_client_disconnects"
                ).increment()
                closing = True
                writer.transport.abort()
                return False

        def deliver(key: int, request_id: str, ticket) -> None:
            """Runs on the event loop once the service finished a ticket."""
            if outstanding.pop(key, None) is None:
                return  # connection already torn down
            result = ticket.result(timeout=0)
            response = self.orchestrator.respond(result, request_id=request_id)
            if enqueue(encode(response)):
                self.registry.counter("frontend.responses").increment()

        sender = asyncio.create_task(self._send_loop(writer, send_queue))
        enqueue(encode(self._hello()))
        try:
            ticket_key = 0
            while not closing:
                try:
                    raw = await reader.readline()
                except (asyncio.LimitOverrunError, ValueError):
                    # Overlong line: the stream position is unreliable,
                    # answer structurally and hang up.
                    enqueue(encode(ErrorV1(
                        code="bad_schema",
                        message="request line exceeds "
                        f"{self.config.max_line_bytes} bytes",
                    )))
                    break
                except (ConnectionResetError, BrokenPipeError):
                    break
                if not raw:
                    break  # EOF
                line = raw.decode("utf-8", errors="replace").strip()
                if not line or line.startswith("#"):
                    continue
                try:
                    request = decode(line)
                except SchemaError as exc:
                    self.registry.counter("frontend.bad_lines").increment()
                    enqueue(encode(ErrorV1(code="bad_schema", message=str(exc))))
                    continue
                if not isinstance(request, PlanRequestV1):
                    self.registry.counter("frontend.bad_lines").increment()
                    enqueue(encode(ErrorV1(
                        code="bad_schema",
                        message=f"expected kind 'plan_request', "
                        f"got {request.KIND!r}",
                    )))
                    continue
                self.registry.counter("frontend.requests").increment()
                try:
                    ticket = self.orchestrator.submit(request)
                except OrchestratorError as exc:
                    # Admission refusal / deadline shed: a structured
                    # response on the existing vocabulary, immediately.
                    self.registry.counter("frontend.shed").increment()
                    if enqueue(encode(PlanResponseV1(
                        status="rejected",
                        tenant=request.tenant,
                        request_id=request.request_id,
                        error=exc.error,
                    ))):
                        self.registry.counter("frontend.responses").increment()
                    continue
                ticket_key += 1
                key, request_id = ticket_key, request.request_id
                outstanding[key] = ticket
                ticket.add_done_callback(
                    lambda done, key=key, request_id=request_id: (
                        self._from_service_thread(
                            loop, deliver, key, request_id, done
                        )
                    )
                )
        finally:
            closing = True
            self.registry.counter("frontend.disconnects").increment()
            abandoned = list(outstanding.values())
            outstanding.clear()
            for ticket in abandoned:
                ticket.cancel()
            if abandoned:
                self.registry.counter(
                    "frontend.cancelled_on_disconnect"
                ).increment(len(abandoned))
            try:
                send_queue.put_nowait(None)
            except asyncio.QueueFull:
                sender.cancel()
            with contextlib.suppress(Exception, asyncio.CancelledError):
                await sender
            writer.close()
            with contextlib.suppress(Exception):
                await writer.wait_closed()

    @staticmethod
    def _from_service_thread(loop, deliver, key, request_id, ticket) -> None:
        """Bridge a completion from a service worker thread to the loop."""
        try:
            loop.call_soon_threadsafe(deliver, key, request_id, ticket)
        except RuntimeError:
            pass  # loop already closed (shutdown race); client is gone

    async def _send_loop(
        self, writer: asyncio.StreamWriter, queue: asyncio.Queue
    ) -> None:
        """Single writer per connection: drains the bounded send queue
        under TCP backpressure, preserving enqueue order."""
        while True:
            line = await queue.get()
            if line is None:
                return
            try:
                writer.write(line.encode("utf-8") + b"\n")
                await writer.drain()
            except (ConnectionResetError, BrokenPipeError, RuntimeError):
                return

    def _hello(self) -> HelloV1:
        from ...cli import package_version

        return HelloV1(version=package_version())


def run_server(
    config: FrontendConfig | None = None,
    service_config: ServiceConfig | None = None,
    *,
    metrics_json: str | None = None,
    ready_stream=None,
) -> int:
    """Assemble and run the sharded socket frontend until SIGINT/SIGTERM.

    Prints ``listening on HOST:PORT`` to ``ready_stream`` (stderr by
    default) once the socket is bound — the loadgen smoke harness and
    the tests parse it — and dumps the merged metrics summary (plus the
    unified JSON snapshot when ``metrics_json`` is given) on shutdown.
    """
    config = config or FrontendConfig()
    service_config = service_config or ServiceConfig()
    stream = ready_stream if ready_stream is not None else sys.stderr
    service = ShardedPlanningService(service_config, shards=config.shards)
    frontend = FrontendServer(service, config)

    async def _main() -> None:
        stop = asyncio.Event()
        loop = asyncio.get_running_loop()
        for signum in (signal.SIGINT, signal.SIGTERM):
            with contextlib.suppress(NotImplementedError, RuntimeError):
                loop.add_signal_handler(signum, stop.set)
        await frontend.start()
        host, port = frontend.address
        print(f"listening on {host}:{port} ({config.shards} shards)",
              file=stream, flush=True)
        try:
            await stop.wait()
        finally:
            await frontend.close()

    try:
        asyncio.run(_main())
    finally:
        service.stop()
        metrics = frontend.merged_metrics()
        print(metrics.describe(), file=sys.stderr)
        if metrics_json:
            from ...cli import _write_metrics_json

            _write_metrics_json(metrics_json, metrics.registry.snapshot())
    return 0
