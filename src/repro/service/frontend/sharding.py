"""Tenant-sharded planning: N independent brokers behind one submit API.

Why shard: the single-service dispatcher pops work by scanning the head
of every active tenant queue (priority, deadline, FIFO tie-break) — an
O(active tenants) Python loop per dispatch.  On a cache-served wire
workload that scan *is* the hot path, so dispatch throughput falls off
linearly with tenant count.  Hashing tenants onto ``shards``
independent :class:`~repro.service.service.PlanningService` instances
divides the scan: each shard's dispatcher only ever sees its own
tenants, and per-tenant FIFO order and admission bounds — both defined
per tenant — are preserved exactly because a tenant maps to one shard
for life.

What stays global: plans.  All shards share one
:class:`~repro.service.cache.SharedPlanCache` (the L2 behind each
shard's private LRU L1), so a plan solved on any shard is a cache hit
on every other, and identical cold requests arriving on *different*
shards coalesce onto a single solve through the L2's single-flight
table instead of thundering the solver pool.
"""

from __future__ import annotations

import hashlib

from ...core.problem import PlanningProblem
from ..cache import SharedPlanCache
from ..metrics import ServiceMetrics
from ..requests import PlanRequest, SubmittedRequest
from ..service import PlanningService, ServiceConfig

__all__ = ["ShardedPlanningService", "shard_for_tenant"]


def shard_for_tenant(tenant: str, shards: int) -> int:
    """Stable tenant -> shard index.

    blake2b (not ``hash``, which is salted per process) so clients,
    servers and replays agree on the mapping across process boundaries.
    """
    if shards <= 0:
        raise ValueError("shards must be positive")
    digest = hashlib.blake2b(tenant.encode("utf-8"), digest_size=8).digest()
    return int.from_bytes(digest, "big") % shards


class ShardedPlanningService:
    """N tenant-sharded :class:`PlanningService` instances, one submit API.

    Duck-type compatible with ``PlanningService`` where the orchestrator
    and CLI need it (``submit`` / ``submit_request`` / ``start`` /
    ``stop`` / ``metrics``), so it drops into
    :class:`~repro.api.orchestrator.Orchestrator` as the ``service``.

    Every shard gets the same :class:`ServiceConfig`; admission bounds
    (``max_pending_total`` etc.) therefore apply *per shard*.  The
    config's ``ordered_admission`` matters here: with it on (the socket
    frontend's setting) cache hits queue like everything else, keeping
    per-tenant FIFO strict across hits and misses.
    """

    def __init__(
        self,
        config: ServiceConfig | None = None,
        *,
        shards: int = 4,
        l2_capacity: int = 4096,
        l2_stripes: int = 16,
    ) -> None:
        if shards <= 0:
            raise ValueError("shards must be positive")
        self.config = config or ServiceConfig()
        self.shared_cache = SharedPlanCache(
            capacity=l2_capacity, stripes=l2_stripes
        )
        self.shards = [
            PlanningService(
                self.config, shared_cache=self.shared_cache, shard_id=index
            )
            for index in range(shards)
        ]

    # -- routing ----------------------------------------------------------

    def shard_for(self, tenant: str) -> PlanningService:
        return self.shards[shard_for_tenant(tenant, len(self.shards))]

    # -- lifecycle --------------------------------------------------------

    def start(self) -> "ShardedPlanningService":
        for shard in self.shards:
            shard.start()
        return self

    def stop(self, wait: bool = True) -> None:
        """Stop every shard, draining in-flight solves.

        Sequential and always waiting on each shard's pool: a shard
        leading a cross-shard flight must settle it (completing or
        requeueing the shards that joined) before later shards close
        their brokers, or joined tickets would hang forever.
        """
        for shard in self.shards:
            shard.stop(wait=True)

    def __enter__(self) -> "ShardedPlanningService":
        return self.start()

    def __exit__(self, *exc_info) -> None:
        self.stop()

    # -- submission -------------------------------------------------------

    def submit(
        self,
        problem: PlanningProblem,
        *,
        tenant: str = "default",
        priority: int = 1,
        deadline_s: float | None = None,
        time_budget_s: float | None = None,
    ) -> SubmittedRequest:
        return self.submit_request(
            PlanRequest(
                tenant=tenant,
                problem=problem,
                priority=priority,
                deadline_s=deadline_s,
                time_budget_s=time_budget_s,
            )
        )

    def submit_request(
        self,
        request: PlanRequest,
        block: bool = False,
        poll_s: float = 0.05,
    ) -> SubmittedRequest:
        """Route to the tenant's shard (same contract as the service's)."""
        return self.shard_for(request.tenant).submit_request(
            request, block=block, poll_s=poll_s
        )

    # -- introspection ----------------------------------------------------

    @property
    def pending(self) -> int:
        return sum(shard.broker.pending for shard in self.shards)

    @property
    def metrics(self) -> ServiceMetrics:
        """Merged snapshot across shards (counters add, series concat).

        Computed on access — grab it once per report, not per request.
        The merge also emits per-shard labeled counters and the
        ``shard_utilization{shard=N}`` gauges.
        """
        return ServiceMetrics.merge([shard.metrics for shard in self.shards])
