"""Asyncio load generator for the socket frontend.

``repro loadgen --connect`` drives a running ``repro serve --listen``
frontend with thousands of *concurrent* tenant connections — one TCP
connection per tenant, pipelined requests, responses correlated by
``request_id`` — and reports client-observed latency percentiles, the
shed rate and the per-address split.  Connections route tenants across
multiple server addresses with the same stable hash the server uses for
its internal broker shards, so a multi-process deployment (one frontend
per address) keeps each tenant pinned to one process.

Single event loop, single process: at 10k tenants the per-connection
state is a reader/writer pair and a dict of send timestamps, well
within one loop's capacity, and client-side CPU stays out of the
measurement's way because requests draw from a small spec grid the
server answers mostly from its plan cache.
"""

from __future__ import annotations

import asyncio
import random
import time
from dataclasses import dataclass, field

from ...api import ErrorV1, PlanRequestV1, PlanResponseV1, decode, encode
from ...api.adapters import from_workload
from ...obs.registry import percentile
from .sharding import shard_for_tenant

__all__ = ["LoadgenReport", "generate_wire_workload", "run_loadgen"]

#: Spec grids mirroring ``repro.service.workload`` — small on purpose
#: (real planning traffic repeats; the plan cache is the product).
_SCENARIO_MIX = (("quickstart", 0.4), ("hybrid", 0.25),
                 ("spot", 0.2), ("pig", 0.15))
_INPUT_GRID = (8.0, 16.0, 32.0)
_DEADLINE_GRID = (6.0, 8.0)
_UPLINK_GRID = (32.0,)


def generate_wire_workload(
    tenants: int,
    requests_per_tenant: int = 1,
    *,
    seed: int = 0,
    distinct: int = 8,
    deadline_s: float | None = None,
    priority_choices: tuple[int, ...] = (0, 1, 1, 2),
) -> list[tuple[str, list[PlanRequestV1]]]:
    """A deterministic wire workload: ``tenants`` named tenants, each
    with ``requests_per_tenant`` requests drawn from ``distinct`` specs.

    ``request_id`` is ``{tenant}/{index}`` so responses correlate even
    when they arrive out of submission order.
    """
    if tenants <= 0 or requests_per_tenant <= 0:
        raise ValueError("tenants and requests_per_tenant must be positive")
    if distinct <= 0:
        raise ValueError("distinct must be positive")
    rng = random.Random(seed)
    names = [name for name, _ in _SCENARIO_MIX]
    weights = [weight for _, weight in _SCENARIO_MIX]
    specs = []
    for stage in range(distinct):
        specs.append(from_workload(
            rng.choices(names, weights=weights)[0],
            input_gb=rng.choice(_INPUT_GRID),
            deadline_hours=rng.choice(_DEADLINE_GRID),
            uplink_mbit=rng.choice(_UPLINK_GRID),
            stage=stage,
        ))
    workload = []
    for index in range(tenants):
        tenant = f"tenant-{index:05d}"
        requests = [
            PlanRequestV1(
                job=rng.choice(specs),
                tenant=tenant,
                priority=rng.choice(priority_choices),
                deadline_s=deadline_s,
                request_id=f"{tenant}/{sequence}",
            )
            for sequence in range(requests_per_tenant)
        ]
        workload.append((tenant, requests))
    return workload


@dataclass
class LoadgenReport:
    """Client-side view of one loadgen run."""

    sent: int = 0
    completed: int = 0
    cached: int = 0
    failed: int = 0
    rejected: int = 0
    expired: int = 0
    #: Connections that never established (after retries).
    connect_failures: int = 0
    #: Requests whose response never arrived (disconnect/timeout).
    lost: int = 0
    #: Client-observed request latencies, seconds (send -> response).
    latencies_s: list[float] = field(default_factory=list)
    #: address -> responses received through it.
    per_address: dict[str, int] = field(default_factory=dict)
    elapsed_s: float = 0.0

    @property
    def answered(self) -> int:
        return self.completed + self.failed + self.rejected + self.expired

    @property
    def shed_rate(self) -> float:
        return self.rejected / self.sent if self.sent else 0.0

    def percentile_s(self, p: float) -> float:
        return percentile(self.latencies_s, p)

    def snapshot(self) -> dict:
        return {
            "sent": self.sent,
            "completed": self.completed,
            "cached": self.cached,
            "failed": self.failed,
            "rejected": self.rejected,
            "expired": self.expired,
            "connect_failures": self.connect_failures,
            "lost": self.lost,
            "shed_rate": self.shed_rate,
            "elapsed_s": self.elapsed_s,
            "throughput_rps": (
                self.answered / self.elapsed_s if self.elapsed_s else 0.0
            ),
            "latency": {
                "p50_s": self.percentile_s(50),
                "p95_s": self.percentile_s(95),
                "p99_s": self.percentile_s(99),
            },
            "per_address": dict(sorted(self.per_address.items())),
        }

    def describe(self) -> str:
        snap = self.snapshot()
        lines = [
            f"requests:    {self.sent} sent, {self.completed} completed "
            f"({self.cached} cached), {self.failed} failed, "
            f"{self.rejected} rejected, {self.expired} expired, "
            f"{self.lost} lost",
            f"shedding:    {self.shed_rate:.2%} shed at admission, "
            f"{self.connect_failures} connect failures",
            f"latency:     p50 {snap['latency']['p50_s'] * 1e3:8.1f} ms   "
            f"p95 {snap['latency']['p95_s'] * 1e3:8.1f} ms   "
            f"p99 {snap['latency']['p99_s'] * 1e3:8.1f} ms",
            f"throughput:  {snap['throughput_rps']:.1f} responses/s "
            f"({self.elapsed_s:.2f} s wall)",
        ]
        for address, count in snap["per_address"].items():
            lines.append(f"  {address}: {count} responses")
        return "\n".join(lines)


def parse_address(address: str) -> tuple[str, int]:
    host, _, port = address.rpartition(":")
    if not host or not port.isdigit():
        raise ValueError(f"expected HOST:PORT, got {address!r}")
    return host, int(port)


async def run_loadgen(
    addresses: list[str],
    workload: list[tuple[str, list[PlanRequestV1]]],
    *,
    connect_concurrency: int = 512,
    connect_retries: int = 5,
    connect_timeout_s: float = 5.0,
    response_timeout_s: float = 120.0,
) -> LoadgenReport:
    """Drive the frontend(s) with one connection per workload tenant.

    Every tenant connects (paced by ``connect_concurrency``, retried on
    transient refusals), reads the ``hello``, then *all* tenants start
    sending together — the barrier is what makes "N concurrent tenants"
    mean N simultaneously-connected clients, not a connect/close churn.
    """
    if not addresses:
        raise ValueError("at least one address required")
    targets = [parse_address(address) for address in addresses]
    report = LoadgenReport()
    report_lock = asyncio.Lock()
    connect_gate = asyncio.Semaphore(connect_concurrency)
    barrier = asyncio.Barrier(len(workload))

    async def session(tenant: str, requests: list[PlanRequestV1]) -> None:
        index = shard_for_tenant(tenant, len(targets))
        host, port = targets[index]
        label = addresses[index]
        reader = writer = None
        async with connect_gate:
            for attempt in range(connect_retries):
                try:
                    # The per-attempt timeout bounds TCP SYN retransmit
                    # when a storm overflows the server's accept queue —
                    # an unbounded connect can stall for minutes, and
                    # every tenant behind the start barrier with it.
                    reader, writer = await asyncio.wait_for(
                        asyncio.open_connection(host, port),
                        connect_timeout_s,
                    )
                    break
                except (OSError, asyncio.TimeoutError):
                    await asyncio.sleep(0.05 * (attempt + 1))
        if writer is None:
            async with report_lock:
                report.connect_failures += 1
                report.lost += len(requests)
            await barrier.wait()
            return
        try:
            await reader.readline()  # hello preamble
            await barrier.wait()
            pending: dict[str, float] = {}
            for request in requests:
                writer.write(encode(request).encode("utf-8") + b"\n")
                pending[request.request_id] = time.perf_counter()
            await writer.drain()
            sent = len(requests)
            answered: list[tuple[PlanResponseV1, float]] = []
            bad = 0
            while pending:
                try:
                    raw = await asyncio.wait_for(
                        reader.readline(), response_timeout_s
                    )
                except (asyncio.TimeoutError, ConnectionResetError):
                    break
                if not raw:
                    break
                message = decode(raw.decode("utf-8"))
                if isinstance(message, ErrorV1):
                    bad += 1
                    if len(pending) == bad:
                        break
                    continue
                started = pending.pop(message.request_id, None)
                if started is None:
                    continue
                answered.append((message, time.perf_counter() - started))
            async with report_lock:
                report.sent += sent
                # Requests answered by a bare error line stay in
                # ``pending`` (no request_id to match) — counted once.
                report.lost += len(pending)
                report.per_address[label] = (
                    report.per_address.get(label, 0) + len(answered)
                )
                for response, latency in answered:
                    report.latencies_s.append(latency)
                    if response.status == "completed":
                        report.completed += 1
                        report.cached += 1 if response.cached else 0
                    elif response.status == "rejected":
                        report.rejected += 1
                    elif response.status == "expired":
                        report.expired += 1
                    else:
                        report.failed += 1
        finally:
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionResetError, BrokenPipeError, OSError):
                pass

    start = time.perf_counter()
    await asyncio.gather(
        *(session(tenant, requests) for tenant, requests in workload)
    )
    report.elapsed_s = time.perf_counter() - start
    return report
