"""Async sharded planning frontend.

The stock :class:`~repro.service.service.PlanningService` runs one
dispatcher over one broker: every dispatch scans the heads of *all*
active tenant queues, so dispatch cost grows with the number of tenants
— the hot loop of a cache-served wire workload.  This package splits
that frontier:

- :mod:`repro.service.frontend.sharding` — tenants hash (stable
  blake2b) onto N independent broker shards, each a full
  ``PlanningService`` with its own dispatcher; per-tenant FIFO and
  admission bounds stay shard-local, so each dispatcher scans only its
  shard's tenants.  A shared lock-striped
  :class:`~repro.service.cache.SharedPlanCache` (the L2 behind each
  shard's LRU L1) keeps plans and in-flight solves global: a plan
  solved on any shard hits on every other, and identical cold requests
  on different shards coalesce onto one solve.
- :mod:`repro.service.frontend.server` — the asyncio TCP server
  speaking the existing versioned JSON-lines dialect (``hello``
  preamble, ``plan_request`` in / ``plan_response`` out), with bounded
  per-connection send queues for slow-client backpressure and
  cooperative cancellation of a disconnected client's queued work.
- :mod:`repro.service.frontend.client` — the asyncio load generator
  behind ``repro loadgen --connect``: thousands of concurrent tenant
  connections, client-side shard routing across server addresses, and
  a latency/shed-rate report.
"""

from .client import LoadgenReport, generate_wire_workload, run_loadgen
from .server import FrontendConfig, FrontendServer, run_server
from .sharding import ShardedPlanningService, shard_for_tenant

__all__ = [
    "FrontendConfig",
    "FrontendServer",
    "LoadgenReport",
    "ShardedPlanningService",
    "generate_wire_workload",
    "run_loadgen",
    "run_server",
    "shard_for_tenant",
]
