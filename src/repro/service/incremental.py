"""The incremental solver: warm-started, delta-patched re-solves.

Sits between the planning front-ends (the fleet's
:class:`~repro.fleet.replanner.CachingPlanner`, the service's
:class:`~repro.service.pool.SolverPool`) and the LP substrate.  The exact
plan cache only helps when a problem is byte-identical; this layer helps
when it is merely *shaped* the same — the replan hot path, where every
re-solve differs from the last only in prices, bounds and right-hand
sides.

Per structural fingerprint (:func:`~repro.service.fingerprint.
structural_fingerprint`) the solver retains the previously compiled
matrix and the previous solution.  A new problem with the same shape is
diffed against the retained matrix (:func:`repro.lp.incremental.
diff_compiled`); a pure-data delta is patched into the retained matrix in
place (keeping it current for the next diff) and the solve restarts warm
from the previous answer:

- **pure LP** — re-solve from the previous simplex basis (exact: an LP
  optimum is an LP optimum, warm or cold);
- **MILP** — the previous integer assignment is re-certified under the
  new data with two cheap LPs solved as one block-diagonal program: the
  *candidate* (integers pinned to the previous assignment) and the fresh
  *root relaxation bound*.  The candidate is accepted when its gap to
  the bound is within the solver's own optimality tolerance — the
  configured ``mip_gap`` widened by the memoized integrality gap
  observed at the last cold solve (the root bound sits below the MIP
  optimum by roughly that much even when the candidate is exactly
  optimal).  Anything else — structural change, infeasible candidate,
  certification failure — falls back to a cold branch & bound, which
  also refreshes the memo.

``strict=True`` disables the memoized widening so a warm answer is only
accepted when *proven* optimal against the root bound; the property
tests run in this mode to pin exact warm/cold equality.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass, field

from ..core.model_builder import BuiltModel, PlanningError, build_model
from ..core.plan import ExecutionPlan
from ..core.problem import PlanningProblem
from ..lp import scipy_backend, simplex_backend
from ..lp.incremental import diff_compiled
from ..lp.model import CompiledModel, Solution, SolveStatus
from .cache import LRUCache
from .fingerprint import structural_fingerprint

__all__ = ["IncrementalSolver", "IncrementalStats"]

_EPS = 1e-9


@dataclass
class IncrementalStats:
    """Hit/miss/fallback accounting for one :class:`IncrementalSolver`.

    Every solve lands in exactly one of the first four buckets.
    """

    #: Warm re-solves served from the retained structure.
    warm: int = 0
    #: Cold solves with no retained structure to start from.
    cold: int = 0
    #: Cold fallbacks because the shape changed (sparsity, horizon, ...).
    structural_fallbacks: int = 0
    #: Cold fallbacks because the warm candidate failed certification.
    rejected_fallbacks: int = 0
    #: Block-diagonal batch solves issued, and problems covered by them.
    batches: int = 0
    batched_problems: int = 0

    @property
    def solves(self) -> int:
        return self.warm + self.cold + self.structural_fallbacks + self.rejected_fallbacks

    @property
    def warm_rate(self) -> float:
        return self.warm / self.solves if self.solves else 0.0


@dataclass
class _Entry:
    """Everything retained per structural fingerprint.

    ``compiled`` is a private deep copy (patching it must not reach the
    model caches) that is delta-patched in place on every
    shape-preserving re-solve, so diffs are always against the latest
    data and stay small.
    """

    compiled: CompiledModel
    #: Integer column -> value of the last cold optimum (the warm MILP
    #: candidate); ``None`` when lowering columns hide integer values.
    int_values: dict[int, float] | None = None
    #: Simplex basis of the last pure-LP solve (basis-capable backends).
    basis: tuple[int, ...] | None = None
    #: Minimized-space gap ``objective - root_bound`` memoized at the
    #: last cold MILP solve; widens the warm acceptance window.
    gap_slack: float = 0.0
    lock: threading.Lock = field(default_factory=threading.Lock)


@dataclass
class _Warm:
    """Snapshot of an entry's warm-start state, taken under its lock.

    Solves run on the snapshot so concurrent problems sharing one entry
    (a fleet batch) never contend or see each other's patches.
    """

    int_values: dict[int, float] | None
    basis: tuple[int, ...] | None
    gap_slack: float


@dataclass
class _Prepared:
    """One problem, built and classified against the retained entry."""

    problem: PlanningProblem
    built: BuiltModel
    compiled: CompiledModel
    key: str
    entry: _Entry | None
    warm: _Warm | None  # set only when the diff was patchable
    time_limit: float
    #: A retained entry existed but the shape diverged — the solve is
    #: then accounted as a structural fallback, not a plain cold.
    structural_fallback: bool = False


def _own_copy(compiled: CompiledModel) -> CompiledModel:
    """A privately owned copy safe to patch in place.

    ``Model.compile()`` hands out its cached object; retaining that and
    patching it would corrupt every other holder (the exact-fingerprint
    model cache re-solves the same ``BuiltModel`` on warm hits).
    """
    return CompiledModel(
        num_vars=compiled.num_vars,
        objective=dict(compiled.objective),
        objective_offset=compiled.objective_offset,
        rows=[dict(row) for row in compiled.rows],
        row_lb=list(compiled.row_lb),
        row_ub=list(compiled.row_ub),
        var_lb=list(compiled.var_lb),
        var_ub=list(compiled.var_ub),
        integrality=list(compiled.integrality),
        columns=list(compiled.columns),
        negated=compiled.negated,
    )


class IncrementalSolver:
    """Delta-aware solver keyed by structural problem fingerprints.

    Duck-types ``Planner.plan`` via :meth:`solve` so front-ends can drop
    it in wherever a cold solve used to happen.  Thread-safe: entry
    locks are held only across diff/patch/snapshot, never across a
    solve, so pool threads and batch members sharing a structure do not
    serialize on each other.

    ``metrics`` (assignable any time) is an
    :class:`~repro.obs.registry.MetricsRegistry`; the solver bumps
    ``incremental.warm`` / ``incremental.cold`` /
    ``incremental.structural_fallback`` / ``incremental.rejected_fallback``
    / ``incremental.batch`` counters on it.
    """

    def __init__(
        self,
        time_limit: float = 180.0,
        mip_gap: float = 0.01,
        backend: str = "auto",
        capacity: int = 32,
        gap_margin: float = 1.25,
        strict: bool = False,
        metrics=None,
    ) -> None:
        self.time_limit = time_limit
        self.mip_gap = mip_gap
        self.backend = backend
        self.gap_margin = gap_margin
        self.strict = strict
        self.metrics = metrics
        self.stats = IncrementalStats()
        self._entries: LRUCache[_Entry] = LRUCache(capacity)
        self._stats_lock = threading.Lock()

    # -- public -----------------------------------------------------------

    def solve(
        self, problem: PlanningProblem, time_limit: float | None = None
    ) -> ExecutionPlan:
        """Solve one problem, warm when the retained structure allows."""
        return self._solve_prepared(self._prepare(problem, time_limit))

    def solve_many(
        self, problems: list[PlanningProblem], time_limit: float | None = None
    ) -> list[ExecutionPlan | PlanningError]:
        """Solve a batch, certifying warm MILP candidates in one
        block-diagonal LP solve.

        Failures are returned in place (not raised) so one infeasible
        deployment cannot sink a fleet-wide batch; callers re-raise per
        problem when they deliver results.
        """
        prepared = [self._prepare(p, time_limit) for p in problems]
        results: list[ExecutionPlan | PlanningError | None] = [None] * len(prepared)

        # Gather the warm candidates: each contributes two LP blocks
        # (candidate with pinned integers, fresh root relaxation bound).
        batch: list[tuple[int, list[CompiledModel]]] = []
        if self._use_scipy():
            for i, prep in enumerate(prepared):
                blocks = self._certification_blocks(prep)
                if blocks is not None:
                    batch.append((i, blocks))

        if len(batch) >= 2:
            with self._stats_lock:
                self.stats.batches += 1
                self.stats.batched_problems += len(batch)
            self._bump("incremental.batch")
            start = time.perf_counter()
            solutions = scipy_backend.solve_blocks(
                [block for _, blocks in batch for block in blocks],
                self._limit(time_limit),
                self.mip_gap,
            )
            per_problem = (time.perf_counter() - start) / len(batch)
            for slot, (i, _) in enumerate(batch):
                prep = prepared[i]
                cand, bound = solutions[2 * slot], solutions[2 * slot + 1]
                plan = self._accept(prep, cand, bound, per_problem)
                if plan is not None:
                    self._count("warm")
                    results[i] = plan
                elif (
                    cand.status is SolveStatus.OPTIMAL
                    and bound.status is SolveStatus.OPTIMAL
                ):
                    # A genuine gap rejection, not batching noise.
                    self._count("rejected_fallback")
                    try:
                        results[i] = self._solve_cold(prep, counted=True)
                    except PlanningError as exc:
                        results[i] = exc
                # else: one infeasible block taints the whole composite's
                # status — leave unresolved so the solo pass below
                # re-certifies this problem on its own.

        for i, prep in enumerate(prepared):
            if results[i] is not None:
                continue
            if prep.warm is None and prep.key in self._entries:
                # A batch-mate with the same structure solved cold after
                # this problem was prepared; re-prepare against the
                # entry it seeded so this solve can go warm.
                prep = self._prepare(prep.problem, time_limit)
            try:
                results[i] = self._solve_prepared(prep)
            except PlanningError as exc:
                results[i] = exc
        return results

    # -- preparation ------------------------------------------------------

    def _limit(self, time_limit: float | None) -> float:
        if time_limit is None:
            return self.time_limit
        return max(1e-3, min(self.time_limit, time_limit))

    def _prepare(
        self, problem: PlanningProblem, time_limit: float | None
    ) -> _Prepared:
        built = build_model(problem)
        compiled = built.model.compile()
        key = structural_fingerprint(problem)
        entry = self._entries.get(key)
        warm = None
        structural_fallback = False
        if entry is not None:
            with entry.lock:
                delta = diff_compiled(entry.compiled, compiled)
                if delta is None:
                    # Structural fingerprint collision or genuine shape
                    # change under the same key: retire the stale entry.
                    self._entries.remove(key)
                    entry = None
                    structural_fallback = True
                else:
                    delta.apply(entry.compiled)
                    warm = _Warm(
                        int_values=dict(entry.int_values)
                        if entry.int_values is not None
                        else None,
                        basis=entry.basis,
                        gap_slack=entry.gap_slack,
                    )
        return _Prepared(
            problem=problem,
            built=built,
            compiled=compiled,
            key=key,
            entry=entry,
            warm=warm,
            time_limit=self._limit(time_limit),
            structural_fallback=structural_fallback,
        )

    # -- warm path --------------------------------------------------------

    def _use_scipy(self) -> bool:
        return self.backend in ("auto", "scipy")

    def _solve_prepared(self, prepared: _Prepared) -> ExecutionPlan:
        if prepared.warm is not None:
            plan = self._try_warm(prepared)
            if plan is not None:
                self._count("warm")
                return plan
            self._count("rejected_fallback")
            return self._solve_cold(prepared, counted=True)
        return self._solve_cold(prepared)

    def _try_warm(self, prepared: _Prepared) -> ExecutionPlan | None:
        """One-problem warm attempt on the fresh compiled matrix.

        The fresh matrix is numerically identical to the patched
        retained one (that is what ``diff_compiled`` certifies) and its
        columns already reference the new model's variables, so solving
        it directly needs no index remapping afterwards.
        """
        compiled = prepared.compiled
        start = time.perf_counter()
        if not any(compiled.integrality):
            basis = prepared.warm.basis
            if self._use_scipy():
                solution = scipy_backend.solve(
                    compiled, prepared.time_limit, self.mip_gap, start_basis=basis
                )
            else:
                solution = simplex_backend.solve(
                    compiled, prepared.time_limit, start_basis=basis
                )
            if solution.status is not SolveStatus.OPTIMAL:
                return None
            if prepared.entry is not None:
                with prepared.entry.lock:
                    prepared.entry.basis = solution.basis
            return self._finish(prepared, solution.values, time.perf_counter() - start)

        blocks = self._certification_blocks(prepared)
        if blocks is None:
            return None
        if self._use_scipy():
            cand, bound = scipy_backend.solve_blocks(
                blocks, prepared.time_limit, self.mip_gap
            )
        else:
            cand = simplex_backend.solve(blocks[0], prepared.time_limit)
            bound = simplex_backend.solve(blocks[1], prepared.time_limit)
        return self._accept(prepared, cand, bound, time.perf_counter() - start)

    def _certification_blocks(
        self, prepared: _Prepared
    ) -> list[CompiledModel] | None:
        """The [pinned-candidate, root-relaxation] LP pair, or ``None``
        when there is nothing warm to certify."""
        if prepared.warm is None or prepared.warm.int_values is None:
            return None
        compiled = prepared.compiled
        if not any(compiled.integrality):
            return None  # pure LPs take the basis path, not certification
        pinned_lb = list(compiled.var_lb)
        pinned_ub = list(compiled.var_ub)
        for col, value in prepared.warm.int_values.items():
            # The data change may have moved a bound past the previous
            # assignment (capacity cut below the allocated nodes): the
            # candidate is infeasible by inspection, go straight cold.
            if not compiled.var_lb[col] - _EPS <= value <= compiled.var_ub[col] + _EPS:
                return None
            pinned_lb[col] = pinned_ub[col] = value
        relaxed = [False] * compiled.num_vars
        candidate = CompiledModel(
            num_vars=compiled.num_vars,
            objective=compiled.objective,
            objective_offset=compiled.objective_offset,
            rows=compiled.rows,
            row_lb=compiled.row_lb,
            row_ub=compiled.row_ub,
            var_lb=pinned_lb,
            var_ub=pinned_ub,
            integrality=relaxed,
            columns=compiled.columns,
            negated=compiled.negated,
        )
        relaxation = CompiledModel(
            num_vars=compiled.num_vars,
            objective=compiled.objective,
            objective_offset=compiled.objective_offset,
            rows=compiled.rows,
            row_lb=compiled.row_lb,
            row_ub=compiled.row_ub,
            var_lb=compiled.var_lb,
            var_ub=compiled.var_ub,
            integrality=relaxed,
            columns=compiled.columns,
            negated=compiled.negated,
        )
        return [candidate, relaxation]

    def _accept(
        self,
        prepared: _Prepared,
        cand: Solution,
        bound: Solution,
        seconds: float,
    ) -> ExecutionPlan | None:
        """Certify a pinned candidate against the fresh root bound."""
        if cand.status is not SolveStatus.OPTIMAL:
            return None
        if bound.status is not SolveStatus.OPTIMAL:
            return None
        compiled = prepared.compiled
        cand_min = self._minimized(compiled, cand.objective)
        bound_min = self._minimized(compiled, bound.objective)
        window = 1e-9 * max(1.0, abs(cand_min))
        if not self.strict:
            window = max(
                self.mip_gap * abs(cand_min),
                self.gap_margin * prepared.warm.gap_slack,
                window,
            )
        if cand_min - bound_min > window + _EPS:
            return None
        # Snap the pinned columns back to exact integers (the LP solver
        # returns them within feasibility tolerance of the pin).
        values = dict(cand.values)
        for col, pin in prepared.warm.int_values.items():
            var = compiled.columns[col]
            if var is not None:
                values[var] = pin
        return self._finish(prepared, values, seconds)

    @staticmethod
    def _minimized(compiled: CompiledModel, objective: float) -> float:
        return -objective if compiled.negated else objective

    def _finish(self, prepared: _Prepared, values: dict, seconds: float) -> ExecutionPlan:
        """Assemble a Solution over the new model and extract the plan."""
        built = prepared.built
        solution = Solution(status=SolveStatus.OPTIMAL, backend="incremental")
        solution.values = {
            var: values.get(var, 0.0) for var in built.model.variables
        }
        solution.objective = built.model.objective.evaluate(solution.values)
        solution.solve_seconds = seconds
        return built.extract_plan(solution)

    # -- cold path --------------------------------------------------------

    def _solve_cold(
        self, prepared: _Prepared, counted: bool = False
    ) -> ExecutionPlan:
        built = prepared.built
        solution = built.model.solve(
            backend=self.backend,
            time_limit=prepared.time_limit,
            mip_gap=self.mip_gap,
        )
        if not counted:
            self._count(
                "structural_fallback" if prepared.structural_fallback else "cold"
            )
        if not solution.status.has_solution:
            raise PlanningError(
                f"planning failed for {prepared.problem.job.name!r}: "
                f"{solution.status.value} ({solution.message})",
                status=solution.status.value,
                budgeted=prepared.problem.goal.budget_usd is not None,
            )
        if solution.status is SolveStatus.OPTIMAL:
            self._retain(prepared, solution)
        return built.extract_plan(solution)

    def _retain(self, prepared: _Prepared, solution: Solution) -> None:
        """Memoize a fresh cold optimum as the next warm starting point."""
        compiled = prepared.compiled
        int_values: dict[int, float] | None = {}
        for col, flag in enumerate(compiled.integrality):
            if not flag:
                continue
            var = compiled.columns[col]
            if var is None:
                # A lowering column's value never reaches the Solution;
                # without it the assignment cannot be pinned next time.
                int_values = None
                break
            int_values[col] = float(round(solution.values.get(var, 0.0)))
        gap_slack = 0.0
        if int_values and not self.strict:
            gap_slack = self._root_gap(compiled, solution, prepared.time_limit)
        self._entries.put(
            prepared.key,
            _Entry(
                compiled=_own_copy(compiled),
                int_values=int_values,
                basis=solution.basis,
                gap_slack=gap_slack,
            ),
        )

    def _root_gap(
        self, compiled: CompiledModel, solution: Solution, time_limit: float
    ) -> float:
        """Minimized-space slack between the MIP optimum and its root
        relaxation — the memo that widens warm acceptance."""
        relaxation = CompiledModel(
            num_vars=compiled.num_vars,
            objective=compiled.objective,
            objective_offset=compiled.objective_offset,
            rows=compiled.rows,
            row_lb=compiled.row_lb,
            row_ub=compiled.row_ub,
            var_lb=compiled.var_lb,
            var_ub=compiled.var_ub,
            integrality=[False] * compiled.num_vars,
            columns=compiled.columns,
            negated=compiled.negated,
        )
        if self._use_scipy():
            root = scipy_backend.solve(relaxation, time_limit, self.mip_gap)
        else:
            root = simplex_backend.solve(relaxation, time_limit)
        if root.status is not SolveStatus.OPTIMAL:
            return 0.0
        return max(
            0.0,
            self._minimized(compiled, solution.objective)
            - self._minimized(compiled, root.objective),
        )

    # -- accounting -------------------------------------------------------

    def _count(self, kind: str) -> None:
        with self._stats_lock:
            if kind == "warm":
                self.stats.warm += 1
            elif kind == "cold":
                self.stats.cold += 1
            elif kind == "structural_fallback":
                self.stats.structural_fallbacks += 1
            elif kind == "rejected_fallback":
                self.stats.rejected_fallbacks += 1
        self._bump(f"incremental.{kind}")

    def _bump(self, name: str) -> None:
        if self.metrics is not None:
            self.metrics.counter(name).increment()
