"""Synthetic multi-tenant workloads for the planning service.

Mixes the repo's example scenarios into a stream of tenant requests.
Since the public-API redesign the scenario vocabulary lives in
:func:`repro.api.adapters.from_workload`; this module draws scenario
parameters from small discrete grids and compiles each draw through the
one ``JobSpec`` -> ``PlanningProblem`` compiler.  Small grids are what
real planning traffic looks like (catalogs and deadlines are shared
across an organization's jobs) and what makes the plan cache earn its
keep: a 64-request workload only contains a few dozen *distinct*
problems.  Generation is deterministic in the seed.
"""

from __future__ import annotations

import random
from typing import Mapping, Sequence

from ..api.adapters import SCENARIOS, from_workload
from ..api.compiler import compile_spec
from ..core.problem import PlanningProblem
from ..units import mb_s_to_gb_h, mbit_s_to_mb_s
from .requests import PlanRequest

#: Default scenario mix (weights; normalized at draw time).
DEFAULT_MIX: Mapping[str, float] = {
    "quickstart": 0.4,
    "hybrid": 0.25,
    "spot": 0.2,
    "pig": 0.15,
}

#: Discrete parameter grids (see module docstring for why they're small).
INPUT_GRID = (8.0, 16.0, 32.0)
DEADLINE_GRID = (4.0, 6.0, 8.0)
UPLINK_GRID = (16.0, 32.0)
LOCAL_NODES_GRID = (3, 5)
SPOT_PRICE_GRID = (0.15, 0.25)


def problem_for_scenario(
    scenario: str,
    *,
    input_gb: float = 16.0,
    deadline_hours: float = 6.0,
    uplink_mbit: float = 16.0,
    local_nodes: int = 5,
    spot_price: float = 0.2,
    stage: int = 0,
) -> PlanningProblem:
    """Build the planning problem one scenario request stands for.

    Thin compatibility wrapper: the scenario is adapted to a
    :class:`~repro.api.schemas.JobSpec` and compiled like any other
    API request.
    """
    spec = from_workload(
        scenario,
        input_gb=input_gb,
        deadline_hours=deadline_hours,
        uplink_mbit=uplink_mbit,
        local_nodes=local_nodes,
        spot_price=spot_price,
        stage=stage,
    )
    return compile_spec(spec)


def generate_workload(
    tenants: int = 8,
    requests: int = 64,
    seed: int = 0,
    mix: Mapping[str, float] | None = None,
) -> list[PlanRequest]:
    """A deterministic stream of ``requests`` tenant requests."""
    if tenants <= 0 or requests < 0:
        raise ValueError("tenants must be positive, requests non-negative")
    mix = dict(mix or DEFAULT_MIX)
    unknown = set(mix) - set(SCENARIOS)
    if unknown:
        raise ValueError(f"unknown scenarios in mix: {sorted(unknown)}")
    rng = random.Random(seed)
    names = list(mix)
    weights = [mix[name] for name in names]
    out: list[PlanRequest] = []
    for index in range(requests):
        scenario = rng.choices(names, weights=weights)[0]
        input_gb = rng.choice(INPUT_GRID)
        uplink_mbit = rng.choice(UPLINK_GRID)
        # Keep the draw feasible: the input must clear the uplink with
        # slack to process it, or every such request would just fail.
        upload_hours = input_gb / mb_s_to_gb_h(mbit_s_to_mb_s(uplink_mbit))
        candidates = [d for d in DEADLINE_GRID if upload_hours < 0.8 * d]
        deadline = rng.choice(candidates or (max(DEADLINE_GRID),))
        problem = problem_for_scenario(
            scenario,
            input_gb=input_gb,
            deadline_hours=deadline,
            uplink_mbit=uplink_mbit,
            local_nodes=rng.choice(LOCAL_NODES_GRID),
            spot_price=rng.choice(SPOT_PRICE_GRID),
            stage=index,
        )
        out.append(
            PlanRequest(
                tenant=f"tenant-{rng.randrange(tenants)}",
                problem=problem,
                priority=rng.choice((0, 1, 1, 2)),
            )
        )
    return out


def run_workload(
    service,
    requests: Sequence[PlanRequest],
    timeout_s: float = 600.0,
):
    """Submit a workload and wait for every result.

    Returns ``(results, rejected)`` where ``rejected`` counts requests
    the broker refused at admission.  A handle the service does not
    finish within ``timeout_s`` yields a synthetic FAILED result rather
    than raising, so one stuck request cannot lose the whole report.
    """
    from .broker import AdmissionError
    from .requests import PlanResult, RequestStatus

    handles = []
    rejected = 0
    for request in requests:
        try:
            handles.append(service.submit_request(request))
        except AdmissionError:
            rejected += 1
    results = []
    for handle in handles:
        try:
            results.append(handle.result(timeout=timeout_s))
        except TimeoutError as exc:
            results.append(
                PlanResult(
                    request_id=handle.request_id,
                    tenant=handle.tenant,
                    status=RequestStatus.FAILED,
                    error=f"client wait timed out: {exc}",
                    error_code="timeout",
                    fingerprint=handle.fingerprint,
                )
            )
    return results, rejected
