"""Synthetic multi-tenant workloads for the planning service.

Mixes the repo's example scenarios into a stream of tenant requests:

- ``quickstart`` — the paper's public-cloud k-means planning problem;
- ``hybrid``     — public cloud plus the customer's own cluster;
- ``spot``       — spot-market compute with estimated prices in the
  objective;
- ``pig``        — stages of a compiled Pig-Latin pipeline.

Parameters are drawn from small discrete grids, which is what real
planning traffic looks like (catalogs and deadlines are shared across an
organization's jobs) and what makes the plan cache earn its keep: a
64-request workload only contains a few dozen *distinct* problems.
Generation is deterministic in the seed.
"""

from __future__ import annotations

import random
from functools import lru_cache
from typing import Mapping, Sequence

from ..cloud.catalog import hybrid_cloud, public_cloud
from ..core.problem import Goal, NetworkConditions, PlannerJob, PlanningProblem
from ..core.spot_sim import spot_services
from ..units import mb_s_to_gb_h, mbit_s_to_mb_s
from .requests import PlanRequest

SCENARIOS = ("quickstart", "hybrid", "spot", "pig")

#: Default scenario mix (weights; normalized at draw time).
DEFAULT_MIX: Mapping[str, float] = {
    "quickstart": 0.4,
    "hybrid": 0.25,
    "spot": 0.2,
    "pig": 0.15,
}

#: Discrete parameter grids (see module docstring for why they're small).
INPUT_GRID = (8.0, 16.0, 32.0)
DEADLINE_GRID = (4.0, 6.0, 8.0)
UPLINK_GRID = (16.0, 32.0)
LOCAL_NODES_GRID = (3, 5)
SPOT_PRICE_GRID = (0.15, 0.25)

#: Clickstream rollup used by the ``pig`` scenario (examples/pig_pipeline).
PIG_SCRIPT = (
    "clicks = LOAD 'clicks' AS (url:chararray, site:chararray, ms:int);\n"
    "ok     = FILTER clicks BY ms >= 0;\n"
    "bysite = GROUP ok BY site;\n"
    "rollup = FOREACH bysite GENERATE group, COUNT(ok) AS hits;\n"
    "STORE rollup INTO 'hot-sites';\n"
)

@lru_cache(maxsize=64)
def _pig_stage_jobs(input_gb: float) -> tuple[PlannerJob, ...]:
    """Planner jobs for the canned Pig pipeline (compiled once per size)."""
    from ..pig import compile_script

    pipeline = compile_script(PIG_SCRIPT)
    loads = pipeline.plan.loads
    per_load = {load.path: input_gb / len(loads) for load in loads}
    return tuple(pipeline.to_planner_jobs(per_load))


def problem_for_scenario(
    scenario: str,
    *,
    input_gb: float = 16.0,
    deadline_hours: float = 6.0,
    uplink_mbit: float = 16.0,
    local_nodes: int = 5,
    spot_price: float = 0.2,
    stage: int = 0,
) -> PlanningProblem:
    """Build the planning problem one scenario request stands for."""
    network = NetworkConditions.from_mbit_s(uplink_mbit)
    goal = Goal.min_cost(deadline_hours=deadline_hours)
    if scenario == "quickstart":
        return PlanningProblem(
            job=PlannerJob(name="kmeans", input_gb=input_gb),
            services=public_cloud(),
            network=network,
            goal=goal,
        )
    if scenario == "hybrid":
        return PlanningProblem(
            job=PlannerJob(name="kmeans", input_gb=input_gb),
            services=hybrid_cloud(local_nodes=local_nodes),
            network=network,
            goal=goal,
        )
    if scenario == "spot":
        services = spot_services()
        horizon = max(1, int(deadline_hours))
        estimates = {
            s.name: [spot_price] * horizon for s in services if s.is_spot
        }
        return PlanningProblem(
            job=PlannerJob(name="kmeans", input_gb=input_gb),
            services=services,
            network=network,
            goal=goal,
            spot_price_estimates=estimates,
        )
    if scenario == "pig":
        jobs = _pig_stage_jobs(input_gb)
        job = jobs[stage % len(jobs)]
        return PlanningProblem(
            job=job,
            services=public_cloud(),
            network=network,
            goal=goal,
        )
    raise ValueError(f"unknown scenario {scenario!r}; pick one of {SCENARIOS}")


def generate_workload(
    tenants: int = 8,
    requests: int = 64,
    seed: int = 0,
    mix: Mapping[str, float] | None = None,
) -> list[PlanRequest]:
    """A deterministic stream of ``requests`` tenant requests."""
    if tenants <= 0 or requests < 0:
        raise ValueError("tenants must be positive, requests non-negative")
    mix = dict(mix or DEFAULT_MIX)
    unknown = set(mix) - set(SCENARIOS)
    if unknown:
        raise ValueError(f"unknown scenarios in mix: {sorted(unknown)}")
    rng = random.Random(seed)
    names = list(mix)
    weights = [mix[name] for name in names]
    out: list[PlanRequest] = []
    for index in range(requests):
        scenario = rng.choices(names, weights=weights)[0]
        input_gb = rng.choice(INPUT_GRID)
        uplink_mbit = rng.choice(UPLINK_GRID)
        # Keep the draw feasible: the input must clear the uplink with
        # slack to process it, or every such request would just fail.
        upload_hours = input_gb / mb_s_to_gb_h(mbit_s_to_mb_s(uplink_mbit))
        candidates = [d for d in DEADLINE_GRID if upload_hours < 0.8 * d]
        deadline = rng.choice(candidates or (max(DEADLINE_GRID),))
        problem = problem_for_scenario(
            scenario,
            input_gb=input_gb,
            deadline_hours=deadline,
            uplink_mbit=uplink_mbit,
            local_nodes=rng.choice(LOCAL_NODES_GRID),
            spot_price=rng.choice(SPOT_PRICE_GRID),
            stage=index,
        )
        out.append(
            PlanRequest(
                tenant=f"tenant-{rng.randrange(tenants)}",
                problem=problem,
                priority=rng.choice((0, 1, 1, 2)),
            )
        )
    return out


def run_workload(
    service,
    requests: Sequence[PlanRequest],
    timeout_s: float = 600.0,
):
    """Submit a workload and wait for every result.

    Returns ``(results, rejected)`` where ``rejected`` counts requests
    the broker refused at admission.  A handle the service does not
    finish within ``timeout_s`` yields a synthetic FAILED result rather
    than raising, so one stuck request cannot lose the whole report.
    """
    from .broker import AdmissionError
    from .requests import PlanResult, RequestStatus

    handles = []
    rejected = 0
    for request in requests:
        try:
            handles.append(service.submit_request(request))
        except AdmissionError:
            rejected += 1
    results = []
    for handle in handles:
        try:
            results.append(handle.result(timeout=timeout_s))
        except TimeoutError as exc:
            results.append(
                PlanResult(
                    request_id=handle.request_id,
                    tenant=handle.tenant,
                    status=RequestStatus.FAILED,
                    error=f"client wait timed out: {exc}",
                    fingerprint=handle.fingerprint,
                )
            )
    return results, rejected
