"""Canonical problem fingerprints.

Two tenants asking Conductor the same question should pay for one solve.
The fingerprint is a SHA-256 over the problem's canonical encoding
(:meth:`repro.core.problem.PlanningProblem.canonical`), which is stable
under irrelevant variation: service catalog order, dict insertion order,
job naming, and ``state=None`` vs. an explicit initial state.  Anything
that changes the LP — prices, rates, goal, deadline, spot estimates,
upload fractions, model flags — changes the digest.
"""

from __future__ import annotations

import hashlib

from ..core.problem import PlanningProblem


def canonical_payload(problem: PlanningProblem) -> bytes:
    """The byte string actually hashed (exposed for tests/debugging)."""
    return repr(problem.canonical()).encode("utf-8")


def problem_fingerprint(problem: PlanningProblem) -> str:
    """Hex SHA-256 fingerprint of a planning problem."""
    return hashlib.sha256(canonical_payload(problem)).hexdigest()
