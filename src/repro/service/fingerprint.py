"""Canonical problem fingerprints — exact and structural.

Two tenants asking Conductor the same question should pay for one solve.
The **exact** fingerprint is a SHA-256 over the problem's canonical
encoding (:meth:`repro.core.problem.PlanningProblem.canonical`), which is
stable under irrelevant variation: service catalog order, dict insertion
order, job naming, and ``state=None`` vs. an explicit initial state.
Anything that changes the LP — prices, rates, goal, deadline, spot
estimates, upload fractions, model flags — changes the digest.

The **structural** fingerprint hashes only what determines the *shape*
of the generated model — horizon length, the service set and its
capability/limit pattern, goal kind, model flags — and deliberately
ignores all numeric data (prices, rates, state, spot estimates).  Two
problems sharing a structural fingerprint compile to matrices of the
same sparsity, which is what lets the incremental solver patch the
retained matrix of one and re-solve it warm for the other.  The mapping
is a cheap upper bound, not a guarantee: the solver re-checks at the
matrix level (:func:`repro.lp.incremental.diff_compiled`) and falls back
cold on a collision.
"""

from __future__ import annotations

import hashlib

from ..cloud.services import UNLIMITED
from ..core.problem import PlanningProblem


def canonical_payload(problem: PlanningProblem) -> bytes:
    """The byte string actually hashed (exposed for tests/debugging)."""
    return repr(problem.canonical()).encode("utf-8")


def problem_fingerprint(problem: PlanningProblem) -> str:
    """Hex SHA-256 fingerprint of a planning problem.

    Memoized on the instance: problems are immutable once built (the
    codebase derives variants with :func:`dataclasses.replace`, which
    produces a fresh object and therefore a fresh memo), and admission
    fingerprints the same problem object on every enqueue — the hottest
    line of the frontend's submit path.
    """
    cached = problem.__dict__.get("_exact_fingerprint")
    if cached is None:
        cached = hashlib.sha256(canonical_payload(problem)).hexdigest()
        problem.__dict__["_exact_fingerprint"] = cached
    return cached


def structural_payload(problem: PlanningProblem) -> tuple:
    """Shape-only canonical encoding (exposed for tests/debugging).

    Includes every input the model builder branches on when deciding
    *which* variables and constraints exist: the interval count, each
    service's capabilities and limit finiteness, the goal kind and
    budget presence, phase structure (does a reduce phase exist), and
    the model flags.  Excludes everything that only lands in bounds,
    right-hand sides, or objective coefficients: prices, rates, network
    capacities, spot estimates, and the system state.
    """
    return (
        "PlanningProblemStructure",
        problem.horizon_intervals,
        tuple(
            (
                s.name,
                s.can_compute,
                s.can_store,
                s.is_spot,
                s.max_nodes == UNLIMITED,
                s.storage_capacity_gb == UNLIMITED,
                s.storage_gb_per_node > 0,
                s.provider == problem.local_provider,
            )
            for s in sorted(problem.services, key=lambda s: s.name)
        ),
        problem.goal.kind.value,
        problem.goal.budget_usd is not None,
        problem.job.map_output_ratio > 0,
        problem.job.reduce_output_ratio > 0,
        tuple(sorted(problem.upload_fractions)),
        int(problem.upload_read_lag),
        bool(problem.allow_migration),
        bool(problem.constant_nodes),
        bool(problem.strict_phase_gap),
    )


def structural_fingerprint(problem: PlanningProblem) -> str:
    """Hex SHA-256 of the problem's shape (data ignored)."""
    return hashlib.sha256(
        repr(structural_payload(problem)).encode("utf-8")
    ).hexdigest()
