"""Multi-tenant planning service in front of the Conductor core.

The paper frames Conductor as a *service* customers submit deployment
problems to; this package makes the reproduction act like one:

- :class:`PlanningService` — submit/solve/cache front-end
  (:mod:`repro.service.service`);
- :class:`RequestBroker` — per-tenant queues, admission control,
  priority/deadline ordering (:mod:`repro.service.broker`);
- :func:`problem_fingerprint` + :class:`LRUCache` — canonical problem
  identity and the plan cache (:mod:`repro.service.fingerprint`,
  :mod:`repro.service.cache`);
- :class:`SolverPool` — bounded parallel LP solving
  (:mod:`repro.service.pool`);
- :class:`SessionManager` — deploy/monitor/adapt loops with streamed
  progress (:mod:`repro.service.session`);
- :class:`ServiceMetrics` — request counters and latency percentiles
  (:mod:`repro.service.metrics`);
- :func:`generate_workload` — synthetic tenant traffic
  (:mod:`repro.service.workload`);
- :mod:`repro.service.frontend` — the asyncio socket frontend: tenant-
  sharded brokers behind one TCP endpoint, the shared
  :class:`SharedPlanCache` L2, and the concurrent-connection load
  generator (imported explicitly; it pulls in the api layer).
"""

from .broker import AdmissionError, RequestBroker
from .cache import CacheStats, LRUCache, SharedPlanCache
from .fingerprint import (
    canonical_payload,
    problem_fingerprint,
    structural_fingerprint,
    structural_payload,
)
from .incremental import IncrementalSolver, IncrementalStats
from .metrics import LatencySeries, ServiceMetrics, percentile
from .pool import SolverPool, solve_problem
from .requests import (
    PlanRequest,
    PlanResult,
    RequestStatus,
    SubmittedRequest,
    error_code_for_exception,
)
from .service import PlanningService, ServiceConfig
from .session import DeploySession, SessionManager
from .workload import (
    DEFAULT_MIX,
    SCENARIOS,
    generate_workload,
    problem_for_scenario,
    run_workload,
)

__all__ = [
    "AdmissionError",
    "CacheStats",
    "DEFAULT_MIX",
    "DeploySession",
    "IncrementalSolver",
    "IncrementalStats",
    "LatencySeries",
    "LRUCache",
    "PlanRequest",
    "PlanResult",
    "PlanningService",
    "RequestBroker",
    "RequestStatus",
    "SCENARIOS",
    "ServiceConfig",
    "ServiceMetrics",
    "SessionManager",
    "SharedPlanCache",
    "SolverPool",
    "SubmittedRequest",
    "canonical_payload",
    "error_code_for_exception",
    "generate_workload",
    "percentile",
    "problem_fingerprint",
    "problem_for_scenario",
    "run_workload",
    "solve_problem",
    "structural_fingerprint",
    "structural_payload",
]
