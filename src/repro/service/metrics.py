"""Service-level metrics: request counters, latency distributions, cache
effectiveness.

Everything the ``loadgen`` summary and the throughput benchmark report
comes from here.  The instruments themselves live in
:mod:`repro.obs.registry` — the observability layer's telemetry registry
— so one :class:`~repro.obs.registry.MetricsRegistry` snapshot format
serves the planning service, the fleet runtime and ``repro trace
summarize`` alike; this module keeps the service's vocabulary (which
counters exist, what a completion records) and its legacy report shapes.

Thread-safety: the registry primitives lock their own record paths, and
``ServiceMetrics`` adds one reentrant lock around every multi-instrument
update and read, so a pool callback recording a completion can never
race a dashboard poll into a torn view (e.g. ``cache_hits`` bumped but
``completed`` not yet).  The lock is reentrant because ``snapshot()``
reads ``cache_hit_rate`` while holding it.
"""

from __future__ import annotations

import threading
from typing import Sequence

from ..obs.registry import LatencySeries, MetricsRegistry, labeled, percentile

__all__ = [
    "LatencySeries",
    "MetricsRegistry",
    "ServiceMetrics",
    "labeled",
    "percentile",
]

#: Monotonic request counters every service instance maintains.
_COUNTERS = (
    "submitted",
    "rejected",
    "expired",
    "completed",
    "failed",
    "cancelled",
    "cache_hits",
    "cache_misses",
    "coalesced",
)

#: Latency series every service instance maintains.
_SERIES = ("queue_wait", "solve_latency", "turnaround")


class ServiceMetrics:
    """Thread-safe counters and latency series for one service instance.

    Backed by an obs-level :class:`MetricsRegistry` (``.registry``):
    callers wanting the unified telemetry snapshot format read
    ``metrics.registry.snapshot()``; the legacy ``snapshot()`` /
    ``describe()`` shapes are preserved for the loadgen report and the
    throughput benchmarks.
    """

    def __init__(
        self,
        registry: MetricsRegistry | None = None,
        shard: int | None = None,
    ) -> None:
        self._lock = threading.RLock()
        self.registry = registry if registry is not None else MetricsRegistry()
        #: Shard index when this instance serves one broker shard of a
        #: sharded frontend; ``merge`` uses it to label the shard's
        #: counters (``completed{shard=N}``) in the aggregate snapshot.
        self.shard = shard
        for name in _COUNTERS:
            self.registry.counter(name)
        self.queue_wait = self.registry.series("queue_wait")
        self.solve_latency = self.registry.series("solve_latency")
        self.turnaround = self.registry.series("turnaround")
        self.per_tenant_completed: dict[str, int] = {}

    @classmethod
    def merge(cls, parts: Sequence["ServiceMetrics"]) -> "ServiceMetrics":
        """Aggregate shard metrics into one report.

        Counters add, latency series merge their raw samples (exact
        percentiles — a shard whose series recorded nothing contributes
        nothing, and an all-empty merged series keeps the defined
        all-zero percentile summary).  Each part that carries a ``shard``
        index also lands as labeled instruments, so the one
        ``--metrics-json`` snapshot reports both the aggregate
        (``completed``) and the per-shard split (``completed{shard=1}``).
        The aggregate's per-shard utilization — each shard's share of
        completed requests — comes out as ``shard_utilization{shard=N}``
        gauges.
        """
        merged = cls()
        completions: list[tuple[int, int]] = []
        for part in parts:
            labels = None if part.shard is None else {"shard": part.shard}
            merged.registry.merge(part.registry, labels=labels)
            with part._lock:
                per_tenant = dict(part.per_tenant_completed)
            for tenant, count in per_tenant.items():
                merged.per_tenant_completed[tenant] = (
                    merged.per_tenant_completed.get(tenant, 0) + count
                )
            if part.shard is not None:
                completions.append((part.shard, part.completed))
        total = sum(count for _, count in completions)
        for shard, count in completions:
            merged.registry.gauge(labeled("shard_utilization", shard=shard)).set(
                count / total if total else 0.0
            )
        return merged

    # -- counter views -----------------------------------------------------

    def _count(self, name: str) -> int:
        with self._lock:
            return self.registry.counter(name).value

    @property
    def submitted(self) -> int:
        return self._count("submitted")

    @property
    def rejected(self) -> int:
        return self._count("rejected")

    @property
    def expired(self) -> int:
        return self._count("expired")

    @property
    def completed(self) -> int:
        return self._count("completed")

    @property
    def failed(self) -> int:
        return self._count("failed")

    @property
    def cache_hits(self) -> int:
        return self._count("cache_hits")

    @property
    def cache_misses(self) -> int:
        return self._count("cache_misses")

    @property
    def coalesced(self) -> int:
        return self._count("coalesced")

    @property
    def cancelled(self) -> int:
        return self._count("cancelled")

    # -- recording --------------------------------------------------------

    def record_submitted(self) -> None:
        with self._lock:
            self.registry.counter("submitted").increment()

    def record_rejected(self) -> None:
        with self._lock:
            self.registry.counter("rejected").increment()

    def record_expired(self) -> None:
        with self._lock:
            self.registry.counter("expired").increment()

    def record_cancelled(self) -> None:
        with self._lock:
            self.registry.counter("cancelled").increment()

    def record_queue_wait(self, seconds: float) -> None:
        with self._lock:
            self.queue_wait.record(seconds)

    def record_completion(
        self,
        tenant: str,
        *,
        cached: bool,
        coalesced: bool = False,
        solve_s: float = 0.0,
        total_s: float = 0.0,
    ) -> None:
        with self._lock:
            self.registry.counter("completed").increment()
            self.per_tenant_completed[tenant] = (
                self.per_tenant_completed.get(tenant, 0) + 1
            )
            if cached:
                self.registry.counter("cache_hits").increment()
            else:
                self.registry.counter("cache_misses").increment()
                self.solve_latency.record(solve_s)
            if coalesced:
                self.registry.counter("coalesced").increment()
            self.turnaround.record(total_s)

    def record_failure(self) -> None:
        with self._lock:
            self.registry.counter("failed").increment()

    # -- reporting --------------------------------------------------------

    @property
    def cache_hit_rate(self) -> float:
        with self._lock:
            hits = self.registry.counter("cache_hits").value
            lookups = hits + self.registry.counter("cache_misses").value
            return hits / lookups if lookups else 0.0

    def snapshot(self) -> dict:
        with self._lock:
            snap = {name: self.registry.counter(name).value
                    for name in _COUNTERS}
            snap["cache_hit_rate"] = self.cache_hit_rate
            snap["queue_wait"] = self.queue_wait.summary()
            snap["solve_latency"] = self.solve_latency.summary()
            snap["turnaround"] = self.turnaround.summary()
            snap["per_tenant_completed"] = dict(self.per_tenant_completed)
            return snap

    def describe(self) -> str:
        """Human-readable summary block (the ``loadgen`` report)."""
        snap = self.snapshot()
        lines = [
            f"requests:    {snap['submitted']} submitted, "
            f"{snap['completed']} completed, {snap['failed']} failed, "
            f"{snap['rejected']} rejected, {snap['expired']} expired",
            f"plan cache:  {snap['cache_hits']} hits / "
            f"{snap['cache_hits'] + snap['cache_misses']} lookups "
            f"(hit rate {snap['cache_hit_rate']:.0%}, "
            f"{snap['coalesced']} coalesced)",
        ]
        for label, key in (
            ("queue wait", "queue_wait"),
            ("solve", "solve_latency"),
            ("turnaround", "turnaround"),
        ):
            s = snap[key]
            lines.append(
                f"{label + ':':12s} mean {s['mean_s'] * 1e3:7.1f} ms   "
                f"p50 {s['p50_s'] * 1e3:7.1f} ms   "
                f"p90 {s['p90_s'] * 1e3:7.1f} ms   "
                f"p99 {s['p99_s'] * 1e3:7.1f} ms"
            )
        return "\n".join(lines)
