"""Service-level metrics: request counters, latency distributions, cache
effectiveness.

Everything the ``loadgen`` summary and the throughput benchmark report
comes from here.  Latencies are kept raw (the service handles thousands,
not millions, of requests per process) so percentiles are exact.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, field


def percentile(values: list[float], p: float) -> float:
    """Exact percentile (nearest-rank with linear interpolation).

    Defined for every sample size: an empty sample yields ``0.0`` and a
    singleton yields its only element, so dashboards polling a series
    that has not recorded anything yet (or exactly one thing) get a
    number, never an exception.  Only an out-of-range ``p`` raises —
    consistently, regardless of sample size.
    """
    return _percentile_sorted(sorted(values), p)


def _percentile_sorted(data: list[float], p: float) -> float:
    """Percentile over already-sorted data (lets callers sort once)."""
    if not 0.0 <= p <= 100.0:
        raise ValueError("percentile must be in [0, 100]")
    if not data:
        return 0.0
    if len(data) == 1:
        return float(data[0])
    rank = (p / 100.0) * (len(data) - 1)
    lo = int(rank)
    hi = min(lo + 1, len(data) - 1)
    frac = rank - lo
    return data[lo] * (1.0 - frac) + data[hi] * frac


@dataclass
class LatencySeries:
    """A named collection of latency samples, in seconds."""

    samples: list[float] = field(default_factory=list)

    def record(self, seconds: float) -> None:
        self.samples.append(seconds)

    @property
    def count(self) -> int:
        return len(self.samples)

    @property
    def mean(self) -> float:
        return sum(self.samples) / len(self.samples) if self.samples else 0.0

    def p(self, q: float) -> float:
        return percentile(self.samples, q)

    def summary(self) -> dict[str, float]:
        data = sorted(self.samples)
        return {
            "count": float(self.count),
            "mean_s": self.mean,
            "p50_s": _percentile_sorted(data, 50),
            "p90_s": _percentile_sorted(data, 90),
            "p99_s": _percentile_sorted(data, 99),
            "max_s": data[-1] if data else 0.0,
        }


class ServiceMetrics:
    """Thread-safe counters and latency series for one service instance."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self.submitted = 0
        self.rejected = 0
        self.expired = 0
        self.completed = 0
        self.failed = 0
        self.cache_hits = 0
        self.cache_misses = 0
        self.coalesced = 0
        self.queue_wait = LatencySeries()
        self.solve_latency = LatencySeries()
        self.turnaround = LatencySeries()
        self.per_tenant_completed: dict[str, int] = {}

    # -- recording --------------------------------------------------------

    def record_submitted(self) -> None:
        with self._lock:
            self.submitted += 1

    def record_rejected(self) -> None:
        with self._lock:
            self.rejected += 1

    def record_expired(self) -> None:
        with self._lock:
            self.expired += 1

    def record_queue_wait(self, seconds: float) -> None:
        with self._lock:
            self.queue_wait.record(seconds)

    def record_completion(
        self,
        tenant: str,
        *,
        cached: bool,
        coalesced: bool = False,
        solve_s: float = 0.0,
        total_s: float = 0.0,
    ) -> None:
        with self._lock:
            self.completed += 1
            self.per_tenant_completed[tenant] = (
                self.per_tenant_completed.get(tenant, 0) + 1
            )
            if cached:
                self.cache_hits += 1
            else:
                self.cache_misses += 1
                self.solve_latency.record(solve_s)
            if coalesced:
                self.coalesced += 1
            self.turnaround.record(total_s)

    def record_failure(self) -> None:
        with self._lock:
            self.failed += 1

    # -- reporting --------------------------------------------------------

    @property
    def cache_hit_rate(self) -> float:
        lookups = self.cache_hits + self.cache_misses
        return self.cache_hits / lookups if lookups else 0.0

    def snapshot(self) -> dict:
        with self._lock:
            return {
                "submitted": self.submitted,
                "completed": self.completed,
                "failed": self.failed,
                "rejected": self.rejected,
                "expired": self.expired,
                "cache_hits": self.cache_hits,
                "cache_misses": self.cache_misses,
                "coalesced": self.coalesced,
                "cache_hit_rate": self.cache_hit_rate,
                "queue_wait": self.queue_wait.summary(),
                "solve_latency": self.solve_latency.summary(),
                "turnaround": self.turnaround.summary(),
                "per_tenant_completed": dict(self.per_tenant_completed),
            }

    def describe(self) -> str:
        """Human-readable summary block (the ``loadgen`` report)."""
        snap = self.snapshot()
        lines = [
            f"requests:    {snap['submitted']} submitted, "
            f"{snap['completed']} completed, {snap['failed']} failed, "
            f"{snap['rejected']} rejected, {snap['expired']} expired",
            f"plan cache:  {snap['cache_hits']} hits / "
            f"{snap['cache_hits'] + snap['cache_misses']} lookups "
            f"(hit rate {snap['cache_hit_rate']:.0%}, "
            f"{snap['coalesced']} coalesced)",
        ]
        for label, key in (
            ("queue wait", "queue_wait"),
            ("solve", "solve_latency"),
            ("turnaround", "turnaround"),
        ):
            s = snap[key]
            lines.append(
                f"{label + ':':12s} mean {s['mean_s'] * 1e3:7.1f} ms   "
                f"p50 {s['p50_s'] * 1e3:7.1f} ms   "
                f"p90 {s['p90_s'] * 1e3:7.1f} ms   "
                f"p99 {s['p99_s'] * 1e3:7.1f} ms"
            )
        return "\n".join(lines)
