"""A small thread-safe LRU cache.

Backs both the plan cache (fingerprint -> :class:`ExecutionPlan`) and the
warm-model cache (fingerprint -> :class:`BuiltModel`).  Entries are
treated as immutable by convention; eviction is strict LRU.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from dataclasses import dataclass
from typing import Generic, Hashable, TypeVar

V = TypeVar("V")

_MISSING = object()


@dataclass
class CacheStats:
    hits: int = 0
    misses: int = 0
    evictions: int = 0

    @property
    def lookups(self) -> int:
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        return self.hits / self.lookups if self.lookups else 0.0


class LRUCache(Generic[V]):
    """Bounded mapping with least-recently-used eviction.

    ``capacity <= 0`` disables the cache (every lookup misses, nothing is
    retained) — useful for measuring cold-path latency.
    """

    def __init__(self, capacity: int = 128) -> None:
        self.capacity = capacity
        self._data: OrderedDict[Hashable, V] = OrderedDict()
        self._lock = threading.Lock()
        self.stats = CacheStats()

    def get(self, key: Hashable, default: V | None = None) -> V | None:
        with self._lock:
            value = self._data.get(key, _MISSING)
            if value is _MISSING:
                self.stats.misses += 1
                return default
            self._data.move_to_end(key)
            self.stats.hits += 1
            return value

    def put(self, key: Hashable, value: V) -> None:
        if self.capacity <= 0:
            return
        with self._lock:
            self._data[key] = value
            self._data.move_to_end(key)
            while len(self._data) > self.capacity:
                self._data.popitem(last=False)
                self.stats.evictions += 1

    def remove(self, key: Hashable) -> None:
        """Drop ``key`` if present (not counted as an eviction)."""
        with self._lock:
            self._data.pop(key, None)

    def __contains__(self, key: Hashable) -> bool:
        with self._lock:
            return key in self._data

    def __len__(self) -> int:
        with self._lock:
            return len(self._data)

    def clear(self) -> None:
        with self._lock:
            self._data.clear()

    @property
    def hit_rate(self) -> float:
        return self.stats.hit_rate
