"""Plan-cache machinery: a thread-safe LRU and the shared striped L2.

:class:`LRUCache` backs the per-shard plan cache (fingerprint ->
:class:`ExecutionPlan`) and the warm-model cache (fingerprint ->
:class:`BuiltModel`).  Entries are treated as immutable by convention;
eviction is strict LRU.

:class:`SharedPlanCache` is the second level behind the sharded
frontend: one lock-striped cache all broker shards share, so a plan
solved on any shard is a hit on every other, plus a cross-shard
single-flight table so concurrent identical cold requests on *different*
shards coalesce onto one solve instead of thundering the solver pool.
"""

from __future__ import annotations

import threading
import zlib
from collections import OrderedDict
from dataclasses import dataclass
from typing import Callable, Generic, Hashable, TypeVar

V = TypeVar("V")

_MISSING = object()


@dataclass
class CacheStats:
    hits: int = 0
    misses: int = 0
    evictions: int = 0

    @property
    def lookups(self) -> int:
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        return self.hits / self.lookups if self.lookups else 0.0


class LRUCache(Generic[V]):
    """Bounded mapping with least-recently-used eviction.

    ``capacity <= 0`` disables the cache (every lookup misses, nothing is
    retained) — useful for measuring cold-path latency.
    """

    def __init__(self, capacity: int = 128) -> None:
        self.capacity = capacity
        self._data: OrderedDict[Hashable, V] = OrderedDict()
        self._lock = threading.Lock()
        self.stats = CacheStats()

    def get(self, key: Hashable, default: V | None = None) -> V | None:
        with self._lock:
            value = self._data.get(key, _MISSING)
            if value is _MISSING:
                self.stats.misses += 1
                return default
            self._data.move_to_end(key)
            self.stats.hits += 1
            return value

    def put(self, key: Hashable, value: V) -> None:
        if self.capacity <= 0:
            return
        with self._lock:
            self._data[key] = value
            self._data.move_to_end(key)
            while len(self._data) > self.capacity:
                self._data.popitem(last=False)
                self.stats.evictions += 1

    def remove(self, key: Hashable) -> None:
        """Drop ``key`` if present (not counted as an eviction)."""
        with self._lock:
            self._data.pop(key, None)

    def __contains__(self, key: Hashable) -> bool:
        with self._lock:
            return key in self._data

    def __len__(self) -> int:
        with self._lock:
            return len(self._data)

    def clear(self) -> None:
        with self._lock:
            self._data.clear()

    @property
    def hit_rate(self) -> float:
        return self.stats.hit_rate


class SharedPlanCache:
    """The shared L2 plan cache: lock-striped segments + single-flight.

    Keys (problem fingerprints) map to one of ``stripes`` independent
    :class:`LRUCache` segments, so shards hitting disjoint fingerprints
    never contend on one lock.  Each stripe also carries a *flight
    table* implementing cross-shard single-flight:

    - :meth:`begin` is called by a shard about to start a cold solve.
      It returns ``("hit", plan)`` when the plan landed since the
      caller's cache miss, ``("leader", None)`` when the caller should
      run the solve (a flight is now registered under the key), or
      ``("joined", None)`` when another shard's solve is already in
      flight — the caller's ``on_done`` callback fires when that solve
      finishes.
    - :meth:`finish` is the leader's obligation on *every* terminal
      path: it publishes an optimal plan to the cache (before dropping
      the flight, so a racing ``begin`` finds one or the other, never a
      gap) and invokes the joined shards' callbacks outside the stripe
      lock as ``on_done(plan, error, budgeted)``.

    ``capacity <= 0`` disables retention (every ``get`` misses) but the
    single-flight table still coalesces concurrent identical solves.
    """

    def __init__(self, capacity: int = 4096, stripes: int = 16) -> None:
        if stripes <= 0:
            raise ValueError("stripes must be positive")
        per_stripe = max(1, capacity // stripes) if capacity > 0 else 0
        self._segments = [LRUCache(per_stripe) for _ in range(stripes)]
        self._flight_locks = [threading.Lock() for _ in range(stripes)]
        self._flights: list[dict[Hashable, list[Callable]]] = [
            {} for _ in range(stripes)
        ]

    def _index(self, key: Hashable) -> int:
        # crc32 over the fingerprint: stable across processes and runs
        # (``hash(str)`` is salted), cheap, and uniform enough to spread
        # stripes.
        return zlib.crc32(str(key).encode("utf-8")) % len(self._segments)

    # -- cache ------------------------------------------------------------

    def get(self, key: Hashable, default=None):
        return self._segments[self._index(key)].get(key, default)

    def put(self, key: Hashable, value) -> None:
        self._segments[self._index(key)].put(key, value)

    # -- single-flight ----------------------------------------------------

    def begin(self, key: Hashable, on_done: Callable) -> tuple[str, object]:
        index = self._index(key)
        with self._flight_locks[index]:
            plan = self._segments[index].get(key)
            if plan is not None:
                return ("hit", plan)
            flight = self._flights[index].get(key)
            if flight is not None:
                flight.append(on_done)
                return ("joined", None)
            self._flights[index][key] = []
            return ("leader", None)

    def finish(
        self,
        key: Hashable,
        plan=None,
        error: BaseException | None = None,
        budgeted: bool = False,
    ) -> None:
        index = self._index(key)
        if plan is not None:
            self._segments[index].put(key, plan)
        with self._flight_locks[index]:
            callbacks = self._flights[index].pop(key, [])
        # Outside the stripe lock: callbacks re-enter shard services
        # (taking their in-flight locks) and may submit follow-up work.
        for on_done in callbacks:
            on_done(plan, error, budgeted)

    def inflight(self) -> int:
        """Number of registered flights (introspection/tests)."""
        total = 0
        for lock, flights in zip(self._flight_locks, self._flights):
            with lock:
                total += len(flights)
        return total

    def __len__(self) -> int:
        return sum(len(segment) for segment in self._segments)

    def __contains__(self, key: Hashable) -> bool:
        return key in self._segments[self._index(key)]

    def stats(self) -> CacheStats:
        """Aggregated segment stats (hits/misses/evictions)."""
        total = CacheStats()
        for segment in self._segments:
            total.hits += segment.stats.hits
            total.misses += segment.stats.misses
            total.evictions += segment.stats.evictions
        return total
