"""The solver worker pool: bounded-concurrency LP solving.

Distinct models solve in parallel — in separate *processes* by default
(the LP work is CPU-bound; HiGHS holds the GIL for long stretches), or
in threads / inline for tests and small deployments.  Each request
carries a time budget that caps the solver's own cut-off (the paper's
three-minute CPLEX bound is the default ceiling).

Thread and inline modes additionally reuse warm :class:`BuiltModel`
objects through a fingerprint-keyed cache: a request whose plan was
evicted but whose model is still around skips the model-generation pass,
and the LP layer's compiled-matrix cache then makes the re-solve start
immediately.  (Process workers rebuild — shipping a model across a
process boundary costs more than generating it.)
"""

from __future__ import annotations

import concurrent.futures
import threading
from concurrent.futures import Future, ProcessPoolExecutor, ThreadPoolExecutor

from ..core.model_builder import BuiltModel, PlanningError, build_model
from ..core.plan import ExecutionPlan
from ..core.problem import PlanningProblem
from .cache import LRUCache

#: Supported execution modes.
MODES = ("process", "thread", "inline")


def solve_problem(
    problem: PlanningProblem,
    time_limit: float = 180.0,
    mip_gap: float = 0.01,
    backend: str = "auto",
) -> ExecutionPlan:
    """Cold solve: build the model and solve it (process-worker entry).

    Module-level so :class:`ProcessPoolExecutor` can pickle it.
    """
    built = build_model(problem)
    return _solve_built(built, problem, time_limit, mip_gap, backend)


def _solve_built(
    built: BuiltModel,
    problem: PlanningProblem,
    time_limit: float,
    mip_gap: float,
    backend: str,
) -> ExecutionPlan:
    solution = built.model.solve(
        backend=backend, time_limit=time_limit, mip_gap=mip_gap
    )
    if not solution.status.has_solution:
        raise PlanningError(
            f"planning failed for {problem.job.name!r}: "
            f"{solution.status.value} ({solution.message})",
            status=solution.status.value,
            budgeted=problem.goal.budget_usd is not None,
        )
    return built.extract_plan(solution)


class SolverPool:
    """Dispatches planning problems to solver workers.

    Parameters
    ----------
    max_workers:
        Bound on concurrent solves.
    mode:
        ``"process"`` (default), ``"thread"``, or ``"inline"`` (solve on
        the calling thread; concurrency 1 — deterministic, for tests).
    time_limit:
        Ceiling on any request's solver cut-off, seconds.
    mip_gap, backend:
        Passed through to :meth:`Model.solve`.
    model_cache:
        Optional :class:`LRUCache` of warm ``BuiltModel`` objects, used
        by thread/inline workers when the submit carries a fingerprint.
    incremental:
        Optional :class:`~repro.service.incremental.IncrementalSolver`.
        Thread/inline workers route their solves through it, so
        structurally repeated problems restart warm from the retained
        matrix.  (Process workers cannot share its in-memory state and
        always solve cold.)
    metrics:
        Optional :class:`~repro.obs.registry.MetricsRegistry` receiving
        ``model_cache.hit`` / ``model_cache.miss`` counters.
    """

    def __init__(
        self,
        max_workers: int = 2,
        mode: str = "process",
        time_limit: float = 180.0,
        mip_gap: float = 0.01,
        backend: str = "auto",
        model_cache: LRUCache | None = None,
        incremental=None,
        metrics=None,
    ) -> None:
        if mode not in MODES:
            raise ValueError(f"unknown pool mode {mode!r}; pick one of {MODES}")
        if max_workers <= 0:
            raise ValueError("max_workers must be positive")
        self.mode = mode
        self.max_workers = 1 if mode == "inline" else max_workers
        self.time_limit = time_limit
        self.mip_gap = mip_gap
        self.backend = backend
        self.model_cache = model_cache
        self.incremental = incremental
        self.metrics = metrics
        self._lock = threading.Lock()
        self._executor: concurrent.futures.Executor | None = None

    # -- lifecycle --------------------------------------------------------

    def _ensure_executor(self) -> concurrent.futures.Executor | None:
        with self._lock:
            if self._executor is None and self.mode != "inline":
                if self.mode == "process":
                    self._executor = ProcessPoolExecutor(max_workers=self.max_workers)
                else:
                    self._executor = ThreadPoolExecutor(
                        max_workers=self.max_workers,
                        thread_name_prefix="repro-solver",
                    )
            return self._executor

    def shutdown(self, wait: bool = True) -> None:
        with self._lock:
            executor, self._executor = self._executor, None
        if executor is not None:
            executor.shutdown(wait=wait)

    # -- dispatch ---------------------------------------------------------

    def effective_time_limit(self, time_budget_s: float | None) -> float:
        if time_budget_s is None:
            return self.time_limit
        return max(1e-3, min(self.time_limit, time_budget_s))

    def submit(
        self,
        problem: PlanningProblem,
        fingerprint: str | None = None,
        time_budget_s: float | None = None,
    ) -> "Future[ExecutionPlan]":
        """Schedule a solve; the future resolves to an ExecutionPlan or
        raises the solver's :class:`PlanningError`."""
        limit = self.effective_time_limit(time_budget_s)
        if self.mode == "process":
            executor = self._ensure_executor()
            assert executor is not None
            return executor.submit(
                solve_problem, problem, limit, self.mip_gap, self.backend
            )
        if self.mode == "thread":
            executor = self._ensure_executor()
            assert executor is not None
            return executor.submit(self._solve_warm, problem, fingerprint, limit)
        future: "Future[ExecutionPlan]" = Future()
        try:
            future.set_result(self._solve_warm(problem, fingerprint, limit))
        except BaseException as exc:  # noqa: BLE001 - forwarded to caller
            future.set_exception(exc)
        return future

    def _solve_warm(
        self,
        problem: PlanningProblem,
        fingerprint: str | None,
        time_limit: float,
    ) -> ExecutionPlan:
        """Thread/inline worker: reuse warm solver state when available."""
        if self.incremental is not None:
            # The incremental solver subsumes the BuiltModel cache: it
            # retains compiled matrices per structure and re-certifies
            # the previous answer under the new data.
            return self.incremental.solve(problem, time_limit)
        built: BuiltModel | None = None
        if self.model_cache is not None and fingerprint:
            built = self.model_cache.get(fingerprint)
            self._bump("model_cache.miss" if built is None else "model_cache.hit")
        if built is None:
            built = build_model(problem)
            if self.model_cache is not None and fingerprint:
                self.model_cache.put(fingerprint, built)
        return _solve_built(built, problem, time_limit, self.mip_gap, self.backend)

    def _bump(self, name: str) -> None:
        if self.metrics is not None:
            self.metrics.counter(name).increment()
