"""Deployment sessions: the deploy/monitor/adapt side of the service.

A plan the service accepted is only half the story — Conductor then
deploys it, monitors progress and re-plans on deviation (paper Sections
5.2/5.4).  A :class:`DeploySession` runs one tenant's full
:class:`~repro.core.controller.JobController` loop on a background
thread and streams each :class:`IntervalOutcome` as it happens, so a
front-end can render live progress; the :class:`SessionManager` tracks
many tenants' sessions side by side.
"""

from __future__ import annotations

import itertools
import queue
import threading
from typing import Iterator

from ..core.conditions import ActualConditions
from ..core.controller import ControllerConfig, ControllerResult, JobController
from ..core.executor import IntervalOutcome
from ..core.planner import Planner

_DONE = object()


class DeploySession:
    """One deployment run, streaming progress as it executes."""

    def __init__(
        self,
        session_id: int,
        tenant: str,
        controller: JobController,
        actual: ActualConditions | None = None,
    ) -> None:
        self.session_id = session_id
        self.tenant = tenant
        self.controller = controller
        self.actual = actual
        self.result: ControllerResult | None = None
        self.error: Exception | None = None
        self._events: "queue.Queue" = queue.Queue()
        self._thread = threading.Thread(
            target=self._run, name=f"repro-session-{session_id}", daemon=True
        )

    def _start(self) -> "DeploySession":
        self._thread.start()
        return self

    def _run(self) -> None:
        try:
            self.result = self.controller.run(
                self.actual, on_interval=self._events.put
            )
        except Exception as exc:  # surfaced via wait()/events()
            self.error = exc
        finally:
            self._events.put(_DONE)

    # -- consumption ------------------------------------------------------

    def events(self, timeout: float | None = None) -> Iterator[IntervalOutcome]:
        """Yield interval outcomes as the deployment produces them.

        Ends when the controller finishes; raises the controller's
        exception if the run failed.  ``timeout`` bounds the wait for
        *each* event; a stalled stream raises :class:`TimeoutError`
        (the package-wide convention, matching :meth:`wait`).
        """
        while True:
            try:
                event = self._events.get(timeout=timeout)
            except queue.Empty:
                raise TimeoutError(
                    f"session {self.session_id}: no progress within {timeout}s"
                ) from None
            if event is _DONE:
                break
            yield event
        if self.error is not None:
            raise self.error

    def wait(self, timeout: float | None = None) -> ControllerResult:
        """Block until the deployment completes and return its result."""
        self._thread.join(timeout)
        if self._thread.is_alive():
            raise TimeoutError(
                f"session {self.session_id} still running after {timeout}s"
            )
        if self.error is not None:
            raise self.error
        assert self.result is not None
        return self.result

    @property
    def running(self) -> bool:
        return self._thread.is_alive()


class SessionManager:
    """Starts and tracks deployment sessions across tenants."""

    def __init__(self) -> None:
        self._sessions: dict[int, DeploySession] = {}
        self._ids = itertools.count(1)
        self._lock = threading.Lock()

    def start(
        self,
        tenant: str,
        job,
        services,
        goal,
        network=None,
        actual: ActualConditions | None = None,
        planner: Planner | None = None,
        config: ControllerConfig | None = None,
        predictor=None,
        trace=None,
        trace_offset_hours: float = 0.0,
        problem_kwargs: dict | None = None,
    ) -> DeploySession:
        """Launch a controller loop for an accepted plan's job."""
        controller = JobController(
            job,
            services,
            goal,
            network=network,
            planner=planner,
            config=config,
            predictor=predictor,
            trace=trace,
            trace_offset_hours=trace_offset_hours,
            problem_kwargs=problem_kwargs,
        )
        with self._lock:
            session_id = next(self._ids)
            session = DeploySession(session_id, tenant, controller, actual)
            self._sessions[session_id] = session
        return session._start()

    def get(self, session_id: int) -> DeploySession:
        with self._lock:
            return self._sessions[session_id]

    def sessions(self, tenant: str | None = None) -> list[DeploySession]:
        with self._lock:
            found = list(self._sessions.values())
        if tenant is not None:
            found = [s for s in found if s.tenant == tenant]
        return found

    def join_all(self, timeout: float | None = None) -> None:
        for session in self.sessions():
            if session.running:
                session.wait(timeout)
