"""Deployment sessions: the deploy/monitor/adapt side of the service.

A plan the service accepted is only half the story — Conductor then
deploys it, monitors progress and re-plans on deviation (paper Sections
5.2/5.4).  A :class:`DeploySession` runs one tenant's full
:class:`~repro.core.controller.JobController` loop on a background
thread and streams each :class:`IntervalOutcome` (and, opt-in, each
:class:`~repro.core.controller.ReplanRecord`) as it happens, so a
front-end can render live progress; the :class:`SessionManager` tracks
many tenants' sessions side by side.

Sessions are the *threaded* way to run concurrent deployments — each in
its own private world.  When deployments should share one simulated
cloud and react to its events together, use the lockstep fleet runtime
(:mod:`repro.fleet`) instead.
"""

from __future__ import annotations

import itertools
import queue
import threading
import time
from typing import Iterator

from ..core.conditions import ActualConditions
from ..core.controller import (
    ControllerConfig,
    ControllerResult,
    JobController,
    ReplanRecord,
)
from ..core.executor import IntervalOutcome
from ..core.planner import Planner
from ..core.triggers import TriggerPolicy

_DONE = object()


class DeploySession:
    """One deployment run, streaming progress as it executes."""

    def __init__(
        self,
        session_id: int,
        tenant: str,
        controller: JobController,
        actual: ActualConditions | None = None,
        tracer=None,
    ) -> None:
        self.session_id = session_id
        self.tenant = tenant
        self.controller = controller
        self.actual = actual
        #: Optional :class:`~repro.obs.trace.RunTracer` (``begin`` already
        #: called) narrating this deployment into a durable trace log.
        self.tracer = tracer
        self.result: ControllerResult | None = None
        self.error: Exception | None = None
        self._events: "queue.Queue" = queue.Queue()
        self._thread = threading.Thread(
            target=self._run, name=f"repro-session-{session_id}", daemon=True
        )

    def _start(self) -> "DeploySession":
        self._thread.start()
        return self

    def _run(self) -> None:
        try:
            if self.tracer is None:
                self.result = self.controller.run(
                    self.actual,
                    on_interval=self._events.put,
                    on_replan=self._events.put,
                )
            else:
                self.result = self._run_traced()
        except Exception as exc:  # surfaced via wait()/events()
            self.error = exc
        finally:
            self._events.put(_DONE)

    def _run_traced(self) -> ControllerResult:
        """The controller loop, narrated record-by-record into the tracer.

        Equivalent to :meth:`JobController.run` (the event queue sees the
        identical stream), but every seam also writes a trace record —
        and every record of the run is emitted from *this* thread, so the
        log's order is deterministic.  After each interval a ``snapshot``
        record captures :meth:`ControllerRun.snapshot`, which is what
        crash-resume rehydrates from.
        """
        # Local import: the service layer sits below repro.api, but the
        # wire schema for interval/replan trace payloads lives there;
        # importing it at module scope would cycle through
        # repro.api.__init__ -> orchestrator -> service.
        from ..api.schemas import DeployEventV1

        tracer = self.tracer

        def on_replan(record: ReplanRecord) -> None:
            self._events.put(record)
            tracer.deploy_event(DeployEventV1.from_replan(
                record,
                tenant=self.tenant,
                session_id=self.session_id,
                index=len(run.outcomes),
            ))

        run = self.controller.start(self.actual, on_replan=on_replan)
        backend = self.controller.backend
        tracer.lifecycle(
            self.tenant, "started", hour=run.state.hour,
            session_id=self.session_id,
            # Recorded only off the sim default, so pre-backend sim logs
            # stay byte-identical.
            backend=backend if backend != "sim" else "",
        )
        try:
            step = 0
            while (outcome := run.step()) is not None:
                step += 1
                self._events.put(outcome)
                tracer.deploy_event(DeployEventV1.from_outcome(
                    outcome, tenant=self.tenant, session_id=self.session_id,
                ))
                tracer.snapshot(
                    self.tenant, step, run.snapshot(),
                    hour=run.state.hour, session_id=self.session_id,
                )
            result = run.result()
        finally:
            run.close()
        tracer.lifecycle(
            self.tenant,
            "completed" if result.completed else "failed",
            hour=run.state.hour,
            session_id=self.session_id,
            cost=result.total_cost,
            replans=result.replans,
            completion_hours=result.completion_hours,
        )
        tracer.end(
            {
                "completed": result.completed,
                "completion_hours": result.completion_hours,
                "total_cost": result.total_cost,
                "replans": result.replans,
                "intervals": len(result.outcomes),
                "deadline_met": result.deadline_met,
            },
            hour=run.state.hour,
        )
        return result

    # -- consumption ------------------------------------------------------

    def events(
        self,
        timeout: float | None = None,
        include_replans: bool = False,
    ) -> Iterator[IntervalOutcome | ReplanRecord]:
        """Yield the deployment's progress events as they happen.

        By default every item is an :class:`IntervalOutcome` — one
        executed plan interval, in order.  With ``include_replans=True``
        the stream additionally carries a
        :class:`~repro.core.controller.ReplanRecord` at the moment each
        re-plan is adopted (immediately *before* the first interval the
        new plan executes), which is how the orchestrator surfaces
        ``replan`` deploy events on the wire.

        The iterator ends when the controller finishes and re-raises the
        controller's exception if the run failed.  ``timeout`` bounds the
        wait for *each* event; a stalled stream raises
        :class:`TimeoutError` (the package-wide convention, matching
        :meth:`wait`).
        """
        while True:
            try:
                event = self._events.get(timeout=timeout)
            except queue.Empty:
                raise TimeoutError(
                    f"session {self.session_id}: no progress within {timeout}s"
                ) from None
            if event is _DONE:
                break
            if isinstance(event, ReplanRecord) and not include_replans:
                continue
            yield event
        if self.error is not None:
            raise self.error

    def wait(self, timeout: float | None = None) -> ControllerResult:
        """Block until the deployment completes and return its result."""
        self._thread.join(timeout)
        if self._thread.is_alive():
            raise TimeoutError(
                f"session {self.session_id} still running after {timeout}s"
            )
        if self.error is not None:
            raise self.error
        assert self.result is not None
        return self.result

    def join(self, timeout: float | None = None) -> bool:
        """Wait up to ``timeout`` for completion; True when finished.

        Unlike :meth:`wait` this never raises — neither on timeout nor
        on a failed run — so callers that only need "is it done yet"
        (e.g. :meth:`SessionManager.join_all`) can poll safely.
        """
        self._thread.join(timeout)
        return not self._thread.is_alive()

    @property
    def running(self) -> bool:
        return self._thread.is_alive()


class SessionManager:
    """Starts and tracks deployment sessions across tenants."""

    def __init__(self) -> None:
        self._sessions: dict[int, DeploySession] = {}
        self._ids = itertools.count(1)
        self._lock = threading.Lock()

    def start(
        self,
        tenant: str,
        job,
        services,
        goal,
        network=None,
        actual: ActualConditions | None = None,
        planner: Planner | None = None,
        config: ControllerConfig | None = None,
        predictor=None,
        trace=None,
        trace_offset_hours: float = 0.0,
        problem_kwargs: dict | None = None,
        triggers: TriggerPolicy | None = None,
        tracer=None,
        backend: str = "sim",
        backend_options: dict | None = None,
    ) -> DeploySession:
        """Launch a controller loop for an accepted plan's job."""
        controller = JobController(
            job,
            services,
            goal,
            network=network,
            planner=planner,
            config=config,
            predictor=predictor,
            trace=trace,
            trace_offset_hours=trace_offset_hours,
            problem_kwargs=problem_kwargs,
            triggers=triggers,
            backend=backend,
            backend_options=backend_options,
        )
        with self._lock:
            session_id = next(self._ids)
            session = DeploySession(
                session_id, tenant, controller, actual, tracer=tracer
            )
            self._sessions[session_id] = session
        return session._start()

    def get(self, session_id: int) -> DeploySession:
        with self._lock:
            return self._sessions[session_id]

    def sessions(self, tenant: str | None = None) -> list[DeploySession]:
        with self._lock:
            found = list(self._sessions.values())
        if tenant is not None:
            found = [s for s in found if s.tenant == tenant]
        return found

    def join_all(self, timeout: float | None = None) -> list[DeploySession]:
        """Wait for every session; return the ones still running.

        ``timeout`` bounds the *total* wait across all sessions.  When a
        session's thread outlives the budget, ``join_all`` returns it in
        the result list instead of hanging or raising, so a shutdown
        path can report stragglers and move on.  An empty list means
        everything finished.
        """
        deadline = None if timeout is None else time.monotonic() + timeout
        stragglers: list[DeploySession] = []
        for session in self.sessions():
            remaining: float | None = None
            if deadline is not None:
                remaining = max(0.0, deadline - time.monotonic())
            if not session.join(remaining):
                stragglers.append(session)
        return stragglers
