"""The multi-tenant planning service.

``PlanningService`` is the front-end the tentpole describes: tenants
submit :class:`PlanningProblem` objects and get execution plans back,
with the service deciding *when* and *whether* to run the LP at all:

1. the **broker** (per-tenant queues, admission control) orders the
   backlog by priority and turnaround deadline;
2. the **fingerprint + plan cache** short-circuits identical or
   equivalent requests — a cache hit never touches the solver, and
   identical requests already *in flight* coalesce onto one solve;
3. the **solver pool** runs distinct models concurrently under a
   bounded worker count and per-request time budgets;
4. **metrics** record queue wait, solve latency percentiles and cache
   effectiveness.

The deploy/monitor/adapt side of accepted plans lives in
:mod:`repro.service.session`.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass

from ..core.plan import ExecutionPlan
from ..core.problem import PlanningProblem
from .broker import AdmissionError, RequestBroker
from .cache import LRUCache, SharedPlanCache
from .fingerprint import problem_fingerprint
from .metrics import ServiceMetrics
from .pool import SolverPool
from .requests import (
    PlanRequest,
    PlanResult,
    RequestStatus,
    SubmittedRequest,
    error_code_for_exception,
)

__all__ = ["AdmissionError", "PlanningService", "ServiceConfig"]

#: EWMA weight for the rolling queue-wait estimate behind deadline-aware
#: admission (one new observation moves the estimate by this fraction).
_QUEUE_WAIT_EWMA_ALPHA = 0.2


@dataclass
class ServiceConfig:
    """Tuning knobs of one service instance."""

    #: Concurrent solver workers.
    max_workers: int = 2
    #: ``"process"`` | ``"thread"`` | ``"inline"`` (see :class:`SolverPool`).
    pool_mode: str = "process"
    #: Plan-cache entries (fingerprint -> ExecutionPlan).
    cache_capacity: int = 256
    #: Warm BuiltModel entries (thread/inline pools only).
    model_cache_capacity: int = 32
    max_pending_total: int = 256
    max_pending_per_tenant: int = 64
    #: Ceiling on any request's solver cut-off (paper Section 4.8).
    solver_time_limit_s: float = 180.0
    mip_gap: float = 0.01
    backend: str = "auto"
    #: Route thread/inline solves through the delta-aware
    #: :class:`~repro.service.incremental.IncrementalSolver`: requests
    #: that are structurally identical to an earlier solve (same
    #: horizon/services, different numbers) restart warm and may be
    #: answered by re-certifying the previous plan within ``mip_gap``.
    #: Off by default — the stock service answers every distinct request
    #: with its own cold solve.
    incremental: bool = False
    #: Route *every* admitted request through the broker queue, cache
    #: hits included.  The default fast path answers cache hits
    #: synchronously at submit time (they "never consume queue space"),
    #: which can reorder a tenant's hit ahead of its own earlier queued
    #: miss; the sharded socket frontend turns this on so per-tenant
    #: FIFO holds across hits and misses alike.
    ordered_admission: bool = False
    #: Shed requests at admission when the shard's rolling queue-wait
    #: estimate says the turnaround deadline cannot be met (code
    #: ``rejected``, like any other admission refusal).  Conservative:
    #: only trips once the estimate exceeds twice the deadline, so cold
    #: shards never shed.  Off by default — the stock service lets such
    #: requests expire in queue instead.
    deadline_shedding: bool = False


class PlanningService:
    """Accepts, schedules, caches and solves tenants' planning requests.

    Parameters
    ----------
    config:
        Tuning knobs (:class:`ServiceConfig`).
    shared_cache:
        Optional :class:`SharedPlanCache` — the L2 behind a sharded
        frontend.  The per-service LRU stays the L1: lookups promote L2
        hits into L1, optimal solves publish to both, and cold solves
        coalesce *across* services through the L2's single-flight table.
    shard_id:
        This service's shard index in a sharded frontend; labels its
        metrics in merged snapshots.
    metrics:
        An existing :class:`ServiceMetrics` to record into (defaults to
        a fresh one tagged with ``shard_id``).
    """

    def __init__(
        self,
        config: ServiceConfig | None = None,
        *,
        shared_cache: SharedPlanCache | None = None,
        shard_id: int | None = None,
        metrics: ServiceMetrics | None = None,
    ) -> None:
        self.config = config or ServiceConfig()
        self.shard_id = shard_id
        self.metrics = (
            metrics if metrics is not None else ServiceMetrics(shard=shard_id)
        )
        self.shared_cache = shared_cache
        self.broker = RequestBroker(
            max_pending_total=self.config.max_pending_total,
            max_pending_per_tenant=self.config.max_pending_per_tenant,
        )
        self.plan_cache: LRUCache[ExecutionPlan] = LRUCache(
            self.config.cache_capacity
        )
        self.model_cache: LRUCache = LRUCache(self.config.model_cache_capacity)
        self.incremental = None
        if self.config.incremental:
            from .incremental import IncrementalSolver

            self.incremental = IncrementalSolver(
                time_limit=self.config.solver_time_limit_s,
                mip_gap=self.config.mip_gap,
                backend=self.config.backend,
                metrics=self.metrics.registry,
            )
        self.pool = SolverPool(
            max_workers=self.config.max_workers,
            mode=self.config.pool_mode,
            time_limit=self.config.solver_time_limit_s,
            mip_gap=self.config.mip_gap,
            backend=self.config.backend,
            model_cache=self.model_cache,
            incremental=self.incremental,
            metrics=self.metrics.registry,
        )
        self._slots = threading.Semaphore(self.pool.max_workers)
        #: Rolling estimate of broker queue wait (written only by the
        #: dispatcher thread; read racily by admission — a stale value
        #: just delays the deadline-shedding trip by a few dispatches).
        self._queue_wait_ewma = 0.0
        self._inflight: dict[str, list[SubmittedRequest]] = {}
        #: Fingerprints whose running solve is shaped by the primary's own
        #: time budget / SLO; coalesced duplicates must not inherit it.
        self._inflight_budgeted: set[str] = set()
        self._inflight_lock = threading.Lock()
        self._next_id = 0
        self._id_lock = threading.Lock()
        self._running = False
        self._stopped = False
        self._dispatcher: threading.Thread | None = None
        self._start_lock = threading.Lock()

    # -- lifecycle --------------------------------------------------------

    def start(self) -> "PlanningService":
        """Start the dispatcher (idempotent; ``submit`` calls it lazily).

        A stopped service never restarts: its broker is closed for good,
        so only cache hits are served and new work is refused.
        """
        with self._start_lock:
            if not self._running and not self._stopped:
                self._running = True
                self._dispatcher = threading.Thread(
                    target=self._dispatch_loop, name="repro-dispatcher", daemon=True
                )
                self._dispatcher.start()
        return self

    def stop(self, wait: bool = True) -> None:
        """Stop accepting work; reject the backlog; drain in-flight solves."""
        with self._start_lock:
            self._running = False
            self._stopped = True
        self.broker.close()
        for ticket in self.broker.drain():
            self._finish(
                ticket,
                RequestStatus.REJECTED,
                error="service stopped",
                error_code="rejected",
            )
            self.metrics.record_rejected()
        if self._dispatcher is not None:
            self._dispatcher.join(timeout=10.0)
            self._dispatcher = None
        self.pool.shutdown(wait=wait)

    def __enter__(self) -> "PlanningService":
        return self.start()

    def __exit__(self, *exc_info) -> None:
        self.stop()

    # -- submission -------------------------------------------------------

    def submit(
        self,
        problem: PlanningProblem,
        *,
        tenant: str = "default",
        priority: int = 1,
        deadline_s: float | None = None,
        time_budget_s: float | None = None,
    ) -> SubmittedRequest:
        """Submit one problem; returns a handle to block on."""
        return self.submit_request(
            PlanRequest(
                tenant=tenant,
                problem=problem,
                priority=priority,
                deadline_s=deadline_s,
                time_budget_s=time_budget_s,
            )
        )

    def submit_request(
        self,
        request: PlanRequest,
        block: bool = False,
        poll_s: float = 0.05,
    ) -> SubmittedRequest:
        """Submit a prepared :class:`PlanRequest`.

        Raises :class:`AdmissionError` when the broker refuses the
        request; with ``block=True`` a *full* backlog applies
        backpressure instead (waiting for the dispatcher to drain) and
        only a closed broker still raises.  The request is counted and
        time-stamped once, so an SLO covers time spent blocked.  Cache
        hits complete synchronously and never consume queue space.
        """
        self.start()
        fingerprint = problem_fingerprint(request.problem)
        ticket = SubmittedRequest(request, self._allocate_id(), fingerprint)
        self.metrics.record_submitted()

        if not self.config.ordered_admission:
            cached = self._cached_plan(fingerprint)
            if cached is not None:
                self._finish(
                    ticket, RequestStatus.COMPLETED, plan=cached, cached=True
                )
                self.metrics.record_completion(
                    request.tenant, cached=True, total_s=0.0
                )
                return ticket

        if (
            self.config.deadline_shedding
            and request.deadline_s is not None
            and self.broker.pending > 0
            and self._queue_wait_ewma > 2.0 * request.deadline_s
        ):
            self.metrics.record_rejected()
            raise AdmissionError(
                f"estimated queue wait {self._queue_wait_ewma:.2f}s cannot "
                f"meet the {request.deadline_s}s turnaround deadline"
            )

        while True:
            try:
                self.broker.submit(ticket)
                return ticket
            except AdmissionError:
                if not block or self.broker.closed:
                    self.metrics.record_rejected()
                    raise
                time.sleep(poll_s)

    def _allocate_id(self) -> int:
        with self._id_lock:
            self._next_id += 1
            return self._next_id

    # -- cache ------------------------------------------------------------

    def _cached_plan(self, fingerprint: str) -> ExecutionPlan | None:
        """L1 lookup, falling back to (and promoting from) the shared L2."""
        plan = self.plan_cache.get(fingerprint)
        if plan is not None or self.shared_cache is None:
            return plan
        plan = self.shared_cache.get(fingerprint)
        if plan is not None:
            self.plan_cache.put(fingerprint, plan)
            self.metrics.registry.counter("cache_l2_hits").increment()
        return plan

    # -- dispatch ---------------------------------------------------------

    def _dispatch_loop(self) -> None:
        while self._running:
            ticket = self.broker.pop(timeout=0.2)
            if ticket is None:
                if self.broker.closed:
                    break
                continue
            try:
                self._dispatch(ticket)
            except Exception as exc:  # pragma: no cover - defensive
                self._finish(
                    ticket,
                    RequestStatus.FAILED,
                    error=str(exc),
                    error_code=error_code_for_exception(exc),
                )
                self.metrics.record_failure()

    def _dispatch(self, ticket: SubmittedRequest) -> None:
        now = time.perf_counter()
        queue_wait = now - ticket.submitted_at
        self.metrics.record_queue_wait(queue_wait)
        self._queue_wait_ewma += _QUEUE_WAIT_EWMA_ALPHA * (
            queue_wait - self._queue_wait_ewma
        )

        if ticket.cancelled:
            # The submitter (a disconnected socket client) is gone; the
            # result would never be read.
            self._finish(
                ticket,
                RequestStatus.REJECTED,
                error="client disconnected before dispatch",
                error_code="rejected",
                queue_wait_s=queue_wait,
            )
            self.metrics.record_cancelled()
            return

        expires_at = ticket.expires_at
        if expires_at is not None and now >= expires_at:
            self._finish(
                ticket,
                RequestStatus.EXPIRED,
                error=f"turnaround deadline of {ticket.request.deadline_s}s "
                f"expired after {queue_wait:.2f}s in queue",
                error_code="expired",
                queue_wait_s=queue_wait,
            )
            self.metrics.record_expired()
            return

        # The plan may have landed while this request was queued.
        plan = self._cached_plan(ticket.fingerprint)
        if plan is not None:
            self._complete_cached([ticket], plan)
            return

        # Identical problem already solving: piggyback on that solve.
        with self._inflight_lock:
            waiters = self._inflight.get(ticket.fingerprint)
            if waiters is not None:
                waiters.append(ticket)
                return
            self._inflight[ticket.fingerprint] = []

        # Second cache look, after registering: _on_solved publishes the
        # plan *before* popping its in-flight entry, so missing the cache
        # above and finding no entry can also mean the plan landed in
        # between.  This look closes that gap (an optimal plan is always
        # visible here; a failed or cut-off solve legitimately re-runs).
        plan = self._cached_plan(ticket.fingerprint)
        if plan is not None:
            with self._inflight_lock:
                late_waiters = self._inflight.pop(ticket.fingerprint, [])
            self._complete_cached([ticket, *late_waiters], plan)
            return

        # Cross-shard single-flight: either the plan landed in the L2
        # since the look above (hit), another shard is already solving it
        # (joined — ``_on_flight_done`` fires when that solve finishes),
        # or this shard leads the solve and owes the L2 a ``finish`` on
        # every terminal path below.
        if self.shared_cache is not None:
            verdict, l2_plan = self.shared_cache.begin(
                ticket.fingerprint,
                lambda plan, error, budgeted, _ticket=ticket: (
                    self._on_flight_done(_ticket, plan, error, budgeted)
                ),
            )
            if verdict == "hit":
                with self._inflight_lock:
                    late_waiters = self._inflight.pop(ticket.fingerprint, [])
                self.plan_cache.put(ticket.fingerprint, l2_plan)
                self.metrics.registry.counter("cache_l2_hits").increment()
                self._complete_cached([ticket, *late_waiters], l2_plan)
                return
            if verdict == "joined":
                # Keep the local in-flight entry: this ticket fronts the
                # remote flight for its shard, and later identical local
                # requests coalesce behind it as usual.
                return
            ticket.led_flight = True

        # Bounded concurrency: hold dispatch (and therefore ordering)
        # until a worker slot frees up.
        while not self._slots.acquire(timeout=0.2):
            if not self._running:
                with self._inflight_lock:
                    self._inflight.pop(ticket.fingerprint, None)
                if ticket.led_flight:
                    # Never solved: send joined shards back to their
                    # queues for their own attempt.
                    ticket.led_flight = False
                    self.shared_cache.finish(ticket.fingerprint)
                self._finish(
                    ticket,
                    RequestStatus.REJECTED,
                    error="service stopped",
                    error_code="rejected",
                )
                self.metrics.record_rejected()
                return

        # The slot wait may have outlived the turnaround deadline.  No
        # waiters can have coalesced yet — only this (dispatcher) thread
        # appends them, and it has been blocked here — so expiring the
        # primary just drops the entry and gives the slot back.
        expires_at = ticket.expires_at
        if expires_at is not None and time.perf_counter() >= expires_at:
            with self._inflight_lock:
                self._inflight.pop(ticket.fingerprint, None)
            if ticket.led_flight:
                ticket.led_flight = False
                self.shared_cache.finish(ticket.fingerprint)
            self._finish(
                ticket,
                RequestStatus.EXPIRED,
                error="turnaround deadline expired while waiting for a "
                "solver slot",
                error_code="expired",
            )
            self.metrics.record_expired()
            self._slots.release()
            return

        budget = ticket.request.time_budget_s
        if ticket.expires_at is not None:
            remaining = max(1e-3, ticket.expires_at - time.perf_counter())
            budget = remaining if budget is None else min(budget, remaining)
        if budget is not None:
            with self._inflight_lock:
                self._inflight_budgeted.add(ticket.fingerprint)
        ticket.dispatched_at = time.perf_counter()
        try:
            future = self.pool.submit(
                ticket.request.problem, ticket.fingerprint, budget
            )
        except BaseException as exc:
            # A broken pool must not leak the slot or strand coalesced
            # waiters on a dead in-flight entry.
            self._slots.release()
            with self._inflight_lock:
                waiters = self._inflight.pop(ticket.fingerprint, [])
                self._inflight_budgeted.discard(ticket.fingerprint)
            if ticket.led_flight:
                ticket.led_flight = False
                self.shared_cache.finish(
                    ticket.fingerprint, error=exc, budgeted=budget is not None
                )
            message = f"{type(exc).__name__}: {exc}"
            code = error_code_for_exception(exc)
            for stranded in (ticket, *waiters):
                self._finish(
                    stranded, RequestStatus.FAILED,
                    error=message, error_code=code,
                )
                self.metrics.record_failure()
            return
        future.add_done_callback(lambda fut: self._on_solved(ticket, fut))

    def _complete_cached(
        self, tickets: list[SubmittedRequest], plan: ExecutionPlan
    ) -> None:
        """Finish ``tickets`` with a plan served from the cache."""
        now = time.perf_counter()
        for hit in tickets:
            self._finish(
                hit,
                RequestStatus.COMPLETED,
                plan=plan,
                cached=True,
                queue_wait_s=now - hit.submitted_at,
            )
            self.metrics.record_completion(
                hit.tenant, cached=True, total_s=now - hit.submitted_at
            )

    def _on_flight_done(
        self,
        primary: SubmittedRequest,
        plan: ExecutionPlan | None,
        error: BaseException | None,
        budgeted: bool,
    ) -> None:
        """A cross-shard flight this shard joined has settled.

        Runs on the *leader* shard's completing thread.  ``primary`` is
        the local ticket that joined the flight; any identical local
        requests dispatched since are coalesced behind it in this
        shard's in-flight table.  Mirrors the local coalescing rules of
        :meth:`_on_solved`: a published plan serves everyone (minus
        tickets whose SLO lapsed during the shared solve); a failure
        shaped by the leader's own time budget — or a cut-off incumbent,
        which the leader never publishes — sends the tickets back to the
        queue for their own solve; any other failure is authoritative
        and fails them with the same code.
        """
        with self._inflight_lock:
            waiters = self._inflight.pop(primary.fingerprint, [])
        tickets = [primary, *waiters]
        if plan is not None:
            self.plan_cache.put(primary.fingerprint, plan)
            now = time.perf_counter()
            for ticket in tickets:
                expires_at = ticket.expires_at
                if expires_at is not None and now >= expires_at:
                    self._finish(
                        ticket,
                        RequestStatus.EXPIRED,
                        error="turnaround deadline expired during the "
                        "coalesced solve",
                        error_code="expired",
                    )
                    self.metrics.record_expired()
                    continue
                self._finish(
                    ticket,
                    RequestStatus.COMPLETED,
                    plan=plan,
                    cached=True,
                    queue_wait_s=now - ticket.submitted_at,
                )
                self.metrics.record_completion(
                    ticket.tenant,
                    cached=True,
                    coalesced=True,
                    total_s=now - ticket.submitted_at,
                )
            return
        if error is not None and not budgeted:
            message = f"{type(error).__name__}: {error}"
            code = error_code_for_exception(error)
            for ticket in tickets:
                self._finish(
                    ticket, RequestStatus.FAILED, error=message, error_code=code
                )
                self.metrics.record_failure()
            return
        self._requeue(tickets)

    def _requeue(self, tickets: list[SubmittedRequest]) -> None:
        """Put coalesced waiters back in the queue for their own solve
        (their primary's outcome was shaped by *its* time budget)."""
        for ticket in tickets:
            try:
                self.broker.submit(ticket)
            except AdmissionError as exc:
                self._finish(
                    ticket,
                    RequestStatus.REJECTED,
                    error=str(exc),
                    error_code="rejected",
                )
                self.metrics.record_rejected()

    def _on_solved(self, primary: SubmittedRequest, future) -> None:
        self._slots.release()
        now = time.perf_counter()
        dispatched = primary.dispatched_at or now
        solve_s = now - dispatched
        queue_wait = dispatched - primary.submitted_at

        error = future.exception()
        if error is None:
            # Publish before dropping the in-flight entry: an identical
            # request dispatched in between must find one or the other,
            # never a gap that re-triggers the solve.  Only optimal plans
            # are published — a cut-off incumbent shaped by one tenant's
            # tiny time budget must not be served to everyone else.
            plan = future.result()
            if plan.solver_status == "optimal":
                self.plan_cache.put(primary.fingerprint, plan)
        with self._inflight_lock:
            waiters = self._inflight.pop(primary.fingerprint, [])
            budgeted = primary.fingerprint in self._inflight_budgeted
            self._inflight_budgeted.discard(primary.fingerprint)
        if primary.led_flight:
            # Settle the cross-shard flight: publish an optimal plan to
            # the L2 (before the flight entry drops, so a racing shard
            # finds one or the other), hand shards that joined the
            # outcome.  A cut-off incumbent shaped by this primary's
            # budget is not published — joined shards requeue instead.
            primary.led_flight = False
            if error is not None:
                self.shared_cache.finish(
                    primary.fingerprint, error=error, budgeted=budgeted
                )
            else:
                solved = future.result()
                self.shared_cache.finish(
                    primary.fingerprint,
                    plan=(
                        solved if solved.solver_status == "optimal" else None
                    ),
                    budgeted=budgeted,
                )
        if error is not None:
            message = f"{type(error).__name__}: {error}"
            code = error_code_for_exception(error)
            self._finish(
                primary,
                RequestStatus.FAILED,
                error=message,
                error_code=code,
                queue_wait_s=queue_wait,
                solve_s=solve_s,
            )
            self.metrics.record_failure()
            if budgeted:
                # The primary's tiny budget shaped this failure; waiters
                # asked for a full solve — give them one.
                self._requeue(waiters)
            else:
                for ticket in waiters:
                    self._finish(
                        ticket, RequestStatus.FAILED,
                        error=message, error_code=code,
                    )
                    self.metrics.record_failure()
            return

        plan = future.result()
        if budgeted and plan.solver_status != "optimal" and waiters:
            # Cut-off incumbent under the primary's budget: the primary
            # accepts it (it asked for the cap), the waiters re-solve.
            self._requeue(waiters)
            waiters = []
        self._finish(
            primary,
            RequestStatus.COMPLETED,
            plan=plan,
            queue_wait_s=queue_wait,
            solve_s=solve_s,
        )
        self.metrics.record_completion(
            primary.tenant,
            cached=False,
            solve_s=solve_s,
            total_s=now - primary.submitted_at,
        )
        for ticket in waiters:
            # The shared solve may have outlived a waiter's own SLO; the
            # documented semantics fail it as EXPIRED, not "solved late".
            expires_at = ticket.expires_at
            if expires_at is not None and now >= expires_at:
                self._finish(
                    ticket,
                    RequestStatus.EXPIRED,
                    error="turnaround deadline expired during the "
                    "coalesced solve",
                    error_code="expired",
                )
                self.metrics.record_expired()
                continue
            self._finish(
                ticket,
                RequestStatus.COMPLETED,
                plan=plan,
                cached=True,
                queue_wait_s=now - ticket.submitted_at,
            )
            self.metrics.record_completion(
                ticket.tenant,
                cached=True,
                coalesced=True,
                total_s=now - ticket.submitted_at,
            )

    # -- completion -------------------------------------------------------

    def _finish(
        self,
        ticket: SubmittedRequest,
        status: RequestStatus,
        plan: ExecutionPlan | None = None,
        error: str = "",
        error_code: str = "",
        cached: bool = False,
        queue_wait_s: float = 0.0,
        solve_s: float = 0.0,
    ) -> None:
        ticket._complete(
            PlanResult(
                request_id=ticket.request_id,
                tenant=ticket.tenant,
                status=status,
                plan=plan,
                error=error,
                error_code=error_code,
                cached=cached,
                fingerprint=ticket.fingerprint,
                queue_wait_s=queue_wait_s,
                solve_s=solve_s,
                total_s=time.perf_counter() - ticket.submitted_at,
            )
        )
