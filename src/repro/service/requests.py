"""Request/response vocabulary of the planning service.

Customers — *tenants* — submit :class:`PlanRequest` objects: a
:class:`~repro.core.problem.PlanningProblem` plus scheduling metadata
(priority, a turnaround deadline, a solver time budget).  The service
answers with a :class:`PlanResult` carrying the plan (or the failure),
whether it came from the cache, and the request's timing breakdown.
"""

from __future__ import annotations

import enum
import threading
import time
from dataclasses import dataclass, field

from ..core.plan import ExecutionPlan
from ..core.problem import PlanningProblem


def error_code_for_exception(exc: BaseException) -> str:
    """Classify a failure into a stable public error code.

    The codes are part of the versioned API (``repro.api.ERROR_CODES``):
    ``infeasible`` / ``budget_exceeded`` for problems with no acceptable
    deployment, ``timeout`` for turnaround/solver waits, ``rejected`` for
    admission refusals, ``solver_error`` for backend failures on valid
    models, ``bad_request`` for malformed problems, ``internal`` for
    everything else.  Classification uses the exception's structured
    state (:class:`PlanningError.status`), never string parsing.
    """
    from ..core.model_builder import PlanningError
    from ..lp.model import SolverError
    from .broker import AdmissionError

    if isinstance(exc, PlanningError):
        status = exc.status
        if status in ("infeasible", "unbounded"):
            return "budget_exceeded" if exc.budgeted else "infeasible"
        return "solver_error"
    if isinstance(exc, SolverError):
        return "solver_error"
    if isinstance(exc, AdmissionError):
        return "rejected"
    if isinstance(exc, TimeoutError):
        return "timeout"
    if isinstance(exc, (ValueError, TypeError, KeyError)):
        return "bad_request"
    return "internal"


class RequestStatus(enum.Enum):
    """Lifecycle of a submitted request."""

    PENDING = "pending"        # queued in the broker
    RUNNING = "running"        # dispatched to a solver worker
    COMPLETED = "completed"    # plan available (solved or cached)
    FAILED = "failed"          # solver error / infeasible problem
    REJECTED = "rejected"      # refused by admission control or shutdown
    EXPIRED = "expired"        # turnaround deadline passed while queued

    @property
    def is_terminal(self) -> bool:
        return self is not RequestStatus.PENDING and self is not RequestStatus.RUNNING


@dataclass
class PlanRequest:
    """One tenant's planning request.

    Attributes
    ----------
    tenant:
        Account the request is billed/queued under.
    problem:
        The planning problem to solve.
    priority:
        Smaller is more urgent (0 = platinum).  Orders requests across
        tenant queues; ties break by turnaround deadline, then FIFO.
    deadline_s:
        Turnaround SLO in seconds from submission.  A request still
        queued when it expires is failed as :attr:`RequestStatus.EXPIRED`
        rather than solved uselessly late.
    time_budget_s:
        Cap on the solver's own time limit *when this request triggers a
        solve* (the paper's 3-minute bound is the service default;
        tenants may tighten it).  A request served from the cache or by
        coalescing onto an identical in-flight solve never runs its own
        solver, so the budget does not apply there — bound total
        turnaround with ``deadline_s`` instead.
    """

    tenant: str
    problem: PlanningProblem
    priority: int = 1
    deadline_s: float | None = None
    time_budget_s: float | None = None

    def __post_init__(self) -> None:
        if not self.tenant:
            raise ValueError("tenant must be non-empty")
        if self.deadline_s is not None and self.deadline_s <= 0:
            raise ValueError("deadline_s must be positive")
        if self.time_budget_s is not None and self.time_budget_s <= 0:
            raise ValueError("time_budget_s must be positive")


@dataclass
class PlanResult:
    """Terminal outcome of a request."""

    request_id: int
    tenant: str
    status: RequestStatus
    plan: ExecutionPlan | None = None
    error: str = ""
    #: Stable machine-readable code for ``error`` (one of the public
    #: API's ``ERROR_CODES``); empty when the request succeeded.
    error_code: str = ""
    #: True when the plan was served from the plan cache (including
    #: requests coalesced onto another tenant's identical in-flight solve).
    cached: bool = False
    fingerprint: str = ""
    #: Seconds spent queued in the broker before dispatch.
    queue_wait_s: float = 0.0
    #: Seconds spent solving (0 for cache hits).
    solve_s: float = 0.0
    #: Submission-to-completion wall time.
    total_s: float = 0.0

    @property
    def ok(self) -> bool:
        return self.status is RequestStatus.COMPLETED and self.plan is not None


class SubmittedRequest:
    """Handle returned by :meth:`PlanningService.submit`.

    The service completes it asynchronously; callers block on
    :meth:`result` (or poll :meth:`done`).
    """

    def __init__(self, request: PlanRequest, request_id: int, fingerprint: str) -> None:
        self.request = request
        self.request_id = request_id
        self.fingerprint = fingerprint
        self.submitted_at = time.perf_counter()
        self.dispatched_at: float | None = None
        #: Cooperative cancellation flag (see :meth:`cancel`).
        self.cancelled = False
        #: True while a dispatch of this ticket leads a cross-shard
        #: single-flight entry in the shared L2 cache (service-internal).
        self.led_flight = False
        self._done = threading.Event()
        self._result: PlanResult | None = None
        self._lock = threading.Lock()
        self._callbacks: list = []

    # -- service side -----------------------------------------------------

    def _complete(self, result: PlanResult) -> None:
        with self._lock:
            if self._result is not None:  # first completion wins
                return
            self._result = result
            callbacks, self._callbacks = self._callbacks, []
        self._done.set()
        for callback in callbacks:
            callback(self)

    # -- caller side ------------------------------------------------------

    def done(self) -> bool:
        return self._done.is_set()

    def cancel(self) -> None:
        """Ask the service to drop this request if still queued.

        Cooperative: a request already dispatched (solving, or coalesced
        onto a solve) completes normally; a request still waiting in its
        broker queue is finished as REJECTED at dispatch without
        touching the solver.  The socket frontend calls this for every
        outstanding request of a disconnected client.
        """
        self.cancelled = True

    def add_done_callback(self, callback) -> None:
        """Invoke ``callback(ticket)`` once the request is terminal.

        Fires immediately (on the calling thread) when the request has
        already completed; otherwise fires on the service thread that
        completes it.  The asyncio frontend bridges completions back to
        its event loop through this hook.
        """
        with self._lock:
            if self._result is None:
                self._callbacks.append(callback)
                return
        callback(self)

    def result(self, timeout: float | None = None) -> PlanResult:
        """Block until the service finishes the request."""
        if not self._done.wait(timeout):
            raise TimeoutError(
                f"request {self.request_id} not finished within {timeout}s"
            )
        assert self._result is not None
        return self._result

    @property
    def tenant(self) -> str:
        return self.request.tenant

    #: Absolute monotonic instant at which the turnaround SLO expires.
    @property
    def expires_at(self) -> float | None:
        if self.request.deadline_s is None:
            return None
        return self.submitted_at + self.request.deadline_s
