"""The request broker: per-tenant queues, admission control, ordering.

The broker is the service's front door (the broker/scheduler/monitor
split of the orchestration taxonomy).  Each tenant gets its own queue so
one noisy tenant cannot starve the rest of *queue space*; admission
control bounds both per-tenant and total backlog.  Dispatch order is
priority first (0 = most urgent), then earliest turnaround deadline,
then global FIFO — evaluated over the *heads* of the tenant queues, so
within a tenant submissions with equal priority stay ordered.
"""

from __future__ import annotations

import heapq
import math
import threading
from collections import OrderedDict

from .requests import SubmittedRequest


class AdmissionError(RuntimeError):
    """The broker refused a request (queue bounds exceeded)."""


class RequestBroker:
    """Bounded, priority/deadline-aware multi-tenant request queue."""

    def __init__(
        self,
        max_pending_total: int = 256,
        max_pending_per_tenant: int = 64,
    ) -> None:
        if max_pending_total <= 0 or max_pending_per_tenant <= 0:
            raise ValueError("queue bounds must be positive")
        self.max_pending_total = max_pending_total
        self.max_pending_per_tenant = max_pending_per_tenant
        self._lock = threading.Lock()
        self._not_empty = threading.Condition(self._lock)
        #: tenant -> min-heap of (priority, deadline, seq, ticket).
        self._queues: "OrderedDict[str, list]" = OrderedDict()
        self._pending = 0
        self._seq = 0
        self._closed = False

    # -- submission -------------------------------------------------------

    def submit(self, ticket: SubmittedRequest) -> None:
        """Enqueue a ticket or raise :class:`AdmissionError`."""
        tenant = ticket.tenant
        with self._not_empty:
            if self._closed:
                raise AdmissionError("broker is closed")
            if self._pending >= self.max_pending_total:
                raise AdmissionError(
                    f"service backlog full ({self.max_pending_total} pending)"
                )
            queue = self._queues.setdefault(tenant, [])
            if len(queue) >= self.max_pending_per_tenant:
                raise AdmissionError(
                    f"tenant {tenant!r} backlog full "
                    f"({self.max_pending_per_tenant} pending)"
                )
            deadline = ticket.expires_at
            key = (
                ticket.request.priority,
                deadline if deadline is not None else math.inf,
                self._seq,
            )
            self._seq += 1
            heapq.heappush(queue, (*key, ticket))
            self._pending += 1
            self._not_empty.notify()

    # -- dispatch ---------------------------------------------------------

    def pop(self, timeout: float | None = None) -> SubmittedRequest | None:
        """The most urgent queued request, or ``None`` on timeout/close.

        Urgency compares the head of every tenant queue by
        ``(priority, deadline, seq)``; per-tenant order is preserved
        because only heads compete.
        """
        with self._not_empty:
            while self._pending == 0:
                if self._closed:
                    return None
                if not self._not_empty.wait(timeout):
                    return None
            best_tenant = None
            best_key = None
            for tenant, queue in self._queues.items():
                if not queue:
                    continue
                key = queue[0][:3]
                if best_key is None or key < best_key:
                    best_key = key
                    best_tenant = tenant
            assert best_tenant is not None
            queue = self._queues[best_tenant]
            *_, ticket = heapq.heappop(queue)
            if not queue:
                del self._queues[best_tenant]
            self._pending -= 1
            return ticket

    def drain(self) -> list[SubmittedRequest]:
        """Remove and return everything still queued (shutdown path)."""
        with self._lock:
            tickets = [
                entry[-1] for queue in self._queues.values() for entry in queue
            ]
            self._queues.clear()
            self._pending = 0
            return tickets

    def close(self) -> None:
        """Refuse further submissions and wake blocked ``pop`` calls."""
        with self._not_empty:
            self._closed = True
            self._not_empty.notify_all()

    # -- introspection ----------------------------------------------------

    @property
    def closed(self) -> bool:
        with self._lock:
            return self._closed

    @property
    def pending(self) -> int:
        with self._lock:
            return self._pending

    def pending_for(self, tenant: str) -> int:
        with self._lock:
            return len(self._queues.get(tenant, ()))

    def tenants(self) -> list[str]:
        with self._lock:
            return [t for t, q in self._queues.items() if q]
