"""Conductor (NSDI 2012) reproduction.

``repro`` implements the system described in *Orchestrating the Deployment
of Computations in the Cloud with Conductor* (Wieder, Bhatotia, Post,
Rodrigues; NSDI 2012): an LP-driven planner plus deployment layer that
chooses which cloud services to use for a MapReduce job, deploys the plan
through a resource abstraction layer, and adapts at runtime.

Subpackages
-----------
``repro.lp``
    LP/MILP modeling + solving substrate (CPLEX stand-in).
``repro.sim``
    Discrete-event simulation kernel and network model.
``repro.cloud``
    Cloud service descriptions, AWS July-2011 catalog, pricing, spot
    markets and trace generators.
``repro.storage``
    Conductor's storage abstraction layer (namenode, backends, client,
    chunked filesystem driver).
``repro.mapreduce``
    Hadoop-like MapReduce engine with stock and location-aware schedulers.
``repro.pig``
    Pig-Latin dialect, logical plans, and the compiler to multi-stage
    MapReduce pipelines (the Section 2.1 substrate).
``repro.core``
    Conductor proper: LP model builder, planner, job controller,
    predictors (paper's and extended), pipeline planner with
    reliability-aware storage tiers, accounting, baseline deployment
    strategies.
``repro.workloads``
    Synthetic workloads (k-means, wordcount, sort) and the instance
    micro-benchmark.
"""

__version__ = "0.5.0"

__all__ = ["__version__"]
