"""Synthetic workloads and calibration benchmarks.

The paper's k-means evaluation workload plus wordcount/sort variants and
the Fig. 1 instance micro-benchmark.
"""

from .instance_bench import InstanceMeasurement, run_instance_benchmark
from .kmeans import (
    BYTES_PER_POINT,
    CALIBRATION_GB_PER_HOUR,
    CALIBRATION_REFERENCES,
    FAST_REFERENCES,
    KMeansDataset,
    assign_points,
    generate_points,
    generate_references,
    recompute_centroids,
)
from .textjobs import SortWorkload, WordCountWorkload

__all__ = [
    "BYTES_PER_POINT",
    "CALIBRATION_GB_PER_HOUR",
    "CALIBRATION_REFERENCES",
    "FAST_REFERENCES",
    "InstanceMeasurement",
    "KMeansDataset",
    "SortWorkload",
    "WordCountWorkload",
    "assign_points",
    "generate_points",
    "generate_references",
    "recompute_centroids",
    "run_instance_benchmark",
]
