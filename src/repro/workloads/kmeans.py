"""The k-means clustering workload (paper Section 6.1).

The paper's evaluation application is Apache Mahout's MapReduce k-means:
40 million randomly generated points (32 GB) clustered against 10,000
reference points.  Map tasks assign points to the nearest reference
centroid and emit per-centroid partial sums (tiny output); the reduce
phase recomputes centroids.

This module generates the synthetic equivalent: the dataset geometry, the
derived job descriptions for both the planner and the engine, and the
throughput calibration (0.44 GB/h per m1.large with 10 k references;
6.2 GB/h with the small reference set of Section 6.2).
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from ..core.problem import PlannerJob
from ..mapreduce.job import MapReduceJob
from ..sim.rng import generator
from ..units import MB_PER_GB

#: Paper calibration: bytes per point such that 40 M points = 32 GB.
BYTES_PER_POINT = int(32 * MB_PER_GB * 1024 * 1024) // 40_000_000

#: Measured throughput (GB/h per node) as a function of reference-set
#: size: the per-point work is dominated by the distance computations
#: against every reference point.
CALIBRATION_REFERENCES = 10_000
CALIBRATION_GB_PER_HOUR = 0.44
FAST_REFERENCES = 710  # yields the paper's 6.2 GB/h variant


@dataclass(frozen=True)
class KMeansDataset:
    """Geometry of a synthetic k-means input."""

    num_points: int
    dimensions: int = 58  # BYTES_PER_POINT / 8-byte doubles, a la Mahout
    num_references: int = CALIBRATION_REFERENCES

    def __post_init__(self) -> None:
        if self.num_points <= 0 or self.dimensions <= 0 or self.num_references <= 0:
            raise ValueError("dataset dimensions must be positive")

    @property
    def size_gb(self) -> float:
        return self.num_points * BYTES_PER_POINT / (MB_PER_GB * 1024 * 1024)

    @classmethod
    def paper_dataset(cls) -> "KMeansDataset":
        """40 M points / 32 GB / 10 k references (Section 6.1)."""
        return cls(num_points=40_000_000)

    @classmethod
    def for_size_gb(cls, size_gb: float, num_references: int = CALIBRATION_REFERENCES) -> "KMeansDataset":
        points = max(1, int(size_gb * MB_PER_GB * 1024 * 1024 / BYTES_PER_POINT))
        return cls(num_points=points, num_references=num_references)

    # -- throughput model ----------------------------------------------------

    def throughput_gb_per_hour(self, base: float = CALIBRATION_GB_PER_HOUR) -> float:
        """Per-node throughput for this reference-set size.

        Work per input byte scales linearly with the number of reference
        points, anchored at the paper's measured 0.44 GB/h for 10 k.
        """
        return base * CALIBRATION_REFERENCES / self.num_references

    def throughput_scale(self) -> float:
        """Multiplier vs. the calibration workload (PlannerJob knob)."""
        return CALIBRATION_REFERENCES / self.num_references

    # -- job derivations ----------------------------------------------------

    def planner_job(self, name: str = "kmeans") -> PlannerJob:
        return PlannerJob(
            name=name,
            input_gb=self.size_gb,
            map_output_ratio=self.map_output_ratio(),
            reduce_output_ratio=1.0,
            throughput_scale=self.throughput_scale(),
        )

    def engine_job(self, name: str = "kmeans", split_mb: float = 64.0) -> MapReduceJob:
        return MapReduceJob(
            name=name,
            input_path=f"/{name}/points",
            input_mb=self.size_gb * MB_PER_GB,
            split_mb=split_mb,
            map_output_ratio=self.map_output_ratio(),
            reduce_output_ratio=1.0,
            num_reducers=max(1, min(8, self.num_references // 1500)),
        )

    def map_output_ratio(self) -> float:
        """Map emits one partial sum per (task, centroid): tiny output."""
        output_bytes = self.num_references * (self.dimensions * 8 + 16)
        per_task_fraction = output_bytes / (self.size_gb * MB_PER_GB * 1024 * 1024)
        # One emission per map task wave; bounded away from zero so the
        # reduce/download phases stay exercised.
        return max(min(per_task_fraction * 512, 0.01), 1e-4)


def generate_points(
    dataset: KMeansDataset, count: int | None = None, seed: int = 0
) -> np.ndarray:
    """Sample synthetic input points (for tests/examples; the simulator
    itself only needs sizes).  Points are drawn from a mixture of
    Gaussians so clustering is non-trivial."""
    rng = generator(seed, "kmeans-points")
    count = count if count is not None else min(dataset.num_points, 100_000)
    centers = rng.normal(0.0, 5.0, size=(8, dataset.dimensions))
    assignments = rng.integers(0, len(centers), size=count)
    return centers[assignments] + rng.normal(0.0, 1.0, size=(count, dataset.dimensions))


def generate_references(dataset: KMeansDataset, seed: int = 0) -> np.ndarray:
    rng = generator(seed, "kmeans-references")
    return rng.normal(0.0, 5.0, size=(dataset.num_references, dataset.dimensions))


def assign_points(points: np.ndarray, references: np.ndarray) -> np.ndarray:
    """The map function's core: nearest reference per point (vectorized)."""
    distances = (
        np.sum(points**2, axis=1)[:, None]
        - 2 * points @ references.T
        + np.sum(references**2, axis=1)[None, :]
    )
    return np.argmin(distances, axis=1)


def recompute_centroids(
    points: np.ndarray, assignments: np.ndarray, k: int
) -> np.ndarray:
    """The reduce function's core: mean of assigned points per centroid."""
    centroids = np.zeros((k, points.shape[1]))
    for index in range(k):
        members = points[assignments == index]
        if len(members):
            centroids[index] = members.mean(axis=0)
    return centroids
