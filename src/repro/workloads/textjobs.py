"""Additional MapReduce workloads: wordcount and distributed sort.

The paper's approach "can be applied to other applications and resources
as well when their characteristics are specified" (Section 6.1).  These
two classics exercise job shapes k-means does not:

- **wordcount**: high map selectivity (counts are much smaller than
  text), fast per-byte processing — upload-bound plans;
- **sort**: map output ≈ input (no reduction), heavyweight shuffle and a
  result as large as the input — download-bound plans where transfer-out
  pricing matters.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..core.problem import PlannerJob
from ..mapreduce.job import MapReduceJob
from ..sim.rng import generator
from ..units import MB_PER_GB


@dataclass(frozen=True)
class WordCountWorkload:
    """Count word frequencies over synthetic text."""

    input_gb: float = 32.0
    #: Distinct vocabulary — determines output size.
    vocabulary: int = 200_000
    #: Text scanning is ~8x faster per byte than k-means distance math.
    speed_multiplier: float = 8.0

    def planner_job(self, name: str = "wordcount") -> PlannerJob:
        return PlannerJob(
            name=name,
            input_gb=self.input_gb,
            map_output_ratio=self.output_ratio(),
            reduce_output_ratio=1.0,
            throughput_scale=self.speed_multiplier,
        )

    def engine_job(self, name: str = "wordcount", split_mb: float = 64.0) -> MapReduceJob:
        return MapReduceJob(
            name=name,
            input_path=f"/{name}/text",
            input_mb=self.input_gb * MB_PER_GB,
            split_mb=split_mb,
            map_output_ratio=self.output_ratio(),
            reduce_output_ratio=1.0,
            num_reducers=8,
        )

    def output_ratio(self) -> float:
        """(word, count) pairs per vocabulary entry, ~24 B each."""
        output_bytes = self.vocabulary * 24
        ratio = output_bytes / (self.input_gb * MB_PER_GB * 1024 * 1024)
        return max(min(ratio * 64, 0.05), 1e-4)  # per-task partials pre-combine

    def sample_text(self, words: int = 10_000, seed: int = 0) -> list[str]:
        """Zipf-distributed synthetic tokens (tests/examples)."""
        rng = generator(seed, "wordcount-text")
        ranks = rng.zipf(1.3, size=words)
        ranks = np.clip(ranks, 1, self.vocabulary)
        return [f"w{rank}" for rank in ranks]


@dataclass(frozen=True)
class SortWorkload:
    """TeraSort-style global sort: output as large as the input."""

    input_gb: float = 32.0
    #: Sorting is mostly I/O: much faster per byte than k-means.
    speed_multiplier: float = 6.0

    def planner_job(self, name: str = "sort") -> PlannerJob:
        return PlannerJob(
            name=name,
            input_gb=self.input_gb,
            map_output_ratio=1.0,       # partitioned, not reduced
            reduce_output_ratio=1.0,    # merged runs, same volume
            throughput_scale=self.speed_multiplier,
            reduce_speed_factor=1.0,    # merge is as heavy as partition
        )

    def engine_job(self, name: str = "sort", split_mb: float = 64.0) -> MapReduceJob:
        return MapReduceJob(
            name=name,
            input_path=f"/{name}/records",
            input_mb=self.input_gb * MB_PER_GB,
            split_mb=split_mb,
            map_output_ratio=1.0,
            reduce_output_ratio=1.0,
            num_reducers=16,
            reduce_speed_factor=1.0,
        )

    def sample_records(self, count: int = 10_000, seed: int = 0) -> np.ndarray:
        rng = generator(seed, "sort-records")
        return rng.integers(0, 2**63 - 1, size=count, dtype=np.int64)
