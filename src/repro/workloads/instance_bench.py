"""Instance-type micro-benchmark (paper Figure 1).

The paper measured k-means throughput on three EC2 instance types and
compared it to the performance *projected* from Amazon's ECU ratings,
finding "a consistently increasing throughput divergence".  This module
reproduces that comparison: projected throughput is linear in ECU
(anchored at the smallest type); measured throughput comes from the
calibrated service descriptions, which encode the sub-linear scaling the
paper observed (memory bandwidth and I/O do not scale with ECU).
"""

from __future__ import annotations

from dataclasses import dataclass

from ..cloud.catalog import instance_types
from ..cloud.services import ServiceDescription


@dataclass(frozen=True)
class InstanceMeasurement:
    """One Fig. 1 data point."""

    instance: str
    ecu: float
    measured_gb_per_hour: float
    projected_gb_per_hour: float

    @property
    def divergence(self) -> float:
        """Projected minus measured (GB/h); grows with ECU in Fig. 1."""
        return self.projected_gb_per_hour - self.measured_gb_per_hour

    @property
    def efficiency(self) -> float:
        """Measured as a fraction of projected."""
        if self.projected_gb_per_hour == 0:
            return 1.0
        return self.measured_gb_per_hour / self.projected_gb_per_hour


def run_instance_benchmark(
    services: list[ServiceDescription] | None = None,
) -> list[InstanceMeasurement]:
    """Measure every instance type and project from the ECU rating.

    The projection is anchored at the lowest-ECU type, exactly as one
    would extrapolate from a single calibration run: GB/h-per-ECU of the
    anchor times each type's ECU.
    """
    services = services if services is not None else instance_types()
    rated = [s for s in services if s.can_compute and s.ecu_per_node > 0]
    if not rated:
        raise ValueError("no instance types with ECU ratings to benchmark")
    anchor = min(rated, key=lambda s: s.ecu_per_node)
    per_ecu = anchor.throughput_gb_per_hour / anchor.ecu_per_node
    return [
        InstanceMeasurement(
            instance=service.name,
            ecu=service.ecu_per_node,
            measured_gb_per_hour=service.throughput_gb_per_hour,
            projected_gb_per_hour=per_ecu * service.ecu_per_node,
        )
        for service in sorted(rated, key=lambda s: s.ecu_per_node)
    ]
