"""Spot market deployment simulations (paper Section 6.5, Fig. 14).

Runs the same job repeatedly, starting at different offsets within a spot
price trace, once per predictor scenario, and summarizes realized costs.
The paper's nine scenarios: ``regular`` (on-demand instances only) and
``{aws,el} x {opt,p0,p5,p13}``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Sequence

from ..cloud.catalog import ec2_spot_m1_large, s3
from ..cloud.services import ServiceDescription
from ..cloud.spot import SpotTrace, summarize_costs
from .conditions import ActualConditions
from .controller import ControllerConfig, ControllerResult, JobController
from .predictor import SpotPredictor
from .problem import Goal, NetworkConditions, PlannerJob


def spot_services(storage_on_spot_nodes: bool = False) -> list[ServiceDescription]:
    """Catalog for spot scenarios: spot m1.large compute + S3 storage.

    By default the planner may not park data on spot-instance disks —
    out-bid termination would destroy it (the fault-recovery concern of
    Section 2.1); S3 holds all state so an out-bid hour only stalls
    compute.
    """
    spot = ec2_spot_m1_large()
    if not storage_on_spot_nodes:
        spot = spot.replace(can_store=False, storage_gb_per_node=0.0)
    return [spot, s3()]


@dataclass
class SpotScenarioResult:
    """Realized costs for one (trace, predictor) scenario."""

    label: str
    costs: list[float]
    completion_hours: list[float]
    replans: list[int]
    runs: list[ControllerResult] = field(repr=False, default_factory=list)

    @property
    def summary(self) -> dict[str, float]:
        return summarize_costs(self.costs)


def run_spot_scenario(
    job: PlannerJob,
    trace: SpotTrace,
    predictor: SpotPredictor,
    deadline_hours: float = 24.0,
    start_offsets: Sequence[float] | None = None,
    network: NetworkConditions | None = None,
    services: Sequence[ServiceDescription] | None = None,
    label: str | None = None,
    keep_runs: bool = False,
) -> SpotScenarioResult:
    """Deploy ``job`` once per start offset under one predictor.

    Offsets default to one run per day of the trace, skipping the first
    day (predictors need history) and the last ``deadline`` hours.
    """
    services = list(services) if services is not None else spot_services()
    network = network or NetworkConditions()
    if start_offsets is None:
        first = 24.0
        last = trace.hours - deadline_hours
        start_offsets = [h for h in range(int(first), int(last), 24)]
    spot_names = [s.name for s in services if s.is_spot]
    costs: list[float] = []
    completions: list[float] = []
    replans: list[int] = []
    runs: list[ControllerResult] = []
    for offset in start_offsets:
        controller = JobController(
            job,
            services,
            Goal.min_cost(deadline_hours=deadline_hours),
            network=network,
            predictor=predictor,
            trace=trace,
            trace_offset_hours=float(offset),
        )
        actual = ActualConditions(
            spot_traces={name: trace for name in spot_names}
        )
        result = controller.run(actual)
        costs.append(result.total_cost)
        completions.append(result.completion_hours)
        replans.append(result.replans)
        if keep_runs:
            runs.append(result)
    return SpotScenarioResult(
        label=label or f"{trace.label}-{predictor.name}",
        costs=costs,
        completion_hours=completions,
        replans=replans,
        runs=runs,
    )


def run_regular_baseline(
    job: PlannerJob,
    deadline_hours: float = 24.0,
    network: NetworkConditions | None = None,
    services: Sequence[ServiceDescription] | None = None,
) -> SpotScenarioResult:
    """The ``regular`` scenario: on-demand instances, no spot market.

    Deterministic (no trace dependence), so a single run suffices; the
    result is replicated into the same shape as spot scenarios.
    """
    from ..cloud.catalog import ec2_m1_large

    services = list(services) if services is not None else [ec2_m1_large(), s3()]
    controller = JobController(
        job,
        services,
        Goal.min_cost(deadline_hours=deadline_hours),
        network=network or NetworkConditions(),
    )
    result = controller.run(ActualConditions.as_predicted())
    return SpotScenarioResult(
        label="regular",
        costs=[result.total_cost],
        completion_hours=[result.completion_hours],
        replans=[result.replans],
    )
