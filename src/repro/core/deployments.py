"""Deployment strategies: the paper's baselines and Conductor itself.

Section 6.2 compares four ways to run the same MapReduce job on AWS, all
taken from Hadoop/AWS documentation:

- **Hadoop S3** — upload input to S3, then a large EC2 cluster processes
  directly from S3;
- **Hadoop upload first** — upload into HDFS on a single EC2 instance,
  then start more instances to process;
- **Hadoop direct** — HDFS stays on the client side; EC2 instances
  stream input over the customer's WAN link;
- **Conductor** — the LP plan decides node counts, placement and timing,
  deployed through the location-aware scheduler.

Each strategy runs on the same discrete-event substrate (cluster, storage
layer, fluid network) and produces a ledger + runtime breakdown that the
Fig. 5/6/7/10/11 benches print.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

from ..cloud.catalog import ec2_m1_large, local_cluster, s3
from ..cloud.services import ServiceDescription
from ..mapreduce.cluster import (
    CLIENT_SITE,
    S3_SITE,
    Cluster,
    SimNode,
    build_topology,
    wire_node,
)
from ..mapreduce.engine import MapReduceEngine
from ..mapreduce.hdfs import (
    CONDUCTOR_CHUNK_OVERHEAD_S,
    HDFS_CHUNK_OVERHEAD_S,
    build_hdfs,
)
from ..mapreduce.job import MapReduceJob
from ..mapreduce.scheduler import HadoopScheduler, LocationAwareScheduler
from ..sim import FluidNetwork, Simulation
from ..storage.backends import LocalDiskBackend, ObjectStoreBackend
from ..storage.blocks import LocationRecord
from ..storage.client import StorageClient
from ..storage.filesystem import ConductorFileSystem
from ..storage.namenode import Namenode
from ..units import MB_PER_GB, gb_h_to_mb_s, mbit_s_to_mb_s, seconds_to_hours
from .accounting import CostCategory, CostLedger
from .plan import ExecutionPlan
from .planner import Planner
from .problem import Goal, NetworkConditions, PlannerJob

_INPUT_PATH = "/input/data"


@dataclass
class DeploymentScenario:
    """Shared configuration for one Section-6 experiment."""

    input_gb: float = 32.0
    split_mb: float = 64.0
    map_output_ratio: float = 0.002
    reduce_output_ratio: float = 1.0
    num_reducers: int = 4
    uplink_mbit_s: float = 16.0
    deadline_hours: float = 6.0
    throughput_gb_per_hour: float = 0.44
    boot_seconds: float = 90.0
    setup_seconds: float = 60.0
    slots_per_node: int = 2
    #: Per-task duration jitter (uniform [1, spread]): the task-variance
    #: Hadoop shows on virtualized hardware (Section 2.1, [20]).
    straggler_spread: float = 1.1
    #: Job-submission overhead per input split when the input lives on
    #: S3: the 2011 Hadoop S3 filesystem listed/HEADed every object over
    #: SSL at submit time — minutes for hundreds of splits.  This is the
    #: overhead that pushes the Hadoop-S3 run "little more than one hour"
    #: past the billing boundary (Section 6.2).
    s3_scan_s_per_chunk: float = 3.0
    #: Conductor plans with this fraction of the measured throughput,
    #: reserving headroom for boot delays, task waves and stragglers the
    #: fluid model cannot see.
    planning_margin: float = 0.95
    #: Optional deployment-safety overrides: plan against a shaved
    #: deadline and/or finer intervals so the realized task tail still
    #: lands inside the real deadline.  ``None`` = use the deadline as-is
    #: at 1-hour granularity.
    planning_deadline_hours: float | None = None
    planning_interval_hours: float = 1.0
    #: Plan with one fixed node count per service (the paper's hybrid
    #: style); more robust to deploy, slightly more expensive.
    constant_node_plan: bool = False
    ec2: ServiceDescription = field(default_factory=ec2_m1_large)
    s3: ServiceDescription = field(default_factory=s3)
    local: ServiceDescription | None = None
    local_nodes: int = 0

    def __post_init__(self) -> None:
        self.ec2 = self.ec2.replace(
            throughput_gb_per_hour=self.throughput_gb_per_hour
        )

    @property
    def input_mb(self) -> float:
        return self.input_gb * MB_PER_GB

    @property
    def uplink_mb_s(self) -> float:
        return mbit_s_to_mb_s(self.uplink_mbit_s)

    def make_job(self, name: str) -> MapReduceJob:
        return MapReduceJob(
            name=name,
            input_path=_INPUT_PATH,
            input_mb=self.input_mb,
            split_mb=self.split_mb,
            map_output_ratio=self.map_output_ratio,
            reduce_output_ratio=self.reduce_output_ratio,
            num_reducers=self.num_reducers,
            setup_seconds=self.setup_seconds,
        )

    def planner_job(self, name: str) -> PlannerJob:
        return PlannerJob(
            name=name,
            input_gb=self.input_gb,
            map_output_ratio=self.map_output_ratio,
            reduce_output_ratio=self.reduce_output_ratio,
        )

    def network_conditions(self) -> NetworkConditions:
        return NetworkConditions.from_mbit_s(self.uplink_mbit_s)


@dataclass
class DeploymentResult:
    """Measured outcome of one deployment strategy run."""

    name: str
    ledger: CostLedger
    runtime_s: float
    upload_s: float | None
    process_s: float | None
    streamed: bool
    deadline_hours: float
    task_series: list[tuple[float, int]] = field(default_factory=list)
    plan: ExecutionPlan | None = None

    @property
    def total_cost(self) -> float:
        return self.ledger.total()

    @property
    def deadline_met(self) -> bool:
        return self.runtime_s <= self.deadline_hours * 3600.0 + 1e-6

    def cost_breakdown(self) -> dict[str, float]:
        return self.ledger.figure5_breakdown()


class _Substrate:
    """Common simulation scaffolding for all strategies."""

    def __init__(self, scenario: DeploymentScenario) -> None:
        from ..sim import FluidNetwork

        self.scenario = scenario
        self.sim = Simulation()
        self.topology = build_topology(uplink_mb_s=scenario.uplink_mb_s)
        self.network = FluidNetwork(self.sim, self.topology)
        self.ledger = CostLedger()
        self.cluster = Cluster(self.sim, self.ledger, boot_seconds=scenario.boot_seconds)
        self.disk = LocalDiskBackend(
            "local-disk", per_chunk_overhead_s=CONDUCTOR_CHUNK_OVERHEAD_S
        )
        self.s3 = ObjectStoreBackend("s3", per_chunk_overhead_s=0.2)
        self.namenode = Namenode()
        self.client = StorageClient(
            self.sim,
            self.network,
            self.namenode,
            {"local-disk": self.disk, "s3": self.s3},
        )
        self.fs = ConductorFileSystem(self.namenode, self.client, chunk_mb=scenario.split_mb)
        self.cluster.on_node_up(self._wire_storage)
        self._s3_meter_stop: float | None = None
        self._meter_scheduled = False

    def _wire_storage(self, node: SimNode) -> None:
        self.disk.add_node(node.site)

    def allocate_nodes(self, service: ServiceDescription, count: int) -> list[SimNode]:
        local = service.price_per_node_hour == 0
        nodes = self.cluster.allocate(
            service, count, slots=self.scenario.slots_per_node
        )
        for node in nodes:
            wire_node(self.topology, node.site, local=local)
            # The storage daemon is reachable as soon as the lease starts:
            # uploads may target a booting node (they arrive after boot).
            self.disk.add_node(node.site)
        return nodes

    # -- billing helpers ---------------------------------------------------------

    def start_s3_storage_meter(self) -> None:
        """Attach an exact GB-hour gauge to the S3 backend.

        The gauge integrates occupancy over time, event-driven: it
        observes before every put/delete and once more at finalize, so no
        periodic sampling events are needed (periodic events would keep
        the simulation from ever going idle).
        """
        if self._meter_scheduled:
            return
        self._meter_scheduled = True
        self._gauge_last_t = self.sim.now
        self._gauge_level_mb = self.s3.stored_mb()
        self._gauge_gb_hours = 0.0

        def observe() -> None:
            now = self.sim.now
            self._gauge_gb_hours += (
                seconds_to_hours(now - self._gauge_last_t)
                * self._gauge_level_mb
                / MB_PER_GB
            )
            self._gauge_last_t = now
            self._gauge_level_mb = self.s3.stored_mb()

        self._gauge_observe = observe
        self.s3.observers.append(observe)

    def stop_s3_storage_meter(self) -> None:
        """Finalize the gauge and charge the accumulated GB-hours."""
        if not self._meter_scheduled:
            return
        self._gauge_observe()
        service = self.scenario.s3
        if self._gauge_gb_hours > 1e-9:
            self.ledger.add(
                0.0,
                service.name,
                CostCategory.STORAGE,
                "GB-hours",
                self._gauge_gb_hours,
                "GB-h",
                service.cost_tstore_gb_hour,
            )

    def charge_s3_requests(self, put_gb: float = 0.0, get_gb: float = 0.0) -> None:
        service = self.scenario.s3
        hour = seconds_to_hours(self.sim.now)
        if put_gb > 1e-9:
            self.ledger.add(
                hour, service.name, CostCategory.REQUESTS, "put requests",
                put_gb, "GB", service.put_cost_per_gb(),
            )
        if get_gb > 1e-9:
            self.ledger.add(
                hour, service.name, CostCategory.REQUESTS, "get requests",
                get_gb, "GB", service.get_cost_per_gb(),
            )

    def charge_download(self, gb: float, service: ServiceDescription) -> None:
        if gb > 1e-9 and service.transfer_out_cost_gb > 0:
            self.ledger.add(
                seconds_to_hours(self.sim.now), service.name, CostCategory.TRANSFER,
                "result download", gb, "GB", service.transfer_out_cost_gb,
            )

    def download_results(self, engine: MapReduceEngine) -> None:
        """Pull result chunks back to the client over the WAN."""
        for block_id in engine.result_chunks:
            self.client.read(block_id, CLIENT_SITE, lambda _b: None)
        result_gb = engine.job.result_mb / MB_PER_GB
        self.charge_download(result_gb, self.scenario.ec2)
        self.sim.run_until_idle()


# --------------------------------------------------------------------------- #
# Baseline strategies                                                          #
# --------------------------------------------------------------------------- #


def run_hadoop_s3(scenario: DeploymentScenario, nodes: int = 100) -> DeploymentResult:
    """Upload to S3, then process from S3 on a large EC2 cluster."""
    sub = _Substrate(scenario)
    sim = sub.sim
    job = scenario.make_job("hadoop-s3")
    inode = sub.fs.create(_INPUT_PATH, scenario.input_mb)
    sub.start_s3_storage_meter()

    upload_done: list[float] = []
    sub.fs.upload(
        _INPUT_PATH,
        CLIENT_SITE,
        lambda i: LocationRecord("s3"),
        on_complete=lambda: upload_done.append(sim.now),
    )
    sim.run_until_idle()
    upload_s = upload_done[0]
    sub.charge_s3_requests(put_gb=scenario.input_gb)

    sub.allocate_nodes(scenario.ec2, nodes)
    scheduler = HadoopScheduler(sub.namenode)
    # Job submission on S3 input: the splits scan dominates setup.
    job.setup_seconds += scenario.s3_scan_s_per_chunk * job.num_map_tasks
    engine = MapReduceEngine(
        sim, sub.cluster, sub.client, scheduler, job,
        throughput_scale=1.0, output_backend="local-disk",
        straggler_spread=scenario.straggler_spread,
    )
    process_start = sim.now
    engine.start(inode.chunks)
    sim.run_until_idle()
    sub.charge_s3_requests(get_gb=scenario.input_gb)
    sub.download_results(engine)
    sub.stop_s3_storage_meter()
    sub.cluster.release_all()
    return DeploymentResult(
        name="Hadoop S3",
        ledger=sub.ledger,
        runtime_s=sim.now,
        upload_s=upload_s,
        process_s=engine.completion_s - process_start if engine.completion_s else None,
        streamed=False,
        deadline_hours=scenario.deadline_hours,
        task_series=engine.task_series,
    )


def run_hadoop_upload_first(
    scenario: DeploymentScenario, nodes: int = 100
) -> DeploymentResult:
    """Upload into single-instance HDFS on EC2, then scale out and process."""
    sub = _Substrate(scenario)
    sim = sub.sim
    job = scenario.make_job("hadoop-upload-first")

    first = sub.allocate_nodes(scenario.ec2, 1)[0]
    sim.run_until_idle()  # let it boot
    hdfs = build_hdfs(sim, sub.network, [first.site], replication=1,
                      chunk_mb=scenario.split_mb)
    upload_done: list[float] = []
    hdfs.write_file(
        _INPUT_PATH, scenario.input_mb, CLIENT_SITE, chunk_mb=scenario.split_mb,
        on_complete=lambda: upload_done.append(sim.now),
    )
    sim.run_until_idle()
    upload_s = upload_done[0]

    extra = sub.allocate_nodes(scenario.ec2, nodes - 1)
    # Processing reads from HDFS: merge its backend into the engine client.
    client = StorageClient(
        sim, sub.network, hdfs.namenode,
        {"hdfs": hdfs.backend, "local-disk": sub.disk},
    )
    scheduler = HadoopScheduler(hdfs.namenode)
    engine = MapReduceEngine(
        sim, sub.cluster, client, scheduler, job, output_backend="local-disk",
        straggler_spread=scenario.straggler_spread,
    )
    process_start = sim.now
    engine.start(hdfs.fs.inode(_INPUT_PATH).chunks)
    sim.run_until_idle()
    for block_id in engine.result_chunks:
        client.read(block_id, CLIENT_SITE, lambda _b: None)
    sub.charge_download(job.result_mb / MB_PER_GB, scenario.ec2)
    sim.run_until_idle()
    sub.cluster.release_all()
    return DeploymentResult(
        name="Hadoop upload first",
        ledger=sub.ledger,
        runtime_s=sim.now,
        upload_s=upload_s,
        process_s=engine.completion_s - process_start if engine.completion_s else None,
        streamed=False,
        deadline_hours=scenario.deadline_hours,
        task_series=engine.task_series,
    )


def run_hadoop_direct(scenario: DeploymentScenario, nodes: int = 16) -> DeploymentResult:
    """HDFS on the client side; EC2 instances stream input over the WAN."""
    sub = _Substrate(scenario)
    sim = sub.sim
    job = scenario.make_job("hadoop-direct")

    hdfs = build_hdfs(sim, sub.network, [CLIENT_SITE], replication=1,
                      chunk_mb=scenario.split_mb)
    # Client-side HDFS: populating it is a local copy, effectively free.
    inode = hdfs.fs.create(_INPUT_PATH, scenario.input_mb)
    for block_id in inode.chunks:
        hdfs.backend.put(CLIENT_SITE, hdfs.namenode.block(block_id))
        hdfs.namenode.add_location(block_id, LocationRecord("hdfs", CLIENT_SITE))

    sub.allocate_nodes(scenario.ec2, nodes)
    if scenario.local is not None and scenario.local_nodes > 0:
        # Hybrid scenario: the customer's own cluster joins the Hadoop
        # cluster alongside the rented instances (Section 6.3).
        sub.allocate_nodes(scenario.local, scenario.local_nodes)
    client = StorageClient(
        sim, sub.network, hdfs.namenode,
        {"hdfs": hdfs.backend, "local-disk": sub.disk},
    )
    scheduler = HadoopScheduler(hdfs.namenode)
    engine = MapReduceEngine(
        sim, sub.cluster, client, scheduler, job, output_backend="local-disk",
        straggler_spread=scenario.straggler_spread,
    )
    engine.start(inode.chunks)
    sim.run_until_idle()
    for block_id in engine.result_chunks:
        client.read(block_id, CLIENT_SITE, lambda _b: None)
    sub.charge_download(job.result_mb / MB_PER_GB, scenario.ec2)
    sim.run_until_idle()
    sub.cluster.release_all()
    return DeploymentResult(
        name="Hadoop direct",
        ledger=sub.ledger,
        runtime_s=sim.now,
        upload_s=None,
        process_s=None,
        streamed=True,
        deadline_hours=scenario.deadline_hours,
        task_series=engine.task_series,
    )


# --------------------------------------------------------------------------- #
# Conductor                                                                    #
# --------------------------------------------------------------------------- #


def run_conductor(
    scenario: DeploymentScenario,
    plan: ExecutionPlan | None = None,
    planner: Planner | None = None,
) -> DeploymentResult:
    """Plan with the LP, deploy through the location-aware scheduler.

    Interval boundaries drive the deployment: node allocations track the
    plan's ``nodes``, uploads follow the plan's per-service amounts, and
    the scheduler only releases tasks whose input sits where the plan
    said (Section 5.3).
    """
    services: list[ServiceDescription] = [scenario.ec2, scenario.s3]
    if scenario.local is not None:
        services.append(scenario.local)
    if plan is None:
        plan = (planner or Planner()).plan(_conductor_problem(scenario, services))

    sub = _Substrate(scenario)
    sim = sub.sim
    job = scenario.make_job("conductor")
    inode = sub.fs.create(_INPUT_PATH, scenario.input_mb)
    sub.start_s3_storage_meter()

    scheduler = LocationAwareScheduler(sub.namenode)
    engine = MapReduceEngine(
        sim, sub.cluster, sub.client, scheduler, job, output_backend="local-disk",
        straggler_spread=scenario.straggler_spread,
    )
    engine.start(inode.chunks)

    deployer = _PlanDeployer(sub, scenario, plan, scheduler, inode.chunks, engine=engine)
    deployer.schedule_intervals()
    sim.run_until_idle()
    sub.download_results(engine)
    sub.stop_s3_storage_meter()
    sub.cluster.release_all()
    return DeploymentResult(
        name="Conductor",
        ledger=sub.ledger,
        runtime_s=sim.now,
        upload_s=None,
        process_s=None,
        streamed=True,
        deadline_hours=scenario.deadline_hours,
        task_series=engine.task_series,
        plan=plan,
    )


def _conductor_problem(scenario, services):
    from .problem import PlanningProblem

    margined = [
        s.replace(
            throughput_gb_per_hour=s.throughput_gb_per_hour * scenario.planning_margin
        )
        if s.can_compute
        else s
        for s in services
    ]
    deadline = scenario.planning_deadline_hours or scenario.deadline_hours
    return PlanningProblem(
        job=scenario.planner_job("conductor"),
        services=margined,
        network=scenario.network_conditions(),
        goal=Goal.min_cost(deadline_hours=deadline),
        interval_hours=scenario.planning_interval_hours,
        constant_nodes=scenario.constant_node_plan,
    )


class _PlanDeployer:
    """Enacts one plan interval at a time on the discrete substrate.

    The deployer is lightly closed-loop, as the controller is (Section
    5.4): at every interval boundary it compares completed map work
    against the plan's cumulative expectation and tops up the next
    interval's node counts to absorb the shortfall — the deployment-level
    equivalent of re-planning when progress monitoring detects deviation.
    """

    def __init__(self, sub: _Substrate, scenario, plan, scheduler, chunks,
                 engine=None) -> None:
        self.sub = sub
        self.scenario = scenario
        self.plan = plan
        self.scheduler = scheduler
        self.pending_chunks = list(chunks)
        self.active: dict[str, list[SimNode]] = {}
        self.engine = engine
        self._planned_cum_map_gb = 0.0
        #: Paced upload queues, one lane per path class so fast LAN
        #: transfers are never serialized behind slow WAN ones.
        self._upload_queues: dict[str, list[tuple[object, LocationRecord]]] = {
            "wan": [],
            "lan": [],
        }
        self._uploads_in_flight = {"wan": 0, "lan": 0}
        self._upload_carry: dict[str, float] = {}
        #: Concurrent chunk transfers per lane (typical client window).
        self.upload_window = 4

    def schedule_intervals(self) -> None:
        # Trailing idle intervals carry no actions; enacting them would
        # release every node while the last tasks still queue.  The plan
        # effectively ends at its last active interval, where the drain
        # loop takes over.
        active = [i for i in self.plan.intervals if not i.is_idle()]
        last = active[-1] if active else self.plan.intervals[-1]
        for interval in self.plan.intervals:
            if interval.start_hour > last.start_hour:
                break
            self.sub.sim.schedule_at(
                interval.start_hour * 3600.0, self._enact, interval
            )
        # Rounding chunk counts to the plan's fractional GB can strand a
        # few chunks; flush whatever remains at the end of the plan.
        self.sub.sim.schedule_at(
            last.start_hour * 3600.0 + 1.0, self._flush_pending
        )
        # Past the plan's horizon: keep working off any backlog at the
        # capacity needed to finish by the deadline.
        self.sub.sim.schedule_at(
            last.end_hour * 3600.0, self._post_plan_check
        )

    def _post_plan_check(self) -> None:
        if self.engine is not None and self.engine.is_complete:
            return
        remaining_gb = self.scenario.input_gb - self._actual_map_gb()
        if remaining_gb <= 1e-6:
            return
        # Past the horizon the plan no longer constrains placement: open
        # every source so stranded data anywhere can be drained.
        for backend in ("local-disk", "s3"):
            self.scheduler.allow(self.scenario.ec2.name, backend)
            if self.scenario.local is not None:
                self.scheduler.allow(self.scenario.local.name, backend)
        service = self.scenario.ec2
        rate = service.throughput_gb_per_hour
        # Size the drain to finish by the deadline (with 20% headroom),
        # never slower than one extra hour.
        now_h = self.sub.sim.now / 3600.0
        remaining_time = max(0.25, self.scenario.deadline_hours - now_h)
        remaining_time = min(remaining_time, 1.0)
        want = math.ceil(remaining_gb / max(rate * remaining_time * 0.8, 1e-9))
        have = self.active.setdefault(service.name, [])
        have[:] = [n for n in have if n.released_at is None]
        if len(have) < want:
            have.extend(self.sub.allocate_nodes(service, want - len(have)))
        elif len(have) > want:
            # Scale down: excess instances release now rather than ride
            # into (and get billed for) another hour.  Idle ones first.
            excess = len(have) - want
            have.sort(key=lambda n: n.busy_slots)
            for node in have[:excess]:
                self.sub.cluster.release(node)
            del have[:excess]
        if self.engine is not None:
            self.engine.dispatch()
        # Check back frequently: the residual tail is small, so reaction
        # time, not capacity, dominates how far past the plan we finish.
        self.sub.sim.schedule(900.0, self._post_plan_check)

    def _actual_map_gb(self) -> float:
        if self.engine is None:
            return 0.0
        done_mb = sum(
            t.input_mb
            for t in self.engine.map_tasks
            if t.completed_at is not None
        )
        return done_mb / MB_PER_GB

    def _arrived_backlog_gb(self) -> float:
        """Input that has landed in cloud storage but is not yet processed
        or being processed — the only work extra nodes can accelerate."""
        if self.engine is None:
            return 0.0
        from ..mapreduce.job import TaskState

        backlog_mb = 0.0
        for task in self.engine.map_tasks:
            if task.state not in (TaskState.PENDING, TaskState.RUNNABLE):
                continue
            if task.block is not None and self.sub.namenode.locations(task.block):
                backlog_mb += task.input_mb
        return backlog_mb / MB_PER_GB

    def _flush_pending(self) -> None:
        while self.pending_chunks:
            block_id = self.pending_chunks.pop(0)
            block = self.sub.namenode.block(block_id)
            target = None
            for name in list(self.active) + ["s3"]:
                target = self._target_for(name)
                if target is not None:
                    break
            if target is None:
                target = LocationRecord("s3")
            if target.backend == "s3":
                self.sub.charge_s3_requests(put_gb=block.size_mb / MB_PER_GB)
            self.sub.client.write(block, CLIENT_SITE, target, self._chunk_arrived)

    def _chunk_arrived(self, _block) -> None:
        """Streamed processing: a chunk landing may unblock tasks."""
        if self.engine is not None:
            self.engine.dispatch()

    def _pump_uploads(self) -> None:
        """Keep up to ``upload_window`` transfers in flight per lane."""
        sub = self.sub
        for lane, queue in self._upload_queues.items():
            while queue and self._uploads_in_flight[lane] < self.upload_window:
                block, target = queue.pop(0)
                self._uploads_in_flight[lane] += 1
                if target.backend == "s3":
                    sub.charge_s3_requests(put_gb=block.size_mb / MB_PER_GB)

                def landed(written, _lane=lane) -> None:
                    self._uploads_in_flight[_lane] -= 1
                    self._chunk_arrived(written)
                    self._pump_uploads()

                sub.client.write(block, CLIENT_SITE, target, landed)

    def _enact(self, interval) -> None:
        sub = self.sub
        # 0. Progress check: if execution lags the plan's cumulative map
        # work AND the lag is compute-bound (the data has arrived but sits
        # unprocessed), add nodes to work off the backlog.  An upload-bound
        # lag gets no extra nodes — they would only idle.
        wanted = dict(interval.nodes)
        shortfall_gb = self._planned_cum_map_gb - self._actual_map_gb()
        self._planned_cum_map_gb += interval.map_gb
        backlog_gb = min(shortfall_gb, self._arrived_backlog_gb())
        service = self.scenario.ec2
        rate = service.throughput_gb_per_hour * interval.duration_hours
        # Tolerate the normal streaming pipeline (data legitimately in
        # flight at a boundary scales with the number of active slots)
        # before declaring a deviation.
        pipeline_depth_gb = 0.15 * max(sum(wanted.values()), 1)
        trigger = max(1.0, pipeline_depth_gb)
        if backlog_gb > trigger:
            extra = math.ceil(backlog_gb / max(rate, 1e-9))
            wanted[service.name] = wanted.get(service.name, 0) + extra
        # 1. Adjust node counts per service.
        for name, want in wanted.items():
            service = self._service(name)
            have = self.active.setdefault(name, [])
            have[:] = [n for n in have if n.released_at is None]
            if len(have) < want:
                have.extend(sub.allocate_nodes(service, want - len(have)))
            elif len(have) > want:
                for node in have[want:]:
                    sub.cluster.release(node)
                del have[want:]
        for name, have in self.active.items():
            if name not in wanted:
                for node in have:
                    sub.cluster.release(node)
                have.clear()
        # 2. Uploads: queue the planned GB of pending chunks per target.
        # Chunks are *paced* — a bounded transfer window, next chunk when
        # one lands — so arrivals spread across the interval the way the
        # fluid plan assumes, instead of all completing at the hour's end.
        chunk_gb = self.scenario.split_mb / MB_PER_GB
        local_name = self.scenario.local.name if self.scenario.local else None
        for name, gb in interval.upload_gb.items():
            # Fractional-GB plans accumulate per service; chunks are sent
            # whenever a whole chunk's worth has been planned (carry-based,
            # so rounding never strands chunks across intervals).
            self._upload_carry[name] = self._upload_carry.get(name, 0.0) + gb
            chunk_count = int(self._upload_carry[name] / chunk_gb + 1e-9)
            lane = "lan" if name == local_name else "wan"
            sent = 0
            for _ in range(min(chunk_count, len(self.pending_chunks))):
                block_id = self.pending_chunks.pop(0)
                target = self._target_for(name)
                if target is None:
                    self.pending_chunks.append(block_id)
                    continue
                self._upload_queues[lane].append(
                    (sub.namenode.block(block_id), target)
                )
                sent += 1
            self._upload_carry[name] -= sent * chunk_gb
        self._pump_uploads()
        # 2.5 Migrations (Section 4.5): move stored chunks between
        # services as the plan dictates.
        for (src_name, dst_name), gb in interval.migrate_gb.items():
            src_backend = "s3" if src_name == "s3" else "local-disk"
            count = int(round(gb * MB_PER_GB / self.scenario.split_mb))
            candidates = sub.namenode.blocks_at(src_backend)
            for block_id in candidates[:count]:
                target = self._target_for(dst_name)
                if target is None:
                    continue
                block = sub.namenode.block(block_id)
                sources = [
                    r for r in sub.namenode.locations(block_id)
                    if r.backend == src_backend
                ]
                if not sources:
                    continue
                source = sources[0]
                if target.backend == "s3":
                    sub.charge_s3_requests(put_gb=block.size_mb / MB_PER_GB)
                if source.backend == "s3":
                    sub.charge_s3_requests(get_gb=block.size_mb / MB_PER_GB)

                def moved(written, _src=source, _bid=block_id):
                    sub.client.backends[_src.backend].delete(_src.node, _bid)
                    sub.namenode.remove_location(_bid, _src)
                    self._chunk_arrived(written)

                sub.client.write(block, source.site, target, moved)
        # 3. Open the plan's (storage -> compute) pairs for the scheduler.
        for (storage_name, compute_name) in interval.map_read_gb:
            backend = "s3" if storage_name == "s3" else "local-disk"
            self.scheduler.allow(compute_name, backend)
            if storage_name == "s3":
                gb = interval.map_read_gb[(storage_name, compute_name)]
                sub.charge_s3_requests(get_gb=gb)

    def _service(self, name: str):
        for candidate in (self.scenario.ec2, self.scenario.s3, self.scenario.local):
            if candidate is not None and candidate.name == name:
                return candidate
        raise KeyError(name)

    def _target_for(self, service_name: str) -> LocationRecord | None:
        if service_name == "s3":
            return LocationRecord("s3")
        nodes = [
            n
            for n in self.sub.cluster.up_nodes(service_name)
        ] or [n for n in self.active.get(service_name, [])]
        if not nodes:
            return None
        node = min(nodes, key=lambda n: self.sub.disk.stored_mb(n.site))
        return LocationRecord("local-disk", node.site)
