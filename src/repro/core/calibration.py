"""Recurring-job calibration (paper Section 4.1).

The paper restricts Conductor to MapReduce because the model needs job
characteristics up front, and notes the alternative for everything
else: "focus on recurring jobs, where the first run would be monitored
to extract the model that would be used in subsequent runs.  The core
of our system would not have to be changed to accommodate these
methods."  This module is that method, built on the unchanged core:

- :func:`calibrate` distills a finished deployment's
  :class:`~repro.core.controller.ControllerResult` into a
  :class:`CalibrationReport` — observed per-node rates per service and
  the realized WAN uplink;
- :meth:`CalibrationReport.apply` produces corrected service
  descriptions and network conditions for the next run;
- :func:`run_recurring` demonstrates the loop: a mispredicted first run
  (which adapts mid-flight, Fig. 12 style) followed by a calibrated
  second run that plans correctly from the start.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Sequence

from ..cloud.services import ServiceDescription
from .conditions import ActualConditions
from .controller import ControllerResult, JobController
from .executor import IntervalOutcome
from .problem import Goal, NetworkConditions, PlannerJob

_EPS = 1e-9


@dataclass(frozen=True)
class RateObservation:
    """Aggregated throughput evidence for one compute service."""

    service: str
    #: Mean observed per-node rate (GB/h), *including* the job's
    #: throughput_scale — i.e. directly comparable to
    #: ``job.map_rate(service)``.
    mean_rate: float
    #: Node-hours of evidence behind the mean (confidence weight).
    node_hours: float


@dataclass(frozen=True)
class CalibrationReport:
    """What the first run taught us about the world."""

    job_name: str
    #: The throughput_scale the observations already include.
    throughput_scale: float
    rates: tuple[RateObservation, ...]
    #: Best realized WAN uplink, GB/h (a lower bound on capacity).
    observed_uplink_gb_h: float | None

    def rate_for(self, service_name: str) -> RateObservation | None:
        for observation in self.rates:
            if observation.service == service_name:
                return observation
        return None

    def apply(
        self,
        services: Sequence[ServiceDescription],
        network: NetworkConditions,
    ) -> tuple[list[ServiceDescription], NetworkConditions]:
        """Corrected copies of the catalog and network conditions.

        Services without observations pass through unchanged (the next
        plan still may not pick them, exactly as before); the uplink
        only shrinks — a realized rate proves capacity *at least* that
        high, but assuming more than the believed value would be
        speculation.
        """
        calibrated = []
        for service in services:
            observation = self.rate_for(service.name)
            if observation is None or not service.can_compute:
                calibrated.append(service)
                continue
            base_rate = observation.mean_rate / max(self.throughput_scale, _EPS)
            calibrated.append(
                service.replace(throughput_gb_per_hour=base_rate)
            )
        if (
            self.observed_uplink_gb_h is not None
            and self.observed_uplink_gb_h < network.uplink_gb_per_hour - _EPS
        ):
            network = NetworkConditions(
                uplink_gb_per_hour=self.observed_uplink_gb_h,
                downlink_gb_per_hour=network.downlink_gb_per_hour,
                local_gb_per_hour=network.local_gb_per_hour,
                interservice_gb_per_hour=network.interservice_gb_per_hour,
            )
        return calibrated, network


def calibrate(
    job: PlannerJob,
    result: ControllerResult,
    network: NetworkConditions | None = None,
) -> CalibrationReport:
    """Extract a calibration report from a monitored deployment.

    Per-service rates are node-hour-weighted means of the executor's
    per-interval observations; the uplink estimate is the fastest
    sustained upload interval (a capacity lower bound; ``None`` if the
    run never uploaded).
    """
    samples: dict[str, tuple[float, float]] = {}  # name -> (rate*w, w)
    best_uplink: float | None = None
    for outcome in result.outcomes:
        for name, rate in outcome.observed_rates.items():
            if rate <= 0:
                continue
            weight = outcome.nodes.get(name, 0) * outcome.duration_hours
            if weight <= 0:
                continue
            acc, total = samples.get(name, (0.0, 0.0))
            samples[name] = (acc + rate * weight, total + weight)
        if (
            outcome.uploaded_gb > _EPS
            and outcome.duration_hours > _EPS
            and outcome.uploaded_gb < outcome.planned_upload_gb - 1e-6
        ):
            # Only under-delivering intervals reveal capacity: the plan
            # wanted more and the WAN gave this much.  Intervals that
            # met their planned volume say nothing about the ceiling —
            # treating them as evidence would "calibrate" the uplink
            # down to whatever the plan happened to schedule.
            rate = outcome.uploaded_gb / outcome.duration_hours
            if best_uplink is None or rate > best_uplink:
                best_uplink = rate
    observations = tuple(
        RateObservation(
            service=name,
            # Snap away float-summation noise: a rate that differs from
            # the truth by 1e-16 GB/h can still flip the MILP to a
            # different within-gap incumbent, which is pure instability
            # with no informational basis.
            mean_rate=round(acc / total, 9),
            node_hours=total,
        )
        for name, (acc, total) in sorted(samples.items())
    )
    return CalibrationReport(
        job_name=job.name,
        throughput_scale=job.throughput_scale,
        rates=observations,
        observed_uplink_gb_h=best_uplink,
    )


@dataclass
class RecurringRunResult:
    """First (exploratory) and second (calibrated) runs of one job."""

    first: ControllerResult
    second: ControllerResult
    report: CalibrationReport

    @property
    def replans_eliminated(self) -> int:
        return self.first.replans - self.second.replans


def run_recurring(
    job: PlannerJob,
    services: Sequence[ServiceDescription],
    goal: Goal,
    actual: ActualConditions,
    network: NetworkConditions | None = None,
    **controller_kwargs,
) -> RecurringRunResult:
    """Deploy twice: monitor the first run, calibrate, rerun.

    The first run uses the (possibly wrong) catalog beliefs and adapts
    mid-flight; the second plans against the calibrated model.  The
    world (``actual``) is identical in both runs.
    """
    network = network or NetworkConditions()
    first_controller = JobController(
        job, services, goal, network=network, **controller_kwargs
    )
    first = first_controller.run(actual)
    report = calibrate(job, first, network)
    calibrated_services, calibrated_network = report.apply(services, network)
    second_controller = JobController(
        job, calibrated_services, goal, network=calibrated_network,
        **controller_kwargs,
    )
    second = second_controller.run(actual)
    return RecurringRunResult(first=first, second=second, report=report)
