"""Fluid plan executor: runs one plan interval against actual conditions.

This is the deployment-side counterpart of the LP's fluid view of the
world: data moves in GB per interval, node allocations follow the plan,
and every resource touch is charged to a :class:`CostLedger`.  The job
controller (:mod:`repro.core.controller`) drives it interval by interval
and reacts to the deviations it reports.

The executor honours Conductor's central deployment invariant (Section
5.3): it performs **only** actions the plan contains — a planned read that
the world cannot satisfy (not enough data, slower nodes) is silently
truncated, surfaces as a progress shortfall, and triggers re-planning —
it is never "made up" by off-plan scheduling.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

from ..cloud.services import ServiceDescription
from .accounting import CostCategory, CostLedger
from .conditions import ActualConditions
from .plan import PlanInterval
from .problem import PlannerJob, PlanningProblem, SystemState

_EPS = 1e-9


@dataclass
class IntervalOutcome:
    """What actually happened during one executed interval."""

    index: int
    start_hour: float
    duration_hours: float
    nodes: dict[str, int]
    uploaded_gb: float
    map_gb: float
    reduce_gb: float
    downloaded_gb: float
    #: plan's map GB for the interval (deviation detection input).
    planned_map_gb: float
    planned_upload_gb: float
    cost: float
    #: spot services that were out-bid (allocated 0 nodes) this interval.
    outbid_services: list[str] = field(default_factory=list)
    #: observed per-node processing rate by service (GB/h), where measurable.
    observed_rates: dict[str, float] = field(default_factory=dict)
    #: GB of state destroyed by spot-instance termination this interval.
    spot_data_lost_gb: float = 0.0
    #: Services whose workers died or timed out this interval (real
    #: execution backends only; the fluid simulator never fails workers).
    failed_services: list[str] = field(default_factory=list)

    @property
    def map_shortfall(self) -> float:
        """Relative shortfall vs. plan (0 = on plan, 1 = nothing ran)."""
        if self.planned_map_gb <= _EPS:
            return 0.0
        return max(0.0, 1.0 - self.map_gb / self.planned_map_gb)


class FluidExecutor:
    """Executes plan intervals, mutating a :class:`SystemState`."""

    def __init__(
        self,
        problem: PlanningProblem,
        actual: ActualConditions,
        ledger: CostLedger | None = None,
        hour_offset: float = 0.0,
    ) -> None:
        self.problem = problem
        self.actual = actual
        self.ledger = ledger if ledger is not None else CostLedger()
        self.job = problem.job
        self._services = {s.name: s for s in problem.services}
        #: per spot service, the bid currently held (set by the controller).
        self.bids: dict[str, float] = {}
        #: Offset between job-relative hours and spot-trace absolute hours
        #: (a job started at trace hour 48 has hour_offset=48).
        self.hour_offset = hour_offset

    # -- public ---------------------------------------------------------------

    def execute_interval(
        self, interval: PlanInterval, state: SystemState
    ) -> IntervalOutcome:
        """Run one planned interval against the actual conditions.

        Mutates ``state`` in place (stocks, progress counters, the clock)
        and appends every charge to the ledger.
        """
        problem = self.problem
        job = self.job
        delta = interval.duration_hours
        hour = state.hour
        outcome = IntervalOutcome(
            index=interval.index,
            start_hour=hour,
            duration_hours=delta,
            nodes={},
            uploaded_gb=0.0,
            map_gb=0.0,
            reduce_gb=0.0,
            downloaded_gb=0.0,
            planned_map_gb=interval.map_gb,
            planned_upload_gb=interval.total_upload_gb,
            cost=0.0,
        )
        before = self.ledger.total()

        nodes = self._allocate_nodes(interval, hour, outcome)
        if self.actual.spot_storage_volatile:
            self._spot_storage_losses(state, nodes, outcome)
        # Snapshot of start-of-interval stocks: with the paper's staging
        # semantics (upload_read_lag=1) only these are processable now.
        start_input = dict(state.stored_input)
        start_output = dict(state.stored_output)
        start_result = dict(state.stored_result)

        uploaded = self._execute_uploads(interval, state, delta, hour)
        outcome.uploaded_gb = uploaded

        map_gb = self._execute_map(
            interval, state, start_input, nodes, delta, hour, outcome
        )
        outcome.map_gb = map_gb
        state.map_done_gb = min(job.input_gb, state.map_done_gb + map_gb)

        map_complete = state.map_done_gb >= job.input_gb - 1e-6
        if job.map_output_gb > _EPS and map_complete:
            reduce_gb = self._execute_reduce(
                interval, state, start_output, nodes, delta, hour, map_gb
            )
            outcome.reduce_gb = reduce_gb
            state.reduce_done_gb = min(
                job.map_output_gb, state.reduce_done_gb + reduce_gb
            )
            downloaded = self._execute_downloads(
                interval, state, start_result, delta, hour
            )
            outcome.downloaded_gb = downloaded
            state.downloaded_gb = min(job.result_gb, state.downloaded_gb + downloaded)

        self._charge_storage(state, delta, hour)
        state.hour = hour + delta
        outcome.cost = self.ledger.total() - before
        return outcome

    def is_complete(self, state: SystemState) -> bool:
        job = self.job
        if state.map_done_gb < job.input_gb - 1e-6:
            return False
        if job.map_output_gb <= _EPS:
            return True
        return (
            state.reduce_done_gb >= job.map_output_gb - 1e-6
            and state.downloaded_gb >= job.result_gb - 1e-6
        )

    # -- capacity hooks ---------------------------------------------------------
    # Execution backends that run real work (repro.exec) override these
    # to cap the fluid accounting by what their workers actually
    # completed; the simulator's capacity is the believed-world formula.

    def _map_capacity(self, name: str, count: int, delta: float) -> float:
        """GB of map input ``count`` nodes of ``name`` can process."""
        service = self._services[name]
        rate = self.actual.actual_rate(service, self.job.throughput_scale)
        return count * rate * delta

    def _reduce_capacity(
        self,
        interval: PlanInterval,
        nodes: dict[str, int],
        delta: float,
        map_gb_this_interval: float,
    ) -> float:
        """GB of reduce input the allocated nodes can process."""
        job = self.job
        capacity = 0.0
        for name, count in nodes.items():
            service = self._services[name]
            rate = self.actual.actual_rate(service, job.throughput_scale)
            used_for_map = 0.0
            if map_gb_this_interval > 0 and interval.map_gb > 0:
                share = sum(
                    gb for (s, d), gb in interval.map_read_gb.items() if d == name
                )
                used_for_map = min(1.0, share / max(interval.map_gb, _EPS))
            capacity += (
                count
                * rate
                * job.reduce_speed_factor
                * delta
                * max(0.0, 1.0 - used_for_map * 0.5)
            )
        return capacity

    # -- phases -----------------------------------------------------------------

    def _allocate_nodes(
        self, interval: PlanInterval, hour: float, outcome: IntervalOutcome
    ) -> dict[str, int]:
        """Rent the planned nodes; spot nodes only run while bid >= market."""
        nodes: dict[str, int] = {}
        for name, count in interval.nodes.items():
            service = self._services[name]
            price = self.actual.spot_price(service, hour + self.hour_offset)
            if service.is_spot:
                bid = self.bids.get(name, service.price_per_node_hour)
                if price > bid + _EPS:
                    outcome.outbid_services.append(name)
                    continue  # out-bid: the provider terminates the request
            nodes[name] = count
            billed = service.node_hours_billed(interval.duration_hours)
            self.ledger.add(
                hour,
                name,
                CostCategory.COMPUTE,
                "node-hours" + (" (spot)" if service.is_spot else ""),
                count * billed,
                "node-h",
                price,
            )
        outcome.nodes = nodes
        return nodes

    def _spot_storage_losses(
        self,
        state: SystemState,
        nodes: dict[str, int],
        outcome: IntervalOutcome,
    ) -> None:
        """Destroy state on terminated spot instances (Section 2.1).

        Data on a spot service's virtual disks survives only while its
        instances run.  An out-bid hour (or a planned zero-allocation
        interval) terminates them; input returns to the source for
        re-upload, and map/reduce output loss rewinds the corresponding
        progress so the work is re-executed.
        """
        job = self.job
        for name, service in self._services.items():
            if not (service.is_spot and service.can_store):
                continue
            if nodes.get(name, 0) > 0:
                continue  # instances still running; disks intact
            lost_input = state.stored_input.pop(name, 0.0)
            if lost_input > _EPS:
                state.source_remaining_gb += lost_input
                outcome.spot_data_lost_gb += lost_input
            lost_output = state.stored_output.pop(name, 0.0)
            if lost_output > _EPS:
                ratio = max(job.map_output_ratio, _EPS)
                state.map_done_gb = max(
                    0.0, state.map_done_gb - lost_output / ratio
                )
                # The re-mapped input must come from somewhere: return it
                # to the source unless a copy still sits in cloud storage.
                stored = sum(state.stored_input.values())
                needed = lost_output / ratio
                shortfall = max(0.0, needed - stored)
                state.source_remaining_gb += shortfall
                outcome.spot_data_lost_gb += lost_output
            lost_result = state.stored_result.pop(name, 0.0)
            if lost_result > _EPS:
                ratio = max(job.reduce_output_ratio, _EPS)
                state.reduce_done_gb = max(
                    0.0, state.reduce_done_gb - lost_result / ratio
                )
                outcome.spot_data_lost_gb += lost_result

    def _execute_uploads(
        self, interval: PlanInterval, state: SystemState, delta: float, hour: float
    ) -> float:
        """Move source data per plan, throttled by actual WAN bandwidth."""
        problem = self.problem
        wan_budget = (
            problem.network.uplink_gb_per_hour * delta * self.actual.uplink_factor
        )
        lan_budget = problem.network.local_gb_per_hour * delta
        total = 0.0
        for name, planned in sorted(interval.upload_gb.items()):
            service = self._services[name]
            local = service.provider == problem.local_provider
            budget = lan_budget if local else wan_budget
            moved = min(planned, budget, state.source_remaining_gb)
            if moved <= _EPS:
                continue
            if local:
                lan_budget -= moved
            else:
                wan_budget -= moved
            state.source_remaining_gb -= moved
            state.stored_input[name] = state.stored_input.get(name, 0.0) + moved
            total += moved
            self._charge_requests(service, hour, put_gb=moved)
            self._charge_transfer(None, service, moved, hour)
        return total

    def _execute_map(
        self,
        interval: PlanInterval,
        state: SystemState,
        start_input: dict[str, float],
        nodes: dict[str, int],
        delta: float,
        hour: float,
        outcome: IntervalOutcome,
    ) -> float:
        """Process map input per the plan's (storage, compute) flows.

        Each flow is truncated to (a) the compute service's *actual*
        capacity this interval and (b) the data available at its source
        under the staging semantics.
        """
        job = self.job
        problem = self.problem
        capacity: dict[str, float] = {}
        for name, count in nodes.items():
            capacity[name] = self._map_capacity(name, count, delta)
        available = dict(start_input)
        if problem.upload_read_lag == 0:
            for name, gb in state.stored_input.items():
                available[name] = max(available.get(name, 0.0), gb)
        wan_budget = (
            problem.network.uplink_gb_per_hour * delta * self.actual.uplink_factor
        )
        total = 0.0
        for (src, dst), planned in sorted(interval.map_read_gb.items()):
            src_service = self._services[src]
            dst_service = self._services[dst]
            moved = min(
                planned,
                capacity.get(dst, 0.0),
                available.get(src, 0.0),
                state.stored_input.get(src, 0.0),
            )
            crosses_wan = (src_service.provider == problem.local_provider) != (
                dst_service.provider == problem.local_provider
            )
            if crosses_wan:
                moved = min(moved, wan_budget)
            if moved <= _EPS:
                continue
            if crosses_wan:
                wan_budget -= moved
            capacity[dst] -= moved
            available[src] -= moved
            state.stored_input[src] = state.stored_input.get(src, 0.0) - moved
            total += moved
            if src != dst:
                self._charge_requests(src_service, hour, get_gb=moved)
                self._charge_transfer(src_service, dst_service, moved, hour)
            # Map output lands where the plan says this compute writes.
            self._place_output(interval, dst, moved * job.map_output_ratio, state, hour)
        # Observed per-node rates, for the monitor: only measurable when a
        # service actually processed data.
        by_service: dict[str, float] = {}
        for (src, dst), planned in interval.map_read_gb.items():
            by_service.setdefault(dst, 0.0)
        for name in by_service:
            service = self._services[name]
            if nodes.get(name, 0) > 0:
                rate = self.actual.actual_rate(service, job.throughput_scale)
                outcome.observed_rates[name] = rate
        return total

    def _place_output(
        self,
        interval: PlanInterval,
        compute: str,
        output_gb: float,
        state: SystemState,
        hour: float,
    ) -> None:
        if output_gb <= _EPS:
            return
        planned = {
            dst: gb
            for (src, dst), gb in interval.map_write_gb.items()
            if src == compute
        }
        targets = planned or {compute: 1.0}
        weight = sum(targets.values())
        for dst, share in targets.items():
            moved = output_gb * share / weight
            dst_service = self._services[dst]
            state.stored_output[dst] = state.stored_output.get(dst, 0.0) + moved
            if dst != compute:
                self._charge_requests(dst_service, hour, put_gb=moved)
                self._charge_transfer(self._services[compute], dst_service, moved, hour)

    def _execute_reduce(
        self,
        interval: PlanInterval,
        state: SystemState,
        start_output: dict[str, float],
        nodes: dict[str, int],
        delta: float,
        hour: float,
        map_gb_this_interval: float,
    ) -> float:
        """Run the reduce phase (only called once the map phase is done)."""
        job = self.job
        remaining = job.map_output_gb - state.reduce_done_gb
        if remaining <= _EPS:
            return 0.0
        capacity = self._reduce_capacity(
            interval, nodes, delta, map_gb_this_interval
        )
        available = sum(state.stored_output.values())
        moved = min(remaining, capacity, available)
        if moved <= _EPS:
            return 0.0
        # Consume proportionally from wherever output sits.
        for name in list(state.stored_output):
            share = state.stored_output[name] / available
            take = moved * share
            state.stored_output[name] -= take
            service = self._services[name]
            self._charge_requests(service, hour, get_gb=take)
        result = moved * job.reduce_output_ratio
        targets = (
            {dst: gb for (c, dst), gb in interval.reduce_write_gb.items()}
            or {next(iter(nodes), self._first_storage().name): 1.0}
        )
        weight = sum(targets.values())
        for dst, share in targets.items():
            if dst not in self._services or not self._services[dst].can_store:
                continue
            state.stored_result[dst] = state.stored_result.get(dst, 0.0) + result * share / weight
        return moved

    def _execute_downloads(
        self,
        interval: PlanInterval,
        state: SystemState,
        start_result: dict[str, float],
        delta: float,
        hour: float,
    ) -> float:
        problem = self.problem
        wan_budget = (
            problem.network.downlink_gb_per_hour * delta * self.actual.downlink_factor
        )
        total = 0.0
        remaining = self.job.result_gb - state.downloaded_gb
        for name in sorted(state.stored_result):
            service = self._services[name]
            stock = state.stored_result.get(name, 0.0)
            local = service.provider == problem.local_provider
            moved = min(stock, remaining - total)
            if not local:
                moved = min(moved, wan_budget)
            if moved <= _EPS:
                continue
            if not local:
                wan_budget -= moved
            state.stored_result[name] = stock - moved
            total += moved
            self._charge_requests(service, hour, get_gb=moved)
            self._charge_transfer(service, None, moved, hour)
        return total

    # -- charging -----------------------------------------------------------------

    def _charge_storage(self, state: SystemState, delta: float, hour: float) -> None:
        for name, service in self._services.items():
            if service.cost_tstore_gb_hour <= 0:
                continue
            held = (
                state.stored_input.get(name, 0.0)
                + state.stored_output.get(name, 0.0)
                + state.stored_result.get(name, 0.0)
            )
            if held > _EPS:
                self.ledger.add(
                    hour,
                    name,
                    CostCategory.STORAGE,
                    "GB-hours",
                    held * delta,
                    "GB-h",
                    service.cost_tstore_gb_hour,
                )

    def _charge_requests(
        self,
        service: ServiceDescription,
        hour: float,
        put_gb: float = 0.0,
        get_gb: float = 0.0,
    ) -> None:
        if put_gb > _EPS and service.put_cost_per_gb() > 0:
            self.ledger.add(
                hour,
                service.name,
                CostCategory.REQUESTS,
                "put requests",
                put_gb,
                "GB",
                service.put_cost_per_gb(),
            )
        if get_gb > _EPS and service.get_cost_per_gb() > 0:
            self.ledger.add(
                hour,
                service.name,
                CostCategory.REQUESTS,
                "get requests",
                get_gb,
                "GB",
                service.get_cost_per_gb(),
            )

    def _charge_transfer(
        self,
        src: ServiceDescription | None,
        dst: ServiceDescription | None,
        gb: float,
        hour: float,
    ) -> None:
        """Charge provider-boundary crossings (src/dst of ``None`` = client)."""
        local = self.problem.local_provider
        src_provider = src.provider if src is not None else local
        dst_provider = dst.provider if dst is not None else local
        if src_provider == dst_provider or gb <= _EPS:
            return
        if src is not None and src.transfer_out_cost_gb > 0:
            self.ledger.add(
                hour, src.name, CostCategory.TRANSFER, "transfer out",
                gb, "GB", src.transfer_out_cost_gb,
            )
        if dst is not None and dst.transfer_in_cost_gb > 0:
            self.ledger.add(
                hour, dst.name, CostCategory.TRANSFER, "transfer in",
                gb, "GB", dst.transfer_in_cost_gb,
            )

    def _first_storage(self) -> ServiceDescription:
        return next(s for s in self.problem.services if s.can_store)
