"""Re-export shim: the cost ledger lives in :mod:`repro.accounting` (it is
shared by the cluster substrate and the Conductor core, and keeping it
top-level breaks an import cycle between the two)."""

from ..accounting import CostCategory, CostLedger, LedgerEntry, combine

__all__ = ["CostCategory", "CostLedger", "LedgerEntry", "combine"]
