"""Ground-truth runtime conditions, as opposed to the planner's beliefs.

The paper's adaptation experiments hinge on the gap between what the
model *assumed* (1.44 GB/h per node) and what the deployment *observed*
(0.44 GB/h, Section 6.4), and between estimated and realized spot prices
(Section 6.5).  :class:`ActualConditions` carries the ground truth the
executor simulates against; the planner never sees it directly — only
through monitoring observations.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Mapping

from ..cloud.services import ServiceDescription
from ..cloud.spot import SpotTrace


@dataclass
class ActualConditions:
    """What the world is really like during deployment.

    Attributes
    ----------
    throughput_gb_per_hour:
        Actual per-node processing rate by service name; services absent
        here perform exactly as their description claims.
    uplink_factor / downlink_factor:
        Multipliers on the believed WAN bandwidth (congestion: < 1).
    spot_traces:
        Realized market prices by (spot) service name.
    spot_storage_volatile:
        Whether data parked on spot-instance virtual disks is destroyed
        when the instances are terminated by an out-bid hour (Section
        2.1's fault concern).  True is the faithful AWS behaviour; the
        spot-storage ablation toggles it.
    """

    throughput_gb_per_hour: Mapping[str, float] = field(default_factory=dict)
    uplink_factor: float = 1.0
    downlink_factor: float = 1.0
    spot_traces: Mapping[str, SpotTrace] = field(default_factory=dict)
    spot_storage_volatile: bool = True

    def actual_rate(self, service: ServiceDescription, believed_scale: float = 1.0) -> float:
        """Actual map-phase GB/h per node for ``service``."""
        if service.name in self.throughput_gb_per_hour:
            return self.throughput_gb_per_hour[service.name] * believed_scale
        return service.throughput_gb_per_hour * believed_scale

    def spot_price(self, service: ServiceDescription, hour: float) -> float:
        """Realized hourly price for a (possibly spot) service."""
        trace = self.spot_traces.get(service.name)
        if service.is_spot and trace is not None:
            return trace.price_at(hour)
        return service.price_per_node_hour

    @classmethod
    def as_predicted(cls) -> "ActualConditions":
        """The world behaves exactly as the model assumed."""
        return cls()
