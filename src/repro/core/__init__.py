"""Conductor core: planner, controller, accounting, predictors.

The public planning API:

- :func:`plan_job` / :class:`Planner` — problem in, plan out.
- :class:`PlannerJob`, :class:`Goal`, :class:`NetworkConditions`,
  :class:`SystemState`, :class:`PlanningProblem` — the planning vocabulary.
- :class:`ExecutionPlan` — the solver's answer, deployable per interval.
- :class:`CostLedger` — fine-grained internal accounting (Section 6.1).
- Spot predictors (Section 6.5): :class:`OptimalPredictor`,
  :class:`CurrentPricePredictor`, :class:`WindowMaxPredictor`.
"""

from .accounting import CostCategory, CostLedger, LedgerEntry, combine
from .calibration import (
    CalibrationReport,
    RateObservation,
    RecurringRunResult,
    calibrate,
    run_recurring,
)
from .conditions import ActualConditions
from .controller import (
    ControllerConfig,
    ControllerResult,
    ControllerRun,
    JobController,
    ReplanRecord,
)
from .deployments import (
    DeploymentResult,
    DeploymentScenario,
    run_conductor,
    run_hadoop_direct,
    run_hadoop_s3,
    run_hadoop_upload_first,
)
from .executor import FluidExecutor, IntervalOutcome
from .model_builder import BuiltModel, PlanningError, build_model
from .pipeline_planner import (
    PipelinePlan,
    PipelinePlanningError,
    PipelineRunResult,
    StagePlan,
    estimate_run_distribution,
    plan_pipeline,
    run_pipeline_with_failures,
)
from .plan import ExecutionPlan, PlanInterval, merge_plans
from .planner import Planner, plan_job
from .reliability import (
    ExpectedOutcome,
    PipelineReliabilityModel,
    RetentionPolicy,
    StageOutcome,
    StageProfile,
    StorageTier,
    TierChoice,
    choose_tiers,
    durable_premium_break_even,
)
from .spot_sim import (
    SpotScenarioResult,
    run_regular_baseline,
    run_spot_scenario,
    spot_services,
)
from .predictor import (
    CurrentPricePredictor,
    OptimalPredictor,
    SpotPredictor,
    WindowMaxPredictor,
    predictor_suite,
)
from .predictors_ext import (
    Ar1Predictor,
    EwmaPredictor,
    MarginBidder,
    QuantilePredictor,
    SeasonalNaivePredictor,
    extended_predictor_suite,
    forecast_errors,
)
from .problem import (
    Goal,
    GoalKind,
    NetworkConditions,
    PlannerJob,
    PlanningProblem,
    SystemState,
)
from .triggers import (
    TRIGGER_KINDS,
    DeviationTrigger,
    EvictionTrigger,
    FailureTrigger,
    IntervalTrigger,
    PriceTrigger,
    ReplanDecision,
    Trigger,
    TriggerContext,
    TriggerPolicy,
    default_trigger_policy,
    interval_trigger_policy,
)

__all__ = [
    "Ar1Predictor",
    "BuiltModel",
    "CalibrationReport",
    "ControllerConfig",
    "ControllerResult",
    "ControllerRun",
    "DeviationTrigger",
    "EvictionTrigger",
    "FailureTrigger",
    "IntervalTrigger",
    "JobController",
    "PriceTrigger",
    "ReplanDecision",
    "ReplanRecord",
    "TRIGGER_KINDS",
    "Trigger",
    "TriggerContext",
    "TriggerPolicy",
    "default_trigger_policy",
    "interval_trigger_policy",
    "CostCategory",
    "RateObservation",
    "RecurringRunResult",
    "calibrate",
    "run_recurring",
    "EwmaPredictor",
    "MarginBidder",
    "QuantilePredictor",
    "SeasonalNaivePredictor",
    "extended_predictor_suite",
    "forecast_errors",
    "CostLedger",
    "CurrentPricePredictor",
    "ExecutionPlan",
    "ExpectedOutcome",
    "Goal",
    "GoalKind",
    "LedgerEntry",
    "NetworkConditions",
    "OptimalPredictor",
    "PipelinePlan",
    "PipelinePlanningError",
    "PipelineReliabilityModel",
    "PipelineRunResult",
    "PlanInterval",
    "Planner",
    "PlannerJob",
    "PlanningError",
    "PlanningProblem",
    "RetentionPolicy",
    "SpotPredictor",
    "StageOutcome",
    "StagePlan",
    "StageProfile",
    "StorageTier",
    "SystemState",
    "TierChoice",
    "WindowMaxPredictor",
    "build_model",
    "choose_tiers",
    "combine",
    "durable_premium_break_even",
    "estimate_run_distribution",
    "merge_plans",
    "plan_job",
    "plan_pipeline",
    "predictor_suite",
    "run_pipeline_with_failures",
]
