"""The planning front-end: problem in, execution plan out.

Wraps model generation (:mod:`repro.core.model_builder`) and solving with
the paper's operational policy (Section 4.8): bound solving time to three
minutes and accept the best feasible plan found, with CPLEX's role played
by scipy/HiGHS.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping, Sequence

from ..cloud.services import ServiceDescription
from .model_builder import BuiltModel, PlanningError, build_model
from .plan import ExecutionPlan
from .problem import Goal, NetworkConditions, PlannerJob, PlanningProblem, SystemState


@dataclass
class Planner:
    """Turns planning problems into execution plans.

    Parameters mirror the paper's solver configuration: ``time_limit``
    (3 minutes, Section 4.8) and ``mip_gap`` (1 %, Section 6.6).
    """

    time_limit: float = 180.0
    mip_gap: float = 0.01
    backend: str = "auto"
    #: Optional delta-aware solver (duck-typed: ``solve(problem,
    #: time_limit) -> ExecutionPlan`` raising :class:`PlanningError`).
    #: When set, ``plan`` delegates to it — this is how the service and
    #: fleet layers drop the
    #: :class:`~repro.service.incremental.IncrementalSolver` under a
    #: plain ``Planner`` without the core importing upward.
    solver: object | None = None

    def plan(self, problem: PlanningProblem) -> ExecutionPlan:
        """Build and solve the model; raise :class:`PlanningError` when no
        feasible deployment exists within the horizon."""
        if self.solver is not None:
            return self.solver.solve(problem, self.time_limit)
        built = build_model(problem)
        solution = built.model.solve(
            backend=self.backend, time_limit=self.time_limit, mip_gap=self.mip_gap
        )
        if not solution.status.has_solution:
            raise PlanningError(
                f"planning failed for {problem.job.name!r}: "
                f"{solution.status.value} ({solution.message})",
                status=solution.status.value,
                budgeted=problem.goal.budget_usd is not None,
            )
        return built.extract_plan(solution)

    def build(self, problem: PlanningProblem) -> BuiltModel:
        """Expose the raw model (solving-time benchmarks, tests)."""
        return build_model(problem)


def plan_job(
    job: PlannerJob,
    services: Sequence[ServiceDescription],
    goal: Goal,
    network: NetworkConditions | None = None,
    state: SystemState | None = None,
    spot_price_estimates: Mapping[str, Sequence[float]] | None = None,
    upload_fractions: Mapping[str, float] | None = None,
    planner: Planner | None = None,
    **problem_kwargs,
) -> ExecutionPlan:
    """One-call convenience API: plan ``job`` over ``services`` for ``goal``.

    This is the quickstart entry point::

        plan = plan_job(
            PlannerJob(input_gb=32),
            public_cloud(),
            Goal.min_cost(deadline_hours=6.0),
        )
    """
    problem = PlanningProblem(
        job=job,
        services=list(services),
        network=network or NetworkConditions(),
        goal=goal,
        state=state,
        spot_price_estimates=spot_price_estimates or {},
        upload_fractions=upload_fractions or {},
        **problem_kwargs,
    )
    return (planner or Planner()).plan(problem)
