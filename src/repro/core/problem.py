"""Planning problem definitions: job, network, system state, goals.

These dataclasses are the input vocabulary of Conductor's planner.  A
:class:`PlanningProblem` bundles everything the LP model builder needs:
the MapReduce job's aggregate characteristics (:class:`PlannerJob`), the
candidate services, network conditions, the optimization goal, and —
when re-planning mid-run (Section 5.4) — a :class:`SystemState` snapshot
of where data and work currently stand.
"""

from __future__ import annotations

import enum
import math
from dataclasses import dataclass, field
from typing import Mapping, Sequence

from ..cloud.services import ServiceDescription
from ..units import mb_s_to_gb_h, mbit_s_to_mb_s


@dataclass(frozen=True)
class PlannerJob:
    """Aggregate description of a MapReduce job, as the planner sees it.

    The paper restricts Conductor to MapReduce (Section 4.1) precisely
    because the whole job is then describable by a handful of numbers:
    how much data flows into the map phase, how much comes out, and how
    fast nodes chew through it.

    Attributes
    ----------
    input_gb:
        Input data size at the source (paper: 32 GB of k-means points).
    map_output_ratio:
        Map-output bytes per input byte.  k-means emits tiny partial
        centroid sums: ~0.002 of the input.
    reduce_output_ratio:
        Reduce-output bytes per map-output byte.
    throughput_scale:
        Job-specific multiplier on each service's calibrated
        ``throughput_gb_per_hour`` (1.0 means the calibration workload).
    reduce_speed_factor:
        Reduce phase processes its (small) input at this multiple of the
        map rate.
    """

    name: str = "job"
    input_gb: float = 32.0
    map_output_ratio: float = 0.002
    reduce_output_ratio: float = 1.0
    throughput_scale: float = 1.0
    reduce_speed_factor: float = 4.0

    def __post_init__(self) -> None:
        if self.input_gb <= 0:
            raise ValueError("input_gb must be positive")
        if self.map_output_ratio < 0 or self.reduce_output_ratio < 0:
            raise ValueError("output ratios must be non-negative")
        if self.throughput_scale <= 0 or self.reduce_speed_factor <= 0:
            raise ValueError("speed factors must be positive")

    @property
    def map_output_gb(self) -> float:
        return self.input_gb * self.map_output_ratio

    @property
    def result_gb(self) -> float:
        return self.map_output_gb * self.reduce_output_ratio

    def canonical(self) -> tuple:
        """Stable encoding for problem fingerprints.

        The ``name`` field is deliberately excluded: two tenants submitting
        the same job under different labels should share a cached plan.
        """
        return (
            "PlannerJob",
            float(self.input_gb),
            float(self.map_output_ratio),
            float(self.reduce_output_ratio),
            float(self.throughput_scale),
            float(self.reduce_speed_factor),
        )

    def map_rate(self, service: ServiceDescription) -> float:
        """Per-node map-phase throughput on ``service``, GB input/hour."""
        return service.throughput_gb_per_hour * self.throughput_scale

    def reduce_rate(self, service: ServiceDescription) -> float:
        """Per-node reduce-phase throughput, GB of map output/hour."""
        return self.map_rate(service) * self.reduce_speed_factor


@dataclass(frozen=True)
class NetworkConditions:
    """WAN/LAN capacities visible to the planner, in GB/hour.

    The paper's default setup: a 16 Mbit/s customer uplink (Section 6.1).
    Uploads to the customer's *local* provider do not traverse the WAN.
    """

    uplink_gb_per_hour: float = mb_s_to_gb_h(mbit_s_to_mb_s(16.0))
    downlink_gb_per_hour: float = mb_s_to_gb_h(mbit_s_to_mb_s(16.0))
    #: Source -> local-cluster bandwidth (LAN, effectively unconstrained
    #: at one-hour granularity).
    local_gb_per_hour: float = mb_s_to_gb_h(100.0)
    #: Aggregate inter-service bandwidth inside the cloud (S3 <-> EC2).
    interservice_gb_per_hour: float = mb_s_to_gb_h(400.0)

    def __post_init__(self) -> None:
        for name in (
            "uplink_gb_per_hour",
            "downlink_gb_per_hour",
            "local_gb_per_hour",
            "interservice_gb_per_hour",
        ):
            if getattr(self, name) <= 0:
                raise ValueError(f"{name} must be positive")

    def canonical(self) -> tuple:
        """Stable encoding for problem fingerprints."""
        return (
            "NetworkConditions",
            float(self.uplink_gb_per_hour),
            float(self.downlink_gb_per_hour),
            float(self.local_gb_per_hour),
            float(self.interservice_gb_per_hour),
        )

    @classmethod
    def from_mbit_s(cls, uplink_mbit_s: float, **kwargs) -> "NetworkConditions":
        """Build conditions from an uplink in Mbit/s (paper convention)."""
        rate = mb_s_to_gb_h(mbit_s_to_mb_s(uplink_mbit_s))
        kwargs.setdefault("downlink_gb_per_hour", rate)
        return cls(uplink_gb_per_hour=rate, **kwargs)


@dataclass
class SystemState:
    """Snapshot of an in-flight job, the starting point for (re-)planning.

    A fresh job is ``SystemState.initial(job)``.  The job controller
    produces updated snapshots as execution progresses so that
    re-planning (Section 5.4) optimizes only the remaining work.
    """

    #: Absolute elapsed hours since job submission (indexes spot traces).
    hour: float = 0.0
    source_remaining_gb: float = 0.0
    stored_input: dict[str, float] = field(default_factory=dict)
    stored_output: dict[str, float] = field(default_factory=dict)
    stored_result: dict[str, float] = field(default_factory=dict)
    map_done_gb: float = 0.0
    reduce_done_gb: float = 0.0
    downloaded_gb: float = 0.0

    @classmethod
    def initial(cls, job: PlannerJob) -> "SystemState":
        return cls(source_remaining_gb=job.input_gb)

    def canonical(self) -> tuple:
        """Stable encoding for problem fingerprints (dicts are sorted)."""
        return (
            "SystemState",
            float(self.hour),
            float(self.source_remaining_gb),
            tuple(sorted((k, float(v)) for k, v in self.stored_input.items())),
            tuple(sorted((k, float(v)) for k, v in self.stored_output.items())),
            tuple(sorted((k, float(v)) for k, v in self.stored_result.items())),
            float(self.map_done_gb),
            float(self.reduce_done_gb),
            float(self.downloaded_gb),
        )

    def validate_against(self, job: PlannerJob, tol: float = 1e-6) -> None:
        """Check conservation: every byte of input/output is somewhere.

        An inconsistent snapshot would surface as an opaque "infeasible"
        from the solver; failing here names the violated invariant.
        """
        placed = self.source_remaining_gb + sum(self.stored_input.values())
        if placed + self.map_done_gb > job.input_gb + tol:
            raise ValueError(
                f"state places {placed + self.map_done_gb:.3f} GB of input "
                f"but the job only has {job.input_gb:.3f} GB"
            )
        if self.reduce_done_gb > self.map_done_gb * job.map_output_ratio + tol:
            raise ValueError("more data reduced than the map phase produced")
        # Map output already produced must be stored or already reduced,
        # or the remaining reduce work could never be satisfied.
        produced = self.map_done_gb * job.map_output_ratio
        held = sum(self.stored_output.values()) + self.reduce_done_gb
        if held < produced - max(tol, 1e-4 * max(produced, 1.0)):
            raise ValueError(
                f"{produced - held:.4f} GB of map output is unaccounted for "
                "(stored_output + reduce_done must cover map_done * ratio)"
            )
        # Same for reduce output vs downloads.
        result_produced = self.reduce_done_gb * job.reduce_output_ratio
        result_held = sum(self.stored_result.values()) + self.downloaded_gb
        if result_held < result_produced - max(tol, 1e-4 * max(result_produced, 1.0)):
            raise ValueError("reduce output is unaccounted for in the state")


class GoalKind(enum.Enum):
    """The customer's optimization objective (paper Sections 1-3)."""

    MINIMIZE_COST = "minimize-cost"
    MINIMIZE_TIME = "minimize-time"


@dataclass(frozen=True)
class Goal:
    """An optimization goal with its constraint.

    ``Goal.min_cost(deadline_hours=6)`` — cheapest plan meeting a deadline.
    ``Goal.min_time(budget_usd=30)`` — fastest plan within a budget.
    """

    kind: GoalKind
    deadline_hours: float | None = None
    budget_usd: float | None = None

    def canonical(self) -> tuple:
        """Stable encoding for problem fingerprints."""
        return (
            "Goal",
            self.kind.value,
            None if self.deadline_hours is None else float(self.deadline_hours),
            None if self.budget_usd is None else float(self.budget_usd),
        )

    @classmethod
    def min_cost(cls, deadline_hours: float) -> "Goal":
        if deadline_hours <= 0:
            raise ValueError("deadline must be positive")
        return cls(GoalKind.MINIMIZE_COST, deadline_hours=deadline_hours)

    @classmethod
    def min_time(cls, budget_usd: float, horizon_hours: float = 48.0) -> "Goal":
        if budget_usd <= 0:
            raise ValueError("budget must be positive")
        return cls(
            GoalKind.MINIMIZE_TIME, budget_usd=budget_usd, deadline_hours=horizon_hours
        )


@dataclass
class PlanningProblem:
    """Everything the model builder needs to emit the LP (Section 4).

    Attributes
    ----------
    job, services, network, goal:
        See the respective classes.
    state:
        ``None`` means a fresh job (all input still at the source).
    interval_hours:
        LP time-step granularity; 1 h by default to coincide with EC2
        billing granularity (Section 4.3).
    spot_price_estimates:
        Per spot-service estimated prices ``E[b(i,t)]`` per interval
        (eq. 6); services with ``is_spot`` and no estimate fall back to
        their on-demand price.
    upload_fractions:
        Optional Fig. 8/9 sweep constraint: service name -> fraction of
        the input that must be uploaded to it.
    upload_read_lag:
        Intervals between data arriving at cloud storage and becoming
        processable.  0 (default) is the paper's eq. (4) semantics —
        cumulative processing bounded by cumulative uploads, so data
        streams through within an interval (this matches the measured
        Conductor runtimes in Fig. 6, which end right after the upload
        finishes); 1 is a conservative staged variant (ablation).
    allow_migration:
        Whether the plan may move stored data between services mid-run
        (Section 4.5).
    strict_phase_gap:
        If True, reduce may only run strictly after the interval in which
        the map phase completed (ablation; default lets reduce use the
        tail of that interval).
    """

    job: PlannerJob
    services: Sequence[ServiceDescription]
    network: NetworkConditions
    goal: Goal
    state: SystemState | None = None
    interval_hours: float = 1.0
    spot_price_estimates: Mapping[str, Sequence[float]] = field(default_factory=dict)
    upload_fractions: Mapping[str, float] = field(default_factory=dict)
    upload_read_lag: int = 0
    allow_migration: bool = True
    #: Force one node count per compute service across the whole horizon
    #: (the paper's hybrid plan style: "the right number of EC2 instances
    #: to allocate was 16").  Costs slightly more than per-interval
    #: allocation but deploys robustly.
    constant_nodes: bool = False
    strict_phase_gap: bool = False
    local_provider: str = "local"

    def __post_init__(self) -> None:
        if self.interval_hours <= 0:
            raise ValueError("interval_hours must be positive")
        if self.upload_read_lag not in (0, 1):
            raise ValueError("upload_read_lag must be 0 or 1")
        if self.goal.deadline_hours is None:
            raise ValueError("goal must define a planning horizon")
        total_fraction = sum(self.upload_fractions.values())
        if total_fraction > 1.0 + 1e-9:
            raise ValueError("upload fractions exceed 1.0")
        names = {s.name for s in self.services}
        for key in self.upload_fractions:
            if key not in names:
                raise ValueError(f"upload fraction for unknown service {key!r}")
        for key in self.spot_price_estimates:
            if key not in names:
                raise ValueError(f"spot estimate for unknown service {key!r}")

    @property
    def horizon_intervals(self) -> int:
        """Number of LP intervals T covering the deadline/horizon."""
        assert self.deadline_hours is not None
        return max(1, math.ceil(self.deadline_hours / self.interval_hours - 1e-9))

    @property
    def deadline_hours(self) -> float:
        return float(self.goal.deadline_hours or 0.0)

    @property
    def effective_state(self) -> SystemState:
        return self.state if self.state is not None else SystemState.initial(self.job)

    def canonical(self) -> tuple:
        """Stable, hashable encoding of the whole problem.

        This is the payload behind the planning service's fingerprint
        (:mod:`repro.service.fingerprint`).  Equivalence is intentionally a
        little wider than identity: services are sorted by name (catalog
        order does not change the optimum), ``state=None`` encodes as the
        initial state it stands for, and job names are ignored.  Any field
        that changes the LP — prices, rates, deadline, goal kind, spot
        estimates, upload fractions, flags — changes the encoding.
        """
        return (
            "PlanningProblem",
            self.job.canonical(),
            tuple(
                s.canonical()
                for s in sorted(self.services, key=lambda s: s.name)
            ),
            self.network.canonical(),
            self.goal.canonical(),
            self.effective_state.canonical(),
            float(self.interval_hours),
            tuple(
                sorted(
                    (name, tuple(float(v) for v in series))
                    for name, series in self.spot_price_estimates.items()
                )
            ),
            tuple(sorted((k, float(v)) for k, v in self.upload_fractions.items())),
            int(self.upload_read_lag),
            bool(self.allow_migration),
            bool(self.constant_nodes),
            bool(self.strict_phase_gap),
            self.local_provider,
        )

    def storage_services(self) -> list[ServiceDescription]:
        return [s for s in self.services if s.can_store]

    def compute_services(self) -> list[ServiceDescription]:
        return [s for s in self.services if s.can_compute]
