"""Reliability-differentiated storage for multi-stage pipelines.

Paper Section 2.1 ("Faults"): providers "offer services with different
reliability characteristics, for instance, with discounted prices for
storage services with lower replication factors", and for multi-stage
(Pig-style) computations, "when intermediate results become unavailable
due to data loss, they must be recomputed by re-executing all previous
stages.  Therefore, the cost of this recovery ... generally increases
as the computation progresses, making more reliable storage options
more and more useful [Ko et al.]".

This module turns that observation into a planner:

- :class:`StorageTier` — a storage offering with a price and an hourly
  loss probability (derived from its replication factor);
- :class:`StageProfile` — per-stage execution cost/time/output size
  (obtained from the LP planner's stage plans, or supplied directly);
- :class:`PipelineReliabilityModel` — expected cost/time of a tier
  assignment under a retention policy, with the re-execution cascade;
- :func:`choose_tiers` — dynamic program minimizing expected cost;
- :func:`durable_premium_break_even` — the price premium worth paying
  for durable storage at each stage (the paper's "more and more useful"
  claim, quantified; the ablation bench plots it).

Model
-----
Stages ``1..n`` run sequentially; stage ``j`` reads intermediate
``I_{j-1}`` and writes ``I_j`` to tier ``s_j`` (``I_0`` is the durable
input).  ``I_j`` is exposed to loss while stage ``j+1`` runs (time
``T_{j+1}``).  With per-hour object-loss probability ``p`` the exposure
loss probability is ``q = 1 - (1-p)^T``.  A loss during stage ``j+1``
wastes half an attempt on average and forces re-execution of every
stage after the last *durable* intermediate (or the pipeline input).
With geometric retries the expected number of failures is
``q/(1-q)``, giving

    E[cost_{j+1}] = C_{j+1} + q/(1-q) * (R_j + C_{j+1}/2)

where ``R_j`` is the cost of regenerating ``I_j`` from the last durable
point.  The same renewal argument gives expected time.  Repairs within
an exposure window are not modeled (a lost replica set stays lost);
this is conservative, and documented in DESIGN.md.
"""

from __future__ import annotations

import enum
import math
from dataclasses import dataclass, field
from typing import Sequence

#: Tiers with loss probability below this are treated as durable anchors
#: for the re-execution cascade (S3's 11-nines territory).
DURABLE_THRESHOLD_PER_HOUR = 1e-9


class RetentionPolicy(enum.Enum):
    """What happens to intermediate ``I_j`` after stage ``j+1`` consumed it."""

    #: Delete once consumed: a later loss cascades to the pipeline input.
    DISCARD_AFTER_USE = "discard-after-use"
    #: Keep every intermediate until the pipeline finishes: a loss
    #: re-runs only the stages after the last *surviving* intermediate
    #: (approximated by the last durable one).
    KEEP_ALL = "keep-all"


@dataclass(frozen=True)
class StorageTier:
    """A storage offering with a price and reliability.

    ``loss_per_hour`` is the probability that one stored object (an
    intermediate result) becomes unavailable during one hour.
    """

    name: str
    cost_gb_hour: float
    loss_per_hour: float
    replication: int = 1

    def __post_init__(self) -> None:
        if not 0.0 <= self.loss_per_hour <= 1.0:
            raise ValueError("loss_per_hour must be a probability")
        if self.cost_gb_hour < 0:
            raise ValueError("cost_gb_hour must be non-negative")
        if self.replication < 1:
            raise ValueError("replication must be >= 1")

    @property
    def is_durable(self) -> bool:
        return self.loss_per_hour <= DURABLE_THRESHOLD_PER_HOUR

    def loss_within(self, hours: float) -> float:
        """Probability the object is lost within ``hours`` of exposure."""
        if hours <= 0:
            return 0.0
        return 1.0 - (1.0 - self.loss_per_hour) ** hours

    @classmethod
    def from_replication(
        cls,
        name: str,
        base_cost_gb_hour: float,
        replication: int,
        node_loss_per_hour: float = 1e-3,
        cost_scales_with_replicas: bool = True,
    ) -> "StorageTier":
        """Derive a tier from a replication factor.

        An object is lost in an hour only if every one of its ``r``
        replica holders fails within that hour (independent failures,
        no intra-hour repair): ``p_obj = p_node ** r``.  Price scales
        linearly with the replica count — exactly the "discounted
        prices for ... lower replication factors" pricing the paper
        describes.
        """
        if not 0.0 <= node_loss_per_hour < 1.0:
            raise ValueError("node_loss_per_hour must be in [0, 1)")
        cost = base_cost_gb_hour * (replication if cost_scales_with_replicas else 1)
        return cls(
            name=name,
            cost_gb_hour=cost,
            loss_per_hour=node_loss_per_hour**replication,
            replication=replication,
        )


@dataclass(frozen=True)
class StageProfile:
    """Execution characteristics of one pipeline stage."""

    name: str
    exec_cost: float
    exec_hours: float
    output_gb: float

    def __post_init__(self) -> None:
        if self.exec_cost < 0 or self.exec_hours < 0 or self.output_gb < 0:
            raise ValueError("stage profile values must be non-negative")


@dataclass(frozen=True)
class StageOutcome:
    """Expected-cost breakdown for one stage under an assignment."""

    stage: str
    tier: str | None
    expected_exec_cost: float
    expected_exec_hours: float
    storage_cost: float
    expected_failures: float
    recovery_scope: int  # stages re-executed per failure


@dataclass(frozen=True)
class ExpectedOutcome:
    """Expected totals for a full tier assignment."""

    total_cost: float
    total_hours: float
    stages: tuple[StageOutcome, ...]

    @property
    def storage_cost(self) -> float:
        return sum(s.storage_cost for s in self.stages)

    @property
    def execution_cost(self) -> float:
        return sum(s.expected_exec_cost for s in self.stages)


class PipelineReliabilityModel:
    """Expected cost/time of a pipeline under a storage-tier assignment."""

    def __init__(
        self,
        stages: Sequence[StageProfile],
        retention: RetentionPolicy = RetentionPolicy.KEEP_ALL,
    ) -> None:
        if not stages:
            raise ValueError("pipeline must have at least one stage")
        self._stages = list(stages)
        self._retention = retention

    @property
    def stages(self) -> list[StageProfile]:
        return list(self._stages)

    def evaluate(self, assignment: Sequence[StorageTier]) -> ExpectedOutcome:
        """Expected totals when intermediate ``I_j`` lives on ``assignment[j]``.

        ``assignment`` has one tier per stage; the last stage's entry
        prices where the *final* output sits until download (exposure 0,
        so only its storage cost counts for one hour as a handoff
        buffer).
        """
        if len(assignment) != len(self._stages):
            raise ValueError(
                f"assignment names {len(assignment)} tiers for "
                f"{len(self._stages)} stages"
            )
        outcomes: list[StageOutcome] = []
        total_cost = 0.0
        total_hours = 0.0
        last_durable = -1  # index of last durable intermediate; -1 = input
        for j, stage in enumerate(self._stages):
            # Failure of this stage's *input* intermediate (j-1) during
            # this stage's run.
            if j == 0:
                q = 0.0  # pipeline input is durable by definition
                scope_start = 0
            else:
                tier = assignment[j - 1]
                q = tier.loss_within(stage.exec_hours)
                if self._retention is RetentionPolicy.DISCARD_AFTER_USE:
                    scope_start = 0
                else:
                    scope_start = last_durable + 1
            recovery_cost = sum(
                s.exec_cost for s in self._stages[scope_start:j]
            )
            recovery_hours = sum(
                s.exec_hours for s in self._stages[scope_start:j]
            )
            failures = q / (1.0 - q) if q < 1.0 else math.inf
            exec_cost = stage.exec_cost + failures * (
                recovery_cost + stage.exec_cost / 2.0
            )
            exec_hours = stage.exec_hours + failures * (
                recovery_hours + stage.exec_hours / 2.0
            )
            # Storage: I_j is held for the next stage's (expected) runtime,
            # or one handoff hour for the final output.
            tier_j = assignment[j]
            if j + 1 < len(self._stages):
                held_hours = self._stages[j + 1].exec_hours
                if self._retention is RetentionPolicy.KEEP_ALL:
                    held_hours = sum(
                        s.exec_hours for s in self._stages[j + 1:]
                    )
            else:
                held_hours = 1.0
            storage_cost = stage.output_gb * tier_j.cost_gb_hour * held_hours
            outcomes.append(
                StageOutcome(
                    stage=stage.name,
                    tier=tier_j.name,
                    expected_exec_cost=exec_cost,
                    expected_exec_hours=exec_hours,
                    storage_cost=storage_cost,
                    expected_failures=failures,
                    recovery_scope=j - scope_start,
                )
            )
            total_cost += exec_cost + storage_cost
            total_hours += exec_hours
            if j < len(assignment) and assignment[j].is_durable:
                last_durable = j
        return ExpectedOutcome(
            total_cost=total_cost,
            total_hours=total_hours,
            stages=tuple(outcomes),
        )


@dataclass(frozen=True)
class TierChoice:
    """Result of :func:`choose_tiers`."""

    assignment: tuple[StorageTier, ...]
    outcome: ExpectedOutcome

    @property
    def tier_names(self) -> tuple[str, ...]:
        return tuple(t.name for t in self.assignment)


def choose_tiers(
    stages: Sequence[StageProfile],
    tiers: Sequence[StorageTier],
    retention: RetentionPolicy = RetentionPolicy.KEEP_ALL,
) -> TierChoice:
    """Minimize expected pipeline cost over per-stage tier assignments.

    Exact (full product enumeration) while ``|tiers|**n`` stays small —
    real pipelines are rarely deeper than ~10 stages.  Beyond that it
    falls back to checkpoint-pattern candidates: the best durable tier
    every ``k``-th stage, cheapest tier elsewhere, which is where the
    optimum lives once tier classes are fixed.
    """
    if not tiers:
        raise ValueError("no storage tiers to choose from")
    model = PipelineReliabilityModel(stages, retention)
    best: TierChoice | None = None
    for assignment in _candidate_assignments(stages, tiers):
        outcome = model.evaluate(assignment)
        if best is None or outcome.total_cost < best.outcome.total_cost - 1e-12:
            best = TierChoice(tuple(assignment), outcome)
    assert best is not None
    return best


_EXACT_ENUMERATION_LIMIT = 20000


def _candidate_assignments(
    stages: Sequence[StageProfile],
    tiers: Sequence[StorageTier],
) -> list[list[StorageTier]]:
    """Candidate assignments worth evaluating (see :func:`choose_tiers`)."""
    import itertools

    n = len(stages)
    if len(tiers) ** n <= _EXACT_ENUMERATION_LIMIT:
        return [list(combo) for combo in itertools.product(tiers, repeat=n)]
    durable = [t for t in tiers if t.is_durable]
    cheap = [t for t in tiers if not t.is_durable]
    durable_best = min(durable, key=lambda t: t.cost_gb_hour) if durable else None
    cheap_best = min(cheap, key=lambda t: t.cost_gb_hour) if cheap else None
    if durable_best is None:
        assert cheap_best is not None
        return [[cheap_best] * n]
    if cheap_best is None:
        return [[durable_best] * n]
    candidates = []
    for k in range(1, n + 1):
        candidates.append(
            [durable_best if (j + 1) % k == 0 else cheap_best for j in range(n)]
        )
    candidates.append([durable_best] * n)
    candidates.append([cheap_best] * n)
    return candidates


def durable_premium_break_even(
    stages: Sequence[StageProfile],
    cheap: StorageTier,
    retention: RetentionPolicy = RetentionPolicy.DISCARD_AFTER_USE,
) -> list[float]:
    """Max $/GB/h premium worth paying for durable storage, per stage.

    For each stage ``j``, compares expected cost with ``I_j`` on the
    cheap tier vs on a free durable tier; the difference divided by the
    GB-hours stored is the premium at which the customer is indifferent.
    Monotonically increasing values reproduce the paper's Section 2.1
    claim that reliable storage grows more valuable as the computation
    progresses.
    """
    model = PipelineReliabilityModel(stages, retention)
    durable_free = StorageTier("durable-free", 0.0, 0.0)
    cheap_free = StorageTier("cheap-free", 0.0, cheap.loss_per_hour)
    premiums = []
    for j in range(len(stages)):
        base = [cheap_free] * len(stages)
        with_durable = list(base)
        with_durable[j] = durable_free
        cost_cheap = model.evaluate(base).total_cost
        cost_durable = model.evaluate(with_durable).total_cost
        if j + 1 < len(stages):
            exposure = stages[j + 1].exec_hours
            if retention is RetentionPolicy.KEEP_ALL:
                exposure = sum(s.exec_hours for s in stages[j + 1:])
        else:
            exposure = 1.0
        gb_hours = max(stages[j].output_gb * exposure, 1e-12)
        premiums.append(max(0.0, cost_cheap - cost_durable) / gb_hours)
    return premiums
