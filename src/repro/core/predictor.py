"""Spot price predictors (paper Sections 4.7 and 6.5).

A predictor produces, at planning time, the estimated prices
``E[b(i,t)]`` that enter the plan's objective (eq. 6), plus the bid to
submit while holding instances.  The paper evaluates:

- ``-opt``: an oracle that knows future prices exactly (upper bound on
  achievable savings);
- ``-p0``: "the predictor assumes the current spot price will not
  change";
- ``-pX``: "uses the past X days of spot pricing history" — we estimate
  each future hour by the *maximum* price observed at the same hour of
  day over the window, the conservative bid basis the paper describes
  ("the maximum spot price of the last n hours as a basis to compute a
  bid").

On the diurnal electricity-style trace, the window predictor tracks the
daily cycle; on the patternless AWS trace, spikes inside the window
inflate estimates and make the planner "wait for a better spot price ...
and end up waiting in vain" (Section 6.5).
"""

from __future__ import annotations

import abc

import numpy as np

from ..cloud.spot import SpotTrace


class SpotPredictor(abc.ABC):
    """Interface: estimate future hourly prices and derive a bid."""

    #: Label used in result tables (matches the paper's scenario names).
    name: str = "predictor"

    @abc.abstractmethod
    def estimate(self, trace: SpotTrace, now_hour: float, horizon_hours: int) -> np.ndarray:
        """Estimated price per future hour ``[now, now + horizon)``."""

    def bid(self, trace: SpotTrace, now_hour: float) -> float:
        """Bid to submit for the hour starting at ``now_hour``.

        Default: the estimate for the immediate hour.  Instances survive
        while the market stays at or below this.
        """
        return float(self.estimate(trace, now_hour, 1)[0])


class OptimalPredictor(SpotPredictor):
    """Oracle: returns the actual future prices (the ``-opt`` scenarios)."""

    name = "opt"

    def estimate(self, trace: SpotTrace, now_hour: float, horizon_hours: int) -> np.ndarray:
        return np.asarray(
            [trace.price_at(now_hour + h) for h in range(horizon_hours)]
        )


class CurrentPricePredictor(SpotPredictor):
    """``-p0``: the current price persists forever."""

    name = "p0"

    def estimate(self, trace: SpotTrace, now_hour: float, horizon_hours: int) -> np.ndarray:
        return np.full(horizon_hours, trace.price_at(now_hour))


class WindowMaxPredictor(SpotPredictor):
    """``-pX``: conservative same-hour-of-day maximum over the last X days.

    For a future hour ``h`` the estimate is the maximum of the prices at
    the same time of day over the past ``window_days`` days; hours with no
    history fall back to the current price.
    """

    def __init__(self, window_days: int) -> None:
        if window_days < 1:
            raise ValueError("window_days must be >= 1")
        self.window_days = window_days
        self.name = f"p{window_days}"

    def estimate(self, trace: SpotTrace, now_hour: float, horizon_hours: int) -> np.ndarray:
        current = trace.price_at(now_hour)
        estimates = np.empty(horizon_hours)
        for h in range(horizon_hours):
            future = now_hour + h
            samples = [
                trace.price_at(future - 24 * day)
                for day in range(1, self.window_days + 1)
                if future - 24 * day >= trace.start_hour
            ]
            estimates[h] = max(samples) if samples else current
        return estimates


def predictor_suite(windows: tuple[int, ...] = (5, 13)) -> list[SpotPredictor]:
    """The paper's Fig. 14 predictor line-up: opt, p0, p5, p13."""
    suite: list[SpotPredictor] = [OptimalPredictor(), CurrentPricePredictor()]
    suite.extend(WindowMaxPredictor(days) for days in windows)
    return suite
