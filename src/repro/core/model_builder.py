"""LP model generation for MapReduce deployments (paper Section 4).

This module turns a :class:`~repro.core.problem.PlanningProblem` into a
time-expanded mixed-integer linear program and extracts deployable
:class:`~repro.core.plan.ExecutionPlan` objects from solutions.

The formulation follows the paper:

- Execution is discretized into ``T`` intervals of ``Δ`` hours (Section
  4.3); one interval defaults to one hour, EC2's billing granularity, so
  integer node variables encode round-up billing exactly.
- Upload/storage obey flow preservation (eqs. 1-2); processing is bounded
  by rented node capacity (eq. 3) and by data already uploaded (eq. 4).
- The map/reduce barrier is the paper's semi-continuous "0 or full
  output" condition, lowered to a per-interval binary ``phase[t]``.
- Data may migrate between storage services across interval boundaries
  (Section 4.5); services may bundle storage with computation (resource
  overlap, Section 4.6): bytes parked on EC2 virtual disks require live
  instances during that interval.
- Spot services price each interval at the predictor's estimate
  ``E[b(i,t)]`` (eq. 6).
- The objective is total monetary cost (eq. 5) for min-cost goals, or a
  lexicographic completion-then-cost objective for min-time goals.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Mapping, Sequence

from ..cloud.services import UNLIMITED, ServiceDescription, validate_catalog
from ..lp import LinExpr, Model, Solution, VarType, lin_sum
from .plan import ExecutionPlan, PlanInterval
from .problem import GoalKind, PlanningProblem, SystemState

_EPS = 1e-6
#: Objective weight that makes one saved interval dominate any cost change
#: in min-time mode (lexicographic completion-then-cost).
_TIME_WEIGHT_MARGIN = 10.0

#: Tie-breaker weights (small enough never to perturb cent-scale costs).
_NODE_TIEBREAK = 1e-6
_EARLY_WORK_TIEBREAK = 1e-9
_FLOW_TIEBREAK = 1e-9


class PlanningError(RuntimeError):
    """The problem cannot be planned (infeasible or solver failure).

    ``status`` carries the solver's verdict (``infeasible``, ``error``,
    ...) and ``budgeted`` whether the goal carried a budget constraint —
    together they let the public API map the failure to a stable error
    code (``infeasible`` vs. ``budget_exceeded``) without string-parsing.
    """

    def __init__(
        self, message: str, status: str = "", budgeted: bool = False
    ) -> None:
        super().__init__(message)
        self.status = status
        self.budgeted = budgeted

    def __reduce__(self):
        # Exceptions pickle via ``args`` by default, which would drop the
        # keyword state when a process-pool worker ships one back.
        message = self.args[0] if self.args else ""
        return (type(self), (message, self.status, self.budgeted))


@dataclass
class BuiltModel:
    """The LP plus handles to its decision variables.

    Variable dictionaries are keyed by service name (and pair tuples) and
    1-based interval index ``t``; stock variables additionally have a
    ``t = 0`` entry fixed to the initial state.
    """

    problem: PlanningProblem
    model: Model
    up: dict[tuple[str, int], object]
    store_in: dict[tuple[str, int], object]
    store_out: dict[tuple[str, int], object]
    store_res: dict[tuple[str, int], object]
    read: dict[tuple[str, str, int], object]
    write: dict[tuple[str, str, int], object]
    red_read: dict[tuple[str, str, int], object]
    red_write: dict[tuple[str, str, int], object]
    migrate_in: dict[tuple[str, str, int], object]
    migrate_out: dict[tuple[str, str, int], object]
    download: dict[tuple[str, int], object]
    nodes: dict[tuple[str, int], object]
    phase: dict[int, object]
    done: dict[int, object]
    cost_terms: dict[str, LinExpr]
    total_cost: LinExpr

    # -- solving / extraction ------------------------------------------------

    def solve(self, time_limit: float = 180.0, mip_gap: float = 0.01) -> Solution:
        """Solve with the paper's bounds: 3-minute cut-off, 1% gap."""
        return self.model.solve(time_limit=time_limit, mip_gap=mip_gap)

    def extract_plan(self, solution: Solution) -> ExecutionPlan:
        """Convert a feasible solution into a deployable plan."""
        if not solution.status.has_solution:
            raise PlanningError(
                f"no solution to extract (status={solution.status.value}: "
                f"{solution.message})",
                status=solution.status.value,
                budgeted=self.problem.goal.budget_usd is not None,
            )
        problem = self.problem
        delta = problem.interval_hours
        start = problem.effective_state.hour
        storage = [s.name for s in problem.storage_services()]
        compute = [c.name for c in problem.compute_services()]
        horizon = problem.horizon_intervals

        def val(var) -> float:
            value = solution.value(var)
            return 0.0 if abs(value) < _EPS else value

        intervals = []
        for t in range(1, horizon + 1):
            interval = PlanInterval(
                index=t,
                start_hour=start + (t - 1) * delta,
                duration_hours=delta,
            )
            for c in compute:
                count = int(round(val(self.nodes[c, t])))
                if count:
                    interval.nodes[c] = count
            for s in storage:
                if (gb := val(self.up[s, t])) > 0:
                    interval.upload_gb[s] = gb
                if (gb := val(self.download[s, t])) > 0:
                    interval.download_gb[s] = gb
                if (gb := val(self.store_in[s, t]) + val(self.store_out[s, t])
                        + val(self.store_res[s, t])) > 0:
                    interval.stored_gb[s] = gb
            for s in storage:
                for c in compute:
                    if (gb := val(self.read[s, c, t])) > 0:
                        interval.map_read_gb[s, c] = gb
                    if (gb := val(self.write[c, s, t])) > 0:
                        interval.map_write_gb[c, s] = gb
                    if (s, c, t) in self.red_read and (gb := val(self.red_read[s, c, t])) > 0:
                        interval.reduce_read_gb[s, c] = gb
                    if (c, s, t) in self.red_write and (gb := val(self.red_write[c, s, t])) > 0:
                        interval.reduce_write_gb[c, s] = gb
            for s in storage:
                for s2 in storage:
                    if s == s2:
                        continue
                    moved = 0.0
                    if (s, s2, t) in self.migrate_in:
                        moved += val(self.migrate_in[s, s2, t])
                    if (s, s2, t) in self.migrate_out:
                        moved += val(self.migrate_out[s, s2, t])
                    if moved > 0:
                        interval.migrate_gb[s, s2] = moved
            intervals.append(interval)

        breakdown = {
            label: solution.value(expr) for label, expr in self.cost_terms.items()
        }
        completion = self._predicted_completion(intervals, start, delta)
        return ExecutionPlan(
            intervals=intervals,
            predicted_cost=solution.value(self.total_cost),
            predicted_cost_breakdown=breakdown,
            predicted_completion_hours=completion,
            objective_value=solution.objective,
            solver_status=solution.status.value,
            solve_seconds=solution.solve_seconds,
            model_stats=self.model.stats(),
        )

    def _predicted_completion(
        self, intervals: list[PlanInterval], start: float, delta: float
    ) -> float:
        last_active = start
        for interval in intervals:
            if not interval.is_idle():
                last_active = interval.end_hour
        return last_active - start


def build_model(problem: PlanningProblem) -> BuiltModel:
    """Generate the time-expanded MILP for ``problem``."""
    services = list(problem.services)
    validate_catalog(services)
    state = problem.effective_state
    state.validate_against(problem.job)
    job = problem.job
    delta = problem.interval_hours
    horizon = problem.horizon_intervals
    storage = problem.storage_services()
    compute = problem.compute_services()
    s_names = [s.name for s in storage]
    by_name = {s.name: s for s in services}

    map_total_gb = job.input_gb
    map_remaining_gb = max(0.0, map_total_gb - state.map_done_gb)
    out_total_gb = job.map_output_gb
    reduce_remaining_gb = max(0.0, out_total_gb - state.reduce_done_gb)
    result_remaining_gb = max(0.0, job.result_gb - state.downloaded_gb)
    has_reduce = out_total_gb > _EPS

    model = Model(f"conductor-{job.name}")
    local = problem.local_provider

    def is_local(service: ServiceDescription) -> bool:
        return service.provider == local

    # ---------------------------------------------------------------- vars
    up: dict[tuple[str, int], object] = {}
    store_in: dict[tuple[str, int], object] = {}
    store_out: dict[tuple[str, int], object] = {}
    store_res: dict[tuple[str, int], object] = {}
    read: dict[tuple[str, str, int], object] = {}
    write: dict[tuple[str, str, int], object] = {}
    red_read: dict[tuple[str, str, int], object] = {}
    red_write: dict[tuple[str, str, int], object] = {}
    mig_in: dict[tuple[str, str, int], object] = {}
    mig_out: dict[tuple[str, str, int], object] = {}
    download: dict[tuple[str, int], object] = {}
    nodes: dict[tuple[str, int], object] = {}
    phase: dict[int, object] = {}
    done: dict[int, object] = {}

    for s in storage:
        for t in range(1, horizon + 1):
            up[s.name, t] = model.add_var(f"up[{s.name},{t}]")
            download[s.name, t] = model.add_var(f"down[{s.name},{t}]")
        for t in range(0, horizon + 1):
            store_in[s.name, t] = model.add_var(f"stIn[{s.name},{t}]")
            store_out[s.name, t] = model.add_var(f"stOut[{s.name},{t}]")
            store_res[s.name, t] = model.add_var(f"stRes[{s.name},{t}]")
    for c in compute:
        cap = math.inf if c.max_nodes == UNLIMITED else c.max_nodes
        for t in range(1, horizon + 1):
            nodes[c.name, t] = model.add_var(
                f"nodes[{c.name},{t}]", ub=cap, vtype=VarType.INTEGER
            )
    if problem.constant_nodes:
        for c in compute:
            for t in range(2, horizon + 1):
                model.add_constr(
                    nodes[c.name, t] == nodes[c.name, 1],
                    f"constant_nodes[{c.name},{t}]",
                )
    for s in storage:
        for c in compute:
            for t in range(1, horizon + 1):
                read[s.name, c.name, t] = model.add_var(f"read[{s.name},{c.name},{t}]")
                write[c.name, s.name, t] = model.add_var(f"write[{c.name},{s.name},{t}]")
                if has_reduce:
                    red_read[s.name, c.name, t] = model.add_var(
                        f"redRead[{s.name},{c.name},{t}]"
                    )
                    red_write[c.name, s.name, t] = model.add_var(
                        f"redWrite[{c.name},{s.name},{t}]"
                    )
    if problem.allow_migration:
        for s in storage:
            for s2 in storage:
                if s.name == s2.name:
                    continue
                for t in range(1, horizon + 1):
                    mig_in[s.name, s2.name, t] = model.add_var(
                        f"migIn[{s.name},{s2.name},{t}]"
                    )
                    mig_out[s.name, s2.name, t] = model.add_var(
                        f"migOut[{s.name},{s2.name},{t}]"
                    )
    if has_reduce:
        for t in range(1, horizon + 1):
            phase[t] = model.add_var(f"phase[{t}]", vtype=VarType.BINARY)
    if problem.goal.kind is GoalKind.MINIMIZE_TIME:
        for t in range(1, horizon + 1):
            done[t] = model.add_var(f"done[{t}]", vtype=VarType.BINARY)

    # ------------------------------------------------------- initial stocks
    for s in storage:
        model.add_constr(
            store_in[s.name, 0] == state.stored_input.get(s.name, 0.0),
            f"init_stIn[{s.name}]",
        )
        model.add_constr(
            store_out[s.name, 0] == state.stored_output.get(s.name, 0.0),
            f"init_stOut[{s.name}]",
        )
        model.add_constr(
            store_res[s.name, 0] == state.stored_result.get(s.name, 0.0),
            f"init_stRes[{s.name}]",
        )

    # ------------------------------------------------- flow preservation
    def mig_arrivals(table, s_name: str, t: int) -> LinExpr:
        """Migrations launched in t-1 arrive at the start of t (Section 4.5)."""
        return lin_sum(
            table[s2, s_name, t - 1]
            for s2 in s_names
            if s2 != s_name and (s2, s_name, t - 1) in table
        )

    def mig_departures(table, s_name: str, t: int) -> LinExpr:
        return lin_sum(
            table[s_name, s2, t]
            for s2 in s_names
            if s2 != s_name and (s_name, s2, t) in table
        )

    for s in storage:
        for t in range(1, horizon + 1):
            reads_from_s = lin_sum(read[s.name, c.name, t] for c in compute)
            arr = mig_arrivals(mig_in, s.name, t)
            dep = mig_departures(mig_in, s.name, t)
            # Eq. (2) analog with consumption: stocks evolve by upload,
            # migration and processing.
            model.add_constr(
                store_in[s.name, t]
                == store_in[s.name, t - 1] + up[s.name, t] + arr - dep - reads_from_s,
                f"flow_in[{s.name},{t}]",
            )
            # Eq. (4) analog (per storage service): reads and departures
            # during t are limited to data present at the start of t —
            # plus same-interval uploads when streaming is allowed.
            avail = store_in[s.name, t - 1] + arr
            if problem.upload_read_lag == 0:
                avail = avail + up[s.name, t]
            model.add_constr(
                reads_from_s + dep <= avail, f"avail_in[{s.name},{t}]"
            )

            writes_to_s = lin_sum(write[c.name, s.name, t] for c in compute)
            if has_reduce:
                red_reads_from_s = lin_sum(
                    red_read[s.name, c.name, t] for c in compute
                )
                arr_o = mig_arrivals(mig_out, s.name, t)
                dep_o = mig_departures(mig_out, s.name, t)
                model.add_constr(
                    store_out[s.name, t]
                    == store_out[s.name, t - 1]
                    + writes_to_s
                    + arr_o
                    - dep_o
                    - red_reads_from_s,
                    f"flow_out[{s.name},{t}]",
                )
                # Reduce may stream output produced in the same interval
                # (sub-interval sequencing, gated by phase[t]).
                model.add_constr(
                    red_reads_from_s + dep_o
                    <= store_out[s.name, t - 1] + arr_o + writes_to_s,
                    f"avail_out[{s.name},{t}]",
                )
                red_writes_to_s = lin_sum(
                    red_write[c.name, s.name, t] for c in compute
                )
                model.add_constr(
                    store_res[s.name, t]
                    == store_res[s.name, t - 1]
                    + red_writes_to_s
                    - download[s.name, t],
                    f"flow_res[{s.name},{t}]",
                )
                model.add_constr(
                    download[s.name, t]
                    <= store_res[s.name, t - 1] + red_writes_to_s,
                    f"avail_res[{s.name},{t}]",
                )
            else:
                model.add_constr(
                    store_out[s.name, t] == store_out[s.name, t - 1] + writes_to_s,
                    f"flow_out[{s.name},{t}]",
                )
                model.add_constr(
                    store_res[s.name, t] == store_res[s.name, t - 1],
                    f"flow_res[{s.name},{t}]",
                )
                model.add_constr(download[s.name, t] == 0, f"no_down[{s.name},{t}]")

    # --------------------------------------------------- phase coupling
    for c in compute:
        for t in range(1, horizon + 1):
            # Map output is written as input is processed.
            model.add_constr(
                lin_sum(write[c.name, s, t] for s in s_names)
                == job.map_output_ratio
                * lin_sum(read[s, c.name, t] for s in s_names),
                f"map_io[{c.name},{t}]",
            )
            if has_reduce:
                model.add_constr(
                    lin_sum(red_write[c.name, s, t] for s in s_names)
                    == job.reduce_output_ratio
                    * lin_sum(red_read[s, c.name, t] for s in s_names),
                    f"red_io[{c.name},{t}]",
                )

    if has_reduce:
        gap = 1 if problem.strict_phase_gap else 0
        for t in range(1, horizon + 1):
            cum_reads = lin_sum(
                read[s, c.name, t2]
                for s in s_names
                for c in compute
                for t2 in range(1, t + 1 - gap)
            )
            # The paper's semi-continuous barrier: reduce input flows only
            # once the *full* map output exists.
            model.add_constr(
                map_total_gb * phase[t] <= state.map_done_gb + cum_reads,
                f"phase_def[{t}]",
            )
            model.add_constr(
                lin_sum(red_read[s, c.name, t] for s in s_names for c in compute)
                <= out_total_gb * phase[t],
                f"phase_gate[{t}]",
            )
            if t > 1:
                model.add_constr(phase[t] >= phase[t - 1], f"phase_mono[{t}]")

    # ------------------------------------------------- capacity (eq. 3)
    for c in compute:
        map_rate = job.map_rate(c)
        red_rate = job.reduce_rate(c)
        for t in range(1, horizon + 1):
            usage = lin_sum(read[s, c.name, t] for s in s_names) * (
                1.0 / (map_rate * delta)
            )
            if has_reduce:
                usage = usage + lin_sum(
                    red_read[s, c.name, t] for s in s_names
                ) * (1.0 / (red_rate * delta))
            model.add_constr(usage <= nodes[c.name, t], f"capacity[{c.name},{t}]")

    # ------------------------------------- storage capacity / coupling
    # Resource overlap (Section 4.6): bytes on a node-backed service need
    # live nodes *during* the interval.  End-of-interval stocks alone would
    # let data flow through within one interval with zero nodes, so
    # same-interval outflows count against the capacity as well.
    for s in storage:
        if s.storage_capacity_gb == UNLIMITED:
            continue
        for t in range(1, horizon + 1):
            held = store_in[s.name, t] + store_out[s.name, t] + store_res[s.name, t]
            held = held + download[s.name, t]
            held = held + lin_sum(read[s.name, c.name, t] for c in compute)
            if has_reduce:
                held = held + lin_sum(red_read[s.name, c.name, t] for c in compute)
            held = held + mig_departures(mig_in, s.name, t)
            held = held + mig_departures(mig_out, s.name, t)
            limit = LinExpr(constant=float(s.storage_capacity_gb))
            if s.can_compute and s.storage_gb_per_node > 0:
                limit = limit + s.storage_gb_per_node * nodes[s.name, t]
            model.add_constr(held <= limit, f"storage_cap[{s.name},{t}]")

    # --------------------------------------------------- WAN bandwidth
    for t in range(1, horizon + 1):
        wan_up_flows: list = []
        wan_down_flows: list = []
        lan_flows: list = []
        for s in storage:
            if is_local(s):
                lan_flows.append(up[s.name, t])
            else:
                wan_up_flows.append(up[s.name, t])
                wan_down_flows.append(download[s.name, t])
        for s in storage:
            for c in compute:
                if is_local(s) and not is_local(c):
                    wan_up_flows.append(read[s.name, c.name, t])
                    if has_reduce:
                        wan_up_flows.append(red_read[s.name, c.name, t])
                    wan_down_flows.append(write[c.name, s.name, t])
                    if has_reduce:
                        wan_down_flows.append(red_write[c.name, s.name, t])
                elif not is_local(s) and is_local(c):
                    wan_down_flows.append(read[s.name, c.name, t])
                    if has_reduce:
                        wan_down_flows.append(red_read[s.name, c.name, t])
                    wan_up_flows.append(write[c.name, s.name, t])
                    if has_reduce:
                        wan_up_flows.append(red_write[c.name, s.name, t])
        for table in (mig_in, mig_out):
            for (a, b, tt), var in table.items():
                if tt != t:
                    continue
                a_local, b_local = is_local(by_name[a]), is_local(by_name[b])
                if a_local and not b_local:
                    wan_up_flows.append(var)
                elif not a_local and b_local:
                    wan_down_flows.append(var)
        model.add_constr(
            lin_sum(wan_up_flows) <= problem.network.uplink_gb_per_hour * delta,
            f"uplink[{t}]",
        )
        model.add_constr(
            lin_sum(wan_down_flows) <= problem.network.downlink_gb_per_hour * delta,
            f"downlink[{t}]",
        )
        if lan_flows:
            model.add_constr(
                lin_sum(lan_flows) <= problem.network.local_gb_per_hour * delta,
                f"lan[{t}]",
            )
        # Intra-cloud cross-service flows (S3 <-> EC2) share provider
        # backbone bandwidth.
        cross = [
            read[s.name, c.name, t]
            for s in storage
            for c in compute
            if s.name != c.name and not is_local(s) and not is_local(c)
        ]
        cross += [
            write[c.name, s.name, t]
            for s in storage
            for c in compute
            if s.name != c.name and not is_local(s) and not is_local(c)
        ]
        if cross:
            model.add_constr(
                lin_sum(cross) <= problem.network.interservice_gb_per_hour * delta,
                f"backbone[{t}]",
            )

    # ------------------------------------------------------- completion
    total_upload = lin_sum(up[s.name, t] for s in storage for t in range(1, horizon + 1))
    model.add_constr(total_upload == state.source_remaining_gb, "upload_all")
    total_reads = lin_sum(
        read[s, c.name, t]
        for s in s_names
        for c in compute
        for t in range(1, horizon + 1)
    )
    model.add_constr(total_reads == map_remaining_gb, "map_all")
    if has_reduce:
        total_red = lin_sum(
            red_read[s, c.name, t]
            for s in s_names
            for c in compute
            for t in range(1, horizon + 1)
        )
        model.add_constr(total_red == reduce_remaining_gb, "reduce_all")
        total_down = lin_sum(
            download[s.name, t] for s in storage for t in range(1, horizon + 1)
        )
        model.add_constr(total_down == result_remaining_gb, "download_all")

    # ------------------------------------------------ fraction sweeps
    for name, fraction in problem.upload_fractions.items():
        model.add_constr(
            lin_sum(up[name, t] for t in range(1, horizon + 1))
            == fraction * state.source_remaining_gb,
            f"fraction[{name}]",
        )

    # ------------------------------------------------------------ cost
    cost_terms = _build_cost_terms(
        problem,
        up=up,
        store_in=store_in,
        store_out=store_out,
        store_res=store_res,
        read=read,
        write=write,
        red_read=red_read,
        red_write=red_write,
        mig_in=mig_in,
        mig_out=mig_out,
        download=download,
        nodes=nodes,
    )
    total_cost = lin_sum(cost_terms.values())

    tie_break = _NODE_TIEBREAK * lin_sum(nodes.values())
    tie_break = tie_break + _EARLY_WORK_TIEBREAK * lin_sum(
        t * var for (s, c, t), var in read.items()
    )
    # Front-load uploads among cost-equal schedules: the WAN should never
    # idle early only to be saturated against the deadline.
    tie_break = tie_break + _EARLY_WORK_TIEBREAK * lin_sum(
        t * var for (s, t), var in up.items()
    )
    if mig_in or mig_out:
        tie_break = tie_break + _FLOW_TIEBREAK * lin_sum(
            list(mig_in.values()) + list(mig_out.values())
        )

    if problem.goal.kind is GoalKind.MINIMIZE_COST:
        model.minimize(total_cost + tie_break)
    else:
        budget = problem.goal.budget_usd
        assert budget is not None
        model.add_constr(total_cost <= budget, "budget")
        result_total = result_remaining_gb if has_reduce else 0.0
        for t in range(1, horizon + 1):
            if has_reduce:
                cum_down = lin_sum(
                    download[s.name, t2]
                    for s in storage
                    for t2 in range(1, t + 1)
                )
                model.add_constr(
                    result_total * done[t] <= cum_down, f"done_def[{t}]"
                )
            else:
                cum_reads_t = lin_sum(
                    read[s, c.name, t2]
                    for s in s_names
                    for c in compute
                    for t2 in range(1, t + 1)
                )
                model.add_constr(
                    map_remaining_gb * done[t] <= cum_reads_t, f"done_def[{t}]"
                )
            if t > 1:
                model.add_constr(done[t] >= done[t - 1], f"done_mono[{t}]")
        interval_weight = budget + _TIME_WEIGHT_MARGIN
        pending = lin_sum((1 - done[t]) for t in range(1, horizon + 1))
        model.minimize(interval_weight * pending + total_cost + tie_break)

    return BuiltModel(
        problem=problem,
        model=model,
        up=up,
        store_in=store_in,
        store_out=store_out,
        store_res=store_res,
        read=read,
        write=write,
        red_read=red_read,
        red_write=red_write,
        migrate_in=mig_in,
        migrate_out=mig_out,
        download=download,
        nodes=nodes,
        phase=phase,
        done=done,
        cost_terms=cost_terms,
        total_cost=total_cost,
    )


def _build_cost_terms(problem: PlanningProblem, **tables) -> dict[str, LinExpr]:
    """Assemble the monetary cost (eqs. 5-6) as labeled expressions.

    Returns a mapping ``"{service}/{category}" -> LinExpr`` so plans can
    report the same stacked breakdown as the paper's Fig. 5.
    """
    job = problem.job
    delta = problem.interval_hours
    horizon = problem.horizon_intervals
    storage = problem.storage_services()
    compute = problem.compute_services()
    by_name = {s.name: s for s in problem.services}
    local = problem.local_provider

    terms: dict[str, LinExpr] = {}

    def accumulate(service: str, category: str, expr) -> None:
        key = f"{service}/{category}"
        terms[key] = terms.get(key, LinExpr()) + expr

    # Compute rental: on-demand price or spot estimate per interval.
    for c in compute:
        estimates = problem.spot_price_estimates.get(c.name)
        expr = LinExpr()
        for t in range(1, horizon + 1):
            if c.is_spot and estimates is not None:
                index = min(t - 1, len(estimates) - 1)
                price = float(estimates[index]) * delta
            else:
                price = c.price_per_node_hour * delta
            expr = expr + price * tables["nodes"][c.name, t]
        if expr.terms:
            accumulate(c.name, "compute", expr)

    # Time-based storage.
    for s in storage:
        if s.cost_tstore_gb_hour <= 0:
            continue
        held = lin_sum(
            tables["store_in"][s.name, t]
            + tables["store_out"][s.name, t]
            + tables["store_res"][s.name, t]
            for t in range(1, horizon + 1)
        )
        accumulate(s.name, "storage", s.cost_tstore_gb_hour * delta * held)

    # Per-request I/O, translated to per-GB (Section 4.2).  Co-located
    # access (compute on the same service's virtual disks) bypasses the
    # service API and is free.
    for s in storage:
        put_gb = s.put_cost_per_gb()
        get_gb = s.get_cost_per_gb()
        if put_gb <= 0 and get_gb <= 0:
            continue
        puts: list = []
        gets: list = []
        for t in range(1, horizon + 1):
            puts.append(tables["up"][s.name, t])
            gets.append(tables["download"][s.name, t])
            for c in compute:
                if c.name == s.name:
                    continue
                puts.append(tables["write"][c.name, s.name, t])
                gets.append(tables["read"][s.name, c.name, t])
                if (s.name, c.name, t) in tables["red_read"]:
                    gets.append(tables["red_read"][s.name, c.name, t])
                    puts.append(tables["red_write"][c.name, s.name, t])
        for table in (tables["mig_in"], tables["mig_out"]):
            for (a, b, t), var in table.items():
                if b == s.name:
                    puts.append(var)
                if a == s.name:
                    gets.append(var)
        if put_gb > 0:
            accumulate(s.name, "requests", put_gb * lin_sum(puts))
        if get_gb > 0:
            accumulate(s.name, "requests", get_gb * lin_sum(gets))

    # Transfer charges for data crossing provider boundaries.
    def crossing_cost(src: str | None, dst: str | None) -> list[tuple[str, float]]:
        """(service, $/GB) charges for a flow from src to dst service
        (None = the customer's site)."""
        src_svc = by_name.get(src) if src else None
        dst_svc = by_name.get(dst) if dst else None
        src_provider = src_svc.provider if src_svc else local
        dst_provider = dst_svc.provider if dst_svc else local
        if src_provider == dst_provider:
            return []
        charges = []
        if src_svc is not None and src_svc.transfer_out_cost_gb > 0:
            charges.append((src_svc.name, src_svc.transfer_out_cost_gb))
        if dst_svc is not None and dst_svc.transfer_in_cost_gb > 0:
            charges.append((dst_svc.name, dst_svc.transfer_in_cost_gb))
        return charges

    transfer_flows: list[tuple[str | None, str | None, object]] = []
    for (s, t), var in tables["up"].items():
        transfer_flows.append((None, s, var))
    for (s, t), var in tables["download"].items():
        transfer_flows.append((s, None, var))
    for (s, c, t), var in tables["read"].items():
        transfer_flows.append((s, c, var))
    for (c, s, t), var in tables["write"].items():
        transfer_flows.append((c, s, var))
    for (s, c, t), var in tables["red_read"].items():
        transfer_flows.append((s, c, var))
    for (c, s, t), var in tables["red_write"].items():
        transfer_flows.append((c, s, var))
    for table in (tables["mig_in"], tables["mig_out"]):
        for (a, b, t), var in table.items():
            transfer_flows.append((a, b, var))
    for src, dst, var in transfer_flows:
        for service, price in crossing_cost(src, dst):
            accumulate(service, "transfer", price * var)

    return terms
