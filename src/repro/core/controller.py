"""The job controller: deploy, monitor, adapt (paper Sections 5.2, 5.4).

The controller closes the loop the paper describes:

1. generate a model and solve it for an execution plan;
2. deploy the plan interval by interval (through the fluid executor);
3. monitor execution progress and spot prices;
4. on significant deviation — slower/faster nodes than modeled, out-bid
   spot instances, mispredicted prices — rebuild the model *from the
   current system state* and continue with the updated plan.

Fig. 12 of the paper is exactly one run of this loop with a 3.3×
throughput misprediction.

Two ways to drive it:

- :meth:`JobController.run` owns the whole loop (submission to
  completion) — the standalone and :class:`DeploySession` path;
- :meth:`JobController.start` returns a resumable
  :class:`ControllerRun` that executes **one interval per** ``step()``
  call, so an external scheduler — the fleet runtime of
  :mod:`repro.fleet` — can interleave many deployments over one
  simulated substrate and inject event-driven re-plans between steps
  via :meth:`ControllerRun.request_replan`.

*When* to re-plan is delegated to a pluggable
:class:`~repro.core.triggers.TriggerPolicy`; the default reproduces the
paper's monitor (eviction, failure, deviation, price).
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

import numpy as np

from ..cloud.spot import SpotTrace
from ..units import MB_PER_GB
from .accounting import CostCategory, CostLedger
from .conditions import ActualConditions
from .executor import FluidExecutor, IntervalOutcome
from .model_builder import PlanningError
from .plan import ExecutionPlan
from .planner import Planner
from .predictor import SpotPredictor
from .problem import (
    Goal,
    NetworkConditions,
    PlannerJob,
    PlanningProblem,
    SystemState,
)
from .triggers import TriggerContext, TriggerPolicy, default_trigger_policy

_EPS = 1e-9


@dataclass
class ControllerConfig:
    """Monitoring and adaptation policy knobs."""

    #: Relative progress shortfall (vs. plan) that triggers re-planning.
    deviation_threshold: float = 0.15
    #: Relative spot price misestimate that triggers re-planning.
    price_deviation_threshold: float = 0.25
    #: Relative node-rate misestimate that updates beliefs and re-plans.
    rate_deviation_threshold: float = 0.15
    #: Hard cap on re-planning rounds (runaway guard).
    max_replans: int = 64
    #: When the remaining deadline is infeasible, extend the horizon by
    #: this factor per attempt (the job then *misses* the deadline but
    #: still completes, as a real deployment would).
    horizon_extension: float = 1.5
    max_horizon_factor: float = 4.0
    #: Map task size used for the completed-task series (Fig. 12b).
    split_mb: float = 64.0


@dataclass(frozen=True)
class ReplanRecord:
    """One re-planning round: when, why, and which plan it produced.

    ``kind`` is the trigger taxonomy of :mod:`repro.core.triggers`
    (``interval`` / ``deviation`` / ``price`` / ``eviction`` /
    ``failure`` / ``capacity``), plus ``exhausted`` for the controller's
    forced re-plan when the plan ran out with work remaining, and
    ``external`` for re-plans requested by an outside scheduler (the
    fleet runtime).
    """

    hour: float
    kind: str
    reason: str
    #: Index of the produced plan in :attr:`ControllerResult.plans`.
    plan_index: int


@dataclass
class ControllerResult:
    """Full record of a controlled deployment."""

    completed: bool
    completion_hours: float
    total_cost: float
    ledger: CostLedger
    outcomes: list[IntervalOutcome]
    #: Plan history: plans[0] is the initial plan, one entry per re-plan.
    plans: list[ExecutionPlan]
    replans: int
    deadline_hours: float
    deadline_met: bool
    final_state: SystemState
    #: (hour, total allocated nodes) step series — Fig. 12a.
    node_series: list[tuple[float, int]] = field(default_factory=list)
    #: (hour, completed tasks) series — Fig. 12b.
    task_series: list[tuple[float, int]] = field(default_factory=list)
    #: Why each re-plan happened, in order (one per entry in ``plans[1:]``).
    replan_records: list[ReplanRecord] = field(default_factory=list)

    @property
    def total_tasks(self) -> int:
        return self.task_series[-1][1] if self.task_series else 0


class JobController:
    """Owns one job's deployment from submission to completion."""

    def __init__(
        self,
        job: PlannerJob,
        services,
        goal: Goal,
        network: NetworkConditions | None = None,
        planner: Planner | None = None,
        config: ControllerConfig | None = None,
        predictor: SpotPredictor | None = None,
        trace: SpotTrace | None = None,
        trace_offset_hours: float = 0.0,
        problem_kwargs: dict | None = None,
        triggers: TriggerPolicy | None = None,
        backend: str = "sim",
        backend_options: dict | None = None,
    ) -> None:
        self.job = job
        self.services = list(services)
        self.goal = goal
        self.network = network or NetworkConditions()
        self.planner = planner or Planner()
        self.config = config or ControllerConfig()
        self.predictor = predictor
        self.trace = trace
        self.trace_offset_hours = trace_offset_hours
        self.problem_kwargs = dict(problem_kwargs or {})
        self.triggers = triggers or default_trigger_policy()
        #: Execution backend selector (see :mod:`repro.exec.base`).
        self.backend = backend
        self.backend_options = dict(backend_options or {})
        self._spot_names = [s.name for s in self.services if s.is_spot]
        if self._spot_names and (predictor is None or trace is None):
            raise ValueError("spot services require a predictor and a trace")
        #: Believed per-node throughputs, updated from observations.
        self._believed: dict[str, float] = {
            s.name: s.throughput_gb_per_hour for s in self.services
        }

    # -- public ------------------------------------------------------------

    def run(
        self,
        actual: ActualConditions | None = None,
        on_interval=None,
        on_replan=None,
    ) -> ControllerResult:
        """Deploy the job against ``actual`` conditions until completion.

        Parameters
        ----------
        actual:
            Ground-truth runtime conditions the executor simulates
            against (node rates, WAN factors, realized spot prices).
            Defaults to "the world behaves exactly as modeled".
        on_interval:
            Called with each :class:`IntervalOutcome` as it happens —
            the hook :class:`~repro.service.session.DeploySession` uses
            to stream deployment progress.
        on_replan:
            Called with each :class:`ReplanRecord` at the moment a
            re-plan is adopted, *before* the next interval executes —
            the hook behind the ``replan`` deploy events on the wire.

        Returns the full :class:`ControllerResult`: cost ledger, plan
        history, every interval outcome, and one :class:`ReplanRecord`
        per adaptation round.  Equivalent to driving
        :meth:`start`/:meth:`ControllerRun.step` to completion.
        """
        run = self.start(actual, on_replan=on_replan)
        try:
            while (outcome := run.step()) is not None:
                if on_interval is not None:
                    on_interval(outcome)
            return run.result()
        finally:
            run.close()

    def start(
        self,
        actual: ActualConditions | None = None,
        on_replan=None,
    ) -> "ControllerRun":
        """Plan the job and return a resumable, steppable deployment.

        Solves the initial plan synchronously (raising
        :class:`PlanningError` exactly as :meth:`run` would) but
        executes nothing: the caller owns the clock and advances the
        deployment one interval at a time with
        :meth:`ControllerRun.step`.  This is the fleet scheduler's entry
        point.
        """
        return ControllerRun(self, actual, on_replan=on_replan)

    def _executor(self, state, actual, ledger):
        # Imported lazily: repro.exec sits above core in the layering
        # (it subclasses FluidExecutor), so a module-level import would
        # be a cycle.
        from ..exec import make_executor

        return make_executor(
            self.backend, self._problem(state), actual, ledger,
            hour_offset=self.trace_offset_hours,
            options=self.backend_options or None,
        )

    # -- planning ------------------------------------------------------------

    def _believed_services(self):
        return [
            s.replace(throughput_gb_per_hour=self._believed[s.name])
            if s.can_compute
            else s
            for s in self.services
        ]

    def _problem(
        self, state: SystemState, deadline_override: float | None = None
    ) -> PlanningProblem:
        deadline = float(self.goal.deadline_hours or 0.0)
        remaining = (deadline_override or deadline) - state.hour
        remaining = max(remaining, 1.0)
        goal = Goal(
            kind=self.goal.kind,
            deadline_hours=remaining,
            budget_usd=self.goal.budget_usd,
        )
        estimates = self._spot_estimates(state, math.ceil(remaining))
        # Re-planning starts from a snapshot whose clock is zeroed for the
        # model (interval indices restart) but keeps absolute placement.
        snapshot = SystemState(
            hour=state.hour,
            source_remaining_gb=state.source_remaining_gb,
            stored_input=dict(state.stored_input),
            stored_output=dict(state.stored_output),
            stored_result=dict(state.stored_result),
            map_done_gb=state.map_done_gb,
            reduce_done_gb=state.reduce_done_gb,
            downloaded_gb=state.downloaded_gb,
        )
        return PlanningProblem(
            job=self.job,
            services=self._believed_services(),
            network=self.network,
            goal=goal,
            state=snapshot,
            spot_price_estimates=estimates,
            **self.problem_kwargs,
        )

    def _plan(self, state: SystemState) -> tuple[ExecutionPlan, dict[str, np.ndarray]]:
        problem = self._problem(state)
        plan = self.planner.plan(problem)
        return plan, dict(problem.spot_price_estimates)

    def _plan_with_extension(
        self, state: SystemState
    ) -> tuple[ExecutionPlan, dict[str, np.ndarray]]:
        """Remaining deadline infeasible: extend the horizon until a plan
        exists (the deployment will miss the deadline but finish)."""
        deadline = float(self.goal.deadline_hours or 0.0)
        horizon = max(deadline, state.hour + 1.0)
        last_error: PlanningError | None = None
        while horizon <= deadline * self.config.max_horizon_factor:
            horizon = math.ceil(horizon * self.config.horizon_extension)
            try:
                problem = self._problem(state, deadline_override=float(horizon))
                return self.planner.plan(problem), dict(problem.spot_price_estimates)
            except PlanningError as exc:
                last_error = exc
        raise PlanningError(
            f"no feasible plan within {self.config.max_horizon_factor}x deadline",
            status="infeasible",
            budgeted=self.goal.budget_usd is not None,
        ) from last_error

    def _spot_estimates(self, state: SystemState, horizon: int) -> dict:
        if not self._spot_names or self.predictor is None or self.trace is None:
            return {}
        now = self.trace_offset_hours + state.hour
        estimate = self.predictor.estimate(self.trace, now, horizon)
        return {name: estimate for name in self._spot_names}

    # -- monitoring ------------------------------------------------------------

    def _update_bids(self, executor: FluidExecutor, state: SystemState) -> None:
        if not self._spot_names or self.predictor is None or self.trace is None:
            return
        now = self.trace_offset_hours + state.hour
        by_name = {s.name: s for s in self.services}
        for name in self._spot_names:
            bid = self.predictor.bid(self.trace, now)
            # Never bid above the on-demand price: past that point the
            # customer would simply rent regular instances instead.
            ceiling = by_name[name].price_per_node_hour
            if ceiling > 0:
                bid = min(bid, ceiling)
            executor.bids[name] = bid

    def _learn_rates(self, outcome: IntervalOutcome) -> None:
        """Fold observed per-node rates back into the model's beliefs."""
        for name, observed in outcome.observed_rates.items():
            if observed > 0:
                self._believed[name] = observed / self.job.throughput_scale

    def scale_belief(self, name: str, factor: float) -> None:
        """Scale the believed per-node rate for one service.

        The notification path for capability changes known *before* they
        are observed — the fleet scheduler applies a node-failure
        event's severity here so the re-plan it requests already models
        the degraded service instead of re-solving on stale beliefs.
        Subsequent observations (``_learn_rates``) overwrite the scaled
        value with measured reality.
        """
        if factor <= 0:
            raise ValueError("factor must be positive")
        if name in self._believed:
            self._believed[name] *= factor

    def _completed_tasks(self, state: SystemState) -> int:
        split_gb = self.config.split_mb / MB_PER_GB
        map_tasks = int(state.map_done_gb / split_gb + 1e-6)
        reduce_tasks = 0
        if self.job.map_output_gb > _EPS:
            total_reducers = max(1, int(round(self.job.map_output_gb / split_gb)) or 1)
            frac = state.reduce_done_gb / self.job.map_output_gb
            reduce_tasks = int(frac * total_reducers + 1e-6)
        return map_tasks + reduce_tasks


class ControllerRun:
    """One in-flight deployment, advanced one interval per :meth:`step`.

    Owns the mutable deployment state the controller's loop used to keep
    on its stack: the :class:`SystemState`, the cost ledger, the plan
    history and the executor.  :meth:`JobController.run` is now a thin
    loop over this class; external schedulers drive it directly and may
    inject re-plans between steps with :meth:`request_replan` — that is
    the mechanism the fleet runtime uses to turn substrate events
    (price spikes, evictions, failures) into targeted adaptations.
    """

    def __init__(
        self,
        controller: JobController,
        actual: ActualConditions | None = None,
        on_replan=None,
    ) -> None:
        self.controller = controller
        self.actual = actual or ActualConditions.as_predicted()
        self.on_replan = on_replan
        config = controller.config
        self.deadline = float(controller.goal.deadline_hours or 0.0)
        self.max_hours = self.deadline * config.max_horizon_factor
        self.state = SystemState.initial(controller.job)
        self.ledger = CostLedger()
        self.outcomes: list[IntervalOutcome] = []
        self.node_series: list[tuple[float, int]] = []
        self.task_series: list[tuple[float, int]] = [(0.0, 0)]
        self.replans = 0
        self.replan_records: list[ReplanRecord] = []
        self._pending: tuple[str, str, bool] | None = None
        self._halted = False
        #: Plans dropped by a crash-resume restore: ``plan_index`` values
        #: stay continuous with the original run's plan history.
        self._plan_base = 0
        plan, estimates = controller._plan(self.state)
        self.plans: list[ExecutionPlan] = [plan]
        self._estimates = estimates
        self._executor = controller._executor(self.state, self.actual, self.ledger)

    # -- driving -----------------------------------------------------------

    @property
    def done(self) -> bool:
        """True once the job finished, halted, or ran out of horizon."""
        return (
            self._halted
            or self._executor.is_complete(self.state)
            or not self.state.hour < self.max_hours - _EPS
        )

    def close(self) -> None:
        """Release backend resources (worker pools, subprocesses).

        Idempotent; a no-op for the sim backend.  Owners that drive a
        run to completion (``JobController.run``, the deploy session,
        the fleet scheduler) call this when the run ends.
        """
        self._executor.close()

    def request_replan(
        self, reason: str, kind: str = "external", learn: bool = False
    ) -> bool:
        """Schedule a re-plan before the next interval executes.

        The event-driven entry point: the fleet scheduler calls this
        when a substrate event (price spike, eviction, node failure,
        capacity change) concerns this deployment, instead of waiting
        for the controller's own trigger policy.  With ``learn=True``
        the last interval's observed node rates are folded into the
        model first (the deviation-trigger semantics).  Returns
        ``False`` — and schedules nothing — when the run is already
        done, the ``max_replans`` cap is reached, or a re-plan is
        already pending: one re-plan serves every cause that arrived in
        the same step, and the first request wins (callers budgeting
        re-plans should only charge for ``True``).
        """
        if self.done or self.replans >= self.controller.config.max_replans:
            return False
        if self._pending is not None:
            return False
        self._pending = (kind, reason, learn)
        return True

    def peek_replan_problem(self) -> PlanningProblem | None:
        """The exact problem a pending re-plan will solve, or ``None``.

        Lets the fleet scheduler collect every deployment's next solve
        *before* stepping them, so concurrent re-plans triggered by the
        same substrate event batch into one block-diagonal solve.  A
        pending ``learn`` is folded in eagerly — ``_learn_rates`` is
        idempotent over the same outcome, so the adoption in
        :meth:`step` re-applying it changes nothing and the peeked
        problem is byte-identical to the one the re-plan solves.
        """
        if self._pending is None or self.done:
            return None
        if self.replans >= self.controller.config.max_replans:
            return None
        _kind, _reason, learn = self._pending
        if learn and self.outcomes:
            self.controller._learn_rates(self.outcomes[-1])
        return self.controller._problem(self.state)

    def step(self) -> IntervalOutcome | None:
        """Execute the next planned interval; ``None`` once done.

        Order of business: adopt any re-plan requested since the last
        step, refresh spot bids, execute one interval against the actual
        conditions, then consult the trigger policy (and the
        plan-exhausted fallback) for a reactive re-plan.
        """
        if self.done:
            return None
        controller = self.controller
        config = controller.config
        state = self.state

        if self._pending is not None:
            kind, reason, learn = self._pending
            self._pending = None
            if self.replans < config.max_replans:
                if learn and self.outcomes:
                    controller._learn_rates(self.outcomes[-1])
                self._replan(kind, reason)

        plan = self.plans[-1]
        interval = plan.interval_at(state.hour)
        controller._update_bids(self._executor, state)
        outcome = self._executor.run_interval(interval, state)
        self.outcomes.append(outcome)
        self.node_series.append((outcome.start_hour, sum(outcome.nodes.values())))
        self.task_series.append((state.hour, controller._completed_tasks(state)))

        if self._executor.is_complete(state):
            return outcome
        # Reactive re-plans are *scheduled* here and adopted at the top
        # of the next step, so streamed events stay in causal order:
        # the triggering interval first, then its re-plan, then the
        # first interval the new plan executes.
        decision = controller.triggers.check(self.trigger_context(outcome))
        if decision is not None and self.replans < config.max_replans:
            self._pending = (decision.kind, decision.reason, True)
        elif state.hour >= plan.intervals[-1].end_hour - _EPS:
            # Plan exhausted but work remains (e.g. persistent out-bid):
            # force a re-plan to keep making progress.
            if self.replans >= config.max_replans:
                self._halted = True
                return outcome
            self._pending = (
                "exhausted", "plan exhausted with work remaining", False
            )
        return outcome

    def trigger_context(self, outcome: IntervalOutcome) -> TriggerContext:
        """The :class:`TriggerContext` for one executed interval — also
        used by the fleet scheduler to run its own policies over a
        deployment it is stepping."""
        controller = self.controller
        return TriggerContext(
            outcome=outcome,
            config=controller.config,
            job=controller.job,
            believed=dict(controller._believed),
            estimates=self._estimates,
            spot_names=tuple(controller._spot_names),
            trace=controller.trace,
            trace_offset_hours=controller.trace_offset_hours,
            replans=self.replans,
        )

    def result(self) -> ControllerResult:
        """The :class:`ControllerResult` for the run so far.

        The list series (outcomes, plans, replan records, node/task
        series) are copied, so a mid-run snapshot keeps ``plans[1:]``
        lined up with ``replan_records`` even if the run is stepped
        further afterwards; ``ledger`` and ``final_state`` remain the
        run's live objects.
        """
        state = self.state
        completed = self._executor.is_complete(state)
        return ControllerResult(
            completed=completed,
            completion_hours=state.hour,
            total_cost=self.ledger.total(),
            ledger=self.ledger,
            outcomes=list(self.outcomes),
            plans=list(self.plans),
            replans=self.replans,
            deadline_hours=self.deadline,
            deadline_met=completed and state.hour <= self.deadline + _EPS,
            final_state=state,
            node_series=list(self.node_series),
            task_series=list(self.task_series),
            replan_records=list(self.replan_records),
        )

    # -- crash-resume ------------------------------------------------------

    def snapshot(self) -> dict:
        """Serialize the run's full mutable state (JSON-safe).

        Everything :meth:`restore` needs to continue the deployment:
        the system state, believed per-node rates, the *active* plan
        (older plans are summarized by ``plan_count`` so ``plan_index``
        provenance stays continuous), the cost ledger, the Fig. 12
        series, trigger bookkeeping, and the last executed outcome —
        a pending ``learn`` re-plan folds its observed rates into the
        model on the next step.  Earlier outcomes are not carried: their
        costs already live in the ledger, and a resumed run's
        :meth:`result` reports the resumed tail.
        """
        state = self.state
        last = self.outcomes[-1] if self.outcomes else None
        return {
            "hour": state.hour,
            "state": {
                "hour": state.hour,
                "source_remaining_gb": state.source_remaining_gb,
                "stored_input": dict(state.stored_input),
                "stored_output": dict(state.stored_output),
                "stored_result": dict(state.stored_result),
                "map_done_gb": state.map_done_gb,
                "reduce_done_gb": state.reduce_done_gb,
                "downloaded_gb": state.downloaded_gb,
            },
            "believed": {
                k: float(v)
                for k, v in sorted(self.controller._believed.items())
            },
            "deadline": self.deadline,
            "max_hours": self.max_hours,
            "replans": self.replans,
            "replan_records": [
                {"hour": r.hour, "kind": r.kind, "reason": r.reason,
                 "plan_index": r.plan_index}
                for r in self.replan_records
            ],
            "plan": self.plans[-1].to_dict(),
            "plan_count": self._plan_base + len(self.plans),
            "estimates": {
                k: [float(x) for x in v]
                for k, v in sorted(self._estimates.items())
            },
            "pending": (
                None if self._pending is None else list(self._pending)
            ),
            "halted": self._halted,
            "ledger": [
                {"hour": e.hour, "service": e.service,
                 "category": e.category.value, "detail": e.detail,
                 "quantity": e.quantity, "unit": e.unit,
                 "unit_price": e.unit_price}
                for e in self.ledger
            ],
            "node_series": [[h, n] for h, n in self.node_series],
            "task_series": [[h, n] for h, n in self.task_series],
            "outcome_count": len(self.outcomes),
            "last_outcome": None if last is None else {
                "index": last.index,
                "start_hour": last.start_hour,
                "duration_hours": last.duration_hours,
                "nodes": dict(last.nodes),
                "uploaded_gb": last.uploaded_gb,
                "map_gb": last.map_gb,
                "reduce_gb": last.reduce_gb,
                "downloaded_gb": last.downloaded_gb,
                "planned_map_gb": last.planned_map_gb,
                "planned_upload_gb": last.planned_upload_gb,
                "cost": last.cost,
                "outbid_services": list(last.outbid_services),
                "observed_rates": dict(last.observed_rates),
                "spot_data_lost_gb": last.spot_data_lost_gb,
                # Additive: omitted when empty so sim-backend snapshots
                # stay byte-identical to pre-backend ones.
                **(
                    {"failed_services": list(last.failed_services)}
                    if last.failed_services else {}
                ),
            },
        }

    @classmethod
    def restore(
        cls,
        controller: JobController,
        snapshot: dict,
        actual: ActualConditions | None = None,
        on_replan=None,
    ) -> "ControllerRun":
        """Rehydrate a run from a :meth:`snapshot` and continue it.

        Bypasses ``__init__`` (which would solve a fresh initial plan):
        the restored run resumes the *logged* plan from the logged
        state, with believed rates, trigger bookkeeping and the ledger
        exactly as they were — the crash-recovery path `repro replay
        --resume` drives.  ``controller`` must be configured identically
        to the run that produced the snapshot (same job, services, goal
        and policies); its believed rates are overwritten from the
        snapshot.
        """
        run = object.__new__(cls)
        run.controller = controller
        run.actual = actual or ActualConditions.as_predicted()
        run.on_replan = on_replan
        run.deadline = float(snapshot["deadline"])
        run.max_hours = float(snapshot["max_hours"])
        s = snapshot["state"]
        run.state = SystemState(
            hour=float(s["hour"]),
            source_remaining_gb=float(s["source_remaining_gb"]),
            stored_input={str(k): float(v)
                          for k, v in s["stored_input"].items()},
            stored_output={str(k): float(v)
                           for k, v in s["stored_output"].items()},
            stored_result={str(k): float(v)
                           for k, v in s["stored_result"].items()},
            map_done_gb=float(s["map_done_gb"]),
            reduce_done_gb=float(s["reduce_done_gb"]),
            downloaded_gb=float(s["downloaded_gb"]),
        )
        controller._believed = {
            str(k): float(v) for k, v in snapshot["believed"].items()
        }
        run.ledger = CostLedger()
        for e in snapshot["ledger"]:
            run.ledger.add(
                float(e["hour"]), str(e["service"]),
                CostCategory(e["category"]), str(e["detail"]),
                float(e["quantity"]), str(e["unit"]),
                float(e["unit_price"]),
            )
        run.outcomes = []
        last = snapshot.get("last_outcome")
        if last is not None:
            run.outcomes.append(IntervalOutcome(
                index=int(last["index"]),
                start_hour=float(last["start_hour"]),
                duration_hours=float(last["duration_hours"]),
                nodes={str(k): int(v) for k, v in last["nodes"].items()},
                uploaded_gb=float(last["uploaded_gb"]),
                map_gb=float(last["map_gb"]),
                reduce_gb=float(last["reduce_gb"]),
                downloaded_gb=float(last["downloaded_gb"]),
                planned_map_gb=float(last["planned_map_gb"]),
                planned_upload_gb=float(last["planned_upload_gb"]),
                cost=float(last["cost"]),
                outbid_services=[str(n) for n in last["outbid_services"]],
                observed_rates={str(k): float(v)
                                for k, v in last["observed_rates"].items()},
                spot_data_lost_gb=float(last["spot_data_lost_gb"]),
                failed_services=[
                    str(n) for n in last.get("failed_services", [])
                ],
            ))
        run.node_series = [(float(h), int(n))
                           for h, n in snapshot["node_series"]]
        run.task_series = [(float(h), int(n))
                           for h, n in snapshot["task_series"]]
        run.replans = int(snapshot["replans"])
        run.replan_records = [
            ReplanRecord(hour=float(r["hour"]), kind=str(r["kind"]),
                         reason=str(r["reason"]),
                         plan_index=int(r["plan_index"]))
            for r in snapshot["replan_records"]
        ]
        pending = snapshot.get("pending")
        run._pending = (
            None if pending is None
            else (str(pending[0]), str(pending[1]), bool(pending[2]))
        )
        run._halted = bool(snapshot["halted"])
        run._plan_base = int(snapshot["plan_count"]) - 1
        run.plans = [ExecutionPlan.from_dict(snapshot["plan"])]
        run._estimates = {
            str(k): np.asarray(v, dtype=float)
            for k, v in snapshot["estimates"].items()
        }
        run._executor = controller._executor(run.state, run.actual, run.ledger)
        return run

    # -- internals ---------------------------------------------------------

    def _replan(self, kind: str, reason: str) -> None:
        controller = self.controller
        try:
            plan, estimates = controller._plan(self.state)
        except PlanningError:
            plan, estimates = controller._plan_with_extension(self.state)
        self.plans.append(plan)
        self._estimates = estimates
        self.replans += 1
        record = ReplanRecord(
            hour=self.state.hour,
            kind=kind,
            reason=reason,
            plan_index=self._plan_base + len(self.plans) - 1,
        )
        self.replan_records.append(record)
        if self.on_replan is not None:
            self.on_replan(record)
        # Rebind instead of recreating: the executor's runtime state
        # (worker pools, task counters, collected partials) survives the
        # re-plan — only the believed problem changes.
        self._executor.rebind(controller._problem(self.state))
