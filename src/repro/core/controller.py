"""The job controller: deploy, monitor, adapt (paper Sections 5.2, 5.4).

The controller closes the loop the paper describes:

1. generate a model and solve it for an execution plan;
2. deploy the plan interval by interval (through the fluid executor);
3. monitor execution progress and spot prices;
4. on significant deviation — slower/faster nodes than modeled, out-bid
   spot instances, mispredicted prices — rebuild the model *from the
   current system state* and continue with the updated plan.

Fig. 12 of the paper is exactly one run of this loop with a 3.3×
throughput misprediction.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

import numpy as np

from ..cloud.spot import SpotTrace
from ..units import MB_PER_GB
from .accounting import CostLedger
from .conditions import ActualConditions
from .executor import FluidExecutor, IntervalOutcome
from .model_builder import PlanningError
from .plan import ExecutionPlan
from .planner import Planner
from .predictor import SpotPredictor
from .problem import (
    Goal,
    NetworkConditions,
    PlannerJob,
    PlanningProblem,
    SystemState,
)

_EPS = 1e-9


@dataclass
class ControllerConfig:
    """Monitoring and adaptation policy knobs."""

    #: Relative progress shortfall (vs. plan) that triggers re-planning.
    deviation_threshold: float = 0.15
    #: Relative spot price misestimate that triggers re-planning.
    price_deviation_threshold: float = 0.25
    #: Relative node-rate misestimate that updates beliefs and re-plans.
    rate_deviation_threshold: float = 0.15
    #: Hard cap on re-planning rounds (runaway guard).
    max_replans: int = 64
    #: When the remaining deadline is infeasible, extend the horizon by
    #: this factor per attempt (the job then *misses* the deadline but
    #: still completes, as a real deployment would).
    horizon_extension: float = 1.5
    max_horizon_factor: float = 4.0
    #: Map task size used for the completed-task series (Fig. 12b).
    split_mb: float = 64.0


@dataclass
class ControllerResult:
    """Full record of a controlled deployment."""

    completed: bool
    completion_hours: float
    total_cost: float
    ledger: CostLedger
    outcomes: list[IntervalOutcome]
    #: Plan history: plans[0] is the initial plan, one entry per re-plan.
    plans: list[ExecutionPlan]
    replans: int
    deadline_hours: float
    deadline_met: bool
    final_state: SystemState
    #: (hour, total allocated nodes) step series — Fig. 12a.
    node_series: list[tuple[float, int]] = field(default_factory=list)
    #: (hour, completed tasks) series — Fig. 12b.
    task_series: list[tuple[float, int]] = field(default_factory=list)

    @property
    def total_tasks(self) -> int:
        return self.task_series[-1][1] if self.task_series else 0


class JobController:
    """Owns one job's deployment from submission to completion."""

    def __init__(
        self,
        job: PlannerJob,
        services,
        goal: Goal,
        network: NetworkConditions | None = None,
        planner: Planner | None = None,
        config: ControllerConfig | None = None,
        predictor: SpotPredictor | None = None,
        trace: SpotTrace | None = None,
        trace_offset_hours: float = 0.0,
        problem_kwargs: dict | None = None,
    ) -> None:
        self.job = job
        self.services = list(services)
        self.goal = goal
        self.network = network or NetworkConditions()
        self.planner = planner or Planner()
        self.config = config or ControllerConfig()
        self.predictor = predictor
        self.trace = trace
        self.trace_offset_hours = trace_offset_hours
        self.problem_kwargs = dict(problem_kwargs or {})
        self._spot_names = [s.name for s in self.services if s.is_spot]
        if self._spot_names and (predictor is None or trace is None):
            raise ValueError("spot services require a predictor and a trace")
        #: Believed per-node throughputs, updated from observations.
        self._believed: dict[str, float] = {
            s.name: s.throughput_gb_per_hour for s in self.services
        }

    # -- public ------------------------------------------------------------

    def run(
        self,
        actual: ActualConditions | None = None,
        on_interval=None,
    ) -> ControllerResult:
        """Deploy the job against ``actual`` conditions until completion.

        ``on_interval``, when given, is called with each
        :class:`IntervalOutcome` as it happens — the hook the planning
        service's session manager uses to stream deployment progress.
        """
        actual = actual or ActualConditions.as_predicted()
        config = self.config
        deadline = float(self.goal.deadline_hours or 0.0)
        state = SystemState.initial(self.job)
        ledger = CostLedger()
        outcomes: list[IntervalOutcome] = []
        plans: list[ExecutionPlan] = []
        node_series: list[tuple[float, int]] = []
        task_series: list[tuple[float, int]] = [(0.0, 0)]
        replans = 0
        max_hours = deadline * config.max_horizon_factor

        plan, estimates = self._plan(state)
        plans.append(plan)
        executor = self._executor(state, actual, ledger)

        while not executor.is_complete(state) and state.hour < max_hours - _EPS:
            interval = plan.interval_at(state.hour)
            self._update_bids(executor, state)
            outcome = executor.execute_interval(interval, state)
            outcomes.append(outcome)
            if on_interval is not None:
                on_interval(outcome)
            node_series.append((outcome.start_hour, sum(outcome.nodes.values())))
            task_series.append((state.hour, self._completed_tasks(state)))

            if executor.is_complete(state):
                break
            reason = self._deviation_reason(outcome, estimates, state)
            if reason and replans < config.max_replans:
                self._learn_rates(outcome)
                try:
                    plan, estimates = self._plan(state)
                except PlanningError:
                    plan, estimates = self._plan_with_extension(state)
                plans.append(plan)
                replans += 1
                executor = self._executor(state, actual, ledger)
            elif state.hour >= plan.intervals[-1].end_hour - _EPS:
                # Plan exhausted but work remains (e.g. persistent out-bid):
                # force a re-plan to keep making progress.
                if replans >= config.max_replans:
                    break
                try:
                    plan, estimates = self._plan(state)
                except PlanningError:
                    plan, estimates = self._plan_with_extension(state)
                plans.append(plan)
                replans += 1
                executor = self._executor(state, actual, ledger)

        completed = executor.is_complete(state)
        return ControllerResult(
            completed=completed,
            completion_hours=state.hour,
            total_cost=ledger.total(),
            ledger=ledger,
            outcomes=outcomes,
            plans=plans,
            replans=replans,
            deadline_hours=deadline,
            deadline_met=completed and state.hour <= deadline + _EPS,
            final_state=state,
            node_series=node_series,
            task_series=task_series,
        )

    def _executor(self, state, actual, ledger) -> FluidExecutor:
        executor = FluidExecutor(
            self._problem(state), actual, ledger,
            hour_offset=self.trace_offset_hours,
        )
        return executor

    # -- planning ------------------------------------------------------------

    def _believed_services(self):
        return [
            s.replace(throughput_gb_per_hour=self._believed[s.name])
            if s.can_compute
            else s
            for s in self.services
        ]

    def _problem(
        self, state: SystemState, deadline_override: float | None = None
    ) -> PlanningProblem:
        deadline = float(self.goal.deadline_hours or 0.0)
        remaining = (deadline_override or deadline) - state.hour
        remaining = max(remaining, 1.0)
        goal = Goal(
            kind=self.goal.kind,
            deadline_hours=remaining,
            budget_usd=self.goal.budget_usd,
        )
        estimates = self._spot_estimates(state, math.ceil(remaining))
        # Re-planning starts from a snapshot whose clock is zeroed for the
        # model (interval indices restart) but keeps absolute placement.
        snapshot = SystemState(
            hour=state.hour,
            source_remaining_gb=state.source_remaining_gb,
            stored_input=dict(state.stored_input),
            stored_output=dict(state.stored_output),
            stored_result=dict(state.stored_result),
            map_done_gb=state.map_done_gb,
            reduce_done_gb=state.reduce_done_gb,
            downloaded_gb=state.downloaded_gb,
        )
        return PlanningProblem(
            job=self.job,
            services=self._believed_services(),
            network=self.network,
            goal=goal,
            state=snapshot,
            spot_price_estimates=estimates,
            **self.problem_kwargs,
        )

    def _plan(self, state: SystemState) -> tuple[ExecutionPlan, dict[str, np.ndarray]]:
        problem = self._problem(state)
        plan = self.planner.plan(problem)
        return plan, dict(problem.spot_price_estimates)

    def _plan_with_extension(
        self, state: SystemState
    ) -> tuple[ExecutionPlan, dict[str, np.ndarray]]:
        """Remaining deadline infeasible: extend the horizon until a plan
        exists (the deployment will miss the deadline but finish)."""
        deadline = float(self.goal.deadline_hours or 0.0)
        horizon = max(deadline, state.hour + 1.0)
        last_error: PlanningError | None = None
        while horizon <= deadline * self.config.max_horizon_factor:
            horizon = math.ceil(horizon * self.config.horizon_extension)
            try:
                problem = self._problem(state, deadline_override=float(horizon))
                return self.planner.plan(problem), dict(problem.spot_price_estimates)
            except PlanningError as exc:
                last_error = exc
        raise PlanningError(
            f"no feasible plan within {self.config.max_horizon_factor}x deadline",
            status="infeasible",
            budgeted=self.goal.budget_usd is not None,
        ) from last_error

    def _spot_estimates(self, state: SystemState, horizon: int) -> dict:
        if not self._spot_names or self.predictor is None or self.trace is None:
            return {}
        now = self.trace_offset_hours + state.hour
        estimate = self.predictor.estimate(self.trace, now, horizon)
        return {name: estimate for name in self._spot_names}

    # -- monitoring ------------------------------------------------------------

    def _update_bids(self, executor: FluidExecutor, state: SystemState) -> None:
        if not self._spot_names or self.predictor is None or self.trace is None:
            return
        now = self.trace_offset_hours + state.hour
        by_name = {s.name: s for s in self.services}
        for name in self._spot_names:
            bid = self.predictor.bid(self.trace, now)
            # Never bid above the on-demand price: past that point the
            # customer would simply rent regular instances instead.
            ceiling = by_name[name].price_per_node_hour
            if ceiling > 0:
                bid = min(bid, ceiling)
            executor.bids[name] = bid

    def _deviation_reason(
        self,
        outcome: IntervalOutcome,
        estimates: dict[str, np.ndarray],
        state: SystemState,
    ) -> str | None:
        config = self.config
        if outcome.outbid_services:
            return f"out-bid on {','.join(outcome.outbid_services)}"
        if outcome.spot_data_lost_gb > 1e-6:
            return f"spot storage loss of {outcome.spot_data_lost_gb:.1f} GB"
        if outcome.map_shortfall > config.deviation_threshold:
            return f"progress shortfall {outcome.map_shortfall:.0%}"
        for name, observed in outcome.observed_rates.items():
            believed = self._believed.get(name, 0.0) * self.job.throughput_scale
            if believed <= 0:
                continue
            rel = abs(observed - believed) / believed
            if rel > config.rate_deviation_threshold:
                return f"rate deviation on {name}: {rel:.0%}"
        if self.trace is not None and self._spot_names and estimates:
            now = self.trace_offset_hours + outcome.start_hour
            realized = self.trace.price_at(now)
            for name in self._spot_names:
                series = estimates.get(name)
                if series is None or len(series) == 0:
                    continue
                expected = float(series[0]) if outcome.index <= 1 else float(
                    series[min(outcome.index - 1, len(series) - 1)]
                )
                if expected > 0 and abs(realized - expected) / expected > (
                    config.price_deviation_threshold
                ):
                    return f"spot price deviation on {name}"
        return None

    def _learn_rates(self, outcome: IntervalOutcome) -> None:
        """Fold observed per-node rates back into the model's beliefs."""
        for name, observed in outcome.observed_rates.items():
            if observed > 0:
                self._believed[name] = observed / self.job.throughput_scale

    def _completed_tasks(self, state: SystemState) -> int:
        split_gb = self.config.split_mb / MB_PER_GB
        map_tasks = int(state.map_done_gb / split_gb + 1e-6)
        reduce_tasks = 0
        if self.job.map_output_gb > _EPS:
            total_reducers = max(1, int(round(self.job.map_output_gb / split_gb)) or 1)
            frac = state.reduce_done_gb / self.job.map_output_gb
            reduce_tasks = int(frac * total_reducers + 1e-6)
        return map_tasks + reduce_tasks
