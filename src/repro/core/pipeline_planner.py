"""Planning and executing multi-stage (Pig-style) pipelines.

Conductor's planner works one MapReduce job at a time (Section 4.1);
Pig programs compile to *chains* of such jobs (Section 2.1).  This
module closes the loop:

- :func:`plan_pipeline` runs the LP planner per stage, splitting the
  user deadline across stages by estimated work share and feeding each
  stage's input placement forward through a :class:`SystemState`
  (later stages read from cloud storage — no second WAN upload);
- storage tiers for every intermediate are chosen by the reliability
  model (:mod:`repro.core.reliability`);
- :func:`run_pipeline_with_failures` Monte-Carlo-executes the plan
  against injected intermediate-data loss, replaying the recovery
  cascade the paper describes ("they must be recomputed by re-executing
  all previous stages") so the expected-cost model can be validated.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Mapping, Sequence

import numpy as np

from ..cloud.services import ServiceDescription
from .plan import ExecutionPlan
from .planner import Planner
from .problem import Goal, GoalKind, NetworkConditions, PlannerJob, PlanningProblem, SystemState
from .reliability import (
    ExpectedOutcome,
    PipelineReliabilityModel,
    RetentionPolicy,
    StageProfile,
    StorageTier,
    TierChoice,
    choose_tiers,
)


class PipelinePlanningError(RuntimeError):
    """No feasible stage-by-stage deployment within the deadline."""


@dataclass(frozen=True)
class StagePlan:
    """One stage's LP plan plus its reliability bookkeeping."""

    job: PlannerJob
    plan: ExecutionPlan
    profile: StageProfile
    tier: StorageTier

    @property
    def name(self) -> str:
        return self.job.name


@dataclass(frozen=True)
class PipelinePlan:
    """The full multi-stage deployment plan."""

    stages: tuple[StagePlan, ...]
    retention: RetentionPolicy
    expected: ExpectedOutcome

    @property
    def total_planned_cost(self) -> float:
        """Sum of per-stage LP costs (no failures)."""
        return sum(s.plan.predicted_cost for s in self.stages)

    @property
    def total_planned_hours(self) -> float:
        return sum(s.plan.predicted_completion_hours for s in self.stages)

    @property
    def expected_cost(self) -> float:
        """Expected cost including recovery cascades and tier storage."""
        return self.expected.total_cost

    def describe(self) -> str:
        lines = []
        for stage in self.stages:
            lines.append(
                f"{stage.name:>24}  ${stage.plan.predicted_cost:6.2f}  "
                f"{stage.plan.predicted_completion_hours:5.2f}h  "
                f"out={stage.profile.output_gb:7.2f}GB  tier={stage.tier.name}"
            )
        lines.append(
            f"{'expected total':>24}  ${self.expected.total_cost:6.2f}  "
            f"{self.expected.total_hours:5.2f}h"
        )
        return "\n".join(lines)


def plan_pipeline(
    jobs: Sequence[PlannerJob],
    services: Sequence[ServiceDescription],
    goal: Goal,
    network: NetworkConditions,
    tiers: Sequence[StorageTier] | None = None,
    retention: RetentionPolicy = RetentionPolicy.KEEP_ALL,
    planner: Planner | None = None,
    interval_hours: float = 1.0,
) -> PipelinePlan:
    """Plan a chain of MapReduce stages under one overall deadline.

    ``jobs`` come from :meth:`repro.pig.CompiledPipeline.to_planner_jobs`
    (or are hand-built).  Stages run sequentially; stage ``k``'s input
    is stage ``k-1``'s output, already resident on a cloud storage
    service, so only the first stage pays the WAN upload.

    The deadline splits across stages proportionally to a work
    estimate, and unused time flows forward: if stage 1 finishes early,
    stage 2 plans against the reclaimed slack.

    ``tiers`` defaults to a single always-durable tier priced at zero
    (reliability neutral); pass real tiers to trade storage price
    against recovery risk.
    """
    if not jobs:
        raise ValueError("pipeline has no stages")
    if goal.kind is not GoalKind.MINIMIZE_COST:
        raise ValueError("pipeline planning currently supports min-cost goals")
    deadline = float(goal.deadline_hours or 0.0)
    if deadline <= 0:
        raise ValueError("goal must carry a positive deadline")
    planner = planner or Planner()
    storage_services = [s for s in services if s.can_store]
    if not storage_services:
        raise ValueError("no storage service for intermediates")

    weights = _work_estimates(jobs, services, network)
    remaining_weight = float(sum(weights))
    remaining_deadline = deadline
    plans: list[ExecutionPlan] = []
    profiles: list[StageProfile] = []
    for index, job in enumerate(jobs):
        share = weights[index] / max(remaining_weight, 1e-12)
        stage_deadline = max(interval_hours, remaining_deadline * share)
        # Round up to whole intervals so the LP horizon is well-formed.
        stage_deadline = (
            math.ceil(stage_deadline / interval_hours - 1e-9) * interval_hours
        )
        stage_deadline = min(stage_deadline, max(interval_hours, remaining_deadline))
        state = _stage_state(job, index, profiles, storage_services)
        problem = PlanningProblem(
            job=job,
            services=list(services),
            network=network,
            goal=Goal.min_cost(deadline_hours=stage_deadline),
            state=state,
            interval_hours=interval_hours,
        )
        try:
            plan = planner.plan(problem)
        except Exception as exc:
            # One retry with every remaining hour — the proportional
            # split can under-provision a WAN-bound first stage.
            if remaining_deadline > stage_deadline + 1e-9:
                problem = PlanningProblem(
                    job=job,
                    services=list(services),
                    network=network,
                    goal=Goal.min_cost(
                        deadline_hours=math.ceil(remaining_deadline / interval_hours)
                        * interval_hours
                    ),
                    state=state,
                    interval_hours=interval_hours,
                )
                plan = planner.plan(problem)
            else:
                raise PipelinePlanningError(
                    f"stage {job.name!r} infeasible within "
                    f"{stage_deadline:.1f}h of the remaining deadline"
                ) from exc
        plans.append(plan)
        profiles.append(
            StageProfile(
                name=job.name,
                exec_cost=plan.predicted_cost,
                exec_hours=plan.predicted_completion_hours,
                output_gb=job.result_gb,
            )
        )
        remaining_deadline -= plan.predicted_completion_hours
        remaining_weight -= weights[index]
        if remaining_deadline < -1e-6 and index + 1 < len(jobs):
            raise PipelinePlanningError(
                f"deadline exhausted after stage {job.name!r} "
                f"({deadline - remaining_deadline:.1f}h used of {deadline:.1f}h)"
            )

    if tiers is None:
        tiers = [StorageTier("durable", 0.0, 0.0)]
    choice: TierChoice = choose_tiers(profiles, tiers, retention)
    stage_plans = tuple(
        StagePlan(job=job, plan=plan, profile=profile, tier=tier)
        for job, plan, profile, tier in zip(
            jobs, plans, profiles, choice.assignment
        )
    )
    return PipelinePlan(
        stages=stage_plans, retention=retention, expected=choice.outcome
    )


def _work_estimates(
    jobs: Sequence[PlannerJob],
    services: Sequence[ServiceDescription],
    network: NetworkConditions,
) -> list[float]:
    """Rough per-stage hours used to apportion the deadline.

    Stage 1 is WAN-bound (input crosses the uplink); later stages are
    compute-bound at a nominal moderate cluster width.
    """
    compute = [s for s in services if s.can_compute]
    best_rate = max(
        (jobs[0].map_rate(s) for s in compute), default=1.0
    )
    nominal_nodes = 16.0  # the paper's recurring plan width
    estimates = []
    for index, job in enumerate(jobs):
        compute_hours = job.input_gb / max(best_rate * nominal_nodes, 1e-9)
        if index == 0:
            upload_hours = job.input_gb / network.uplink_gb_per_hour
            estimates.append(max(upload_hours, compute_hours))
        else:
            estimates.append(max(compute_hours, 0.25))
    return estimates


def _stage_state(
    job: PlannerJob,
    index: int,
    profiles: list[StageProfile],
    storage_services: Sequence[ServiceDescription],
) -> SystemState | None:
    """Initial state for stage ``index``: input pre-placed in the cloud."""
    if index == 0:
        return None
    holder = storage_services[0]
    return SystemState(
        hour=0.0,
        source_remaining_gb=0.0,
        stored_input={holder.name: job.input_gb},
    )


# ---------------------------------------------------------------------------
# Failure-injected execution (Monte Carlo over the recovery cascade)
# ---------------------------------------------------------------------------


@dataclass
class PipelineRunResult:
    """One failure-injected execution of a pipeline plan."""

    cost: float
    hours: float
    losses: int
    stage_attempts: list[int]

    @property
    def recovered(self) -> bool:
        return self.losses > 0


_MAX_TOTAL_ATTEMPTS = 100_000


def run_pipeline_with_failures(
    plan: PipelinePlan,
    rng: np.random.Generator | int | None = None,
) -> PipelineRunResult:
    """Execute the plan once with sampled intermediate-data loss.

    Tracks per-intermediate liveness exactly: a stage whose input is
    gone walks back to the deepest *surviving* predecessor (pipeline
    input if none, or if retention discards consumed intermediates) and
    re-executes forward — the paper's Section 2.1 recovery cascade.
    A loss mid-stage wastes a uniform fraction of that stage's attempt.
    """
    generator = (
        rng
        if isinstance(rng, np.random.Generator)
        else np.random.default_rng(rng)
    )
    stages = plan.stages
    n = len(stages)
    alive = [False] * n  # whether intermediate I_j currently exists
    attempts = [0] * n
    cost = 0.0
    hours = 0.0
    losses = 0
    j = 0
    total_attempts = 0
    while j < n:
        total_attempts += 1
        if total_attempts > _MAX_TOTAL_ATTEMPTS:
            raise RuntimeError(
                "failure injection did not converge; loss rates are too "
                "high for this pipeline to ever finish"
            )
        stage = stages[j]
        attempts[j] += 1
        duration = stage.profile.exec_hours
        # The input intermediate (j-1) is exposed while this stage runs.
        input_lost = False
        if j > 0 and not stages[j - 1].tier.is_durable:
            input_lost = generator.random() < stages[j - 1].tier.loss_within(
                duration
            )
        # Storage accrual for every live intermediate during this run.
        for k in range(n):
            if alive[k]:
                cost += (
                    stages[k].profile.output_gb
                    * stages[k].tier.cost_gb_hour
                    * duration
                )
        if input_lost:
            wasted = float(generator.uniform(0.0, 1.0))
            cost += stage.profile.exec_cost * wasted
            hours += duration * wasted
            losses += 1
            alive[j - 1] = False
            j = _recovery_start(plan, alive, j - 1)
            continue
        cost += stage.profile.exec_cost
        hours += duration
        alive[j] = True
        if (
            plan.retention is RetentionPolicy.DISCARD_AFTER_USE
            and j > 0
        ):
            alive[j - 1] = False
        j += 1
    # Final output handoff: one buffered hour on its tier.
    final = stages[-1]
    cost += final.profile.output_gb * final.tier.cost_gb_hour * 1.0
    return PipelineRunResult(
        cost=cost, hours=hours, losses=losses, stage_attempts=attempts
    )


def _recovery_start(plan: PipelinePlan, alive: list[bool], lost: int) -> int:
    """First stage to re-execute after losing intermediate ``lost``."""
    k = lost
    while k >= 0 and not alive[k]:
        k -= 1
    return k + 1


def estimate_run_distribution(
    plan: PipelinePlan,
    samples: int = 200,
    seed: int = 7,
) -> dict[str, float]:
    """Monte Carlo summary used by tests and the ablation bench."""
    generator = np.random.default_rng(seed)
    costs = []
    times = []
    loss_runs = 0
    for _ in range(samples):
        result = run_pipeline_with_failures(plan, generator)
        costs.append(result.cost)
        times.append(result.hours)
        loss_runs += 1 if result.losses else 0
    return {
        "mean_cost": float(np.mean(costs)),
        "max_cost": float(np.max(costs)),
        "std_cost": float(np.std(costs)),
        "mean_hours": float(np.mean(times)),
        "loss_run_fraction": loss_runs / samples,
    }
