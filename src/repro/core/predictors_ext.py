"""Extended spot price predictors and bidding strategies.

The paper deliberately keeps prediction simple ("predicting spot prices
is a challenging problem in its own right and beyond the scope of this
work", Section 4.7) and notes that "more elaborate methods [1] or
methods for analyzing stock market trends could also be leveraged".
This module supplies those more elaborate methods so the predictor
ablation bench can quantify how much they buy on each trace family:

- :class:`EwmaPredictor` — exponentially weighted moving average;
- :class:`SeasonalNaivePredictor` — same hour yesterday (the right
  inductive bias for the diurnal electricity-style trace);
- :class:`Ar1Predictor` — least-squares AR(1), mean-reverting forecasts
  (the right bias for the AWS-style mean-reverting jump trace);
- :class:`QuantilePredictor` — per-hour-of-day empirical quantile over
  a trailing window (a smoother cousin of the paper's window-max);
- :class:`MarginBidder` — wraps any predictor, bidding a safety margin
  above its estimate (cap at on-demand is applied by the controller).

All predictors implement :class:`repro.core.predictor.SpotPredictor`,
so every harness (controller, Fig. 14 scenarios, benches) accepts them
unchanged.
"""

from __future__ import annotations

import numpy as np

from ..cloud.spot import SpotTrace
from .predictor import SpotPredictor


def _history(trace: SpotTrace, now_hour: float, hours: int) -> np.ndarray:
    """The last ``hours`` hourly prices ending at ``now_hour`` (inclusive)."""
    samples = [
        trace.price_at(now_hour - h)
        for h in range(hours - 1, -1, -1)
        if now_hour - h >= trace.start_hour
    ]
    return np.asarray(samples, dtype=float)


class EwmaPredictor(SpotPredictor):
    """Exponentially weighted moving average, flat over the horizon.

    ``alpha`` is the standard smoothing weight on the newest sample;
    higher alpha tracks spikes faster but forgets the base level.
    """

    def __init__(self, alpha: float = 0.3, history_hours: int = 72) -> None:
        if not 0.0 < alpha <= 1.0:
            raise ValueError("alpha must be in (0, 1]")
        if history_hours < 1:
            raise ValueError("history_hours must be >= 1")
        self.alpha = alpha
        self.history_hours = history_hours
        self.name = f"ewma{alpha:g}"

    def estimate(
        self, trace: SpotTrace, now_hour: float, horizon_hours: int
    ) -> np.ndarray:
        history = _history(trace, now_hour, self.history_hours)
        level = history[0]
        for price in history[1:]:
            level = self.alpha * price + (1.0 - self.alpha) * level
        return np.full(horizon_hours, float(level))


class SeasonalNaivePredictor(SpotPredictor):
    """Forecast each future hour with the same hour-of-day, one day back.

    Averages over ``lookback_days`` recent days at the same time of day,
    which is the minimal model that captures a diurnal cycle.
    """

    def __init__(self, lookback_days: int = 3) -> None:
        if lookback_days < 1:
            raise ValueError("lookback_days must be >= 1")
        self.lookback_days = lookback_days
        self.name = f"seasonal{lookback_days}"

    def estimate(
        self, trace: SpotTrace, now_hour: float, horizon_hours: int
    ) -> np.ndarray:
        current = trace.price_at(now_hour)
        estimates = np.empty(horizon_hours)
        for h in range(horizon_hours):
            future = now_hour + h
            samples = [
                trace.price_at(future - 24.0 * day)
                for day in range(1, self.lookback_days + 1)
                if future - 24.0 * day >= trace.start_hour
            ]
            estimates[h] = float(np.mean(samples)) if samples else current
        return estimates


class Ar1Predictor(SpotPredictor):
    """Least-squares AR(1): ``x[t+1] = c + phi * x[t] + eps``.

    Mean-reverting forecasts decay geometrically from the current price
    toward the fitted long-run mean — the correct structure for the
    AWS-style mean-reverting jump traces.  Degenerate fits (constant
    history, |phi| pinned) fall back to the current price.
    """

    def __init__(self, history_hours: int = 120) -> None:
        if history_hours < 8:
            raise ValueError("history_hours must be >= 8 to fit anything")
        self.history_hours = history_hours
        self.name = "ar1"

    def estimate(
        self, trace: SpotTrace, now_hour: float, horizon_hours: int
    ) -> np.ndarray:
        history = _history(trace, now_hour, self.history_hours)
        current = float(history[-1])
        if len(history) < 8 or float(np.std(history[:-1])) < 1e-12:
            return np.full(horizon_hours, current)
        x, y = history[:-1], history[1:]
        phi, intercept = np.polyfit(x, y, 1)
        phi = float(np.clip(phi, -0.999, 0.999))
        estimates = np.empty(horizon_hours)
        level = current
        for h in range(horizon_hours):
            level = intercept + phi * level
            estimates[h] = max(0.0, float(level))
        return estimates


class QuantilePredictor(SpotPredictor):
    """Per-hour-of-day empirical quantile over a trailing window.

    ``quantile=1.0`` reproduces the paper's window-max exactly; lower
    quantiles trade occasional under-bidding for tighter estimates.
    """

    def __init__(self, window_days: int = 5, quantile: float = 0.8) -> None:
        if window_days < 1:
            raise ValueError("window_days must be >= 1")
        if not 0.0 < quantile <= 1.0:
            raise ValueError("quantile must be in (0, 1]")
        self.window_days = window_days
        self.quantile = quantile
        self.name = f"q{int(quantile * 100)}w{window_days}"

    def estimate(
        self, trace: SpotTrace, now_hour: float, horizon_hours: int
    ) -> np.ndarray:
        current = trace.price_at(now_hour)
        estimates = np.empty(horizon_hours)
        for h in range(horizon_hours):
            future = now_hour + h
            samples = [
                trace.price_at(future - 24.0 * day)
                for day in range(1, self.window_days + 1)
                if future - 24.0 * day >= trace.start_hour
            ]
            estimates[h] = (
                float(np.quantile(samples, self.quantile)) if samples else current
            )
        return estimates


class MarginBidder(SpotPredictor):
    """Bid ``(1 + margin)`` times the wrapped predictor's estimate.

    Price *estimates* (what the LP optimizes against) pass through
    unchanged; only the standing *bid* gains headroom, reducing out-bid
    interruptions at the cost of occasionally paying more per hour.
    The controller still caps every bid at the on-demand price.
    """

    def __init__(self, inner: SpotPredictor, margin: float = 0.2) -> None:
        if margin < 0:
            raise ValueError("margin must be non-negative")
        self.inner = inner
        self.margin = margin
        self.name = f"{inner.name}+{int(margin * 100)}%"

    def estimate(
        self, trace: SpotTrace, now_hour: float, horizon_hours: int
    ) -> np.ndarray:
        return self.inner.estimate(trace, now_hour, horizon_hours)

    def bid(self, trace: SpotTrace, now_hour: float) -> float:
        return self.inner.bid(trace, now_hour) * (1.0 + self.margin)


def extended_predictor_suite() -> list[SpotPredictor]:
    """The ablation line-up: every extended predictor at defaults."""
    return [
        EwmaPredictor(),
        SeasonalNaivePredictor(),
        Ar1Predictor(),
        QuantilePredictor(),
    ]


def forecast_errors(
    predictor: SpotPredictor,
    trace: SpotTrace,
    horizon_hours: int = 24,
    start_hour: float = 48.0,
    stride_hours: float = 12.0,
) -> dict[str, float]:
    """Backtest a predictor over a trace: MAE and RMSE per forecast.

    Walks the trace in ``stride_hours`` steps, forecasting the next
    ``horizon_hours`` each time and comparing against the realized
    prices.  Used by tests and the predictor ablation bench.
    """
    errors: list[float] = []
    now = start_hour
    while now + horizon_hours <= trace.hours:
        estimated = predictor.estimate(trace, now, horizon_hours)
        realized = np.asarray(
            [trace.price_at(now + h) for h in range(horizon_hours)]
        )
        errors.extend(np.abs(estimated - realized).tolist())
        now += stride_hours
    if not errors:
        raise ValueError("trace too short for the requested backtest")
    errs = np.asarray(errors)
    return {
        "mae": float(np.mean(errs)),
        "rmse": float(np.sqrt(np.mean(errs**2))),
        "max_abs": float(np.max(errs)),
    }
