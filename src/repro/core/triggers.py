"""Replan triggers: when does a deployment rebuild its plan?

The paper's controller re-plans whenever monitoring shows the world has
left the model (Sections 5.2, 5.4): out-bid spot instances, destroyed
spot state, progress shortfalls, mispredicted node rates, mispredicted
spot prices.  Historically that decision was a private method of
:class:`~repro.core.controller.JobController`; this module turns it into
a pluggable *trigger policy* so other schedulers — most importantly the
fleet runtime (:mod:`repro.fleet`) — can decide differently:

- a standalone controller keeps the paper's behaviour via
  :func:`default_trigger_policy` (eviction, failure, deviation, price —
  checked after every executed interval);
- a fixed-cadence baseline uses :func:`interval_trigger_policy`, which
  re-plans every *k* hours and reacts to nothing else;
- the fleet scheduler gives its controllers the interval baseline and
  injects *event-driven* re-plans itself through
  :meth:`~repro.core.controller.ControllerRun.request_replan`.

The trigger taxonomy (``Trigger.kind``) is the vocabulary used by
:class:`~repro.core.controller.ReplanRecord` and the ``replan`` deploy
events on the wire: ``interval``, ``deviation``, ``price``,
``eviction``, ``failure``, ``capacity`` (plus ``exhausted`` and
``external`` for the controller's forced and scheduler-requested
re-plans).
"""

from __future__ import annotations

import abc
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Mapping, Sequence

import numpy as np

if TYPE_CHECKING:  # pragma: no cover - import cycle guard, typing only
    from ..cloud.spot import SpotTrace
    from .controller import ControllerConfig
    from .executor import IntervalOutcome
    from .problem import PlannerJob

_EPS = 1e-9

#: The replan-trigger taxonomy (see :mod:`docs/adaptation.md`).
TRIGGER_KINDS = (
    "interval",   # scheduled cadence, no observation needed
    "deviation",  # progress shortfall or node-rate misestimate
    "price",      # realized spot price off the planning estimate
    "eviction",   # spot instances terminated by an out-bid hour
    "failure",    # destroyed state / failed nodes
    "capacity",   # the provider's available node count changed
)


@dataclass(frozen=True)
class ReplanDecision:
    """A trigger's verdict: re-plan now, for this reason."""

    kind: str
    reason: str


@dataclass
class TriggerContext:
    """Everything a trigger may inspect after one executed interval.

    Built by :meth:`ControllerRun.trigger_context`; carries the last
    :class:`IntervalOutcome`, the spot price estimates the current plan
    was built from, and the controller's current beliefs.
    """

    outcome: "IntervalOutcome"
    config: "ControllerConfig"
    job: "PlannerJob"
    #: Believed per-node throughput (GB/h) by service, pre-scale.
    believed: Mapping[str, float] = field(default_factory=dict)
    #: Spot price estimates the active plan was built from.
    estimates: Mapping[str, np.ndarray] = field(default_factory=dict)
    spot_names: Sequence[str] = ()
    trace: "SpotTrace | None" = None
    trace_offset_hours: float = 0.0
    replans: int = 0


class Trigger(abc.ABC):
    """One reason to re-plan; ``check`` returns a decision or ``None``."""

    kind: str = "deviation"

    @abc.abstractmethod
    def check(self, ctx: TriggerContext) -> ReplanDecision | None:
        """Decide whether this trigger fires for the given interval."""

    def _fire(self, reason: str) -> ReplanDecision:
        return ReplanDecision(kind=self.kind, reason=reason)


class EvictionTrigger(Trigger):
    """Spot instances were terminated by an out-bid hour."""

    kind = "eviction"

    def check(self, ctx: TriggerContext) -> ReplanDecision | None:
        if ctx.outcome.outbid_services:
            return self._fire(
                f"out-bid on {','.join(ctx.outcome.outbid_services)}"
            )
        return None


class FailureTrigger(Trigger):
    """State was destroyed (spot storage loss, node/worker failure)."""

    kind = "failure"

    def check(self, ctx: TriggerContext) -> ReplanDecision | None:
        if ctx.outcome.spot_data_lost_gb > 1e-6:
            return self._fire(
                f"spot storage loss of {ctx.outcome.spot_data_lost_gb:.1f} GB"
            )
        failed = getattr(ctx.outcome, "failed_services", None)
        if failed:
            return self._fire(f"worker failure on {','.join(sorted(failed))}")
        return None


class DeviationTrigger(Trigger):
    """Progress shortfall vs. plan, or observed node rates off belief."""

    kind = "deviation"

    def check(self, ctx: TriggerContext) -> ReplanDecision | None:
        config = ctx.config
        outcome = ctx.outcome
        if outcome.map_shortfall > config.deviation_threshold:
            return self._fire(f"progress shortfall {outcome.map_shortfall:.0%}")
        for name, observed in outcome.observed_rates.items():
            believed = ctx.believed.get(name, 0.0) * ctx.job.throughput_scale
            if believed <= 0:
                continue
            rel = abs(observed - believed) / believed
            if rel > config.rate_deviation_threshold:
                return self._fire(f"rate deviation on {name}: {rel:.0%}")
        return None


class PriceTrigger(Trigger):
    """Realized spot price deviates from the plan's estimate."""

    kind = "price"

    def check(self, ctx: TriggerContext) -> ReplanDecision | None:
        if ctx.trace is None or not ctx.spot_names or not ctx.estimates:
            return None
        outcome = ctx.outcome
        now = ctx.trace_offset_hours + outcome.start_hour
        realized = ctx.trace.price_at(now)
        for name in ctx.spot_names:
            series = ctx.estimates.get(name)
            if series is None or len(series) == 0:
                continue
            expected = float(series[0]) if outcome.index <= 1 else float(
                series[min(outcome.index - 1, len(series) - 1)]
            )
            if expected > 0 and abs(realized - expected) / expected > (
                ctx.config.price_deviation_threshold
            ):
                return self._fire(f"spot price deviation on {name}")
        return None


class IntervalTrigger(Trigger):
    """Fixed-cadence re-planning: fire every ``every_hours``, blind to
    everything else (the paper's non-adaptive strawman, and the fleet
    benchmark's baseline)."""

    kind = "interval"

    def __init__(self, every_hours: float) -> None:
        if every_hours <= 0:
            raise ValueError("every_hours must be positive")
        self.every_hours = float(every_hours)

    def check(self, ctx: TriggerContext) -> ReplanDecision | None:
        outcome = ctx.outcome
        start = outcome.start_hour
        end = start + outcome.duration_hours
        # Fires when the interval just executed crossed a cadence mark:
        # a mark in (start, end] schedules a re-plan before the next one.
        crossed_end = int((end + _EPS) / self.every_hours)
        crossed_start = int((start + _EPS) / self.every_hours)
        if crossed_end > crossed_start:
            return self._fire(
                f"scheduled re-plan at t={crossed_end * self.every_hours:g} h"
            )
        return None


class TriggerPolicy:
    """An ordered set of triggers; the first that fires wins.

    The order is significant and mirrors the paper's monitor: hard
    evidence first (evictions, destroyed state), then progress and rate
    deviations, then price misestimates.
    """

    def __init__(self, triggers: Sequence[Trigger]) -> None:
        self.triggers = list(triggers)

    def check(self, ctx: TriggerContext) -> ReplanDecision | None:
        for trigger in self.triggers:
            decision = trigger.check(ctx)
            if decision is not None:
                return decision
        return None

    def describe(self) -> str:
        return " -> ".join(t.kind for t in self.triggers) or "(none)"


def default_trigger_policy() -> TriggerPolicy:
    """The paper's reactive monitor: eviction, failure, deviation, price.

    Reproduces the historical ``JobController`` deviation check exactly,
    including its precedence.
    """
    return TriggerPolicy(
        [EvictionTrigger(), FailureTrigger(), DeviationTrigger(), PriceTrigger()]
    )


def interval_trigger_policy(every_hours: float) -> TriggerPolicy:
    """Fixed-cadence-only policy (re-plan every ``every_hours``, react to
    nothing) — the fleet benchmark's non-adaptive baseline."""
    return TriggerPolicy([IntervalTrigger(every_hours)])


__all__ = [
    "TRIGGER_KINDS",
    "DeviationTrigger",
    "EvictionTrigger",
    "FailureTrigger",
    "IntervalTrigger",
    "PriceTrigger",
    "ReplanDecision",
    "Trigger",
    "TriggerContext",
    "TriggerPolicy",
    "default_trigger_policy",
    "interval_trigger_policy",
]
