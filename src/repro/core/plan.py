"""Execution plans: the solver's answer, in deployable form.

An :class:`ExecutionPlan` is the bridge between the planner and the job
controller: per interval it records how many nodes to rent from each
compute service, what to upload where, which storage each compute service
reads from / writes to, migrations, and downloads — exactly the decisions
the paper's controller forwards to the storage layer and the allocation
APIs (Section 5.2).
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Mapping

_EPS = 1e-6


def _pairs_to_rows(flows: Mapping[tuple[str, str], float]) -> list[list]:
    """Tuple-keyed flow dict -> JSON-safe ``[from, to, gb]`` rows.

    Service names are arbitrary strings, so no separator-joined string
    key is safe; explicit triples are.  Rows are sorted so serialization
    is canonical (two equal plans encode identically).
    """
    return [[a, b, float(v)] for (a, b), v in sorted(flows.items())]


def _rows_to_pairs(rows) -> dict[tuple[str, str], float]:
    return {(str(a), str(b)): float(v) for a, b, v in rows}


@dataclass
class PlanInterval:
    """Planned actions during one LP time interval."""

    index: int
    start_hour: float
    duration_hours: float
    #: compute service -> nodes rented during the interval.
    nodes: dict[str, int] = field(default_factory=dict)
    #: storage service -> GB uploaded from the source.
    upload_gb: dict[str, float] = field(default_factory=dict)
    #: (storage, compute) -> GB of map input processed.
    map_read_gb: dict[tuple[str, str], float] = field(default_factory=dict)
    #: (compute, storage) -> GB of map output written.
    map_write_gb: dict[tuple[str, str], float] = field(default_factory=dict)
    #: (storage, compute) -> GB of map output consumed by reduce.
    reduce_read_gb: dict[tuple[str, str], float] = field(default_factory=dict)
    #: (compute, storage) -> GB of final result written.
    reduce_write_gb: dict[tuple[str, str], float] = field(default_factory=dict)
    #: (from storage, to storage) -> GB migrated (arrives next interval).
    migrate_gb: dict[tuple[str, str], float] = field(default_factory=dict)
    #: storage service -> GB downloaded to the client.
    download_gb: dict[str, float] = field(default_factory=dict)
    #: storage service -> GB held at the *end* of the interval.
    stored_gb: dict[str, float] = field(default_factory=dict)

    @property
    def end_hour(self) -> float:
        return self.start_hour + self.duration_hours

    @property
    def total_nodes(self) -> int:
        return sum(self.nodes.values())

    @property
    def map_gb(self) -> float:
        return sum(self.map_read_gb.values())

    @property
    def reduce_gb(self) -> float:
        return sum(self.reduce_read_gb.values())

    @property
    def total_upload_gb(self) -> float:
        return sum(self.upload_gb.values())

    @property
    def total_download_gb(self) -> float:
        return sum(self.download_gb.values())

    def is_idle(self) -> bool:
        """True when nothing happens in the interval."""
        return (
            self.total_nodes == 0
            and self.total_upload_gb < _EPS
            and self.map_gb < _EPS
            and self.reduce_gb < _EPS
            and self.total_download_gb < _EPS
            and sum(self.migrate_gb.values()) < _EPS
        )

    # -- serialization ---------------------------------------------------------

    def to_dict(self) -> dict:
        """JSON-safe form (tuple-keyed flows become ``[from, to, gb]``)."""
        return {
            "index": self.index,
            "start_hour": self.start_hour,
            "duration_hours": self.duration_hours,
            "nodes": {k: int(v) for k, v in sorted(self.nodes.items())},
            "upload_gb": {k: float(v) for k, v in sorted(self.upload_gb.items())},
            "map_read_gb": _pairs_to_rows(self.map_read_gb),
            "map_write_gb": _pairs_to_rows(self.map_write_gb),
            "reduce_read_gb": _pairs_to_rows(self.reduce_read_gb),
            "reduce_write_gb": _pairs_to_rows(self.reduce_write_gb),
            "migrate_gb": _pairs_to_rows(self.migrate_gb),
            "download_gb": {k: float(v) for k, v in sorted(self.download_gb.items())},
            "stored_gb": {k: float(v) for k, v in sorted(self.stored_gb.items())},
        }

    @classmethod
    def from_dict(cls, data: Mapping) -> "PlanInterval":
        return cls(
            index=int(data["index"]),
            start_hour=float(data["start_hour"]),
            duration_hours=float(data["duration_hours"]),
            nodes={str(k): int(v) for k, v in data.get("nodes", {}).items()},
            upload_gb={str(k): float(v)
                       for k, v in data.get("upload_gb", {}).items()},
            map_read_gb=_rows_to_pairs(data.get("map_read_gb", [])),
            map_write_gb=_rows_to_pairs(data.get("map_write_gb", [])),
            reduce_read_gb=_rows_to_pairs(data.get("reduce_read_gb", [])),
            reduce_write_gb=_rows_to_pairs(data.get("reduce_write_gb", [])),
            migrate_gb=_rows_to_pairs(data.get("migrate_gb", [])),
            download_gb={str(k): float(v)
                         for k, v in data.get("download_gb", {}).items()},
            stored_gb={str(k): float(v)
                       for k, v in data.get("stored_gb", {}).items()},
        )


@dataclass
class ExecutionPlan:
    """A complete deployment plan plus the model's cost prediction."""

    intervals: list[PlanInterval]
    predicted_cost: float
    predicted_cost_breakdown: dict[str, float]
    #: Hours from plan start to predicted completion (download finished).
    predicted_completion_hours: float
    objective_value: float
    solver_status: str
    solve_seconds: float
    model_stats: dict[str, int] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if not self.intervals:
            raise ValueError("a plan needs at least one interval")

    # -- queries ---------------------------------------------------------------

    @property
    def horizon_hours(self) -> float:
        return self.intervals[-1].end_hour

    def interval_at(self, hour: float) -> PlanInterval:
        """The interval covering absolute hour ``hour``."""
        for interval in self.intervals:
            if interval.start_hour - _EPS <= hour < interval.end_hour - _EPS:
                return interval
        return self.intervals[-1]

    def nodes_at(self, hour: float) -> dict[str, int]:
        return dict(self.interval_at(hour).nodes)

    def peak_nodes(self, service: str | None = None) -> int:
        """Max concurrent nodes (optionally for one service)."""
        def count(interval: PlanInterval) -> int:
            if service is None:
                return interval.total_nodes
            return interval.nodes.get(service, 0)

        return max(count(i) for i in self.intervals)

    def total_node_hours(self, service: str | None = None) -> float:
        total = 0.0
        for interval in self.intervals:
            nodes = (
                interval.total_nodes
                if service is None
                else interval.nodes.get(service, 0)
            )
            total += nodes * interval.duration_hours
        return total

    def total_uploaded_gb(self, service: str | None = None) -> float:
        total = 0.0
        for interval in self.intervals:
            if service is None:
                total += interval.total_upload_gb
            else:
                total += interval.upload_gb.get(service, 0.0)
        return total

    def total_map_gb(self) -> float:
        return sum(i.map_gb for i in self.intervals)

    def total_reduce_gb(self) -> float:
        return sum(i.reduce_gb for i in self.intervals)

    def total_downloaded_gb(self) -> float:
        return sum(i.total_download_gb for i in self.intervals)

    def node_allocation_series(self, service: str | None = None) -> list[tuple[float, int]]:
        """(start_hour, nodes) pairs — the paper's Fig. 12a series."""
        series = []
        for interval in self.intervals:
            nodes = (
                interval.total_nodes
                if service is None
                else interval.nodes.get(service, 0)
            )
            series.append((interval.start_hour, nodes))
        return series

    def describe(self) -> str:
        """Human-readable plan table (one row per non-idle interval)."""
        lines = [
            f"plan: cost=${self.predicted_cost:.2f} "
            f"completion={self.predicted_completion_hours:.2f}h "
            f"status={self.solver_status}",
            f"{'t':>4} {'nodes':>18} {'upload':>10} {'map':>8} "
            f"{'reduce':>8} {'download':>9}",
        ]
        for interval in self.intervals:
            if interval.is_idle():
                continue
            nodes = ",".join(
                f"{name.split('.')[-1]}={n}"
                for name, n in sorted(interval.nodes.items())
                if n > 0
            ) or "-"
            lines.append(
                f"{interval.start_hour:>4.1f} {nodes:>18} "
                f"{interval.total_upload_gb:>9.2f}G {interval.map_gb:>7.2f}G "
                f"{interval.reduce_gb:>7.3f}G {interval.total_download_gb:>8.3f}G"
            )
        return "\n".join(lines)

    # -- serialization ---------------------------------------------------------

    def to_dict(self) -> dict:
        """JSON-safe form, complete enough to resume execution from.

        ``solve_seconds`` rides along for reporting but is wall-clock —
        consumers comparing plans for replay determinism must ignore it.
        """
        return {
            "intervals": [i.to_dict() for i in self.intervals],
            "predicted_cost": self.predicted_cost,
            "predicted_cost_breakdown": {
                k: float(v)
                for k, v in sorted(self.predicted_cost_breakdown.items())
            },
            "predicted_completion_hours": self.predicted_completion_hours,
            "objective_value": self.objective_value,
            "solver_status": self.solver_status,
            "solve_seconds": self.solve_seconds,
            "model_stats": {k: int(v)
                            for k, v in sorted(self.model_stats.items())},
        }

    @classmethod
    def from_dict(cls, data: Mapping) -> "ExecutionPlan":
        return cls(
            intervals=[PlanInterval.from_dict(i) for i in data["intervals"]],
            predicted_cost=float(data["predicted_cost"]),
            predicted_cost_breakdown={
                str(k): float(v)
                for k, v in data.get("predicted_cost_breakdown", {}).items()
            },
            predicted_completion_hours=float(
                data["predicted_completion_hours"]
            ),
            objective_value=float(data["objective_value"]),
            solver_status=str(data["solver_status"]),
            solve_seconds=float(data.get("solve_seconds", 0.0)),
            model_stats={str(k): int(v)
                         for k, v in data.get("model_stats", {}).items()},
        )


def merge_plans(prefix: ExecutionPlan, suffix: ExecutionPlan) -> ExecutionPlan:
    """Concatenate an executed prefix with a re-planned suffix (Fig. 12a's
    "updated plan" is the old prefix followed by the new intervals)."""
    cut = suffix.intervals[0].start_hour
    kept = [i for i in prefix.intervals if i.start_hour < cut - _EPS]
    intervals = kept + suffix.intervals
    return ExecutionPlan(
        intervals=intervals,
        predicted_cost=suffix.predicted_cost,
        predicted_cost_breakdown=dict(suffix.predicted_cost_breakdown),
        predicted_completion_hours=suffix.predicted_completion_hours,
        objective_value=suffix.objective_value,
        solver_status=suffix.solver_status,
        solve_seconds=prefix.solve_seconds + suffix.solve_seconds,
        model_stats=dict(suffix.model_stats),
    )
