"""Unit conversion helpers shared across the library.

The planner (``repro.core``) works in **GB and hours** — the natural units
of cloud billing (instance-hours, GB-months).  The simulator
(``repro.sim``, ``repro.mapreduce``) works in **MB/s and seconds** — the
natural units of data transfer.  Every conversion between the two worlds
goes through this module so the factors live in exactly one place.

The paper uses decimal prefixes for network rates (16 Mbit/s = 2 MB/s) and
binary-ish data sizes; we follow its arithmetic: 1 GB = 1024 MB, and
"16 Mbit/s" is treated as exactly 2 MB/s as in Section 6.1.
"""

from __future__ import annotations

MB_PER_GB = 1024.0
SECONDS_PER_HOUR = 3600.0
HOURS_PER_MONTH = 720.0  # AWS billing convention (30-day month)


def mbit_s_to_mb_s(mbit_per_second: float) -> float:
    """Network rate in Mbit/s to MB/s (paper: 16 Mbit/s -> 2 MB/s)."""
    return mbit_per_second / 8.0


def mb_s_to_gb_h(mb_per_second: float) -> float:
    """Transfer rate in MB/s to GB/hour."""
    return mb_per_second * SECONDS_PER_HOUR / MB_PER_GB


def gb_h_to_mb_s(gb_per_hour: float) -> float:
    """Transfer rate in GB/hour to MB/s."""
    return gb_per_hour * MB_PER_GB / SECONDS_PER_HOUR


def gb_to_mb(gb: float) -> float:
    return gb * MB_PER_GB


def mb_to_gb(mb: float) -> float:
    return mb / MB_PER_GB


def hours_to_seconds(hours: float) -> float:
    return hours * SECONDS_PER_HOUR


def seconds_to_hours(seconds: float) -> float:
    return seconds / SECONDS_PER_HOUR


def per_gb_month_to_per_gb_hour(price: float) -> float:
    """Storage price from $/GB-month (S3 price sheet) to $/GB-hour.

    The paper's S3 description (Fig. 3) lists ``cost_tstore`` =
    2.08333332e-4, which is exactly $0.15/GB-month / 720 h.
    """
    return price / HOURS_PER_MONTH
