"""Simulated cluster: nodes, slots, leases, and topology construction.

Nodes belong to a :class:`~repro.cloud.services.ServiceDescription`
(EC2 m1.large, the local cluster...) and are allocated/released over
simulated time; leases are billed with the provider's round-up rule at
teardown.  The topology builder wires the sites the storage layer and
engine route over: the client uplink, per-node NICs, and the S3 gateway.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Callable

from ..cloud.services import ServiceDescription
from ..accounting import CostCategory, CostLedger
from ..sim import FluidNetwork, Simulation, Topology
from ..units import seconds_to_hours

CLIENT_SITE = "client"
S3_SITE = "s3"

#: Default boot delay for cloud instances (AMI boot + Hadoop join).
DEFAULT_BOOT_SECONDS = 90.0


@dataclass
class SimNode:
    """One running (or booting) machine."""

    node_id: str
    service: ServiceDescription
    site: str
    slots: int = 2
    booted_at: float | None = None
    leased_at: float = 0.0
    released_at: float | None = None
    busy_slots: int = 0

    @property
    def is_up(self) -> bool:
        return self.booted_at is not None and self.released_at is None

    @property
    def free_slots(self) -> int:
        return self.slots - self.busy_slots if self.is_up else 0

    def slot_rate_mb_s(self, throughput_scale: float = 1.0) -> float:
        """Per-slot map processing rate: the node's calibrated GB/h spread
        across its concurrent slots."""
        from ..units import gb_h_to_mb_s

        node_rate = self.service.throughput_gb_per_hour * throughput_scale
        return gb_h_to_mb_s(node_rate) / self.slots


class Cluster:
    """Allocates nodes from services, tracks leases, bills on release."""

    def __init__(
        self,
        sim: Simulation,
        ledger: CostLedger | None = None,
        boot_seconds: float = DEFAULT_BOOT_SECONDS,
    ) -> None:
        self.sim = sim
        self.ledger = ledger if ledger is not None else CostLedger()
        self.boot_seconds = boot_seconds
        self.nodes: dict[str, SimNode] = {}
        self._counter = itertools.count(1)
        self._on_node_up: list[Callable[[SimNode], None]] = []

    # -- callbacks ------------------------------------------------------------

    def on_node_up(self, callback: Callable[[SimNode], None]) -> None:
        """Register a hook fired when a node finishes booting."""
        self._on_node_up.append(callback)

    # -- allocation ------------------------------------------------------------

    def allocate(
        self,
        service: ServiceDescription,
        count: int = 1,
        slots: int = 2,
        boot_seconds: float | None = None,
        price_per_hour: float | None = None,
    ) -> list[SimNode]:
        """Start ``count`` nodes; they join after the boot delay.

        ``price_per_hour`` overrides the on-demand price (spot market).
        Local-cluster nodes boot instantly — they already exist.
        """
        boot = boot_seconds
        if boot is None:
            boot = 0.0 if service.price_per_node_hour == 0 else self.boot_seconds
        started = []
        for _ in range(count):
            node_id = f"{service.name}/n{next(self._counter):04d}"
            node = SimNode(
                node_id=node_id,
                service=service,
                site=node_id,
                slots=slots,
                leased_at=self.sim.now,
            )
            if price_per_hour is not None:
                node.service = service.replace(price_per_node_hour=price_per_hour)
            self.nodes[node_id] = node
            self.sim.schedule(boot, self._boot, node)
            started.append(node)
        return started

    def _boot(self, node: SimNode) -> None:
        if node.released_at is not None:
            return  # released while booting
        node.booted_at = self.sim.now
        for callback in self._on_node_up:
            callback(node)

    def release(self, node: SimNode) -> None:
        """Stop a node and bill its lease (round-up hours)."""
        if node.released_at is not None:
            return
        node.released_at = self.sim.now
        hours = seconds_to_hours(node.released_at - node.leased_at)
        billed = node.service.node_hours_billed(hours)
        if billed > 0 and node.service.price_per_node_hour > 0:
            self.ledger.add(
                seconds_to_hours(node.leased_at),
                node.service.name,
                CostCategory.COMPUTE,
                f"lease {node.node_id}",
                billed,
                "node-h",
                node.service.price_per_node_hour,
            )

    def release_all(self) -> None:
        for node in list(self.nodes.values()):
            self.release(node)

    # -- queries ------------------------------------------------------------

    def up_nodes(self, service: str | None = None) -> list[SimNode]:
        return [
            n
            for n in self.nodes.values()
            if n.is_up and (service is None or n.service.name == service)
        ]

    def total_slots(self) -> int:
        return sum(n.slots for n in self.up_nodes())


def build_topology(
    uplink_mb_s: float = 2.0,
    node_nic_mb_s: float = 50.0,
    node_disk_mb_s: float = 60.0,
    s3_gateway_mb_s: float = 400.0,
    s3_per_client_mb_s: float | None = None,
) -> Topology:
    """The standard experiment topology skeleton (no nodes yet).

    Sites: ``client`` (the customer; source data and result destination)
    and ``s3``.  Nodes are wired in on demand via :func:`wire_node`.
    """
    topo = Topology()
    topo.add_link("wan-up", uplink_mb_s)
    topo.add_link("wan-down", uplink_mb_s)
    topo.add_link("s3-gw", s3_gateway_mb_s)
    topo.add_route(CLIENT_SITE, S3_SITE, ["wan-up", "s3-gw"], symmetric=False)
    topo.add_route(S3_SITE, CLIENT_SITE, ["s3-gw", "wan-down"], symmetric=False)
    topo._node_nic_mb_s = node_nic_mb_s  # type: ignore[attr-defined]
    topo._node_disk_mb_s = node_disk_mb_s  # type: ignore[attr-defined]
    return topo


def wire_node(topo: Topology, site: str, local: bool = False) -> None:
    """Attach a node's NIC/disk links and routes to an experiment topology.

    ``local`` nodes sit behind the client's LAN (no WAN hop to the
    client); cloud nodes reach the client via the WAN links.
    """
    nic = f"nic-{site}"
    disk = f"disk-{site}"
    topo.add_link(nic, getattr(topo, "_node_nic_mb_s", 50.0))
    topo.add_link(disk, getattr(topo, "_node_disk_mb_s", 60.0))
    topo.add_route(site, site, [disk], symmetric=False)
    if local:
        topo.add_route(CLIENT_SITE, site, [nic, disk], symmetric=False)
        topo.add_route(site, CLIENT_SITE, [nic], symmetric=False)
    else:
        topo.add_route(CLIENT_SITE, site, ["wan-up", nic, disk], symmetric=False)
        topo.add_route(site, CLIENT_SITE, [nic, "wan-down"], symmetric=False)
    topo.add_route(site, S3_SITE, [nic, "s3-gw"], symmetric=False)
    topo.add_route(S3_SITE, site, ["s3-gw", nic, disk], symmetric=False)
    # Node-to-node routes to every already-wired node.
    for other in [s for s in _wired_sites(topo) if s != site]:
        topo.add_route(site, other, [nic, f"nic-{other}", f"disk-{other}"], symmetric=False)
        topo.add_route(other, site, [f"nic-{other}", nic, disk], symmetric=False)
    _wired_sites(topo).append(site)


def _wired_sites(topo: Topology) -> list[str]:
    if not hasattr(topo, "_wired_sites"):
        topo._wired_sites = []  # type: ignore[attr-defined]
    return topo._wired_sites  # type: ignore[attr-defined]
