"""Task schedulers: stock Hadoop vs. Conductor's location-aware scheduler.

The stock Hadoop scheduler "tries to schedule tasks on the nodes that
also hold the respective input data block, and, in cases where locality
cannot be exploited, it schedules tasks on non-local nodes and reads
their input over the network" (paper Section 5.3).  That flexibility can
violate Conductor's plan, so the location-aware scheduler only marks a
task runnable once its input data is where the plan says it should be,
and maintains per-resource task queues.
"""

from __future__ import annotations

import abc
from collections import defaultdict

from ..storage.namenode import Namenode
from .cluster import SimNode
from .job import Task, TaskKind, TaskState


class Scheduler(abc.ABC):
    """Assigns runnable tasks to free slots."""

    def __init__(self, namenode: Namenode) -> None:
        self.namenode = namenode
        self.tasks: list[Task] = []

    def add_tasks(self, tasks: list[Task]) -> None:
        self.tasks.extend(tasks)

    def pending(self) -> list[Task]:
        return [t for t in self.tasks if t.state is TaskState.PENDING]

    def runnable(self) -> list[Task]:
        return [t for t in self.tasks if t.state is TaskState.RUNNABLE]

    @abc.abstractmethod
    def refresh(self) -> None:
        """Recompute task runnability after data movement / phase changes."""

    @abc.abstractmethod
    def next_task(self, node: SimNode) -> Task | None:
        """Pick a runnable task for a node with a free slot (or None)."""

    # -- shared helpers ---------------------------------------------------------

    def _has_local_replica(self, task: Task, node: SimNode) -> bool:
        if task.block is None:
            return False
        return any(
            record.site == node.site
            for record in self.namenode.locations(task.block)
        )

    def _input_available(self, task: Task) -> bool:
        if task.block is None:
            return True  # reduce task: gated by the engine's phase barrier
        return bool(self.namenode.locations(task.block))


class HadoopScheduler(Scheduler):
    """Stock Hadoop policy: data-local first, else any task, remote read."""

    def refresh(self) -> None:
        for task in self.tasks:
            if task.state is TaskState.PENDING and self._input_available(task):
                task.state = TaskState.RUNNABLE

    def next_task(self, node: SimNode) -> Task | None:
        runnable = self.runnable()
        for task in runnable:  # locality pass
            if self._has_local_replica(task, node):
                return task
        return runnable[0] if runnable else None


class LocationAwareScheduler(Scheduler):
    """Conductor's scheduler (Section 5.3).

    A task becomes runnable only when its input block sits on a storage
    location the plan allows for some compute resource; per-resource
    queues ensure "no actions are performed that were not considered in
    the plan".  The deployment driver keeps ``allowed_sources`` up to
    date as plan intervals open.
    """

    def __init__(self, namenode: Namenode) -> None:
        super().__init__(namenode)
        #: compute service name -> set of allowed storage backends/sites.
        self.allowed_sources: dict[str, set[str]] = defaultdict(set)
        self._queues: dict[str, list[Task]] = defaultdict(list)

    def allow(self, compute_service: str, storage_backend: str) -> None:
        """Open a (compute, storage) pair per the current plan interval."""
        self.allowed_sources[compute_service].add(storage_backend)
        self.refresh()

    def revoke(self, compute_service: str, storage_backend: str) -> None:
        self.allowed_sources[compute_service].discard(storage_backend)

    def refresh(self) -> None:
        for task in self.tasks:
            if task.state is not TaskState.PENDING:
                continue
            if task.block is None:
                task.state = TaskState.RUNNABLE
                continue
            records = self.namenode.locations(task.block)
            if not records:
                continue
            backends = {record.backend for record in records}
            for service, allowed in self.allowed_sources.items():
                if backends & allowed:
                    task.state = TaskState.RUNNABLE
                    self._queues[service].append(task)
                    break

    def next_task(self, node: SimNode) -> Task | None:
        queue = self._queues.get(node.service.name, [])
        # Prefer node-local input within the service queue.
        for task in queue:
            if task.state is TaskState.RUNNABLE and self._has_local_replica(task, node):
                return task
        for task in queue:
            if task.state is TaskState.RUNNABLE:
                return task
        # Reduce tasks (no block) are not queued per service: any node
        # belonging to a service with open sources may take them.
        if self.allowed_sources.get(node.service.name):
            for task in self.runnable():
                if task.block is None:
                    return task
        return None
