"""Task-level MapReduce job representation.

Where :class:`repro.core.problem.PlannerJob` is the planner's aggregate
view (GB in, GB out, GB/h), this module is the Hadoop-level view the
discrete-event engine executes: files split into chunks, one map task per
split, a fixed set of reduce tasks fed by the shuffle.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field

from ..storage.blocks import BlockId


class TaskKind(enum.Enum):
    MAP = "map"
    REDUCE = "reduce"


class TaskState(enum.Enum):
    PENDING = "pending"      # known, input not necessarily in place
    RUNNABLE = "runnable"    # scheduler may assign it
    RUNNING = "running"
    COMPLETED = "completed"


@dataclass
class Task:
    """One map or reduce task attempt."""

    task_id: str
    kind: TaskKind
    input_mb: float
    #: The input chunk (map tasks only; reduce tasks read the shuffle).
    block: BlockId | None = None
    state: TaskState = TaskState.PENDING
    assigned_node: str | None = None
    started_at: float | None = None
    completed_at: float | None = None

    @property
    def duration(self) -> float | None:
        if self.started_at is None or self.completed_at is None:
            return None
        return self.completed_at - self.started_at


@dataclass
class MapReduceJob:
    """An executable job: input file, split geometry, output ratios.

    ``map_output_ratio``/``reduce_output_ratio`` mirror the planner job so
    that the fluid and discrete views of the same computation agree — a
    property the integration tests check.
    """

    name: str
    input_path: str
    input_mb: float
    split_mb: float = 64.0
    map_output_ratio: float = 0.002
    reduce_output_ratio: float = 1.0
    num_reducers: int = 4
    reduce_speed_factor: float = 4.0
    #: Per-job fixed startup overhead (JobTracker setup, AMI boot checks).
    setup_seconds: float = 60.0

    def __post_init__(self) -> None:
        if self.input_mb <= 0 or self.split_mb <= 0:
            raise ValueError("input_mb and split_mb must be positive")
        if self.num_reducers < 1:
            raise ValueError("num_reducers must be >= 1")

    @property
    def num_map_tasks(self) -> int:
        import math

        return max(1, math.ceil(self.input_mb / self.split_mb - 1e-9))

    @property
    def map_output_mb(self) -> float:
        return self.input_mb * self.map_output_ratio

    @property
    def result_mb(self) -> float:
        return self.map_output_mb * self.reduce_output_ratio

    def make_map_tasks(self, chunks: list[BlockId]) -> list[Task]:
        """One map task per input chunk."""
        import math

        tasks = []
        remaining = self.input_mb
        for index, block in enumerate(chunks):
            size = min(self.split_mb, remaining)
            remaining = max(0.0, remaining - size)
            tasks.append(
                Task(
                    task_id=f"{self.name}-m{index:05d}",
                    kind=TaskKind.MAP,
                    input_mb=size,
                    block=block,
                )
            )
        return tasks

    def make_reduce_tasks(self) -> list[Task]:
        share = self.map_output_mb / self.num_reducers
        return [
            Task(
                task_id=f"{self.name}-r{index:03d}",
                kind=TaskKind.REDUCE,
                input_mb=share,
            )
            for index in range(self.num_reducers)
        ]
