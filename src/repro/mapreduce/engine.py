"""The discrete-event MapReduce execution engine.

Drives a :class:`~repro.mapreduce.job.MapReduceJob` over a
:class:`~repro.mapreduce.cluster.Cluster`: free slots pull tasks from the
scheduler; a map task reads its input chunk through the storage client
(network flow if remote, fast path if local), computes for
``split / slot_rate`` seconds, and commits its output locally; once the
map phase drains, reduce tasks shuffle map output and write the final
result.  Completion series feed the paper's Fig. 12b.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Callable

from ..sim import Simulation
from ..storage.blocks import Block, BlockId, LocationRecord
from ..storage.client import StorageClient
from .cluster import Cluster, SimNode
from .job import MapReduceJob, Task, TaskKind, TaskState
from .scheduler import Scheduler


@dataclass
class EngineResult:
    """Execution record for one job run."""

    completed: bool
    completion_s: float
    map_done_s: float | None
    #: (seconds, completed task count) series.
    task_series: list[tuple[float, int]]
    tasks: list[Task]

    @property
    def total_tasks(self) -> int:
        return len(self.tasks)


class MapReduceEngine:
    """Executes one MapReduce job on the simulated cluster."""

    def __init__(
        self,
        sim: Simulation,
        cluster: Cluster,
        client: StorageClient,
        scheduler: Scheduler,
        job: MapReduceJob,
        throughput_scale: float = 1.0,
        output_backend: str = "local-disk",
        on_complete: Callable[[], None] | None = None,
        straggler_spread: float = 1.25,
        seed: int = 0,
    ) -> None:
        self.sim = sim
        self.cluster = cluster
        self.client = client
        self.scheduler = scheduler
        self.job = job
        self.throughput_scale = throughput_scale
        self.output_backend = output_backend
        self.on_complete = on_complete
        #: Per-task slowdown drawn uniformly from [1, straggler_spread]:
        #: the task-duration variance Hadoop exhibits on virtualized
        #: hardware (paper Section 2.1; Zaharia et al. [20]).  1.0
        #: disables straggling.
        self.straggler_spread = max(1.0, straggler_spread)
        from ..sim.rng import generator

        self._rng = generator(seed, "engine", job.name)

        self.map_tasks: list[Task] = []
        self.reduce_tasks: list[Task] = []
        self.completed_tasks = 0
        self.task_series: list[tuple[float, int]] = [(0.0, 0)]
        self.map_done_s: float | None = None
        self.completion_s: float | None = None
        self._started = False
        self._ready = False  # becomes True once job setup completes
        #: Sites holding map output (shuffle sources).
        self._map_output_sites: list[str] = []
        self._result_chunks: list[BlockId] = []
        cluster.on_node_up(lambda node: self.dispatch())

    # -- lifecycle ------------------------------------------------------------

    def start(self, chunks: list[BlockId]) -> None:
        """Submit the job: create map tasks over the input chunks."""
        if self._started:
            raise RuntimeError("engine already started")
        self._started = True
        self.map_tasks = self.job.make_map_tasks(chunks)
        self.scheduler.add_tasks(self.map_tasks)
        self.sim.schedule(self.job.setup_seconds, self._setup_done)

    def _setup_done(self) -> None:
        self._ready = True
        self.scheduler.refresh()
        self.dispatch()

    @property
    def is_complete(self) -> bool:
        return self.completion_s is not None

    def result(self) -> EngineResult:
        return EngineResult(
            completed=self.is_complete,
            completion_s=self.completion_s if self.completion_s is not None else self.sim.now,
            map_done_s=self.map_done_s,
            task_series=list(self.task_series),
            tasks=self.map_tasks + self.reduce_tasks,
        )

    @property
    def result_chunks(self) -> list[BlockId]:
        return list(self._result_chunks)

    # -- dispatch loop ------------------------------------------------------------

    def dispatch(self) -> None:
        """Fill free slots with runnable tasks (call on any state change)."""
        if not self._started or not self._ready or self.is_complete:
            return
        self.scheduler.refresh()
        progress = True
        while progress:
            progress = False
            for node in self.cluster.up_nodes():
                if node.free_slots <= 0:
                    continue
                task = self.scheduler.next_task(node)
                if task is None:
                    continue
                self._assign(task, node)
                progress = True

    def _assign(self, task: Task, node: SimNode) -> None:
        task.state = TaskState.RUNNING
        task.assigned_node = node.node_id
        task.started_at = self.sim.now
        node.busy_slots += 1
        if task.kind is TaskKind.MAP:
            self._run_map(task, node)
        else:
            self._run_reduce(task, node)

    # -- map path ------------------------------------------------------------

    def _run_map(self, task: Task, node: SimNode) -> None:
        assert task.block is not None
        self.client.read(
            task.block, node.site, lambda block: self._map_compute(task, node, block)
        )

    def _map_compute(self, task: Task, node: SimNode, block: Block) -> None:
        # Hadoop streams records: input transfer and computation overlap,
        # so the task takes max(read, compute), not their sum.  By the
        # time the read completes, (now - started_at) of compute is
        # already amortized.
        rate = node.slot_rate_mb_s(self.throughput_scale)
        elapsed = self.sim.now - (task.started_at or self.sim.now)
        duration = task.input_mb / rate * self._straggle()
        remaining = max(0.0, duration - elapsed)
        self.sim.schedule(remaining, self._map_done, task, node)

    def _map_done(self, task: Task, node: SimNode) -> None:
        # Map output commits to the node's local storage (standard Hadoop);
        # its size is tracked in aggregate for the shuffle.
        if node.site not in self._map_output_sites:
            self._map_output_sites.append(node.site)
        self._complete(task, node)
        if all(t.state is TaskState.COMPLETED for t in self.map_tasks):
            self.map_done_s = self.sim.now
            self._start_reduce_phase()
        self.dispatch()

    # -- reduce path ------------------------------------------------------------

    def _start_reduce_phase(self) -> None:
        if self.job.map_output_mb <= 1e-9:
            self._finish()
            return
        self.reduce_tasks = self.job.make_reduce_tasks()
        self.scheduler.add_tasks(self.reduce_tasks)
        self.dispatch()

    def _run_reduce(self, task: Task, node: SimNode) -> None:
        # Shuffle: fetch this reducer's share of map output.  Sources are
        # the map nodes; we model the fetch as one flow from the most
        # loaded source site (the stragglers' site dominates in practice).
        sources = self._map_output_sites or [node.site]
        source = sources[hash(task.task_id) % len(sources)]
        if task.input_mb <= 1e-9 or source == node.site:
            self._reduce_compute(task, node)
            return
        self.client.network.start_flow(
            source, node.site, task.input_mb, lambda _f: self._reduce_compute(task, node)
        )

    def _reduce_compute(self, task: Task, node: SimNode) -> None:
        # Shuffle and reduce computation overlap, as in the map path.
        rate = node.slot_rate_mb_s(self.throughput_scale) * self.job.reduce_speed_factor
        elapsed = self.sim.now - (task.started_at or self.sim.now)
        duration = task.input_mb / rate * self._straggle()
        remaining = max(0.0, duration - elapsed)
        self.sim.schedule(remaining, self._reduce_done, task, node)

    def _straggle(self) -> float:
        if self.straggler_spread <= 1.0:
            return 1.0
        return float(self._rng.uniform(1.0, self.straggler_spread))

    def _reduce_done(self, task: Task, node: SimNode) -> None:
        # Commit this reducer's result chunk to storage at the node.
        index = self.reduce_tasks.index(task)
        block_id = BlockId(f"{self.job.name}.out", index)
        size = task.input_mb * self.job.reduce_output_ratio
        block = Block(block_id, size)
        target = LocationRecord(backend=self.output_backend, node=self._output_node(node))
        self.client.write(block, node.site, target, lambda _b: None)
        self._result_chunks.append(block_id)
        self._complete(task, node)
        if all(t.state is TaskState.COMPLETED for t in self.reduce_tasks):
            self._finish()
        self.dispatch()

    def _output_node(self, node: SimNode) -> str:
        backend = self.client.backends[self.output_backend]
        if hasattr(backend, "nodes"):
            nodes = getattr(backend, "nodes")
            if node.site in nodes:
                return node.site
            if nodes:
                return nodes[0]
        return ""

    # -- bookkeeping ------------------------------------------------------------

    def _complete(self, task: Task, node: SimNode) -> None:
        task.state = TaskState.COMPLETED
        task.completed_at = self.sim.now
        node.busy_slots -= 1
        self.completed_tasks += 1
        self.task_series.append((self.sim.now, self.completed_tasks))

    def _finish(self) -> None:
        if self.completion_s is None:
            self.completion_s = self.sim.now
            if self.on_complete is not None:
                self.on_complete()
