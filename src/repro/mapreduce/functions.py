"""Named map/reduce callables — the real work behind execution backends.

The process-pool and stub-container backends of :mod:`repro.exec` run
*actual* map and reduce functions over actual bytes, in contrast to the
fluid simulator's GB-flow accounting.  Task specs travel as JSON (and
process-pool arguments must pickle), so tasks reference their function
by **name**; this module is the registry those names resolve against.

Everything here is standard-library only: the stub backend imports it in
a fresh subprocess per task batch, where a heavyweight import would
dominate the run.

Input bytes are synthesized deterministically from the task's seed
(:func:`synthesize_text`), so a task is a pure function of its spec —
the same spec always produces the same counts, which the conformance
suite relies on.
"""

from __future__ import annotations

import hashlib
import random
import zlib
from typing import Callable, Iterable, Mapping

#: Vocabulary size of the synthesized text (small enough that a map
#: task's full count dict travels cheaply in a JSON result).
_VOCABULARY = 512

_WORDS = [f"w{index:03d}" for index in range(_VOCABULARY)]


def seed_for(task_id: str) -> int:
    """Deterministic 32-bit seed for a task id (stable across runs)."""
    digest = hashlib.sha256(task_id.encode("utf-8")).digest()
    return int.from_bytes(digest[:4], "big")


def synthesize_text(seed: int, size_bytes: int) -> bytes:
    """Deterministic whitespace-separated text of roughly ``size_bytes``.

    Word frequencies follow a Zipf-ish 1/rank distribution, so word
    counts are skewed the way real text is (the reduce merge is not
    trivially uniform).
    """
    rng = random.Random(seed)
    weights = [1.0 / (rank + 1) for rank in range(_VOCABULARY)]
    out: list[str] = []
    size = 0
    while size < size_bytes:
        word = rng.choices(_WORDS, weights=weights)[0]
        out.append(word)
        size += len(word) + 1
    return " ".join(out).encode("utf-8")


# ---------------------------------------------------------------------------
# map functions: bytes -> dict[str, int]


def wordcount_map(data: bytes) -> dict[str, int]:
    """Count words in a chunk of text (the canonical MapReduce example)."""
    counts: dict[str, int] = {}
    for word in data.decode("utf-8", errors="replace").split():
        counts[word] = counts.get(word, 0) + 1
    return counts


def linecount_map(data: bytes) -> dict[str, int]:
    """Count lines and bytes — a trivially cheap map for overhead tests."""
    return {"lines": data.count(b"\n") + 1, "bytes": len(data)}


def checksum_map(data: bytes) -> dict[str, int]:
    """CRC32 the chunk — CPU-only, no parsing."""
    return {"crc32": zlib.crc32(data), "bytes": len(data)}


# ---------------------------------------------------------------------------
# reduce functions: iterable of partial counts -> merged counts


def sum_reduce(partials: Iterable[Mapping[str, int]]) -> dict[str, int]:
    """Merge partial count dicts by key-wise addition (wordcount merge)."""
    merged: dict[str, int] = {}
    for partial in partials:
        for key, value in partial.items():
            merged[key] = merged.get(key, 0) + int(value)
    return merged


def xor_reduce(partials: Iterable[Mapping[str, int]]) -> dict[str, int]:
    """Fold checksums with XOR (order-independent combine)."""
    folded = 0
    total = 0
    for partial in partials:
        folded ^= int(partial.get("crc32", 0))
        total += int(partial.get("bytes", 0))
    return {"crc32": folded, "bytes": total}


#: name -> map callable (bytes -> counts).
MAP_FUNCTIONS: dict[str, Callable[[bytes], dict[str, int]]] = {
    "wordcount": wordcount_map,
    "linecount": linecount_map,
    "checksum": checksum_map,
}

#: name -> reduce callable (partial counts -> merged counts).
REDUCE_FUNCTIONS: dict[str, Callable[..., dict[str, int]]] = {
    "wordcount": sum_reduce,
    "linecount": sum_reduce,
    "checksum": xor_reduce,
}


def resolve_map(name: str) -> Callable[[bytes], dict[str, int]]:
    try:
        return MAP_FUNCTIONS[name]
    except KeyError:
        raise ValueError(
            f"unknown map function {name!r}; "
            f"expected one of {sorted(MAP_FUNCTIONS)}"
        ) from None


def resolve_reduce(name: str) -> Callable[..., dict[str, int]]:
    try:
        return REDUCE_FUNCTIONS[name]
    except KeyError:
        raise ValueError(
            f"unknown reduce function {name!r}; "
            f"expected one of {sorted(REDUCE_FUNCTIONS)}"
        ) from None


__all__ = [
    "MAP_FUNCTIONS",
    "REDUCE_FUNCTIONS",
    "checksum_map",
    "linecount_map",
    "resolve_map",
    "resolve_reduce",
    "seed_for",
    "sum_reduce",
    "synthesize_text",
    "wordcount_map",
    "xor_reduce",
]
