"""Hadoop-like MapReduce engine on the simulation kernel.

Task-level execution substrate: jobs split into map/reduce tasks
(:mod:`job`), simulated nodes with slots and leases (:mod:`cluster`),
stock and location-aware schedulers (:mod:`scheduler`), the event-driven
engine (:mod:`engine`), and HDFS-style baseline storage (:mod:`hdfs`).
"""

from .cluster import (
    CLIENT_SITE,
    DEFAULT_BOOT_SECONDS,
    S3_SITE,
    Cluster,
    SimNode,
    build_topology,
    wire_node,
)
from .engine import EngineResult, MapReduceEngine
from .hdfs import (
    CONDUCTOR_CHUNK_OVERHEAD_S,
    HDFS_CHUNK_OVERHEAD_S,
    HdfsDeployment,
    build_hdfs,
)
from .job import MapReduceJob, Task, TaskKind, TaskState
from .scheduler import HadoopScheduler, LocationAwareScheduler, Scheduler

__all__ = [
    "CLIENT_SITE",
    "CONDUCTOR_CHUNK_OVERHEAD_S",
    "Cluster",
    "DEFAULT_BOOT_SECONDS",
    "EngineResult",
    "HDFS_CHUNK_OVERHEAD_S",
    "HadoopScheduler",
    "HdfsDeployment",
    "LocationAwareScheduler",
    "MapReduceEngine",
    "MapReduceJob",
    "S3_SITE",
    "Scheduler",
    "SimNode",
    "Task",
    "TaskKind",
    "TaskState",
    "build_hdfs",
    "build_topology",
    "wire_node",
]
