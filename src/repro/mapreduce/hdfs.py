"""HDFS-style storage: the baseline Hadoop deployments' filesystem.

HDFS shares the namenode/backend machinery of Conductor's storage layer
but differs where the paper measured differences (Section 6.6, Fig. 15):

- writes use **pipeline replication**: the client streams to the first
  datanode, which streams to the second, and so on — replicas land
  concurrently instead of local-write-then-background-replicate;
- the client protocol is leaner: per-chunk overhead is a fraction of
  Conductor's namenode-mediated key-value path ("HDFS has been actively
  developed for several years ... significant effort ... into
  performance optimization").
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass

from ..sim import FluidNetwork, Simulation
from ..storage.backends import LocalDiskBackend
from ..storage.blocks import Block, BlockId, LocationRecord
from ..storage.client import StorageClient
from ..storage.filesystem import ConductorFileSystem
from ..storage.namenode import Namenode

#: Protocol overheads calibrated against the paper's Fig. 15 gap: HDFS's
#: optimized pipeline (block setup + acks) vs. Conductor's namenode
#: round-trip and key-value protocol per chunk.  With a 25 MB/s EBS
#: source and 64 MB chunks these yield ~21 MB/s (HDFS) and ~16 MB/s
#: (Conductor), the paper's measured bars.
HDFS_CHUNK_OVERHEAD_S = 0.45
CONDUCTOR_CHUNK_OVERHEAD_S = 1.45


@dataclass
class HdfsDeployment:
    """A running HDFS instance: namenode + datanode daemons + driver."""

    namenode: Namenode
    backend: LocalDiskBackend
    client: StorageClient
    fs: ConductorFileSystem
    replication: int

    def add_datanode(self, site: str) -> None:
        self.backend.add_node(site)

    def datanodes(self) -> list[str]:
        return self.backend.nodes

    def write_file(
        self,
        path: str,
        size_mb: float,
        from_site: str,
        chunk_mb: float = 64.0,
        on_complete=None,
    ) -> None:
        """Create + upload a file with pipeline-replicated chunks."""
        if self.fs.chunk_mb != chunk_mb:
            self.fs.chunk_mb = chunk_mb
        inode = self.fs.create(path, size_mb)
        if not inode.chunks:
            if on_complete is not None:
                self.client.sim.schedule(0.0, on_complete)
            return
        rotation = itertools.cycle(range(max(1, len(self.backend.nodes))))
        queue = list(inode.chunks)

        # Chunks stream sequentially, as `hadoop fs -put` does: the next
        # block's pipeline starts when the previous one is acknowledged.
        def write_next() -> None:
            if not queue:
                if on_complete is not None:
                    on_complete()
                return
            block = self.namenode.block(queue.pop(0))
            self.pipeline_write(
                block, from_site, start_index=next(rotation),
                on_complete=write_next,
            )

        write_next()

    def pipeline_write(
        self,
        block: Block,
        from_site: str,
        start_index: int = 0,
        on_complete=None,
    ) -> None:
        """Pipeline a chunk through ``replication`` datanodes.

        All pipeline stages stream concurrently; the write completes when
        the last replica lands.  Stage flows contend on the NICs they
        share, which is what caps HDFS throughput at roughly
        NIC/(replication-1) in the Fig. 15 experiment.
        """
        nodes = self.backend.nodes
        if not nodes:
            raise RuntimeError("HDFS has no datanodes")
        chain = [nodes[(start_index + i) % len(nodes)] for i in range(self.replication)]
        chain = list(dict.fromkeys(chain))  # drop duplicates on tiny clusters
        sim = self.client.sim
        network = self.client.network
        pending = len(chain)

        def stage_done(node: str):
            def landed(_flow=None) -> None:
                nonlocal pending
                self.backend.put(node, block)
                self.namenode.add_location(
                    block.block_id, LocationRecord(self.backend.name, node)
                )
                pending -= 1
                if pending == 0:
                    self.client.stats.writes += 1
                    self.client.stats.written_mb += block.size_mb
                    if on_complete is not None:
                        on_complete()
            return landed

        def start_pipeline() -> None:
            previous = from_site
            for node in chain:
                network.start_flow(previous, node, block.size_mb, stage_done(node))
                previous = node

        sim.schedule(self.backend.per_chunk_overhead_s, start_pipeline)


def build_hdfs(
    sim: Simulation,
    network: FluidNetwork,
    datanode_sites: list[str],
    replication: int = 3,
    chunk_mb: float = 64.0,
    backend_name: str = "hdfs",
) -> HdfsDeployment:
    """Stand up an HDFS deployment over the given sites."""
    namenode = Namenode()
    backend = LocalDiskBackend(backend_name, per_chunk_overhead_s=HDFS_CHUNK_OVERHEAD_S)
    for site in datanode_sites:
        backend.add_node(site)
    client = StorageClient(sim, network, namenode, {backend_name: backend})
    fs = ConductorFileSystem(namenode, client, chunk_mb=chunk_mb)
    return HdfsDeployment(
        namenode=namenode,
        backend=backend,
        client=client,
        fs=fs,
        replication=replication,
    )
