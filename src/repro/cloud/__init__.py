"""Cloud service substrate: descriptions, catalog, pricing, spot markets.

The planner consumes :class:`ServiceDescription` objects — either built
programmatically, loaded from the paper's XML format
(:mod:`repro.cloud.descriptions`), or taken from the July-2011 AWS catalog
(:mod:`repro.cloud.catalog`).  Spot-market dynamics live in
:mod:`repro.cloud.spot` and :mod:`repro.cloud.traces`.
"""

from .catalog import (
    CHUNK_MB,
    EC2_LARGE_PRICE,
    KMEANS_FAST_THROUGHPUT_GB_H,
    KMEANS_THROUGHPUT_GB_H,
    ec2_c1_xlarge,
    ec2_m1_large,
    ec2_m1_xlarge,
    ec2_spot_m1_large,
    hybrid_cloud,
    instance_types,
    local_cluster,
    public_cloud,
    s3,
)
from .catalog_full import (
    INSTANCE_SPECS,
    RESERVED_M1_LARGE,
    InstanceSpec,
    ReservedOffer,
    TransferTiers,
    ecu_efficiency,
    full_instance_catalog,
    measured_throughput,
    projected_throughput,
    spec_by_name,
    with_tiered_transfer,
)
from .descriptions import (
    DescriptionError,
    load_services,
    parse_services,
    save_services,
    to_xml,
)
from .services import UNLIMITED, ResourceKind, ServiceDescription, validate_catalog
from .spot import SpotChargeRecord, SpotMarket, SpotTrace, summarize_costs
from .traces import aws_like_trace, constant_trace, electricity_like_trace

__all__ = [
    "CHUNK_MB",
    "DescriptionError",
    "EC2_LARGE_PRICE",
    "INSTANCE_SPECS",
    "InstanceSpec",
    "KMEANS_FAST_THROUGHPUT_GB_H",
    "KMEANS_THROUGHPUT_GB_H",
    "RESERVED_M1_LARGE",
    "ReservedOffer",
    "ResourceKind",
    "TransferTiers",
    "ServiceDescription",
    "SpotChargeRecord",
    "SpotMarket",
    "SpotTrace",
    "UNLIMITED",
    "aws_like_trace",
    "constant_trace",
    "ec2_c1_xlarge",
    "ec2_m1_large",
    "ec2_m1_xlarge",
    "ec2_spot_m1_large",
    "ecu_efficiency",
    "electricity_like_trace",
    "full_instance_catalog",
    "hybrid_cloud",
    "instance_types",
    "load_services",
    "local_cluster",
    "measured_throughput",
    "parse_services",
    "projected_throughput",
    "public_cloud",
    "s3",
    "save_services",
    "spec_by_name",
    "summarize_costs",
    "to_xml",
    "validate_catalog",
    "with_tiered_transfer",
]
