"""Spot market mechanics (paper Sections 4.7 and 6.5).

A :class:`SpotTrace` is an hourly price series for one instance type.  The
:class:`SpotMarket` implements EC2 spot semantics as of 2011:

- A customer submits a *bid* — the maximum price they will pay.
- While the market price is at or below the bid, instances run and each
  instance-hour is charged **at the market price** (not the bid).
- When the market price rises above the bid, instances are terminated by
  the provider ("out-bid") and the partial hour is not charged.

Conductor plugs estimated prices ``E[b(i,t)]`` into the plan's objective
(eq. 6) and reacts to out-bid terminations by re-planning.
"""

from __future__ import annotations

import csv
import math
from dataclasses import dataclass, field
from typing import Iterable, Sequence

import numpy as np


@dataclass
class SpotTrace:
    """An hourly spot price history for one instance type."""

    prices: np.ndarray  # $/instance-hour, one entry per hour
    start_hour: float = 0.0
    label: str = "spot"

    def __post_init__(self) -> None:
        self.prices = np.asarray(self.prices, dtype=float)
        if self.prices.ndim != 1 or len(self.prices) == 0:
            raise ValueError("a spot trace needs a 1-D, non-empty price array")
        if np.any(self.prices < 0):
            raise ValueError("spot prices must be non-negative")

    def __len__(self) -> int:
        return len(self.prices)

    @property
    def hours(self) -> float:
        return float(len(self.prices))

    def price_at(self, hour: float) -> float:
        """Market price for the hour containing absolute time ``hour``.

        Reads past the end of the trace clamp to the final price, so a job
        started near the trace boundary still gets well-defined prices.
        """
        index = int(math.floor(hour - self.start_hour))
        index = min(max(index, 0), len(self.prices) - 1)
        return float(self.prices[index])

    def window(self, end_hour: float, duration_hours: float) -> np.ndarray:
        """Prices for ``[end_hour - duration, end_hour)`` (history lookups)."""
        end = int(math.floor(end_hour - self.start_hour))
        start = max(0, end - int(duration_hours))
        end = max(start, min(end, len(self.prices)))
        return self.prices[start:end]

    def slice_from(self, hour: float) -> "SpotTrace":
        """The remaining trace starting at ``hour`` (for re-planning)."""
        index = int(math.floor(hour - self.start_hour))
        index = min(max(index, 0), len(self.prices) - 1)
        return SpotTrace(self.prices[index:], start_hour=hour, label=self.label)

    # -- persistence ---------------------------------------------------------

    def save_csv(self, path: str) -> None:
        with open(path, "w", newline="", encoding="utf-8") as handle:
            writer = csv.writer(handle)
            writer.writerow(["hour", "price"])
            for i, price in enumerate(self.prices):
                writer.writerow([self.start_hour + i, f"{price:.6f}"])

    @classmethod
    def load_csv(cls, path: str, label: str = "spot") -> "SpotTrace":
        hours: list[float] = []
        prices: list[float] = []
        with open(path, newline="", encoding="utf-8") as handle:
            for row in csv.DictReader(handle):
                hours.append(float(row["hour"]))
                prices.append(float(row["price"]))
        if not prices:
            raise ValueError(f"{path}: empty trace")
        return cls(np.asarray(prices), start_hour=hours[0], label=label)


@dataclass
class SpotChargeRecord:
    """One hour of spot market outcome for a bid."""

    hour: float
    market_price: float
    bid: float
    running: bool

    @property
    def charged(self) -> float:
        return self.market_price if self.running else 0.0


class SpotMarket:
    """Evaluates bids against a trace, hour by hour."""

    def __init__(self, trace: SpotTrace) -> None:
        self.trace = trace
        self.history: list[SpotChargeRecord] = []

    def evaluate(self, hour: float, bid: float) -> SpotChargeRecord:
        """Outcome of holding a bid during the hour starting at ``hour``."""
        price = self.trace.price_at(hour)
        record = SpotChargeRecord(
            hour=hour, market_price=price, bid=bid, running=bid >= price
        )
        self.history.append(record)
        return record

    def run_fixed_bid(
        self, start_hour: float, duration_hours: int, bid: float
    ) -> list[SpotChargeRecord]:
        """Evaluate a constant bid over a run of consecutive hours."""
        return [
            self.evaluate(start_hour + offset, bid)
            for offset in range(duration_hours)
        ]


def summarize_costs(costs: Sequence[float]) -> dict[str, float]:
    """Average/max/std summary used by the Fig. 14 bars."""
    data = np.asarray(list(costs), dtype=float)
    if data.size == 0:
        raise ValueError("no costs to summarize")
    return {
        "average": float(np.mean(data)),
        "maximum": float(np.max(data)),
        "stddev": float(np.std(data)),
    }
