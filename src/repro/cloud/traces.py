"""Synthetic spot-price trace generators (paper Section 6.5, Fig. 13).

The paper drives its spot simulations with two price histories:

1. The **original AWS trace** for m1.large — which surprised the authors by
   showing *no diurnal pattern*: a flat floor around $0.16 with sporadic
   spikes toward the on-demand price.
2. A **synthetic trace derived from an electricity spot market** — strongly
   diurnal and weekly-seasonal, "adapted to make values non-negative and
   kept below the normal price of EC2 instances".

Neither data set ships with the paper, so we generate statistical
look-alikes.  What Fig. 14 depends on is exactly the property the paper
calls out: the electricity-style trace is predictable from history, the
AWS-style trace is not.
"""

from __future__ import annotations

import numpy as np

from ..sim.rng import generator
from .catalog import EC2_LARGE_PRICE
from .spot import SpotTrace

#: Typical 2011 m1.large spot floor (~47% of on-demand).
AWS_SPOT_FLOOR = 0.16


def aws_like_trace(
    days: int = 30,
    seed: int = 0,
    floor: float = AWS_SPOT_FLOOR,
    on_demand: float = EC2_LARGE_PRICE,
) -> SpotTrace:
    """An m1.large-style spot history: flat floor, memoryless spikes.

    Model: the price sits at ``floor`` plus small mean-reverting noise;
    with ~2% probability per hour an exponential spike pushes it toward
    (occasionally past) the on-demand price, decaying within a few hours.
    There is deliberately *no* time-of-day structure (Fig. 13b).
    """
    rng = generator(seed, "aws-trace", days)
    hours = days * 24
    prices = np.empty(hours)
    noise_level = 0.0
    spike_level = 0.0
    for hour in range(hours):
        # Ornstein-Uhlenbeck-style jitter around the floor.
        noise_level += -0.5 * noise_level + rng.normal(0.0, 0.004)
        if rng.random() < 0.02:
            spike_level = rng.exponential(0.12)
        else:
            spike_level *= rng.uniform(0.2, 0.6)  # spikes die within hours
        prices[hour] = floor + noise_level + spike_level
    np.clip(prices, 0.5 * floor, 1.4 * on_demand, out=prices)
    return SpotTrace(prices, label="aws")


def electricity_like_trace(
    days: int = 30,
    seed: int = 0,
    low: float = 0.10,
    high: float = 0.50,
    on_demand: float = EC2_LARGE_PRICE,
) -> SpotTrace:
    """An electricity-market-style history: strong diurnal + weekly cycles.

    Model: a sinusoidal daily cycle (cheap at night, peak in the
    afternoon), a weekday/weekend modulation, and moderate noise — then
    shifted non-negative and scaled into ``[low, high]``, mirroring the
    paper's adaptation of electricity prices (values were "kept below the
    normal price of EC2 instances" — note ``high`` may exceed on-demand
    briefly due to noise, as in Fig. 13a's occasional $0.5 peaks).
    """
    rng = generator(seed, "electricity-trace", days)
    hours = days * 24
    t = np.arange(hours)
    # Daily cycle peaking at 15:00, trough around 03:00.  Electricity
    # demand curves are peaked, not sinusoidal: prices hug the floor most
    # of the day with a sharp afternoon spike (compare Fig. 13a), so the
    # sinusoid is raised to a power to concentrate mass near the floor.
    daily = 0.5 * (1 + np.sin(2 * np.pi * (t % 24 - 9.0) / 24.0))
    peaked = daily**3.0
    weekly = np.where((t // 24) % 7 < 5, 1.0, 0.55)  # weekends are cheap
    raw = peaked * weekly + rng.normal(0.0, 0.05, size=hours)
    raw -= raw.min()  # electricity prices can go negative; ours must not
    scale = raw.max() or 1.0
    prices = low + (high - low) * raw / scale
    return SpotTrace(prices, label="electricity")


def constant_trace(price: float, days: int = 30, label: str = "flat") -> SpotTrace:
    """A degenerate flat trace (tests and the 'regular instances' baseline)."""
    return SpotTrace(np.full(days * 24, float(price)), label=label)
