"""XML service-description format (paper Figure 3).

Conductor generates its model "automatically from a description of cloud
service offerings ... in a simple, human-readable XML-based format"
(Section 4.2).  Providers or third parties would publish these files; the
user adds descriptions of privately owned resources.

Format::

    <resources>
      <resource>
        <property name="name"><string>S3</string></property>
        <property name="cost_get"><double>1.0E-6</double></property>
        <property name="cost_put"><double>1.0E-5</double></property>
        <property name="cost_tstore"><double>2.08333332E-4</double></property>
        <property name="can_compute"><boolean>false</boolean></property>
        <property name="storage_capacity"><int>-1</int></property>
      </resource>
    </resources>

Unknown properties raise: a silently ignored price field would produce
plans that look optimal and are not.
"""

from __future__ import annotations

import xml.etree.ElementTree as ET
from typing import Iterable

from .services import ServiceDescription

#: XML property name -> (ServiceDescription field, type tag).
_PROPERTIES: dict[str, tuple[str, str]] = {
    "name": ("name", "string"),
    "provider": ("provider", "string"),
    "can_compute": ("can_compute", "boolean"),
    "can_store": ("can_store", "boolean"),
    "ecu": ("ecu_per_node", "double"),
    "throughput": ("throughput_gb_per_hour", "double"),
    "cost_node_hour": ("price_per_node_hour", "double"),
    "billing_hours": ("billing_hours", "double"),
    "disk_per_node": ("storage_gb_per_node", "double"),
    "storage_capacity": ("storage_capacity_gb", "int"),
    "cost_tstore": ("cost_tstore_gb_hour", "double"),
    "cost_put": ("cost_put", "double"),
    "cost_get": ("cost_get", "double"),
    "avg_op_mb": ("avg_op_mb", "double"),
    "cost_transfer_in": ("transfer_in_cost_gb", "double"),
    "cost_transfer_out": ("transfer_out_cost_gb", "double"),
    "max_nodes": ("max_nodes", "int"),
    "is_spot": ("is_spot", "boolean"),
    "internal_bw": ("internal_bw_mb_s", "double"),
}

_FIELD_TO_PROPERTY = {field: (prop, tag) for prop, (field, tag) in _PROPERTIES.items()}


class DescriptionError(ValueError):
    """Malformed or unknown content in a service description document."""


def _parse_typed(element: ET.Element, prop: str) -> object:
    child = list(element)
    if len(child) != 1:
        raise DescriptionError(f"property {prop!r} must contain exactly one value")
    node = child[0]
    text = (node.text or "").strip()
    if node.tag == "string":
        return text
    if node.tag == "double":
        return float(text)
    if node.tag == "int":
        return int(text)
    if node.tag == "boolean":
        if text.lower() in ("true", "1"):
            return True
        if text.lower() in ("false", "0"):
            return False
        raise DescriptionError(f"property {prop!r}: bad boolean {text!r}")
    raise DescriptionError(f"property {prop!r}: unknown value tag <{node.tag}>")


def parse_resource(element: ET.Element) -> ServiceDescription:
    """Build one :class:`ServiceDescription` from a ``<resource>`` element."""
    kwargs: dict[str, object] = {}
    for prop_el in element.findall("property"):
        prop = prop_el.get("name")
        if prop is None:
            raise DescriptionError("<property> without a name attribute")
        if prop not in _PROPERTIES:
            raise DescriptionError(f"unknown property {prop!r}")
        field, expected_tag = _PROPERTIES[prop]
        value = _parse_typed(prop_el, prop)
        child_tag = list(prop_el)[0].tag
        if child_tag != expected_tag:
            raise DescriptionError(
                f"property {prop!r}: expected <{expected_tag}>, got <{child_tag}>"
            )
        kwargs[field] = value
    if "name" not in kwargs:
        raise DescriptionError("<resource> is missing the 'name' property")
    try:
        return ServiceDescription(**kwargs)  # type: ignore[arg-type]
    except (TypeError, ValueError) as exc:
        raise DescriptionError(f"invalid resource {kwargs.get('name')!r}: {exc}") from exc


def parse_services(xml_text: str) -> list[ServiceDescription]:
    """Parse a ``<resources>`` document into service descriptions."""
    try:
        root = ET.fromstring(xml_text)
    except ET.ParseError as exc:
        raise DescriptionError(f"not well-formed XML: {exc}") from exc
    if root.tag != "resources":
        raise DescriptionError(f"expected <resources> root, got <{root.tag}>")
    services = [parse_resource(el) for el in root.findall("resource")]
    if not services:
        raise DescriptionError("document contains no <resource> elements")
    return services


def load_services(path: str) -> list[ServiceDescription]:
    """Parse service descriptions from a file."""
    with open(path, encoding="utf-8") as handle:
        return parse_services(handle.read())


def _format_value(value: object, tag: str) -> str:
    if tag == "boolean":
        return "true" if value else "false"
    if tag == "int":
        return str(int(value))  # type: ignore[arg-type]
    if tag == "double":
        return repr(float(value))  # type: ignore[arg-type]
    return str(value)


def to_xml(services: Iterable[ServiceDescription]) -> str:
    """Serialize services back to the Fig. 3 document format.

    Only fields differing from the dataclass defaults are emitted, keeping
    the documents as terse as the paper's example.
    """
    import dataclasses

    defaults = {
        f.name: f.default
        for f in dataclasses.fields(ServiceDescription)
        if f.default is not dataclasses.MISSING
    }
    root = ET.Element("resources")
    for service in services:
        resource = ET.SubElement(root, "resource")
        for field, (prop, tag) in (
            (f, _FIELD_TO_PROPERTY[f]) for f in _FIELD_TO_PROPERTY
        ):
            value = getattr(service, field)
            if field != "name" and field in defaults and value == defaults[field]:
                continue
            prop_el = ET.SubElement(resource, "property", {"name": prop})
            value_el = ET.SubElement(prop_el, tag)
            value_el.text = _format_value(value, tag)
    ET.indent(root)
    return ET.tostring(root, encoding="unicode")


def save_services(services: Iterable[ServiceDescription], path: str) -> None:
    with open(path, "w", encoding="utf-8") as handle:
        handle.write(to_xml(services))
        handle.write("\n")
