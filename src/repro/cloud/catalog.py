"""AWS July-2011 service catalog.

The evaluation (Section 6.1) "used the prices of Amazon's AWS as of July
2011".  This module encodes that price book as :class:`ServiceDescription`
objects plus the scenario-specific services (the local cluster, the source
site).  Throughputs are the paper's measured k-means rates: 0.44 GB/h per
node on m1.large and on the local cluster nodes; 6.2 GB/h in the modified
Section 6.2 scenario with a smaller reference set.

Prices (US$, July 2011, us-east):

- EC2 m1.large   $0.34/h, 4 ECU, 7.5 GB RAM, 850 GB instance storage
- EC2 m1.xlarge  $0.68/h, 8 ECU, 1690 GB instance storage
- EC2 c1.xlarge  $0.68/h, 20 ECU, 1690 GB instance storage
- S3 storage     $0.14/GB-month first 1 TB (the paper's Fig. 3 uses the
  2010 $0.15 tier: cost_tstore = 2.08333332e-4 $/GB/h; we keep the paper's
  value so the XML example round-trips exactly)
- S3 requests    PUT $0.01 per 1,000 ($1e-5/op), GET $0.01 per 10,000
  ($1e-6/op)
- Data transfer  in free, out $0.10/GB (first-tier bulk rate)
"""

from __future__ import annotations

from functools import lru_cache

from .services import UNLIMITED, ServiceDescription

# Catalog constructors are memoized: the planning service rebuilds the
# same instance menus for every request, and the descriptions are treated
# as immutable everywhere (what-if sweeps go through ``.replace()``, which
# copies).  Catalog functions return fresh *lists* over shared, cached
# ServiceDescription objects so callers may filter/extend freely.

#: The paper's measured k-means throughput on m1.large (Section 6.1).
KMEANS_THROUGHPUT_GB_H = 0.44
#: Throughput in the modified Section 6.2 scenario (small reference set).
KMEANS_FAST_THROUGHPUT_GB_H = 6.2

#: The exact value from the paper's Fig. 3 S3 description ($0.15/GB-month).
S3_COST_TSTORE = 2.08333332e-4
S3_COST_PUT = 1.0e-5
S3_COST_GET = 1.0e-6

EC2_LARGE_PRICE = 0.34
EC2_XLARGE_PRICE = 0.68
TRANSFER_OUT_COST = 0.10

#: Default chunk size: Conductor splits files into 64 MB chunks
#: (Section 6.6 copies "32GB of data (consisting of 64MB files)").
CHUNK_MB = 64.0


@lru_cache(maxsize=128)
def ec2_m1_large(throughput: float = KMEANS_THROUGHPUT_GB_H) -> ServiceDescription:
    """EC2 m1.large: the instance type Conductor's plans actually use."""
    return ServiceDescription(
        name="ec2.m1.large",
        provider="aws",
        can_compute=True,
        can_store=True,
        ecu_per_node=4.0,
        throughput_gb_per_hour=throughput,
        price_per_node_hour=EC2_LARGE_PRICE,
        billing_hours=1.0,
        storage_gb_per_node=850.0,
        storage_capacity_gb=0.0,
        cost_tstore_gb_hour=0.0,
        avg_op_mb=CHUNK_MB,
        transfer_out_cost_gb=TRANSFER_OUT_COST,
        internal_bw_mb_s=50.0,
    )


@lru_cache(maxsize=128)
def ec2_m1_xlarge() -> ServiceDescription:
    """EC2 m1.xlarge: slightly worse cost/performance than m1.large, so the
    planner never picks it in the paper's scenarios (Section 6.1)."""
    return ServiceDescription(
        name="ec2.m1.xlarge",
        provider="aws",
        can_compute=True,
        can_store=True,
        ecu_per_node=8.0,
        throughput_gb_per_hour=0.85,  # < 2 * 0.44: sub-linear ECU scaling
        price_per_node_hour=EC2_XLARGE_PRICE,
        billing_hours=1.0,
        storage_gb_per_node=1690.0,
        avg_op_mb=CHUNK_MB,
        transfer_out_cost_gb=TRANSFER_OUT_COST,
        internal_bw_mb_s=65.0,
    )


@lru_cache(maxsize=128)
def ec2_c1_xlarge() -> ServiceDescription:
    """EC2 c1.xlarge: 20 ECU on paper, far less in measured throughput —
    the Fig. 1 motivating divergence."""
    return ServiceDescription(
        name="ec2.c1.xlarge",
        provider="aws",
        can_compute=True,
        can_store=True,
        ecu_per_node=20.0,
        throughput_gb_per_hour=1.25,  # projected from ECU would be 2.2
        price_per_node_hour=EC2_XLARGE_PRICE,
        billing_hours=1.0,
        storage_gb_per_node=1690.0,
        avg_op_mb=CHUNK_MB,
        transfer_out_cost_gb=TRANSFER_OUT_COST,
        internal_bw_mb_s=65.0,
    )


@lru_cache(maxsize=128)
def s3(cost_tstore: float = S3_COST_TSTORE) -> ServiceDescription:
    """S3: pure storage, unlimited capacity, per-request I/O prices."""
    return ServiceDescription(
        name="s3",
        provider="aws",
        can_compute=False,
        can_store=True,
        storage_capacity_gb=UNLIMITED,
        cost_tstore_gb_hour=cost_tstore,
        cost_put=S3_COST_PUT,
        cost_get=S3_COST_GET,
        avg_op_mb=CHUNK_MB,
        transfer_out_cost_gb=TRANSFER_OUT_COST,
        internal_bw_mb_s=20.0,
    )


@lru_cache(maxsize=128)
def ec2_spot_m1_large(throughput: float = KMEANS_THROUGHPUT_GB_H) -> ServiceDescription:
    """m1.large allocated on the spot market (Section 4.7 / 6.5)."""
    service = ec2_m1_large(throughput)
    return service.replace(name="ec2.m1.large.spot", is_spot=True)


@lru_cache(maxsize=128)
def local_cluster(
    nodes: int = 5,
    throughput: float = KMEANS_THROUGHPUT_GB_H,
    disk_gb_per_node: float = 250.0,
) -> ServiceDescription:
    """The customer's own cluster: a provider with zero marginal cost and a
    hard node limit (Section 6.3: five dual-core machines)."""
    return ServiceDescription(
        name="local.cluster",
        provider="local",
        can_compute=True,
        can_store=True,
        throughput_gb_per_hour=throughput,
        price_per_node_hour=0.0,
        billing_hours=1.0,
        storage_gb_per_node=disk_gb_per_node,
        max_nodes=nodes,
        internal_bw_mb_s=100.0,
    )


@lru_cache(maxsize=128)
def _public_cloud(throughput: float) -> tuple[ServiceDescription, ...]:
    return (ec2_m1_large(throughput), ec2_m1_xlarge(), s3())


def public_cloud(throughput: float = KMEANS_THROUGHPUT_GB_H) -> list[ServiceDescription]:
    """The cloud-only scenario catalog (Section 6.2)."""
    return list(_public_cloud(throughput))


def hybrid_cloud(
    local_nodes: int = 5,
    throughput: float = KMEANS_THROUGHPUT_GB_H,
) -> list[ServiceDescription]:
    """The hybrid scenario: public cloud plus the local cluster (Section 6.3)."""
    return public_cloud(throughput) + [local_cluster(local_nodes, throughput)]


def instance_types() -> list[ServiceDescription]:
    """The three instance types measured in Fig. 1."""
    return [ec2_m1_large(), ec2_m1_xlarge(), ec2_c1_xlarge()]
