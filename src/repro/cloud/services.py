"""Cloud service descriptions.

The planner's view of the world (paper Section 4.2): each service is broken
into the resource types it provides — computation and/or storage, with
communication modeled implicitly as transfer costs and bandwidth limits.
One :class:`ServiceDescription` corresponds to one ``<resource>`` element in
the paper's XML format (Fig. 3); :mod:`repro.cloud.descriptions` converts
between the two.
"""

from __future__ import annotations

import dataclasses
import enum
import math
from dataclasses import dataclass, field

from ..units import MB_PER_GB

#: Sentinel for "no capacity limit" (paper XML uses -1).
UNLIMITED = -1


class ResourceKind(enum.Enum):
    """The two resource types the abstraction layer separates (Section 5.1)."""

    COMPUTE = "compute"
    STORAGE = "storage"


@dataclass(frozen=True)
class ServiceDescription:
    """Price/performance description of one cloud service.

    Frozen: descriptions are shared process-wide through the memoized
    catalog constructors, so what-if sweeps must copy via
    :meth:`replace` instead of assigning fields.

    All prices are US$; rates follow the planner's GB/hours convention.

    Attributes
    ----------
    name:
        Unique identifier, e.g. ``"ec2.m1.large"`` or ``"s3"``.
    provider:
        Grouping label (``"aws"``, ``"local"``); hybrid deployments model
        the customer's own cluster as just another provider (Section 6.3).
    can_compute / can_store:
        Which resource types the service offers.  EC2 offers both
        (resource overlap, Section 4.6): instances compute *and* expose
        virtual disks.
    ecu_per_node:
        Provider-specified compute rating (EC2 Compute Units); only used
        for the Fig. 1 specified-vs-measured comparison.
    throughput_gb_per_hour:
        Measured per-node processing rate for the calibration workload
        (paper: 0.44 GB/h for k-means on m1.large).  Workloads may scale
        this via their own calibration factor.
    price_per_node_hour:
        On-demand rental price; spot services override it per interval.
    billing_hours:
        Billing granularity — EC2 rounds allocations up to full hours,
        which is why one LP interval defaults to one hour.
    storage_gb_per_node:
        Virtual-disk capacity bundled with each running node (0 for pure
        compute; the planner couples stored GB to live nodes through it).
    storage_capacity_gb:
        Stand-alone storage capacity; ``UNLIMITED`` for S3, 0 for pure
        compute services.
    cost_tstore_gb_hour:
        Time-based storage price ($/GB/h, paper Fig. 3 ``cost_tstore``).
    cost_put / cost_get:
        Per-operation I/O prices ($/op, paper Fig. 3).
    avg_op_mb:
        Average MB moved per put/get operation; Conductor controls chunk
        size, so per-op costs translate to per-GB costs (Section 4.2).
    transfer_in_cost_gb / transfer_out_cost_gb:
        Provider charges for data crossing the service boundary.
    max_nodes:
        Allocation cap (``UNLIMITED`` for the public cloud, cluster size
        for local infrastructure).
    is_spot:
        Whether the node price comes from a spot market (Section 4.7).
    internal_bw_mb_s:
        Per-node NIC / service-side bandwidth used by the simulator.
    """

    name: str
    provider: str = "aws"
    can_compute: bool = False
    can_store: bool = False
    ecu_per_node: float = 0.0
    throughput_gb_per_hour: float = 0.0
    price_per_node_hour: float = 0.0
    billing_hours: float = 1.0
    storage_gb_per_node: float = 0.0
    storage_capacity_gb: float = 0.0
    cost_tstore_gb_hour: float = 0.0
    cost_put: float = 0.0
    cost_get: float = 0.0
    avg_op_mb: float = 64.0
    transfer_in_cost_gb: float = 0.0
    transfer_out_cost_gb: float = 0.0
    max_nodes: int = UNLIMITED
    is_spot: bool = False
    internal_bw_mb_s: float = 50.0

    def __post_init__(self) -> None:
        if not self.can_compute and not self.can_store:
            raise ValueError(f"service {self.name!r} provides no resources")
        if self.can_compute and self.throughput_gb_per_hour <= 0:
            raise ValueError(
                f"compute service {self.name!r} needs a positive throughput"
            )
        if self.billing_hours <= 0:
            raise ValueError(f"service {self.name!r}: billing_hours must be > 0")
        if self.avg_op_mb <= 0:
            raise ValueError(f"service {self.name!r}: avg_op_mb must be > 0")

    # -- derived quantities -------------------------------------------------

    @property
    def kinds(self) -> set[ResourceKind]:
        kinds = set()
        if self.can_compute:
            kinds.add(ResourceKind.COMPUTE)
        if self.can_store:
            kinds.add(ResourceKind.STORAGE)
        return kinds

    def put_cost_per_gb(self) -> float:
        """Per-GB upload request cost, via the per-op -> per-byte translation."""
        return self.cost_put * (MB_PER_GB / self.avg_op_mb)

    def get_cost_per_gb(self) -> float:
        """Per-GB download request cost."""
        return self.cost_get * (MB_PER_GB / self.avg_op_mb)

    def node_hours_billed(self, hours_used: float) -> float:
        """Round usage up to the billing granularity (EC2 full hours).

        The rounding is what makes finished-but-paid-for instances free
        storage for the rest of the hour (paper Section 6.2, Fig. 8).
        """
        if hours_used <= 0:
            return 0.0
        periods = math.ceil(hours_used / self.billing_hours - 1e-9)
        return periods * self.billing_hours

    def storage_limit_gb(self, live_nodes: int = 0) -> float:
        """Capacity available for Conductor data given ``live_nodes``."""
        capacity = 0.0
        if self.storage_capacity_gb == UNLIMITED:
            return math.inf
        capacity += self.storage_capacity_gb
        capacity += self.storage_gb_per_node * live_nodes
        return capacity

    def replace(self, **changes) -> "ServiceDescription":
        """A copy with fields overridden (used for what-if sweeps)."""
        return dataclasses.replace(self, **changes)

    def canonical(self) -> tuple:
        """Stable, hashable encoding of the description.

        Used by the planning service to fingerprint problems: two services
        with equal canonical forms are interchangeable to the planner.
        Fields are sorted by name so the encoding survives reordering.
        """
        return tuple(
            (f.name, getattr(self, f.name))
            for f in sorted(dataclasses.fields(self), key=lambda f: f.name)
        )


def validate_catalog(services: list[ServiceDescription]) -> None:
    """Sanity-check a set of services offered to the planner."""
    names = [s.name for s in services]
    if len(set(names)) != len(names):
        raise ValueError(f"duplicate service names in catalog: {names}")
    if not any(s.can_compute for s in services):
        raise ValueError("catalog has no compute service; nothing can run")
    if not any(s.can_store for s in services):
        raise ValueError("catalog has no storage service; nothing can hold data")
