"""The full July-2011 EC2 price book: all eleven instance types,
tiered data-transfer pricing, and reserved-instance offers.

The paper motivates Conductor with exactly this breadth: "for its EC2
service alone, Amazon offers eleven different types of VM instances"
(Sections 1 and 2.1).  :mod:`repro.cloud.catalog` carries the three
types the evaluation measures; this module completes the menu so the
planner can be pointed at the real 2011 decision space.

Measured throughputs for unmeasured types are projected from the ECU
rating through the *measured* efficiency curve of Fig. 1 (m1.large
4 ECU -> 0.44 GB/h at 100% efficiency; m1.xlarge 8 ECU -> 96.6%;
c1.xlarge 20 ECU -> 56.8%), interpolated piecewise-linearly and
extrapolated conservatively — precisely the correction Fig. 1 argues a
planner must apply to vendor-specified ratings.

Prices are US$ (us-east, Linux, July 2011).
"""

from __future__ import annotations

import bisect
import math
from dataclasses import dataclass
from functools import lru_cache

from .catalog import CHUNK_MB, KMEANS_THROUGHPUT_GB_H, TRANSFER_OUT_COST
from .services import ServiceDescription

#: Fig. 1 efficiency anchors: (ECU, measured/projected throughput ratio).
_EFFICIENCY_CURVE = [(1.0, 1.0), (4.0, 1.0), (8.0, 0.9659), (20.0, 0.5682)]
#: Beyond the last measured point the curve stays flat (conservative).
_EFFICIENCY_FLOOR = 0.5682

#: GB/h per ECU implied by the m1.large anchor (0.44 GB/h at 4 ECU).
_RATE_PER_ECU = KMEANS_THROUGHPUT_GB_H / 4.0


def ecu_efficiency(ecu: float) -> float:
    """Measured/projected throughput ratio at a given ECU rating."""
    if ecu <= _EFFICIENCY_CURVE[0][0]:
        return _EFFICIENCY_CURVE[0][1]
    for (x0, y0), (x1, y1) in zip(_EFFICIENCY_CURVE, _EFFICIENCY_CURVE[1:]):
        if ecu <= x1:
            frac = (ecu - x0) / (x1 - x0)
            return y0 + frac * (y1 - y0)
    return _EFFICIENCY_FLOOR


def projected_throughput(ecu: float) -> float:
    """Naive vendor-sheet projection (linear in ECU, Fig. 1's dashed line)."""
    return _RATE_PER_ECU * ecu


def measured_throughput(ecu: float) -> float:
    """Fig.-1-corrected throughput: projection times the efficiency curve."""
    return projected_throughput(ecu) * ecu_efficiency(ecu)


@dataclass(frozen=True)
class InstanceSpec:
    """One row of the 2011 EC2 price sheet."""

    name: str
    ecu: float
    price_per_hour: float
    ram_gb: float
    instance_storage_gb: float
    #: Explicit measured rate for the types the paper benchmarked;
    #: ``None`` means "project through the efficiency curve".
    measured_gb_per_hour: float | None = None
    internal_bw_mb_s: float = 50.0

    def throughput(self) -> float:
        if self.measured_gb_per_hour is not None:
            return self.measured_gb_per_hour
        return measured_throughput(self.ecu)

    def to_service(self) -> ServiceDescription:
        return ServiceDescription(
            name=f"ec2.{self.name}",
            provider="aws",
            can_compute=True,
            can_store=self.instance_storage_gb > 0,
            ecu_per_node=self.ecu,
            throughput_gb_per_hour=self.throughput(),
            price_per_node_hour=self.price_per_hour,
            billing_hours=1.0,
            storage_gb_per_node=self.instance_storage_gb,
            avg_op_mb=CHUNK_MB,
            transfer_out_cost_gb=TRANSFER_OUT_COST,
            internal_bw_mb_s=self.internal_bw_mb_s,
        )


#: The eleven types of mid-2011 (us-east, Linux, on-demand).  t1.micro's
#: ECU is a burst rating; its sustained rate is far lower, so it carries
#: an explicit measured value.
INSTANCE_SPECS: tuple[InstanceSpec, ...] = (
    InstanceSpec("t1.micro", 2.0, 0.02, 0.613, 0.0,
                 measured_gb_per_hour=0.035, internal_bw_mb_s=10.0),
    InstanceSpec("m1.small", 1.0, 0.085, 1.7, 160.0, internal_bw_mb_s=25.0),
    InstanceSpec("m1.large", 4.0, 0.34, 7.5, 850.0,
                 measured_gb_per_hour=KMEANS_THROUGHPUT_GB_H),
    InstanceSpec("m1.xlarge", 8.0, 0.68, 15.0, 1690.0,
                 measured_gb_per_hour=0.85, internal_bw_mb_s=65.0),
    InstanceSpec("m2.xlarge", 6.5, 0.50, 17.1, 420.0, internal_bw_mb_s=55.0),
    InstanceSpec("m2.2xlarge", 13.0, 1.00, 34.2, 850.0, internal_bw_mb_s=65.0),
    InstanceSpec("m2.4xlarge", 26.0, 2.00, 68.4, 1690.0, internal_bw_mb_s=80.0),
    InstanceSpec("c1.medium", 5.0, 0.17, 1.7, 350.0, internal_bw_mb_s=40.0),
    InstanceSpec("c1.xlarge", 20.0, 0.68, 7.0, 1690.0,
                 measured_gb_per_hour=1.25, internal_bw_mb_s=65.0),
    InstanceSpec("cc1.4xlarge", 33.5, 1.60, 23.0, 1690.0,
                 internal_bw_mb_s=120.0),
    InstanceSpec("cg1.4xlarge", 33.5, 2.10, 22.0, 1690.0,
                 internal_bw_mb_s=120.0),
)


@lru_cache(maxsize=1)
def _full_instance_catalog() -> tuple[ServiceDescription, ...]:
    return tuple(spec.to_service() for spec in INSTANCE_SPECS)


def full_instance_catalog() -> list[ServiceDescription]:
    """Every 2011 EC2 instance type as a planner-ready service.

    Memoized: the descriptions are shared, treated-as-immutable objects
    (sweeps copy via ``.replace()``); the returned list is fresh.
    """
    return list(_full_instance_catalog())


def spec_by_name(name: str) -> InstanceSpec:
    for spec in INSTANCE_SPECS:
        if spec.name == name or f"ec2.{spec.name}" == name:
            return spec
    raise KeyError(
        f"no 2011 instance type {name!r}; "
        f"known: {[s.name for s in INSTANCE_SPECS]}"
    )


# ---------------------------------------------------------------------------
# Tiered data-transfer pricing
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class TransferTiers:
    """AWS's 2011 tiered transfer-out schedule.

    ``breaks`` are cumulative GB thresholds; ``rates`` has one more
    entry than ``breaks`` ($/GB within each band).  The first GB of a
    month was free; the evaluation's flat $0.10 is the bulk rate the
    paper's volumes land in.
    """

    breaks: tuple[float, ...] = (1.0, 10_240.0, 51_200.0, 153_600.0)
    rates: tuple[float, ...] = (0.0, 0.12, 0.09, 0.07, 0.05)

    def __post_init__(self) -> None:
        if len(self.rates) != len(self.breaks) + 1:
            raise ValueError("need exactly one more rate than break")
        if list(self.breaks) != sorted(self.breaks):
            raise ValueError("breaks must be increasing")

    def cost(self, gb: float) -> float:
        """Total transfer-out charge for ``gb`` in one billing month."""
        if gb < 0:
            raise ValueError("transferred volume cannot be negative")
        total = 0.0
        previous = 0.0
        for threshold, rate in zip(self.breaks, self.rates):
            band = min(gb, threshold) - previous
            if band <= 0:
                break
            total += band * rate
            previous = threshold
        if gb > self.breaks[-1]:
            total += (gb - self.breaks[-1]) * self.rates[-1]
        return total

    def marginal_rate(self, gb: float) -> float:
        """$/GB for the next byte after ``gb`` have been transferred."""
        index = bisect.bisect_right(self.breaks, gb)
        return self.rates[index]

    def effective_rate(self, gb: float) -> float:
        """Average $/GB over a volume — the linear coefficient a planner
        should use when it expects to move ``gb`` this month."""
        if gb <= 0:
            return self.rates[0]
        return self.cost(gb) / gb


def with_tiered_transfer(
    service: ServiceDescription,
    expected_monthly_gb: float,
    tiers: TransferTiers | None = None,
) -> ServiceDescription:
    """A copy of ``service`` whose flat transfer rate matches the tier
    schedule at the expected monthly volume (LPs need linear prices)."""
    tiers = tiers or TransferTiers()
    return service.replace(
        transfer_out_cost_gb=tiers.effective_rate(expected_monthly_gb)
    )


# ---------------------------------------------------------------------------
# Reserved instances
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class ReservedOffer:
    """A 2011-style reserved-instance offer: upfront fee + discounted rate.

    The planner sees a reserved instance as an on-demand service with an
    *amortized* hourly price that depends on utilization: the upfront
    fee spreads over the hours actually used.
    """

    instance: str
    upfront_usd: float
    hourly_usd: float
    term_hours: float = 365.0 * 24.0  # one-year term

    def __post_init__(self) -> None:
        if self.upfront_usd < 0 or self.hourly_usd < 0 or self.term_hours <= 0:
            raise ValueError("offer terms must be non-negative (term > 0)")

    def amortized_rate(self, utilization: float) -> float:
        """Effective $/hour when running ``utilization`` of the term."""
        if not 0.0 < utilization <= 1.0:
            raise ValueError("utilization must be in (0, 1]")
        used_hours = self.term_hours * utilization
        return self.hourly_usd + self.upfront_usd / used_hours

    def break_even_utilization(self, on_demand_hourly: float) -> float:
        """Utilization above which the reservation beats on-demand.

        Returns ``inf`` when the discounted rate alone already exceeds
        the on-demand price (the reservation can never pay off).
        """
        if self.hourly_usd >= on_demand_hourly:
            return math.inf
        hours = self.upfront_usd / (on_demand_hourly - self.hourly_usd)
        return hours / self.term_hours

    def to_service(self, utilization: float) -> ServiceDescription:
        """Planner-ready description at an assumed utilization."""
        base = spec_by_name(self.instance).to_service()
        return base.replace(
            name=f"{base.name}.reserved",
            price_per_node_hour=self.amortized_rate(utilization),
        )


#: July-2011 one-year reserved offer for the paper's workhorse type.
RESERVED_M1_LARGE = ReservedOffer(
    instance="m1.large", upfront_usd=910.0, hourly_usd=0.12
)
