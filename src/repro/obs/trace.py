"""Durable trace logs: the append-only writer and the run tracer.

Three pieces, layered:

- :class:`TraceWriter` / :class:`TraceCollector` — sinks.  The writer
  appends one sorted-keys JSON line per record to a file and flushes
  each one (a crash loses at most the line being written — the property
  crash-resume depends on); the collector keeps records in memory for
  tests and for verify-mode replay.
- :class:`RunTracer` — the subscription adapter the runtime seams call.
  It owns the run id and the monotonic sequence counter, stamps every
  record, and (optionally) mirrors span timings into a
  :class:`~repro.obs.registry.MetricsRegistry` so one instrumentation
  point feeds both the durable log and the live telemetry snapshot.
- :func:`read_trace` — parse + validate a log back into records.

The tracer is locked: deploy sessions emit from their worker thread
while the registry may be polled from the main thread.  Record *order*
is nevertheless deterministic because each run's records are emitted by
exactly one thread (the session thread for ``deploy``, the lockstep
scheduler loop for ``fleet``).
"""

from __future__ import annotations

import threading
import time
from collections.abc import Iterator
from contextlib import contextmanager
from pathlib import Path
from typing import IO

from .records import (
    LifecycleV1,
    RunEndV1,
    RunStartV1,
    SnapshotV1,
    SpanV1,
    SubstrateEventV1,
    TraceHelloV1,
    TraceRecordV1,
    run_id_for,
)


class TraceError(ValueError):
    """A trace log that violates the format's invariants."""


class TraceWriter:
    """Append-only JSON-lines sink over a file.

    Accepts a path (opened for append, closed by :meth:`close` or the
    context manager) or an open text handle (left open — the caller owns
    it).  Appends are locked and flushed record-by-record.
    """

    def __init__(self, target: str | Path | IO[str]) -> None:
        self._lock = threading.Lock()
        self.count = 0
        if isinstance(target, (str, Path)):
            self._handle = open(target, "a", encoding="utf-8")
            self._owns_handle = True
        else:
            self._handle = target
            self._owns_handle = False

    def append(self, record: TraceRecordV1) -> None:
        line = record.encode()
        with self._lock:
            self._handle.write(line + "\n")
            self._handle.flush()
            self.count += 1

    def close(self) -> None:
        with self._lock:
            if self._owns_handle and not self._handle.closed:
                self._handle.close()

    def __enter__(self) -> "TraceWriter":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()


class TraceCollector:
    """In-memory sink with the same ``append`` contract as the writer."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self.records: list[TraceRecordV1] = []

    @property
    def count(self) -> int:
        with self._lock:
            return len(self.records)

    def append(self, record: TraceRecordV1) -> None:
        with self._lock:
            self.records.append(record)


class RunTracer:
    """The runtime's subscription point: stamps and emits trace records.

    One tracer serves one run.  :meth:`begin` derives the run id from
    the scenario (content-addressed — identical configurations trace
    under identical ids) and writes the ``trace_hello`` + ``run_start``
    preamble; the seam methods then narrate the run.  ``sinks`` may be
    any mix of writers and collectors; ``registry`` (optional) receives
    every span's duration as a latency sample under the span's name.
    """

    def __init__(self, *sinks, registry=None) -> None:
        if not sinks:
            raise ValueError("a tracer needs at least one sink")
        self._lock = threading.Lock()
        self._sinks = sinks
        self._seq = 0
        self.registry = registry
        self.run_id = ""

    # -- preamble ----------------------------------------------------------

    def begin(self, run_kind: str, scenario: dict, *, version: str = "") -> str:
        """Open the log: ``trace_hello`` then ``run_start``.

        Returns the derived run id.  Must be called exactly once, before
        any other record.
        """
        if self.run_id:
            raise TraceError("begin() called twice on one tracer")
        self.run_id = run_id_for(scenario)
        start_hour = float(scenario.get("start_hour", 0.0))
        self._emit("trace_hello", TraceHelloV1(version=version), start_hour)
        self._emit(
            "run_start", RunStartV1(run_kind=run_kind, scenario=scenario),
            start_hour,
        )
        return self.run_id

    # -- seam methods ------------------------------------------------------

    def lifecycle(
        self,
        tenant: str,
        phase: str,
        *,
        hour: float,
        session_id: int = 0,
        detail: str = "",
        cost: float = 0.0,
        replans: int = 0,
        completion_hours: float = 0.0,
        backend: str = "",
    ) -> None:
        self._emit(
            "lifecycle",
            LifecycleV1(
                tenant=tenant,
                phase=phase,
                session_id=session_id,
                detail=detail,
                cost=cost,
                replans=replans,
                completion_hours=completion_hours,
                backend=backend,
            ),
            hour,
        )

    def deploy_event(self, event) -> None:
        """Log a :class:`~repro.api.schemas.DeployEventV1` — the record
        kind follows the event's own tag (``interval`` or ``replan``)."""
        self._emit(event.event, event, event.start_hour)

    def substrate_event(self, event) -> None:
        """Log a fleet :class:`~repro.fleet.events.SubstrateEvent`."""
        self._emit("substrate_event", SubstrateEventV1.from_event(event),
                   event.hour)

    def record_span(self, name: str, seconds: float, *, hour: float = 0.0) -> None:
        """One ``span`` record, mirrored into the registry's series."""
        self._emit("span", SpanV1(name=name, seconds=seconds), hour)
        if self.registry is not None:
            self.registry.series(name).record(seconds)

    @contextmanager
    def span(self, name: str, *, hour: float = 0.0) -> Iterator[None]:
        """Time a block: one ``span`` record, mirrored to the registry."""
        start = time.perf_counter()
        try:
            yield
        finally:
            self.record_span(name, time.perf_counter() - start, hour=hour)

    def snapshot(
        self,
        tenant: str,
        step: int,
        state: dict,
        *,
        hour: float,
        session_id: int = 0,
    ) -> None:
        self._emit(
            "snapshot",
            SnapshotV1(tenant=tenant, step=step, state=state,
                       session_id=session_id),
            hour,
        )

    def end(self, summary: dict, *, hour: float) -> None:
        self._emit("run_end", RunEndV1(summary=summary), hour)

    # -- plumbing ----------------------------------------------------------

    def _emit(self, kind: str, payload, hour: float) -> None:
        if not self.run_id:
            raise TraceError(f"{kind!r} record before begin()")
        with self._lock:
            record = TraceRecordV1(
                run_id=self.run_id,
                seq=self._seq,
                hour=hour,
                kind=kind,
                payload=payload.to_dict(),
            )
            self._seq += 1
            for sink in self._sinks:
                sink.append(record)


def read_trace(source: str | Path) -> list[TraceRecordV1]:
    """Parse and validate a trace log.

    Enforces the log invariants — non-empty, ``trace_hello`` first, one
    run id throughout, gapless 0-based sequence numbers — and raises
    :class:`TraceError` on violation.  A log without a ``run_end`` is
    *valid*: that is exactly what a crashed run leaves behind, and what
    resume mode consumes.
    """
    path = Path(source)
    records: list[TraceRecordV1] = []
    with open(path, encoding="utf-8") as handle:
        for lineno, line in enumerate(handle, start=1):
            line = line.strip()
            if not line:
                continue
            try:
                records.append(TraceRecordV1.decode(line))
            except ValueError as exc:
                raise TraceError(f"{path}:{lineno}: {exc}") from None
    if not records:
        raise TraceError(f"{path}: empty trace log")
    if records[0].kind != "trace_hello":
        raise TraceError(
            f"{path}: first record must be trace_hello, "
            f"got {records[0].kind!r}"
        )
    run_ids = {record.run_id for record in records}
    if len(run_ids) > 1:
        raise TraceError(f"{path}: multiple run ids in one log: "
                         f"{sorted(run_ids)}")
    for position, record in enumerate(records):
        if record.seq != position:
            raise TraceError(
                f"{path}: sequence gap at position {position} "
                f"(record says seq={record.seq})"
            )
    return records


__all__ = [
    "RunTracer",
    "TraceCollector",
    "TraceError",
    "TraceWriter",
    "read_trace",
]
