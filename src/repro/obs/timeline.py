"""Inspect-mode rendering: a human timeline and a Mermaid gantt export.

``repro replay <log>`` (no flags) prints :func:`render_timeline` — one
line per trace record, in log order, on the record's simulated-hour
axis.  ``--mermaid PATH`` writes :func:`to_mermaid`: a gantt chart with
one section per tenant (lifecycle span plus its re-plans as milestones)
and a section for the substrate's events — the "what path did the fleet
actually take" picture the paper's adaptation figures tell in prose.
"""

from __future__ import annotations

from .records import TraceRecordV1
from .replay import scenario_of


def _one_line(record: TraceRecordV1) -> str:
    """The record's one-line story for the text timeline."""
    payload = record.payload
    kind = record.kind
    if kind == "trace_hello":
        return f"{payload['service']} {payload['version']}".strip()
    if kind == "run_start":
        return f"{payload['run_kind']} scenario ({len(payload['scenario'])} keys)"
    if kind == "lifecycle":
        detail = f" ({payload['detail']})" if payload.get("detail") else ""
        extra = ""
        if payload["phase"] in ("completed", "failed"):
            extra = (
                f" — ${payload['cost']:.2f}, "
                f"{payload['completion_hours']:.1f} h, "
                f"{payload['replans']} re-plans"
            )
        return f"{payload['tenant']} {payload['phase']}{detail}{extra}"
    if kind == "interval":
        nodes = sum(payload.get("nodes", {}).values())
        return (
            f"{payload['tenant']} interval #{payload['index']}: "
            f"{nodes} nodes, ${payload['cost']:.3f}"
        )
    if kind == "replan":
        return (
            f"{payload['tenant']} re-plan [{payload.get('trigger', '')}] "
            f"{payload.get('reason', '')}"
        )
    if kind == "substrate_event":
        return f"{payload['event_kind']}: {payload['description']}"
    if kind == "span":
        return f"{payload['name']}: {payload['seconds'] * 1e3:.1f} ms"
    if kind == "snapshot":
        return f"{payload['tenant']} state @ step {payload['step']}"
    if kind == "run_end":
        summary = payload["summary"]
        parts = [
            f"{key}={summary[key]}"
            for key in ("total_cost", "completed", "total_replans")
            if key in summary
        ]
        return "run finished" + (f" ({', '.join(parts)})" if parts else "")
    return ""


def render_timeline(records: list[TraceRecordV1]) -> str:
    """The whole log as an hour-stamped, human-readable timeline."""
    run_kind, _ = scenario_of(records)
    lines = [
        f"trace {records[0].run_id} ({run_kind}): {len(records)} records"
    ]
    for record in records:
        lines.append(
            f"[{record.hour:7.1f}h] {record.kind:16s} {_one_line(record)}"
        )
    return "\n".join(lines)


def _quote(label: str) -> str:
    """Mermaid task labels cannot carry colons or commas."""
    return label.replace(":", ";").replace(",", ";")


def to_mermaid(records: list[TraceRecordV1]) -> str:
    """A Mermaid ``gantt`` chart of the run, hours as the time axis.

    One section per tenant: the deployment bar spans its ``started`` to
    ``completed``/``failed`` lifecycle records and each adopted re-plan
    appears as a milestone; a final section lists the substrate's events.
    Hours are rendered on Mermaid's numeric axis (``dateFormat X``), so
    the chart needs no calendar anchoring.
    """
    run_kind, scenario = scenario_of(records)
    # interval/replan records live on the job-relative hour axis;
    # lifecycle/substrate records on the absolute substrate axis.  The
    # chart renders everything absolute.
    offset = float(scenario.get("start_hour", 0.0))
    started: dict[str, float] = {}
    ended: dict[str, tuple[float, str]] = {}
    replans: dict[str, list[tuple[float, str]]] = {}
    substrate: list[tuple[float, str]] = []
    last_hour = records[0].hour
    for record in records:
        last_hour = max(last_hour, record.hour)
        payload = record.payload
        if record.kind == "lifecycle":
            tenant = payload["tenant"]
            if payload["phase"] == "started":
                started[tenant] = record.hour
            else:
                ended[tenant] = (record.hour, payload["phase"])
        elif record.kind == "replan":
            replans.setdefault(payload["tenant"], []).append(
                (record.hour + offset, payload.get("trigger", "replan"))
            )
        elif record.kind == "substrate_event":
            substrate.append((record.hour, payload["description"]))
    lines = [
        "gantt",
        f"    title {run_kind} run {records[0].run_id}",
        "    dateFormat X",
        "    axisFormat %s",
    ]
    for tenant in sorted(started):
        begin = started[tenant]
        finish, phase = ended.get(tenant, (last_hour, "running"))
        lines.append(f"    section {_quote(tenant)}")
        lines.append(
            f"    {phase} :{int(begin)}, {max(int(finish), int(begin) + 1)}"
        )
        for hour, trigger in replans.get(tenant, []):
            lines.append(
                f"    replan {_quote(trigger)} :milestone, {int(hour)}, 0"
            )
    if substrate:
        lines.append("    section substrate")
        for hour, description in substrate:
            lines.append(
                f"    {_quote(description)} :milestone, {int(hour)}, 0"
            )
    return "\n".join(lines)


__all__ = ["render_timeline", "to_mermaid"]
