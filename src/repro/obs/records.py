"""Versioned trace-record schemas — the durable log's vocabulary (v1).

A trace log is an append-only sequence of :class:`TraceRecordV1`
envelopes, one JSON line each.  The envelope carries the log-level
bookkeeping (run id, monotonic sequence number, simulated clock, record
kind); the ``payload`` is the record kind's own frozen schema, exactly
as :class:`~repro.api.schemas.DeployEventV1` is the wire schema for
interval and replan events — those two kinds embed ``DeployEventV1``
payloads verbatim, so a trace log and a ``repro fleet`` stream agree
byte-for-byte on what an executed interval looks like.

Record kinds:

=================  ========================================================
``trace_hello``    first record of every log: writer build + versions
``run_start``      the full scenario (the recipe replay re-executes)
``lifecycle``      a deployment started / completed / failed
``interval``       one executed plan interval (``DeployEventV1``)
``replan``         one adopted re-plan (``DeployEventV1``)
``substrate_event``a typed substrate event (price/eviction/failure/capacity)
``span``           wall-clock timing of a hot path (solve/replan/run)
``snapshot``       a ``ControllerRun`` state snapshot (crash-resume point)
``run_end``        the run's deterministic summary
=================  ========================================================

:data:`DETERMINISTIC_KINDS` names the kinds whose payloads are pure
functions of the scenario: replaying the same scenario re-emits them
identically, so verify mode diffs exactly these.  ``trace_hello``
(build version), ``span`` (wall-clock seconds) and ``snapshot``
(contains solver wall-clock) are excluded by construction.

Schema evolution follows the wire format's rules: every envelope carries
``trace_version``; unknown versions, kinds and fields are rejected with
:class:`~repro.api.schemas.SchemaError`, never skipped.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, field
from typing import Any, ClassVar, Mapping

from ..api.schemas import DeployEventV1, SchemaError

#: The trace-log format version this build writes and reads.
TRACE_SCHEMA_VERSION = 1

#: Every record kind a v1 log may contain, in rough lifecycle order.
RECORD_KINDS = (
    "trace_hello",
    "run_start",
    "lifecycle",
    "interval",
    "replan",
    "substrate_event",
    "span",
    "snapshot",
    "run_end",
)

#: Kinds whose payloads are pure functions of the scenario — the stream
#: replay's verify mode compares.  Wall-clock data (``trace_hello``'s
#: build version, ``span`` seconds, the solver timings inside
#: ``snapshot``) is deliberately outside this set.
DETERMINISTIC_KINDS = frozenset(
    {"run_start", "lifecycle", "interval", "replan", "substrate_event",
     "run_end"}
)

#: Lifecycle phases a deployment moves through.
LIFECYCLE_PHASES = ("started", "completed", "failed")


def run_id_for(scenario: Mapping) -> str:
    """Derive the run id from the scenario — content-addressed, so the
    same configuration always logs (and replays) under the same id."""
    canonical = json.dumps(dict(scenario), sort_keys=True)
    return hashlib.sha256(canonical.encode("utf-8")).hexdigest()[:12]


# ---------------------------------------------------------------------------
# validation helpers (the envelope discipline of repro.api.schemas,
# restated locally so the low-level log format has no private imports)


def _require(condition: bool, message: str) -> None:
    if not condition:
        raise SchemaError(message)


def _mapping(data: Any, kind: str) -> dict:
    if not isinstance(data, Mapping):
        raise SchemaError(f"{kind}: payload must be a JSON object, "
                          f"got {type(data).__name__}")
    return dict(data)


def _finish(data: dict, kind: str) -> None:
    if data:
        raise SchemaError(f"{kind}: unknown fields {sorted(data)}")


def _num(value: Any, name: str) -> float:
    if isinstance(value, bool) or not isinstance(value, (int, float)):
        raise SchemaError(f"field {name!r} must be a number, got {value!r}")
    return float(value)


def _int(value: Any, name: str) -> int:
    if isinstance(value, bool) or not isinstance(value, int):
        raise SchemaError(f"field {name!r} must be an integer, got {value!r}")
    return value


def _str(value: Any, name: str) -> str:
    if not isinstance(value, str):
        raise SchemaError(f"field {name!r} must be a string, got {value!r}")
    return value


def _dict(value: Any, name: str) -> dict:
    if not isinstance(value, Mapping):
        raise SchemaError(f"field {name!r} must be an object, got {value!r}")
    return dict(value)


# ---------------------------------------------------------------------------
# the envelope


@dataclass(frozen=True)
class TraceRecordV1:
    """One line of a trace log: bookkeeping envelope + typed payload.

    ``seq`` is the writer-assigned monotonic position (0-based, gapless
    within one log); ``hour`` is the *simulated* clock at emission — the
    deterministic time axis replay aligns on — not wall clock.
    """

    run_id: str
    seq: int
    hour: float
    kind: str
    payload: dict
    trace_version: int = TRACE_SCHEMA_VERSION

    def __post_init__(self) -> None:
        _require(self.trace_version == TRACE_SCHEMA_VERSION,
                 f"unsupported trace_version {self.trace_version!r}")
        _require(bool(self.run_id), "run_id must be non-empty")
        _require(self.seq >= 0, "seq must be non-negative")
        _require(self.kind in RECORD_KINDS,
                 f"unknown record kind {self.kind!r}; "
                 f"expected one of {list(RECORD_KINDS)}")
        object.__setattr__(self, "hour", float(self.hour))
        object.__setattr__(self, "payload", dict(self.payload))

    def to_dict(self) -> dict:
        return {
            "trace_version": self.trace_version,
            "run_id": self.run_id,
            "seq": self.seq,
            "hour": self.hour,
            "kind": self.kind,
            "payload": dict(self.payload),
        }

    @classmethod
    def from_dict(cls, data: Mapping) -> "TraceRecordV1":
        data = _mapping(data, "trace_record")
        version = data.pop("trace_version", None)
        if version != TRACE_SCHEMA_VERSION:
            raise SchemaError(
                f"unsupported trace_version {version!r} "
                f"(this build speaks version {TRACE_SCHEMA_VERSION})"
            )
        record = cls(
            run_id=_str(data.pop("run_id", ""), "run_id"),
            seq=_int(data.pop("seq", -1), "seq"),
            hour=_num(data.pop("hour", 0.0), "hour"),
            kind=_str(data.pop("kind", ""), "kind"),
            payload=_dict(data.pop("payload", {}), "payload"),
        )
        _finish(data, "trace_record")
        return record

    def encode(self) -> str:
        """One JSON line, keys sorted — the log format."""
        return json.dumps(self.to_dict(), sort_keys=True)

    @classmethod
    def decode(cls, line: str) -> "TraceRecordV1":
        try:
            data = json.loads(line)
        except json.JSONDecodeError as exc:
            raise SchemaError(f"trace line is not valid JSON: {exc}") from None
        return cls.from_dict(data)


# ---------------------------------------------------------------------------
# payload schemas


@dataclass(frozen=True)
class TraceHelloV1:
    """First record of every log: who wrote it, speaking which versions."""

    KIND: ClassVar[str] = "trace_hello"

    service: str = "conductor-repro"
    version: str = ""

    def to_dict(self) -> dict:
        return {"service": self.service, "version": self.version}

    @classmethod
    def from_dict(cls, data: Mapping) -> "TraceHelloV1":
        data = _mapping(data, cls.KIND)
        hello = cls(
            service=_str(data.pop("service", "conductor-repro"), "service"),
            version=_str(data.pop("version", ""), "version"),
        )
        _finish(data, cls.KIND)
        return hello


@dataclass(frozen=True)
class RunStartV1:
    """The scenario this run executes — everything replay needs.

    ``run_kind`` is ``"deploy"`` (one session) or ``"fleet"`` (many
    deployments over a shared substrate); ``scenario`` is the full
    JSON-serializable configuration the matching ``reexecute`` path
    reconstructs the run from.  The envelope's ``run_id`` is
    :func:`run_id_for` of exactly this scenario.
    """

    KIND: ClassVar[str] = "run_start"

    run_kind: str
    scenario: dict

    def __post_init__(self) -> None:
        _require(self.run_kind in ("deploy", "fleet"),
                 f"unknown run_kind {self.run_kind!r}")
        object.__setattr__(self, "scenario", dict(self.scenario))

    def to_dict(self) -> dict:
        return {"run_kind": self.run_kind, "scenario": dict(self.scenario)}

    @classmethod
    def from_dict(cls, data: Mapping) -> "RunStartV1":
        data = _mapping(data, cls.KIND)
        start = cls(
            run_kind=_str(data.pop("run_kind", ""), "run_kind"),
            scenario=_dict(data.pop("scenario", {}), "scenario"),
        )
        _finish(data, cls.KIND)
        return start


@dataclass(frozen=True)
class LifecycleV1:
    """A deployment crossed a lifecycle boundary."""

    KIND: ClassVar[str] = "lifecycle"

    tenant: str
    phase: str
    session_id: int = 0
    detail: str = ""
    cost: float = 0.0
    replans: int = 0
    completion_hours: float = 0.0
    #: Execution backend the deployment runs on.  Additive: ``""`` means
    #: the sim default and is omitted from the wire form, so logs
    #: recorded before backends existed parse (and re-serialize)
    #: byte-identically.
    backend: str = ""

    def __post_init__(self) -> None:
        _require(self.phase in LIFECYCLE_PHASES,
                 f"unknown lifecycle phase {self.phase!r}")
        object.__setattr__(self, "cost", float(self.cost))
        object.__setattr__(self, "completion_hours",
                           float(self.completion_hours))

    def to_dict(self) -> dict:
        payload = {
            "tenant": self.tenant,
            "phase": self.phase,
            "session_id": self.session_id,
            "detail": self.detail,
            "cost": self.cost,
            "replans": self.replans,
            "completion_hours": self.completion_hours,
        }
        if self.backend:
            payload["backend"] = self.backend
        return payload

    @classmethod
    def from_dict(cls, data: Mapping) -> "LifecycleV1":
        data = _mapping(data, cls.KIND)
        lifecycle = cls(
            tenant=_str(data.pop("tenant", ""), "tenant"),
            phase=_str(data.pop("phase", ""), "phase"),
            session_id=_int(data.pop("session_id", 0), "session_id"),
            detail=_str(data.pop("detail", ""), "detail"),
            cost=_num(data.pop("cost", 0.0), "cost"),
            replans=_int(data.pop("replans", 0), "replans"),
            completion_hours=_num(
                data.pop("completion_hours", 0.0), "completion_hours"
            ),
            backend=_str(data.pop("backend", ""), "backend"),
        )
        _finish(data, cls.KIND)
        return lifecycle


@dataclass(frozen=True)
class SubstrateEventV1:
    """The trace form of a typed substrate event.

    ``event_kind`` is the replan-trigger taxonomy tag the fleet event
    carries (``price``/``eviction``/``failure``/``capacity``);
    ``attrs`` holds the event type's own numeric fields (old/new price,
    severity, ...) and ``description`` its deterministic one-liner.
    """

    KIND: ClassVar[str] = "substrate_event"

    event_kind: str
    service: str
    hour: float
    attrs: dict = field(default_factory=dict)
    description: str = ""

    def __post_init__(self) -> None:
        object.__setattr__(self, "hour", float(self.hour))
        object.__setattr__(self, "attrs", dict(self.attrs))

    def to_dict(self) -> dict:
        return {
            "event_kind": self.event_kind,
            "service": self.service,
            "hour": self.hour,
            "attrs": dict(self.attrs),
            "description": self.description,
        }

    @classmethod
    def from_dict(cls, data: Mapping) -> "SubstrateEventV1":
        data = _mapping(data, cls.KIND)
        event = cls(
            event_kind=_str(data.pop("event_kind", ""), "event_kind"),
            service=_str(data.pop("service", ""), "service"),
            hour=_num(data.pop("hour", 0.0), "hour"),
            attrs=_dict(data.pop("attrs", {}), "attrs"),
            description=_str(data.pop("description", ""), "description"),
        )
        _finish(data, cls.KIND)
        return event

    @classmethod
    def from_event(cls, event) -> "SubstrateEventV1":
        """Wrap a fleet :class:`~repro.fleet.events.SubstrateEvent`."""
        attrs = {
            name: value
            for name, value in vars(event).items()
            if name not in ("hour", "service")
        }
        return cls(
            event_kind=event.kind,
            service=event.service,
            hour=event.hour,
            attrs=attrs,
            description=event.describe(),
        )


@dataclass(frozen=True)
class SpanV1:
    """Wall-clock timing of one hot-path section (nondeterministic)."""

    KIND: ClassVar[str] = "span"

    name: str
    seconds: float

    def __post_init__(self) -> None:
        object.__setattr__(self, "seconds", float(self.seconds))

    def to_dict(self) -> dict:
        return {"name": self.name, "seconds": self.seconds}

    @classmethod
    def from_dict(cls, data: Mapping) -> "SpanV1":
        data = _mapping(data, cls.KIND)
        span = cls(
            name=_str(data.pop("name", ""), "name"),
            seconds=_num(data.pop("seconds", 0.0), "seconds"),
        )
        _finish(data, cls.KIND)
        return span


@dataclass(frozen=True)
class SnapshotV1:
    """A :meth:`ControllerRun.snapshot` — the crash-resume anchor.

    The ``state`` dict is the controller's own serialization (it carries
    solver wall-clock inside the plan summary, hence nondeterministic);
    ``step`` counts executed intervals at snapshot time.
    """

    KIND: ClassVar[str] = "snapshot"

    tenant: str
    step: int
    state: dict
    session_id: int = 0

    def __post_init__(self) -> None:
        object.__setattr__(self, "state", dict(self.state))

    def to_dict(self) -> dict:
        return {
            "tenant": self.tenant,
            "step": self.step,
            "state": dict(self.state),
            "session_id": self.session_id,
        }

    @classmethod
    def from_dict(cls, data: Mapping) -> "SnapshotV1":
        data = _mapping(data, cls.KIND)
        snapshot = cls(
            tenant=_str(data.pop("tenant", ""), "tenant"),
            step=_int(data.pop("step", 0), "step"),
            state=_dict(data.pop("state", {}), "state"),
            session_id=_int(data.pop("session_id", 0), "session_id"),
        )
        _finish(data, cls.KIND)
        return snapshot


@dataclass(frozen=True)
class RunEndV1:
    """The run's deterministic summary — the last record of a whole log."""

    KIND: ClassVar[str] = "run_end"

    summary: dict

    def __post_init__(self) -> None:
        object.__setattr__(self, "summary", dict(self.summary))

    def to_dict(self) -> dict:
        return {"summary": dict(self.summary)}

    @classmethod
    def from_dict(cls, data: Mapping) -> "RunEndV1":
        data = _mapping(data, cls.KIND)
        end = cls(summary=_dict(data.pop("summary", {}), "summary"))
        _finish(data, cls.KIND)
        return end


# ---------------------------------------------------------------------------
# dispatch

_PAYLOADS = {
    cls.KIND: cls
    for cls in (
        TraceHelloV1,
        RunStartV1,
        LifecycleV1,
        SubstrateEventV1,
        SpanV1,
        SnapshotV1,
        RunEndV1,
    )
}
# interval/replan records carry the public wire schema verbatim.
_PAYLOADS["interval"] = DeployEventV1
_PAYLOADS["replan"] = DeployEventV1


def decode_payload(record: TraceRecordV1):
    """Decode a record's payload into its kind's frozen schema type."""
    return _PAYLOADS[record.kind].from_dict(record.payload)


__all__ = [
    "DETERMINISTIC_KINDS",
    "LIFECYCLE_PHASES",
    "LifecycleV1",
    "RECORD_KINDS",
    "RunEndV1",
    "RunStartV1",
    "SnapshotV1",
    "SpanV1",
    "SubstrateEventV1",
    "TRACE_SCHEMA_VERSION",
    "TraceHelloV1",
    "TraceRecordV1",
    "decode_payload",
    "run_id_for",
]
