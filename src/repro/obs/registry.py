"""Telemetry registry: counters, gauges, exact-percentile latency series
and span timers, with one snapshot format.

This is the generalization of the service-level metrics: the primitives
here carry their own locks so they can be mutated from pool callback
threads, session threads and the main loop concurrently, and every
consumer (``serve``, ``loadgen``, ``fleet``, ``repro trace summarize``)
reports through the same ``snapshot()`` shape::

    {"counters": {name: int}, "gauges": {name: float},
     "series": {name: {"count": ..., "mean_s": ..., "p50_s": ...,
                       "p90_s": ..., "p99_s": ..., "max_s": ...}}}

Latencies are kept raw (a process handles thousands, not millions, of
samples) so percentiles are exact.  The module deliberately imports
nothing from the rest of the package: the service layer depends on it,
so it must sit below every other layer.
"""

from __future__ import annotations

import threading
import time
from collections.abc import Iterator
from contextlib import contextmanager


def labeled(name: str, **labels) -> str:
    """Canonical labeled-instrument name: ``completed{shard=3}``.

    Labels render sorted by key, so every producer of the same label set
    lands on the same instrument.  Per-shard counters in a merged
    snapshot use this form; the bare ``name`` stays the aggregate.
    """
    if not labels:
        return name
    body = ",".join(f"{k}={labels[k]}" for k in sorted(labels))
    return f"{name}{{{body}}}"


def percentile(values: list[float], p: float) -> float:
    """Exact percentile (nearest-rank with linear interpolation).

    Defined for every sample size: an empty sample yields ``0.0`` and a
    singleton yields its only element, so dashboards polling a series
    that has not recorded anything yet (or exactly one thing) get a
    number, never an exception.  Only an out-of-range ``p`` raises —
    consistently, regardless of sample size.
    """
    return _percentile_sorted(sorted(values), p)


def _percentile_sorted(data: list[float], p: float) -> float:
    """Percentile over already-sorted data (lets callers sort once)."""
    if not 0.0 <= p <= 100.0:
        raise ValueError("percentile must be in [0, 100]")
    if not data:
        return 0.0
    if len(data) == 1:
        return float(data[0])
    rank = (p / 100.0) * (len(data) - 1)
    lo = int(rank)
    hi = min(lo + 1, len(data) - 1)
    frac = rank - lo
    return data[lo] * (1.0 - frac) + data[hi] * frac


class Counter:
    """A monotonically increasing integer, safe to bump from any thread."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._value = 0

    def increment(self, amount: int = 1) -> None:
        if amount < 0:
            raise ValueError("counters only go up")
        with self._lock:
            self._value += amount

    @property
    def value(self) -> int:
        with self._lock:
            return self._value


class Gauge:
    """A last-write-wins float, safe to set from any thread."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._value = 0.0

    def set(self, value: float) -> None:
        with self._lock:
            self._value = float(value)

    @property
    def value(self) -> float:
        with self._lock:
            return self._value


class LatencySeries:
    """A named collection of latency samples, in seconds.

    Both the record path and every read path (``count``, ``mean``,
    ``p``, ``summary``, ``samples``) take the internal lock, so a pool
    callback recording a sample can race a dashboard poll without either
    seeing a half-updated list.
    """

    def __init__(self, samples: list[float] | None = None) -> None:
        self._lock = threading.Lock()
        self._samples: list[float] = list(samples) if samples else []

    def record(self, seconds: float) -> None:
        with self._lock:
            self._samples.append(seconds)

    def extend(self, seconds: list[float]) -> None:
        """Fold a batch of samples in (the merge path — stays exact)."""
        with self._lock:
            self._samples.extend(seconds)

    @property
    def samples(self) -> list[float]:
        with self._lock:
            return list(self._samples)

    @property
    def count(self) -> int:
        with self._lock:
            return len(self._samples)

    @property
    def mean(self) -> float:
        with self._lock:
            if not self._samples:
                return 0.0
            return sum(self._samples) / len(self._samples)

    def p(self, q: float) -> float:
        return percentile(self.samples, q)

    def summary(self) -> dict[str, float]:
        with self._lock:
            data = sorted(self._samples)
        mean = sum(data) / len(data) if data else 0.0
        return {
            "count": float(len(data)),
            "mean_s": mean,
            "p50_s": _percentile_sorted(data, 50),
            "p90_s": _percentile_sorted(data, 90),
            "p95_s": _percentile_sorted(data, 95),
            "p99_s": _percentile_sorted(data, 99),
            "max_s": data[-1] if data else 0.0,
        }


class MetricsRegistry:
    """A namespace of counters, gauges and latency series.

    ``counter``/``gauge``/``series`` are get-or-create and stable: the
    first caller allocates the instrument, every later caller (from any
    thread) gets the same object back.  ``span`` times a block of code
    and records the wall-clock duration into the named series — the
    instrument the solve/compile/replan hot paths use.
    """

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._counters: dict[str, Counter] = {}
        self._gauges: dict[str, Gauge] = {}
        self._series: dict[str, LatencySeries] = {}

    def counter(self, name: str) -> Counter:
        with self._lock:
            return self._counters.setdefault(name, Counter())

    def gauge(self, name: str) -> Gauge:
        with self._lock:
            return self._gauges.setdefault(name, Gauge())

    def series(self, name: str) -> LatencySeries:
        with self._lock:
            return self._series.setdefault(name, LatencySeries())

    def merge(self, other: "MetricsRegistry", labels: dict | None = None) -> None:
        """Fold ``other``'s instruments into this registry.

        Counters add, gauges take ``other``'s value (last write wins),
        and latency series concatenate their raw samples — so the merged
        percentiles are *exact*, not an average of shard percentiles.
        A merged series that was empty on every shard stays empty and
        therefore reports the defined all-zero summary.

        With ``labels`` (e.g. ``{"shard": 2}``), every instrument is
        additionally folded under its :func:`labeled` name, so the one
        merged snapshot keeps per-shard counters (``completed{shard=2}``)
        next to the aggregates.
        """
        with other._lock:
            counters = dict(other._counters)
            gauges = dict(other._gauges)
            series = dict(other._series)
        for name, counter in counters.items():
            value = counter.value
            self.counter(name).increment(value)
            if labels:
                self.counter(labeled(name, **labels)).increment(value)
        for name, gauge in gauges.items():
            value = gauge.value
            self.gauge(name).set(value)
            if labels:
                self.gauge(labeled(name, **labels)).set(value)
        for name, entry in series.items():
            samples = entry.samples
            self.series(name).extend(samples)
            if labels:
                self.series(labeled(name, **labels)).extend(samples)

    @contextmanager
    def span(self, name: str) -> Iterator[None]:
        start = time.perf_counter()
        try:
            yield
        finally:
            self.series(name).record(time.perf_counter() - start)

    def snapshot(self) -> dict:
        with self._lock:
            counters = dict(self._counters)
            gauges = dict(self._gauges)
            series = dict(self._series)
        return {
            "counters": {name: c.value for name, c in sorted(counters.items())},
            "gauges": {name: g.value for name, g in sorted(gauges.items())},
            "series": {name: s.summary() for name, s in sorted(series.items())},
        }

    def describe(self) -> str:
        """Human-readable block, one line per instrument."""
        snap = self.snapshot()
        lines: list[str] = []
        for name, value in snap["counters"].items():
            lines.append(f"{name + ':':28s} {value}")
        for name, value in snap["gauges"].items():
            lines.append(f"{name + ':':28s} {value:.3f}")
        for name, summary in snap["series"].items():
            lines.append(
                f"{name + ':':28s} n={summary['count']:.0f}  "
                f"mean {summary['mean_s'] * 1e3:7.1f} ms   "
                f"p50 {summary['p50_s'] * 1e3:7.1f} ms   "
                f"p99 {summary['p99_s'] * 1e3:7.1f} ms"
            )
        return "\n".join(lines) if lines else "(no instruments)"
