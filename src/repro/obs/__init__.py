"""Observability: durable traces, deterministic replay, one telemetry registry.

The fleet runtime narrates typed events and ``ReplanRecord``s; before
this package nothing durably stored them.  ``repro.obs`` adds the three
pieces the ROADMAP's "event-sourced observability" item names:

``repro.obs.records``
    Frozen, versioned trace-record schemas: the append-only log's
    envelope (:class:`TraceRecordV1`) plus one payload schema per record
    kind, alongside the wire-format ``DeployEventV1``.
``repro.obs.trace``
    The append-only JSON-lines :class:`TraceWriter`, the higher-level
    :class:`RunTracer` that subscribes at the controller/fleet/session
    seams, and :func:`read_trace`.
``repro.obs.registry``
    The telemetry registry: counters, gauges, exact-percentile latency
    series and span timers with one snapshot format — the
    generalization of ``repro.service.metrics``.
``repro.obs.replay``
    Deterministic replay: re-execute a logged run from its recorded
    scenario and diff the streams (verify), or recover a truncated run
    to the same final state (resume).
``repro.obs.timeline``
    Inspect-mode rendering: a human-readable timeline and a Mermaid
    export of the path a deployment actually took.
``repro.obs.summary``
    Aggregate a trace log into the registry snapshot format
    (``repro trace summarize``).

Attribute access is lazy so the low-level modules (``registry``,
``records``) can be imported by the service layer without dragging the
replay machinery — which imports the api and fleet layers — into every
process.
"""

from __future__ import annotations

_EXPORTS = {
    "Counter": "registry",
    "Gauge": "registry",
    "LatencySeries": "registry",
    "MetricsRegistry": "registry",
    "labeled": "registry",
    "percentile": "registry",
    "DETERMINISTIC_KINDS": "records",
    "RECORD_KINDS": "records",
    "TRACE_SCHEMA_VERSION": "records",
    "TraceRecordV1": "records",
    "run_id_for": "records",
    "RunTracer": "trace",
    "TraceCollector": "trace",
    "TraceError": "trace",
    "TraceWriter": "trace",
    "read_trace": "trace",
    "Divergence": "replay",
    "FLEET_DEFAULTS": "replay",
    "ReplayReport": "replay",
    "deterministic_lines": "replay",
    "fleet_inputs": "replay",
    "predictor_for": "replay",
    "reexecute": "replay",
    "resume": "replay",
    "scenario_of": "replay",
    "trace_for": "replay",
    "verify": "replay",
    "render_timeline": "timeline",
    "to_mermaid": "timeline",
    "summarize_records": "summary",
}

__all__ = sorted(_EXPORTS)


def __getattr__(name: str):
    module = _EXPORTS.get(name)
    if module is None:
        raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
    import importlib

    return getattr(importlib.import_module(f".{module}", __name__), name)
