"""Aggregate a trace log into the unified telemetry snapshot format.

``repro trace summarize <log>`` funnels a durable log through the same
:class:`~repro.obs.registry.MetricsRegistry` the live planning service
and fleet report through, so a post-hoc log analysis and a live
dashboard poll read identically shaped data:

- counters — one ``records.<kind>`` counter per record kind, plus
  ``replans.<trigger>`` for each re-plan trigger taxonomy entry;
- gauges — the numeric scalars of the ``run_end`` summary (prefixed
  ``run.``) and the total cost accumulated over interval records;
- series — every ``span`` record's seconds under the span's name
  (solver timings, compile timings), with exact percentiles.
"""

from __future__ import annotations

from .records import TraceRecordV1
from .registry import MetricsRegistry


def summarize_records(
    records: list[TraceRecordV1], registry: MetricsRegistry | None = None
) -> dict:
    """Fold a log into a registry and return ``registry.snapshot()``."""
    registry = registry if registry is not None else MetricsRegistry()
    interval_cost = 0.0
    for record in records:
        registry.counter(f"records.{record.kind}").increment()
        payload = record.payload
        if record.kind == "interval":
            interval_cost += float(payload.get("cost", 0.0))
        elif record.kind == "replan":
            trigger = payload.get("trigger") or "unknown"
            registry.counter(f"replans.{trigger}").increment()
        elif record.kind == "span":
            registry.series(payload["name"]).record(float(payload["seconds"]))
        elif record.kind == "run_end":
            for key, value in payload["summary"].items():
                if isinstance(value, (bool, int, float)):
                    registry.gauge(f"run.{key}").set(float(value))
    registry.gauge("interval_cost_total").set(interval_cost)
    return registry.snapshot()


__all__ = ["summarize_records"]
