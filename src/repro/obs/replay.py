"""Deterministic replay: verify, inspect and resume event-sourced traces.

A trace log's ``run_start`` record carries the full scenario, and every
layer under it is deterministic (hash-derived RNG streams, a lockstep
fleet loop, deterministic LP solves), so the log is not just a record of
what happened — it is a *program* that can be run again:

- :func:`reexecute` rebuilds the scenario's inputs and runs it afresh
  under a new tracer, producing a second stream of records;
- :func:`verify` diffs the re-executed stream against the log over the
  :data:`~repro.obs.records.DETERMINISTIC_KINDS` (wall-clock payloads —
  span seconds, solver timings inside snapshots — are excluded by
  construction) and reports any :class:`Divergence`;
- :func:`resume` finishes a crashed run: a ``deploy`` log is rehydrated
  from its last ``snapshot`` record via
  :meth:`~repro.core.controller.ControllerRun.restore` and stepped to
  completion; a ``fleet`` log is recovered by deterministic re-execution
  with a prefix check against the truncated log.

Everything above the obs layer (api, fleet, cloud catalogs) is imported
lazily inside the functions — the obs package must stay importable from
the service layer without dragging the whole stack in.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from .records import DETERMINISTIC_KINDS, TraceRecordV1
from .trace import RunTracer, TraceCollector, TraceError

#: Scenario defaults for ``fleet`` runs — one source of truth shared by
#: ``repro fleet`` (which builds its scenario from CLI flags) and replay
#: (which tolerates logs written before a key existed).
FLEET_DEFAULTS = {
    "deployments": 8,
    "mode": "event",
    "cadence": 6.0,
    "replan_budget": 16,
    "start_hour": 24.0,
    "trace": "aws",
    "days": 8,
    "seed": 0,
    "predictor": "p5",
    "failure_rate": 0.0,
    "input_gb": 4.0,
    "deadline": 12.0,
    "uplink_mbit": 16.0,
}


def predictor_for(name: str):
    """The spot predictor a scenario names (``opt``, ``p0``, ``pN``).

    Returns ``None`` for unknown names — the CLI's contract.
    """
    from ..core import (
        CurrentPricePredictor,
        OptimalPredictor,
        WindowMaxPredictor,
    )

    if name == "opt":
        return OptimalPredictor()
    if name == "p0":
        return CurrentPricePredictor()
    if name.startswith("p") and name[1:].isdigit():
        return WindowMaxPredictor(int(name[1:]))
    return None


def trace_for(name: str, days: int, seed: int):
    """The synthetic price trace a scenario names (``aws``/``electricity``)."""
    from ..cloud import aws_like_trace, electricity_like_trace

    maker = electricity_like_trace if name == "electricity" else aws_like_trace
    return maker(days=days, seed=seed)


def scenario_of(records: list[TraceRecordV1]) -> tuple[str, dict]:
    """The ``(run_kind, scenario)`` a trace log declares.

    The tracer writes ``trace_hello`` then ``run_start``, so a valid log
    states its scenario in record 1; anything else is malformed.
    """
    if len(records) < 2 or records[1].kind != "run_start":
        raise TraceError("log has no run_start record — cannot replay")
    payload = records[1].payload
    return str(payload["run_kind"]), dict(payload["scenario"])


def fleet_inputs(scenario: dict):
    """Build the fleet run a scenario describes.

    Returns ``(specs, substrate, fleet_config, predictor)`` — exactly the
    arguments :meth:`repro.api.Orchestrator.fleet` takes.  This is the
    single construction path behind both ``repro fleet`` (scenario built
    from CLI flags) and replay (scenario read back from a log), which is
    what makes the two runs byte-comparable.

    Raises :class:`ValueError` for an unknown predictor name.
    """
    from ..api import GoalSpec, JobSpec, NetworkSpec
    from ..core.spot_sim import spot_services
    from ..fleet import FailureInjector, FleetConfig, Substrate

    merged = dict(FLEET_DEFAULTS)
    merged.update(scenario)
    predictor = predictor_for(str(merged["predictor"]))
    if predictor is None:
        raise ValueError(f"unknown predictor {merged['predictor']!r}")
    trace = trace_for(
        str(merged["trace"]), int(merged["days"]), int(merged["seed"])
    )
    spot = next(s for s in spot_services() if s.is_spot)
    failure_rate = float(merged["failure_rate"])
    failures = (
        FailureInjector(rate_per_hour=failure_rate, seed=int(merged["seed"]))
        if failure_rate > 0
        else None
    )
    substrate = Substrate(
        {spot.name: trace},
        eviction_bids={spot.name: spot.price_per_node_hour},
        failures=failures,
    )
    specs = [
        (
            f"tenant-{i + 1}",
            JobSpec(
                name=f"job-{i + 1}",
                input_gb=float(merged["input_gb"]),
                goal=GoalSpec(deadline_hours=float(merged["deadline"])),
                network=NetworkSpec(uplink_mbit_s=float(merged["uplink_mbit"])),
                catalog="spot",
            ),
        )
        for i in range(int(merged["deployments"]))
    ]
    config = FleetConfig(
        mode=str(merged["mode"]),
        interval_cadence_hours=float(merged["cadence"]),
        replan_budget=int(merged["replan_budget"]),
        start_hour=float(merged["start_hour"]),
    )
    return specs, substrate, config, predictor


def _deploy_kwargs(scenario: dict) -> dict:
    """The deploy-scenario knobs beyond the spec, rebuilt for replay."""
    kwargs: dict = {}
    data = scenario.get("actual")
    if data:
        from ..core.conditions import ActualConditions

        kwargs["actual"] = ActualConditions(
            throughput_gb_per_hour=dict(
                data.get("throughput_gb_per_hour", {})
            ),
            uplink_factor=float(data.get("uplink_factor", 1.0)),
            downlink_factor=float(data.get("downlink_factor", 1.0)),
            spot_storage_volatile=bool(
                data.get("spot_storage_volatile", True)
            ),
        )
    config = scenario.get("controller_config")
    if config:
        from ..core.controller import ControllerConfig

        kwargs["controller_config"] = ControllerConfig(**config)
    offset = scenario.get("trace_offset_hours")
    if offset:
        kwargs["trace_offset_hours"] = float(offset)
    backend = scenario.get("backend")
    if backend:
        kwargs["backend"] = str(backend)
    return kwargs


def reexecute(records: list[TraceRecordV1], *, registry=None):
    """Run a log's scenario again; returns ``(new_records, result)``.

    The fresh run traces into an in-memory collector under a tracer of
    its own, so the caller can diff the two streams (:func:`verify`) or
    keep stepping the result.  Supports the two scenario shapes the CLI
    writes: ``deploy`` (``{"tenant", "spec"}``) and ``fleet``
    (:data:`FLEET_DEFAULTS` keys).
    """
    from ..api import JobSpec, Orchestrator

    run_kind, scenario = scenario_of(records)
    collector = TraceCollector()
    tracer = RunTracer(collector, registry=registry)
    orchestrator = Orchestrator()
    if run_kind == "deploy":
        spec = JobSpec.from_dict(scenario["spec"])
        result = orchestrator.deploy(
            spec,
            tenant=str(scenario["tenant"]),
            tracer=tracer,
            **_deploy_kwargs(scenario),
        )
    elif run_kind == "fleet":
        specs, substrate, config, predictor = fleet_inputs(scenario)
        tracer.begin("fleet", scenario)
        result = orchestrator.fleet(
            specs,
            substrate,
            fleet_config=config,
            predictor=predictor,
            tracer=tracer,
        )
    else:
        raise TraceError(f"cannot replay run kind {run_kind!r}")
    return collector.records, result


def deterministic_lines(records: list[TraceRecordV1]) -> list[str]:
    """The log's deterministic stream, one canonical line per record.

    Filters to :data:`~repro.obs.records.DETERMINISTIC_KINDS` and
    renumbers ``seq`` by position in the filtered stream, so two runs of
    the same scenario — whatever wall-clock records (spans, snapshots)
    each interleaved — yield byte-identical line lists.
    """
    lines: list[str] = []
    for record in records:
        if record.kind not in DETERMINISTIC_KINDS:
            continue
        normalized = TraceRecordV1(
            run_id=record.run_id,
            seq=len(lines),
            hour=record.hour,
            kind=record.kind,
            payload=record.payload,
            trace_version=record.trace_version,
        )
        lines.append(normalized.encode())
    return lines


@dataclass(frozen=True)
class Divergence:
    """One point where the re-executed stream left the logged one."""

    #: Position in the deterministic stream (not the raw log).
    index: int
    #: The logged line ("" when the replay produced extra records).
    expected: str
    #: The re-executed line ("" when the replay ended early).
    observed: str


@dataclass
class ReplayReport:
    """Outcome of a verify-mode replay."""

    run_id: str
    run_kind: str
    record_count: int
    compared: int
    divergences: list[Divergence] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.divergences

    def describe(self) -> str:
        head = (
            f"replay {self.run_kind} run {self.run_id}: "
            f"{self.record_count} records, "
            f"{self.compared} deterministic records compared"
        )
        if self.ok:
            return head + "\nverified: streams identical"
        lines = [head, f"DIVERGED at {len(self.divergences)} position(s):"]
        for divergence in self.divergences:
            lines.append(f"  [{divergence.index}]")
            lines.append(f"    logged:   {divergence.expected or '<missing>'}")
            lines.append(f"    replayed: {divergence.observed or '<missing>'}")
        return "\n".join(lines)


#: Divergences reported before verify gives up enumerating them.
_MAX_DIVERGENCES = 10


def verify(records: list[TraceRecordV1]) -> ReplayReport:
    """Re-execute a log's scenario and diff the deterministic streams.

    Only the ``sim`` backend is deterministic — real execution backends
    (``pool``/``stub``) run actual workers whose timings and failures
    are not a function of the scenario, so their logs cannot be
    byte-verified and this raises :class:`TraceError` for them.
    """
    run_kind, scenario = scenario_of(records)
    backend = str(scenario.get("backend", "sim"))
    if backend != "sim":
        raise TraceError(
            f"cannot verify a {backend!r}-backend trace: only the sim "
            "backend re-executes deterministically"
        )
    expected = deterministic_lines(records)
    replayed, _result = reexecute(records)
    observed = deterministic_lines(replayed)
    divergences: list[Divergence] = []
    length = max(len(expected), len(observed))
    for index in range(length):
        logged = expected[index] if index < len(expected) else ""
        fresh = observed[index] if index < len(observed) else ""
        if logged != fresh:
            divergences.append(
                Divergence(index=index, expected=logged, observed=fresh)
            )
            if len(divergences) >= _MAX_DIVERGENCES:
                break
    return ReplayReport(
        run_id=records[0].run_id,
        run_kind=run_kind,
        record_count=len(records),
        compared=min(len(expected), len(observed)),
        divergences=divergences,
    )


def resume(records: list[TraceRecordV1]):
    """Finish a crashed run from its log; returns the final result.

    ``deploy`` logs resume by true rehydration: the last ``snapshot``
    record holds :meth:`~repro.core.controller.ControllerRun.snapshot`,
    the controller is rebuilt from the scenario's spec, and
    :meth:`~repro.core.controller.ControllerRun.restore` continues the
    run without re-solving history.  ``fleet`` logs resume by replay
    recovery: the scenario re-executes deterministically and the
    truncated log is checked to be a prefix of the fresh stream (raising
    :class:`TraceError` if the log disagrees with the re-execution —
    i.e. it was not produced by this scenario).

    A log that already has its ``run_end`` record did not crash; resume
    raises :class:`TraceError` rather than silently re-running it.
    """
    if records and records[-1].kind == "run_end":
        raise TraceError(
            "log is complete (run_end present) — nothing to resume"
        )
    run_kind, scenario = scenario_of(records)
    if run_kind == "fleet":
        prefix = deterministic_lines(records)
        replayed, result = reexecute(records)
        full = deterministic_lines(replayed)
        if full[: len(prefix)] != prefix:
            raise TraceError(
                "truncated log is not a prefix of its re-execution — "
                "the log does not match its recorded scenario"
            )
        return result
    if run_kind != "deploy":
        raise TraceError(f"cannot resume run kind {run_kind!r}")

    from ..api import JobSpec, Orchestrator
    from ..core.controller import ControllerRun, JobController

    snapshots = [r for r in records if r.kind == "snapshot"]
    if not snapshots:
        # Crashed before the first interval completed: nothing to
        # rehydrate, so re-execution *is* the resume.
        _replayed, result = reexecute(records)
        return result
    spec = JobSpec.from_dict(scenario["spec"])
    orchestrator = Orchestrator()
    services, goal, network, problem_kwargs = (
        orchestrator._controller_inputs(spec)
    )
    knobs = _deploy_kwargs(scenario)
    controller = JobController(
        spec.to_planner_job(),
        services,
        goal,
        network=network,
        planner=orchestrator.planner,
        config=knobs.get("controller_config"),
        trace_offset_hours=knobs.get("trace_offset_hours", 0.0),
        problem_kwargs=problem_kwargs,
        backend=knobs.get("backend", "sim"),
    )
    run = ControllerRun.restore(
        controller, snapshots[-1].payload["state"],
        actual=knobs.get("actual"),
    )
    try:
        while run.step() is not None:
            pass
        return run.result()
    finally:
        run.close()


__all__ = [
    "Divergence",
    "FLEET_DEFAULTS",
    "ReplayReport",
    "deterministic_lines",
    "fleet_inputs",
    "predictor_for",
    "reexecute",
    "resume",
    "scenario_of",
    "trace_for",
    "verify",
]
