"""LP/MILP modeling and solving substrate.

The paper models MapReduce deployments as a dynamic linear program and
solves it with CPLEX (Sections 4 and 4.8).  This package provides the
equivalent substrate built from scratch:

- :class:`Variable`, :class:`LinExpr`, :class:`Constraint` — the algebra.
- :class:`Model` — container, semi-continuous lowering, solve dispatch.
- scipy/HiGHS backend (production path) and a pure-Python two-phase
  simplex with branch & bound (portable fallback / cross-check).

Quick example::

    from repro.lp import Model

    m = Model()
    x = m.add_var("x", ub=10)
    y = m.add_var("y", ub=10)
    m.add_constr(x + y <= 12)
    m.maximize(2 * x + 3 * y)
    solution = m.solve()
"""

from .expr import Constraint, LinExpr, Sense, Variable, VarType, lin_sum
from .model import (
    Model,
    ObjectiveSense,
    Solution,
    SolveStatus,
    SolverError,
)
from .presolve import PresolveResult, PresolveStats, presolve
from .writers import save, write_lp, write_mps

__all__ = [
    "Constraint",
    "LinExpr",
    "Model",
    "ObjectiveSense",
    "PresolveResult",
    "PresolveStats",
    "Sense",
    "Solution",
    "SolveStatus",
    "SolverError",
    "Variable",
    "VarType",
    "lin_sum",
    "presolve",
    "save",
    "write_lp",
    "write_mps",
]
