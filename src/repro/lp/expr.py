"""Linear expressions, variables, and constraints.

This module implements the algebraic layer of the LP/MILP substrate: the
paper's planner (Section 4) generates a dynamic linear program whose
variables, linear expressions and constraints are represented by the classes
here.  The design mirrors mainstream modeling layers (PuLP, gurobipy): you
combine :class:`Variable` objects with ``+``, ``-``, ``*`` into
:class:`LinExpr`, and comparison operators (``<=``, ``>=``, ``==``) produce
:class:`Constraint` objects that can be added to a :class:`repro.lp.Model`.
"""

from __future__ import annotations

import enum
import math
from typing import Iterable, Mapping, Union

Number = Union[int, float]


class VarType(enum.Enum):
    """Domain of a decision variable."""

    CONTINUOUS = "continuous"
    INTEGER = "integer"
    BINARY = "binary"
    #: Either exactly 0 or within ``[sc_lb, ub]`` (paper Section 4.3 uses a
    #: semi-continuous variable for the map/reduce phase barrier).  Lowered
    #: to a binary indicator during model compilation.
    SEMI_CONTINUOUS = "semi-continuous"


class Sense(enum.Enum):
    """Direction of a constraint relation."""

    LE = "<="
    GE = ">="
    EQ = "=="


class Variable:
    """A decision variable.

    Variables are created through :meth:`repro.lp.Model.add_var`, which
    assigns the ``index`` used to address the variable in solver matrices.

    Parameters
    ----------
    name:
        Human-readable identifier (used in solution dumps and errors).
    index:
        Column index in the owning model, assigned by the model.
    lb, ub:
        Lower/upper bounds.  ``ub`` may be ``math.inf``.
    vtype:
        Variable domain; see :class:`VarType`.
    sc_lb:
        For semi-continuous variables only: the lowest non-zero value the
        variable may take.
    """

    __slots__ = ("name", "index", "lb", "ub", "vtype", "sc_lb")

    def __init__(
        self,
        name: str,
        index: int,
        lb: float = 0.0,
        ub: float = math.inf,
        vtype: VarType = VarType.CONTINUOUS,
        sc_lb: float = 0.0,
    ) -> None:
        if lb > ub:
            raise ValueError(f"variable {name!r}: lb {lb} > ub {ub}")
        if vtype is VarType.BINARY:
            lb, ub = max(lb, 0.0), min(ub, 1.0)
        if vtype is VarType.SEMI_CONTINUOUS:
            if not math.isfinite(ub):
                raise ValueError(
                    f"semi-continuous variable {name!r} needs a finite upper bound"
                )
            if sc_lb < 0:
                raise ValueError(f"semi-continuous lb must be >= 0, got {sc_lb}")
        self.name = name
        self.index = index
        self.lb = float(lb)
        self.ub = float(ub)
        self.vtype = vtype
        self.sc_lb = float(sc_lb)

    # -- algebra ----------------------------------------------------------

    def _as_expr(self) -> "LinExpr":
        return LinExpr({self: 1.0})

    def __add__(self, other: Union["Variable", "LinExpr", Number]) -> "LinExpr":
        return self._as_expr() + other

    __radd__ = __add__

    def __sub__(self, other: Union["Variable", "LinExpr", Number]) -> "LinExpr":
        return self._as_expr() - other

    def __rsub__(self, other: Union["Variable", "LinExpr", Number]) -> "LinExpr":
        return (-self._as_expr()) + other

    def __mul__(self, coef: Number) -> "LinExpr":
        return self._as_expr() * coef

    __rmul__ = __mul__

    def __truediv__(self, denom: Number) -> "LinExpr":
        return self._as_expr() / denom

    def __neg__(self) -> "LinExpr":
        return self._as_expr() * -1.0

    def __le__(self, other: Union["Variable", "LinExpr", Number]) -> "Constraint":
        return self._as_expr() <= other

    def __ge__(self, other: Union["Variable", "LinExpr", Number]) -> "Constraint":
        return self._as_expr() >= other

    def __eq__(self, other: object):  # type: ignore[override]
        if isinstance(other, (Variable, LinExpr, int, float)):
            return self._as_expr() == other
        return NotImplemented

    def __hash__(self) -> int:
        return id(self)

    def __repr__(self) -> str:
        return f"Variable({self.name!r})"


class LinExpr:
    """An affine expression ``sum(coef_i * var_i) + constant``."""

    __slots__ = ("terms", "constant")

    def __init__(
        self,
        terms: Mapping[Variable, float] | None = None,
        constant: float = 0.0,
    ) -> None:
        self.terms: dict[Variable, float] = dict(terms) if terms else {}
        self.constant = float(constant)

    @classmethod
    def from_value(cls, value: Union["LinExpr", Variable, Number]) -> "LinExpr":
        """Coerce a variable or number into a :class:`LinExpr`."""
        if isinstance(value, LinExpr):
            return value.copy()
        if isinstance(value, Variable):
            return value._as_expr()
        if isinstance(value, (int, float)):
            return cls(constant=float(value))
        raise TypeError(f"cannot build LinExpr from {type(value).__name__}")

    def copy(self) -> "LinExpr":
        return LinExpr(self.terms, self.constant)

    # -- algebra ----------------------------------------------------------

    def _iadd(self, other: Union["LinExpr", Variable, Number], sign: float) -> "LinExpr":
        other = LinExpr.from_value(other)
        result = self.copy()
        for var, coef in other.terms.items():
            result.terms[var] = result.terms.get(var, 0.0) + sign * coef
        result.constant += sign * other.constant
        return result

    def __add__(self, other: Union["LinExpr", Variable, Number]) -> "LinExpr":
        return self._iadd(other, 1.0)

    __radd__ = __add__

    def __sub__(self, other: Union["LinExpr", Variable, Number]) -> "LinExpr":
        return self._iadd(other, -1.0)

    def __rsub__(self, other: Union["LinExpr", Variable, Number]) -> "LinExpr":
        return (-self) + other

    def __mul__(self, coef: Number) -> "LinExpr":
        if not isinstance(coef, (int, float)):
            raise TypeError("LinExpr supports multiplication by scalars only")
        return LinExpr(
            {var: c * coef for var, c in self.terms.items()},
            self.constant * coef,
        )

    __rmul__ = __mul__

    def __truediv__(self, denom: Number) -> "LinExpr":
        if denom == 0:
            raise ZeroDivisionError("division of LinExpr by zero")
        return self * (1.0 / denom)

    def __neg__(self) -> "LinExpr":
        return self * -1.0

    # -- relations --------------------------------------------------------

    def __le__(self, other: Union["LinExpr", Variable, Number]) -> "Constraint":
        return Constraint(self - other, Sense.LE)

    def __ge__(self, other: Union["LinExpr", Variable, Number]) -> "Constraint":
        return Constraint(self - other, Sense.GE)

    def __eq__(self, other: object):  # type: ignore[override]
        if isinstance(other, (LinExpr, Variable, int, float)):
            return Constraint(self - other, Sense.EQ)
        return NotImplemented

    def __hash__(self) -> int:
        return id(self)

    # -- inspection --------------------------------------------------------

    def variables(self) -> list[Variable]:
        """Variables with a non-zero coefficient, in insertion order."""
        return [v for v, c in self.terms.items() if c != 0.0]

    def coefficient(self, var: Variable) -> float:
        return self.terms.get(var, 0.0)

    def evaluate(self, values: Mapping[Variable, float]) -> float:
        """Evaluate the expression under a variable assignment."""
        return self.constant + sum(
            coef * values[var] for var, coef in self.terms.items() if coef != 0.0
        )

    def __repr__(self) -> str:
        parts = [f"{coef:+g}*{var.name}" for var, coef in self.terms.items()]
        if self.constant or not parts:
            parts.append(f"{self.constant:+g}")
        return "LinExpr(" + " ".join(parts) + ")"


def lin_sum(items: Iterable[Union[LinExpr, Variable, Number]]) -> LinExpr:
    """Sum an iterable of expressions/variables/numbers into one LinExpr.

    Unlike repeated ``+`` (which copies at every step), this accumulates in
    place and is linear in the total number of terms — the model builder
    sums thousands of terms when generating time-expanded constraints.
    """
    total = LinExpr()
    for item in items:
        item = LinExpr.from_value(item)
        for var, coef in item.terms.items():
            total.terms[var] = total.terms.get(var, 0.0) + coef
        total.constant += item.constant
    return total


class Constraint:
    """A linear constraint ``expr (<=|>=|==) 0``.

    Comparison operators on expressions move everything to the left-hand
    side, so the stored form always compares against zero; ``rhs`` exposes
    the conventional right-hand side (the negated constant).
    """

    __slots__ = ("expr", "sense", "name")

    def __init__(self, expr: LinExpr, sense: Sense, name: str = "") -> None:
        self.expr = expr
        self.sense = sense
        self.name = name

    @property
    def rhs(self) -> float:
        return -self.expr.constant

    def satisfied_by(self, values: Mapping[Variable, float], tol: float = 1e-6) -> bool:
        """Check the constraint under an assignment, within ``tol``.

        ``tol`` is relative to the row's infinity norm: the residual is
        compared against ``tol * max(1, |constant|, max|coef|)``, the
        standard scaled feasibility check.  Solver round-off scales with
        the row's coefficients — a row like ``x - 850*n <= 0`` solved
        through presolve and a MIP gap can carry an absolute residual
        orders of magnitude above an unscaled ``tol`` while still being
        feasible for every practical purpose.
        """
        lhs = self.expr.evaluate(values)
        scale = max(
            1.0,
            abs(self.expr.constant),
            *(
                abs(coef)
                for coef in self.expr.terms.values()
                if coef != 0.0
            ),
        )
        allowed = tol * scale
        if self.sense is Sense.LE:
            return lhs <= allowed
        if self.sense is Sense.GE:
            return lhs >= -allowed
        return abs(lhs) <= allowed

    def __repr__(self) -> str:
        label = f" [{self.name}]" if self.name else ""
        return f"Constraint({self.expr!r} {self.sense.value} 0{label})"
