"""Compiled-matrix diffing and in-place patching.

The replan hot path re-solves a model that is almost identical to the
previous one: spot-price estimates moved (objective coefficients),
capacity changed (variable bounds), work got done (right-hand sides).
This module compares two :class:`~repro.lp.model.CompiledModel` objects
that came from the *same model structure* and classifies the change:

- **patchable** — only numeric data moved (variable bounds, row bounds,
  matrix coefficient values on unchanged sparsity, objective): the diff
  is a :class:`CompiledDelta` that :meth:`CompiledDelta.apply` writes
  into the retained matrix in place;
- **structural** — anything that changes shape (column/row counts,
  sparsity patterns, integrality, bound finiteness, column identity):
  :func:`diff_compiled` returns ``None`` and the caller must fall back
  to a cold compile + solve.

Bound *finiteness* counts as structure because the pure-simplex standard
form emits one slack column per finite bound side — a bound flipping
between finite and infinite relays to a different standard-form layout
and would invalidate any retained basis.
"""

from __future__ import annotations

import hashlib
import math
from dataclasses import dataclass, field

from .model import CompiledModel

__all__ = ["CompiledDelta", "diff_compiled", "structural_signature"]


@dataclass
class CompiledDelta:
    """A pure-data patch between two structurally identical matrices."""

    #: ``(column, new_lb, new_ub)`` for every variable whose bounds moved.
    var_bounds: list[tuple[int, float, float]] = field(default_factory=list)
    #: ``(row, new_lb, new_ub)`` for every constraint whose sides moved.
    row_bounds: list[tuple[int, float, float]] = field(default_factory=list)
    #: ``(row, column, new_coef)`` value changes on unchanged sparsity.
    matrix: list[tuple[int, int, float]] = field(default_factory=list)
    #: Full replacement objective mapping, or ``None`` if unchanged.
    #: (Objective sparsity is not structure: a price decaying to zero
    #: drops the key without touching the constraint matrix.)
    objective: dict[int, float] | None = None
    objective_offset: float | None = None

    @property
    def empty(self) -> bool:
        return not (
            self.var_bounds
            or self.row_bounds
            or self.matrix
            or self.objective is not None
            or self.objective_offset is not None
        )

    @property
    def size(self) -> int:
        """Number of individual patches (for logging/metrics)."""
        return (
            len(self.var_bounds)
            + len(self.row_bounds)
            + len(self.matrix)
            + (len(self.objective) if self.objective is not None else 0)
            + (1 if self.objective_offset is not None else 0)
        )

    def apply(self, compiled: CompiledModel) -> None:
        """Write the patch into ``compiled`` in place."""
        for col, lo, hi in self.var_bounds:
            compiled.var_lb[col] = lo
            compiled.var_ub[col] = hi
        for row, lo, hi in self.row_bounds:
            compiled.row_lb[row] = lo
            compiled.row_ub[row] = hi
        for row, col, coef in self.matrix:
            compiled.rows[row][col] = coef
        if self.objective is not None:
            compiled.objective = dict(self.objective)
        if self.objective_offset is not None:
            compiled.objective_offset = self.objective_offset


def _same_finiteness(a: float, b: float) -> bool:
    return math.isfinite(a) == math.isfinite(b) and (
        math.isfinite(a) or (a > 0) == (b > 0)
    )


def _column_name(compiled: CompiledModel, col: int) -> str | None:
    var = compiled.columns[col]
    return None if var is None else var.name


def diff_compiled(old: CompiledModel, new: CompiledModel) -> CompiledDelta | None:
    """Classify ``old -> new``; ``None`` means the change is structural.

    Structure is judged conservatively: column count and identity (by
    variable name — two models of the same shape but over different
    service sets must not patch into each other), row count and per-row
    sparsity, integrality flags, objective sense, and the finiteness
    pattern of every bound.  Everything that passes is expressible as a
    :class:`CompiledDelta`, and applying it to ``old`` makes it
    numerically identical to ``new``.
    """
    if old.num_vars != new.num_vars or len(old.rows) != len(new.rows):
        return None
    if old.negated != new.negated:
        return None
    if old.integrality != new.integrality:
        return None
    for col in range(old.num_vars):
        if _column_name(old, col) != _column_name(new, col):
            return None

    delta = CompiledDelta()
    for col in range(new.num_vars):
        old_lo, old_hi = old.var_lb[col], old.var_ub[col]
        new_lo, new_hi = new.var_lb[col], new.var_ub[col]
        if not (_same_finiteness(old_lo, new_lo) and _same_finiteness(old_hi, new_hi)):
            return None
        if old_lo != new_lo or old_hi != new_hi:
            delta.var_bounds.append((col, new_lo, new_hi))

    for r, (old_row, new_row) in enumerate(zip(old.rows, new.rows)):
        old_lo, old_hi = old.row_lb[r], old.row_ub[r]
        new_lo, new_hi = new.row_lb[r], new.row_ub[r]
        if not (_same_finiteness(old_lo, new_lo) and _same_finiteness(old_hi, new_hi)):
            return None
        if old_lo != new_lo or old_hi != new_hi:
            delta.row_bounds.append((r, new_lo, new_hi))
        if old_row.keys() != new_row.keys():
            return None
        for col, coef in new_row.items():
            if old_row[col] != coef:
                delta.matrix.append((r, col, coef))

    if old.objective != new.objective:
        delta.objective = dict(new.objective)
    if old.objective_offset != new.objective_offset:
        delta.objective_offset = new.objective_offset
    return delta


def structural_signature(compiled: CompiledModel) -> str:
    """Shape-only digest of a compiled matrix.

    Two matrices share a signature exactly when :func:`diff_compiled`
    would classify their difference as patchable (pure data).  Used by
    tests and as a collision re-check in the incremental solver — the
    problem-level structural fingerprint is a cheaper upper bound, and
    this is the matrix-level ground truth.
    """
    def shape(bound: float) -> int:
        # 0 = finite, +/-1 = the two infinities (finiteness is structure;
        # which infinity matters for the standard-form slack layout too).
        if math.isfinite(bound):
            return 0
        return 1 if bound > 0 else -1

    hasher = hashlib.sha256()
    hasher.update(repr((
        compiled.num_vars,
        compiled.negated,
        tuple(compiled.integrality),
        tuple(_column_name(compiled, col) for col in range(compiled.num_vars)),
        tuple(
            (shape(lo), shape(hi))
            for lo, hi in zip(compiled.var_lb, compiled.var_ub)
        ),
        tuple(tuple(sorted(row)) for row in compiled.rows),
        tuple(
            (shape(lo), shape(hi))
            for lo, hi in zip(compiled.row_lb, compiled.row_ub)
        ),
    )).encode("utf-8"))
    return hasher.hexdigest()
