"""LP/MILP model container and solution objects.

A :class:`Model` owns variables and constraints, lowers semi-continuous
variables to binary indicators, and dispatches to a solver backend
(scipy/HiGHS by default, the pure-Python simplex + branch & bound as a
fallback).  This is the substrate standing in for CPLEX in the paper
(Section 4.8).
"""

from __future__ import annotations

import enum
import math
import time
from dataclasses import dataclass, field
from typing import Iterable, Mapping, Sequence, Union

from .expr import Constraint, LinExpr, Number, Sense, Variable, VarType, lin_sum


class ObjectiveSense(enum.Enum):
    MINIMIZE = "minimize"
    MAXIMIZE = "maximize"


class SolveStatus(enum.Enum):
    OPTIMAL = "optimal"
    #: Feasible but not proven optimal (time/iteration limit hit, mirroring
    #: the paper's three-minute CPLEX cut-off, Section 4.8).
    FEASIBLE = "feasible"
    INFEASIBLE = "infeasible"
    UNBOUNDED = "unbounded"
    ERROR = "error"

    @property
    def has_solution(self) -> bool:
        return self in (SolveStatus.OPTIMAL, SolveStatus.FEASIBLE)


class SolverError(RuntimeError):
    """Raised when a backend cannot process the model at all."""


@dataclass
class Solution:
    """Result of a solve: status, objective value and variable assignment."""

    status: SolveStatus
    objective: float = math.nan
    values: dict[Variable, float] = field(default_factory=dict)
    solve_seconds: float = 0.0
    backend: str = ""
    message: str = ""
    #: Optimal simplex basis (standard-form column per row) for pure-LP
    #: solves on basis-capable backends; feed back as ``start_basis`` to
    #: warm-start a structurally identical re-solve.  ``None`` when the
    #: backend does not expose one (HiGHS via ``scipy.optimize.milp``).
    basis: tuple[int, ...] | None = None

    def __getitem__(self, var: Variable) -> float:
        return self.values[var]

    def value(self, item: Union[Variable, LinExpr, Number]) -> float:
        """Evaluate a variable or expression under this solution."""
        if isinstance(item, Variable):
            return self.values[item]
        if isinstance(item, LinExpr):
            return item.evaluate(self.values)
        return float(item)

    def __bool__(self) -> bool:
        return self.status.has_solution


@dataclass
class CompiledModel:
    """Matrix form of a model after lowering, consumed by backends.

    All constraints are expressed as ``row_lb <= A x <= row_ub`` where ``A``
    is a list of sparse rows ``{column: coef}``.  The objective is always a
    minimization of ``c x`` (maximization is negated during compilation).
    """

    num_vars: int
    objective: dict[int, float]
    objective_offset: float
    rows: list[dict[int, float]]
    row_lb: list[float]
    row_ub: list[float]
    var_lb: list[float]
    var_ub: list[float]
    integrality: list[bool]
    #: Map column -> originating Variable (lowering binaries have none).
    columns: list[Variable | None]
    negated: bool


class Model:
    """A mixed-integer linear program under construction.

    Example
    -------
    >>> m = Model("toy")
    >>> x = m.add_var("x", ub=4)
    >>> y = m.add_var("y", ub=4)
    >>> m.add_constr(x + 2 * y <= 6, "cap")
    >>> m.maximize(3 * x + 2 * y)
    >>> sol = m.solve()
    >>> round(sol.objective, 6)
    14.0
    """

    def __init__(self, name: str = "model") -> None:
        self.name = name
        self.variables: list[Variable] = []
        self.constraints: list[Constraint] = []
        self._objective = LinExpr()
        self._sense = ObjectiveSense.MINIMIZE
        self._names: set[str] = set()
        #: Compiled matrix form, kept until the model is mutated so that
        #: re-solving an unchanged model (the planning service's warm
        #: BuiltModel path) skips the lowering pass.
        self._compiled: CompiledModel | None = None
        #: Variable bounds/types at compile time, used to detect in-place
        #: mutation (``var.ub = ...``) that bypasses the hooks above.
        self._compiled_bounds: list[tuple] | None = None

    # -- construction -----------------------------------------------------

    def add_var(
        self,
        name: str,
        lb: float = 0.0,
        ub: float = math.inf,
        vtype: VarType = VarType.CONTINUOUS,
        sc_lb: float = 0.0,
    ) -> Variable:
        """Create and register a decision variable."""
        if name in self._names:
            raise ValueError(f"duplicate variable name {name!r} in model {self.name!r}")
        self._names.add(name)
        var = Variable(name, len(self.variables), lb=lb, ub=ub, vtype=vtype, sc_lb=sc_lb)
        self.variables.append(var)
        self._compiled = None
        return var

    def add_vars(
        self,
        prefix: str,
        count: int,
        lb: float = 0.0,
        ub: float = math.inf,
        vtype: VarType = VarType.CONTINUOUS,
    ) -> list[Variable]:
        """Create ``count`` variables named ``prefix[0] .. prefix[count-1]``."""
        return [
            self.add_var(f"{prefix}[{i}]", lb=lb, ub=ub, vtype=vtype)
            for i in range(count)
        ]

    def add_constr(self, constraint: Constraint, name: str = "") -> Constraint:
        """Register a constraint built from expression comparisons."""
        if not isinstance(constraint, Constraint):
            raise TypeError(
                "add_constr expects a Constraint (did the comparison produce a bool?)"
            )
        for var in constraint.expr.terms:
            if not (0 <= var.index < len(self.variables)) or self.variables[var.index] is not var:
                raise ValueError(
                    f"constraint {name or constraint!r} references variable "
                    f"{var.name!r} from a different model"
                )
        if name:
            constraint.name = name
        self.constraints.append(constraint)
        self._compiled = None
        return constraint

    def add_constrs(self, constraints: Iterable[Constraint], prefix: str = "") -> None:
        for i, constraint in enumerate(constraints):
            self.add_constr(constraint, f"{prefix}[{i}]" if prefix else "")

    def minimize(self, expr: Union[LinExpr, Variable, Number]) -> None:
        self._objective = LinExpr.from_value(expr)
        self._sense = ObjectiveSense.MINIMIZE
        self._compiled = None

    def maximize(self, expr: Union[LinExpr, Variable, Number]) -> None:
        self._objective = LinExpr.from_value(expr)
        self._sense = ObjectiveSense.MAXIMIZE
        self._compiled = None

    @property
    def objective(self) -> LinExpr:
        return self._objective

    @property
    def sense(self) -> ObjectiveSense:
        return self._sense

    @property
    def num_integers(self) -> int:
        return sum(
            1
            for v in self.variables
            if v.vtype in (VarType.INTEGER, VarType.BINARY, VarType.SEMI_CONTINUOUS)
        )

    # -- compilation ------------------------------------------------------

    def compile(self) -> CompiledModel:
        """Lower the model to matrix form.

        Semi-continuous variables ``x in {0} ∪ [L, U]`` are lowered with an
        auxiliary binary ``z``: ``x <= U z`` and ``x >= L z``.

        The result is cached until the model is mutated (new variable or
        constraint, objective change); backends treat it as read-only.
        Variables mutated *in place* (``var.ub = ...``) bypass the
        explicit invalidation hooks, so the cache is revalidated against
        the live variable bounds on every call — a stale compiled matrix
        here would silently serve the planning service's warm
        ``BuiltModel`` path wrong bounds.
        """
        if self._compiled is not None:
            if self._compiled_bounds == self._bounds_signature():
                return self._compiled
            self._compiled = None
        columns: list[Variable | None] = list(self.variables)
        var_lb = [v.lb for v in self.variables]
        var_ub = [v.ub for v in self.variables]
        integrality = [
            v.vtype in (VarType.INTEGER, VarType.BINARY) for v in self.variables
        ]

        rows: list[dict[int, float]] = []
        row_lb: list[float] = []
        row_ub: list[float] = []

        def add_row(coefs: dict[int, float], lo: float, hi: float) -> None:
            rows.append(coefs)
            row_lb.append(lo)
            row_ub.append(hi)

        # Lower semi-continuous variables first so their indicator columns
        # exist before constraint rows are emitted.
        for var in self.variables:
            if var.vtype is not VarType.SEMI_CONTINUOUS:
                continue
            z_index = len(columns)
            columns.append(None)
            var_lb.append(0.0)
            var_ub.append(1.0)
            integrality.append(True)
            # x - U z <= 0
            add_row({var.index: 1.0, z_index: -var.ub}, -math.inf, 0.0)
            # x - L z >= 0
            add_row({var.index: 1.0, z_index: -var.sc_lb}, 0.0, math.inf)
            # The continuous column itself relaxes to [0, ub].
            var_lb[var.index] = 0.0

        for constraint in self.constraints:
            coefs = {
                var.index: coef
                for var, coef in constraint.expr.terms.items()
                if coef != 0.0
            }
            bound = -constraint.expr.constant
            if constraint.sense is Sense.LE:
                add_row(coefs, -math.inf, bound)
            elif constraint.sense is Sense.GE:
                add_row(coefs, bound, math.inf)
            else:
                add_row(coefs, bound, bound)

        negated = self._sense is ObjectiveSense.MAXIMIZE
        sign = -1.0 if negated else 1.0
        objective = {
            var.index: sign * coef
            for var, coef in self._objective.terms.items()
            if coef != 0.0
        }
        self._compiled = CompiledModel(
            num_vars=len(columns),
            objective=objective,
            objective_offset=sign * self._objective.constant,
            rows=rows,
            row_lb=row_lb,
            row_ub=row_ub,
            var_lb=var_lb,
            var_ub=var_ub,
            integrality=integrality,
            columns=columns,
            negated=negated,
        )
        self._compiled_bounds = self._bounds_signature()
        return self._compiled

    def _bounds_signature(self) -> list[tuple]:
        """Variable data the compiled matrix bakes in (bounds, types)."""
        return [(v.lb, v.ub, v.vtype, v.sc_lb) for v in self.variables]

    # -- solving ----------------------------------------------------------

    def solve(
        self,
        backend: str = "auto",
        time_limit: float | None = 180.0,
        mip_gap: float = 0.01,
        presolve: bool = False,
        start_basis: tuple[int, ...] | None = None,
    ) -> Solution:
        """Solve the model and return a :class:`Solution`.

        Parameters
        ----------
        backend:
            ``"auto"`` (scipy/HiGHS when importable, else pure Python),
            ``"scipy"``, or ``"simplex"`` (pure-Python simplex + B&B).
        time_limit:
            Wall-clock cut-off in seconds.  Defaults to 180 s, the paper's
            three-minute bound on CPLEX solving time (Section 4.8).
        mip_gap:
            Relative MIP gap at which to stop; the paper configured CPLEX
            to stop within 1% of optimal (Section 6.6).
        presolve:
            Apply :mod:`repro.lp.presolve` reductions before dispatching
            (fixed columns, singleton/redundant rows).  HiGHS presolves
            internally, so this mainly helps the pure-Python backend and
            the re-planning path, where the system state pins many
            columns.
        start_basis:
            Optimal basis of a prior pure-LP solve on an identically
            shaped model; basis-capable backends warm-start phase 2 from
            it and fall back to a cold solve when it no longer applies.
            Incompatible with ``presolve`` (the reduction renumbers
            columns).
        """
        if start_basis is not None and presolve:
            raise ValueError("start_basis cannot be combined with presolve")
        compiled = self.compile()
        start = time.perf_counter()
        reduction = None
        if presolve:
            from .presolve import presolve as run_presolve

            reduction = run_presolve(compiled)
            if reduction.infeasible:
                return Solution(
                    status=SolveStatus.INFEASIBLE,
                    backend="presolve",
                    message="infeasibility proven during presolve",
                    solve_seconds=time.perf_counter() - start,
                )
            compiled = reduction.reduced
        if backend == "auto":
            try:
                from . import scipy_backend

                solution = scipy_backend.solve(
                    compiled, time_limit, mip_gap, start_basis=start_basis
                )
            except ImportError:  # pragma: no cover - scipy is a hard dep
                from . import simplex_backend

                solution = simplex_backend.solve(
                    compiled, time_limit, start_basis=start_basis
                )
        elif backend == "scipy":
            from . import scipy_backend

            solution = scipy_backend.solve(
                compiled, time_limit, mip_gap, start_basis=start_basis
            )
        elif backend == "simplex":
            from . import simplex_backend

            solution = simplex_backend.solve(
                compiled, time_limit, start_basis=start_basis
            )
        else:
            raise ValueError(f"unknown backend {backend!r}")

        solution.solve_seconds = time.perf_counter() - start
        if solution.status.has_solution:
            if reduction is not None:
                # Original compiled columns 0..n-1 are self.variables in
                # order (lowering binaries come after), so fixed original
                # columns map straight back to model variables.
                for col, value in reduction.fixed_values.items():
                    if col < len(self.variables):
                        solution.values[self.variables[col]] = value
            solution.values = {
                var: solution.values.get(var, 0.0) for var in self.variables
            }
            solution.objective = self._objective.evaluate(solution.values)
        return solution

    def check_feasible(self, values: Mapping[Variable, float], tol: float = 1e-5) -> list[Constraint]:
        """Return the constraints violated by ``values`` (bounds included).

        Used by tests and by the planner's self-check: a returned plan must
        satisfy every constraint of the model that produced it.
        """
        violated = []
        for constraint in self.constraints:
            if not constraint.satisfied_by(values, tol):
                violated.append(constraint)
        for var in self.variables:
            x = values[var]
            if x < var.lb - tol or x > var.ub + tol:
                violated.append(Constraint(LinExpr({var: 1.0}), Sense.GE, f"bounds({var.name})"))
            elif var.vtype in (VarType.INTEGER, VarType.BINARY) and abs(x - round(x)) > tol:
                violated.append(
                    Constraint(LinExpr({var: 1.0}), Sense.EQ, f"integrality({var.name})")
                )
            elif var.vtype is VarType.SEMI_CONTINUOUS and x > tol and x < var.sc_lb - tol:
                violated.append(
                    Constraint(LinExpr({var: 1.0}), Sense.GE, f"semicontinuous({var.name})")
                )
        return violated

    def stats(self) -> dict[str, int]:
        """Model size summary (used by the Fig. 16 solving-time bench)."""
        return {
            "variables": len(self.variables),
            "integers": self.num_integers,
            "constraints": len(self.constraints),
            "nonzeros": sum(len(c.expr.terms) for c in self.constraints),
        }

    def __repr__(self) -> str:
        s = self.stats()
        return (
            f"Model({self.name!r}, vars={s['variables']}, "
            f"ints={s['integers']}, constrs={s['constraints']})"
        )


__all__ = [
    "Model",
    "Solution",
    "SolveStatus",
    "ObjectiveSense",
    "CompiledModel",
    "SolverError",
    "lin_sum",
]
