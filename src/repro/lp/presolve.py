"""Presolve: shrink a compiled model before handing it to a backend.

The planner's time-indexed models contain many columns a solver never
needs to think about: variables pinned by the system state (work already
done), singleton capacity rows, and rows made redundant by variable
bounds.  This module applies the classic reductions:

1. **Fixed columns** (``lb == ub``): substituted into every row and the
   objective, then dropped.
2. **Singleton rows** (one nonzero): converted into variable bounds and
   dropped.
3. **Redundant rows**: rows whose activity range — computed from the
   variable bounds — already lies inside the row bounds.
4. **Empty rows**: feasibility-checked and dropped.

Reductions iterate to a fixpoint.  :class:`PresolveResult` carries the
reduced model plus everything needed to map a reduced solution back to
the original columns (``restore``).  Infeasibility discovered during
presolve is reported without invoking a backend at all.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

from .model import CompiledModel

_TOL = 1e-9
_MAX_PASSES = 10


@dataclass
class PresolveStats:
    """What presolve removed (for logging and the ablation bench)."""

    fixed_columns: int = 0
    singleton_rows: int = 0
    redundant_rows: int = 0
    empty_rows: int = 0
    passes: int = 0

    @property
    def rows_removed(self) -> int:
        return self.singleton_rows + self.redundant_rows + self.empty_rows


@dataclass
class PresolveResult:
    """A reduced model plus the recipe to undo the reduction."""

    reduced: CompiledModel
    #: original column -> fixed value, for columns removed by presolve.
    fixed_values: dict[int, float]
    #: reduced column index -> original column index.
    kept_columns: list[int]
    infeasible: bool
    stats: PresolveStats

    def restore(self, reduced_values: list[float]) -> list[float]:
        """Expand a reduced-model solution vector to original columns."""
        total = len(self.kept_columns) + len(self.fixed_values)
        full = [0.0] * total
        for col, value in self.fixed_values.items():
            full[col] = value
        for new_col, old_col in enumerate(self.kept_columns):
            full[old_col] = reduced_values[new_col]
        return full


def presolve(compiled: CompiledModel) -> PresolveResult:
    """Apply the reductions to a fixpoint and rebuild a compact model."""
    stats = PresolveStats()
    n = compiled.num_vars
    lb = list(compiled.var_lb)
    ub = list(compiled.var_ub)
    integrality = list(compiled.integrality)
    rows = [dict(r) for r in compiled.rows]
    row_lb = list(compiled.row_lb)
    row_ub = list(compiled.row_ub)
    alive_row = [True] * len(rows)
    fixed: dict[int, float] = {}
    infeasible = False

    def fix_column(col: int, value: float) -> bool:
        """Substitute ``col = value``; False on detected infeasibility."""
        fixed[col] = value
        for r, row in enumerate(rows):
            if not alive_row[r] or col not in row:
                continue
            coef = row.pop(col)
            if math.isfinite(row_lb[r]):
                row_lb[r] -= coef * value
            if math.isfinite(row_ub[r]):
                row_ub[r] -= coef * value
            if not row:  # became empty: constant feasibility check
                alive_row[r] = False
                stats.empty_rows += 1
                if row_lb[r] > _TOL or row_ub[r] < -_TOL:
                    return False
        return True

    for _pass in range(_MAX_PASSES):
        stats.passes = _pass + 1
        changed = False

        # 1. Fixed columns.
        for col in range(n):
            if col in fixed:
                continue
            if lb[col] > ub[col] + _TOL:
                infeasible = True
                break
            if abs(ub[col] - lb[col]) <= _TOL:
                value = lb[col]
                if integrality[col]:
                    value = round(value)
                stats.fixed_columns += 1
                changed = True
                if not fix_column(col, value):
                    infeasible = True
                    break
        if infeasible:
            break

        # 2. Singleton rows -> bounds.
        for r, row in enumerate(rows):
            if not alive_row[r] or len(row) != 1:
                continue
            ((col, coef),) = row.items()
            if abs(coef) <= _TOL:
                continue
            lo, hi = row_lb[r], row_ub[r]
            implied_lo = lo / coef if math.isfinite(lo) else -math.inf
            implied_hi = hi / coef if math.isfinite(hi) else math.inf
            if coef < 0:
                implied_lo, implied_hi = implied_hi, implied_lo
            if implied_lo > lb[col] + _TOL:
                lb[col] = implied_lo
                changed = True
            if implied_hi < ub[col] - _TOL:
                ub[col] = implied_hi
                changed = True
            alive_row[r] = False
            stats.singleton_rows += 1
            if lb[col] > ub[col] + _TOL:
                infeasible = True
                break
        if infeasible:
            break

        # 3. Redundant rows (activity bounds within row bounds).
        for r, row in enumerate(rows):
            if not alive_row[r] or not row:
                continue
            act_lo, act_hi = 0.0, 0.0
            determinate = True
            for col, coef in row.items():
                x_lo = fixed.get(col, lb[col])
                x_hi = fixed.get(col, ub[col])
                terms = (coef * x_lo, coef * x_hi)
                if not all(math.isfinite(t) or t in (math.inf, -math.inf)
                           for t in terms):
                    determinate = False
                    break
                act_lo += min(terms)
                act_hi += max(terms)
            if not determinate:
                continue
            lo_ok = not math.isfinite(row_lb[r]) or act_lo >= row_lb[r] - _TOL
            hi_ok = not math.isfinite(row_ub[r]) or act_hi <= row_ub[r] + _TOL
            if lo_ok and hi_ok:
                alive_row[r] = False
                stats.redundant_rows += 1
                changed = True
            # A provably violated row means infeasibility.
            if (math.isfinite(row_ub[r]) and act_lo > row_ub[r] + _TOL) or (
                math.isfinite(row_lb[r]) and act_hi < row_lb[r] - _TOL
            ):
                infeasible = True
                break
        if infeasible or not changed:
            break

    kept = [col for col in range(n) if col not in fixed]
    remap = {old: new for new, old in enumerate(kept)}

    new_rows: list[dict[int, float]] = []
    new_row_lb: list[float] = []
    new_row_ub: list[float] = []
    for r, row in enumerate(rows):
        if not alive_row[r] or not row:
            continue
        new_rows.append({remap[col]: coef for col, coef in row.items()})
        new_row_lb.append(row_lb[r])
        new_row_ub.append(row_ub[r])

    offset = compiled.objective_offset + sum(
        coef * fixed[col]
        for col, coef in compiled.objective.items()
        if col in fixed
    )
    new_objective = {
        remap[col]: coef
        for col, coef in compiled.objective.items()
        if col not in fixed and coef != 0.0
    }

    reduced = CompiledModel(
        num_vars=len(kept),
        objective=new_objective,
        objective_offset=offset,
        rows=new_rows,
        row_lb=new_row_lb,
        row_ub=new_row_ub,
        var_lb=[lb[col] for col in kept],
        var_ub=[ub[col] for col in kept],
        integrality=[integrality[col] for col in kept],
        columns=[compiled.columns[col] for col in kept],
        negated=compiled.negated,
    )
    return PresolveResult(
        reduced=reduced,
        fixed_values=fixed,
        kept_columns=kept,
        infeasible=infeasible,
        stats=stats,
    )
