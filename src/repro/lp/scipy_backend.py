"""Solver backend built on ``scipy.optimize.milp`` (HiGHS).

Stands in for the CPLEX 11.2.1 solver used by the paper (Section 4.8).  The
backend consumes a :class:`repro.lp.model.CompiledModel`, converts it to the
sparse form HiGHS expects, and maps the result back onto model variables.
"""

from __future__ import annotations

import contextlib
import math
import os
import sys
import tempfile

import numpy as np
from scipy import sparse
from scipy.optimize import Bounds, LinearConstraint, milp

from .model import CompiledModel, Solution, SolveStatus

try:  # pragma: no cover - optional accelerator, absent from the base image
    import highspy  # type: ignore[import-not-found]
except ImportError:
    highspy = None

#: Whether the backend can capture/consume simplex bases.  scipy's
#: ``milp`` wrapper never exposes one, so basis warm starts need the
#: native ``highspy`` bindings; without them ``start_basis`` is accepted
#: but ignored and ``Solution.basis`` stays ``None`` (the incremental
#: solver then certifies warm candidates with plain LP re-solves, which
#: HiGHS presolves in milliseconds anyway).
HAS_BASIS = highspy is not None


@contextlib.contextmanager
def _muted_stdout():
    """Silence HiGHS's C-level printf noise during a solve.

    HiGHS 1.x prints internal notes (e.g. ``HighsMipSolverData::...``)
    straight to file descriptor 1, bypassing ``sys.stdout``; redirect
    the fd itself for the duration of the call.  Pytest's capture can
    replace ``sys.stdout`` with an object without ``fileno``; fall back
    to no-op muting there (the noise only matters on real terminals).
    """
    try:
        stdout_fd = sys.stdout.fileno()
    except (AttributeError, OSError, ValueError):
        yield
        return
    sys.stdout.flush()
    saved_fd = os.dup(stdout_fd)
    try:
        with tempfile.TemporaryFile() as sink:
            os.dup2(sink.fileno(), stdout_fd)
            try:
                yield
            finally:
                sys.stdout.flush()
                os.dup2(saved_fd, stdout_fd)
    finally:
        os.close(saved_fd)

#: HiGHS status codes (scipy's ``result.status``) mapped to our statuses.
_STATUS_MAP = {
    0: SolveStatus.OPTIMAL,
    1: SolveStatus.FEASIBLE,  # iteration/time limit with incumbent
    2: SolveStatus.INFEASIBLE,
    3: SolveStatus.UNBOUNDED,
    4: SolveStatus.ERROR,
}


def solve(
    compiled: CompiledModel,
    time_limit: float | None = None,
    mip_gap: float = 0.01,
    start_basis: tuple[int, ...] | None = None,
) -> Solution:
    """Solve a compiled model and return a :class:`Solution`.

    The returned solution's ``values`` only cover original model variables;
    auxiliary lowering columns are dropped.  ``start_basis`` warm-starts
    pure-LP solves when the native ``highspy`` bindings are importable
    (see :data:`HAS_BASIS`); it is ignored otherwise and for MILPs.
    """
    if highspy is not None and not any(compiled.integrality):
        solution = _solve_lp_highspy(compiled, time_limit, start_basis)
        if solution is not None:
            return solution
    n = compiled.num_vars
    c = np.zeros(n)
    for col, coef in compiled.objective.items():
        c[col] = coef

    constraints = []
    if compiled.rows:
        data, row_idx, col_idx = [], [], []
        for r, row in enumerate(compiled.rows):
            for col, coef in row.items():
                row_idx.append(r)
                col_idx.append(col)
                data.append(coef)
        matrix = sparse.csr_matrix(
            (data, (row_idx, col_idx)), shape=(len(compiled.rows), n)
        )
        constraints.append(
            LinearConstraint(matrix, np.asarray(compiled.row_lb), np.asarray(compiled.row_ub))
        )

    bounds = Bounds(np.asarray(compiled.var_lb), np.asarray(compiled.var_ub))
    integrality = np.asarray([1 if flag else 0 for flag in compiled.integrality])

    options: dict[str, float] = {"mip_rel_gap": mip_gap}
    if time_limit is not None:
        options["time_limit"] = float(time_limit)

    with _muted_stdout():
        result = milp(
            c=c,
            constraints=constraints,
            bounds=bounds,
            integrality=integrality,
            options=options,
        )

    status = _STATUS_MAP.get(result.status, SolveStatus.ERROR)
    if status.has_solution and result.x is None:  # limit hit with no incumbent
        status = SolveStatus.ERROR
    solution = Solution(status=status, backend="scipy-highs", message=result.message or "")
    if status.has_solution:
        values = np.asarray(result.x)
        solution.values = {
            var: _clean(values[col], compiled.integrality[col])
            for col, var in enumerate(compiled.columns)
            if var is not None
        }
        objective = float(result.fun) + compiled.objective_offset
        solution.objective = -objective if compiled.negated else objective
    return solution


def _clean(value: float, is_integer: bool) -> float:
    """Snap solver noise: integral columns to ints, tiny values to zero."""
    if is_integer:
        return float(round(value))
    if abs(value) < 1e-9:
        return 0.0
    return float(value)


def _solve_lp_highspy(
    compiled: CompiledModel,
    time_limit: float | None,
    start_basis: tuple[int, ...] | None,
) -> Solution | None:
    """Pure-LP solve through the native HiGHS bindings with basis I/O.

    Only reached when ``highspy`` is importable (it is not a repo
    dependency — this is the gated fast path the incremental solver uses
    on installs that have it).  Any API hiccup falls back to the
    ``scipy.optimize.milp`` path by returning ``None``.
    """
    try:  # pragma: no cover - requires the optional highspy wheel
        n = compiled.num_vars
        h = highspy.Highs()
        h.setOptionValue("output_flag", False)
        if time_limit is not None:
            h.setOptionValue("time_limit", float(time_limit))
        lp = highspy.HighsLp()
        lp.num_col_ = n
        lp.num_row_ = len(compiled.rows)
        lp.col_cost_ = np.zeros(n)
        for col, coef in compiled.objective.items():
            lp.col_cost_[col] = coef
        lp.col_lower_ = np.asarray(compiled.var_lb, dtype=float)
        lp.col_upper_ = np.asarray(compiled.var_ub, dtype=float)
        lp.row_lower_ = np.asarray(compiled.row_lb, dtype=float)
        lp.row_upper_ = np.asarray(compiled.row_ub, dtype=float)
        starts, index, value = [0], [], []
        for row in compiled.rows:
            for col, coef in sorted(row.items()):
                index.append(col)
                value.append(coef)
            starts.append(len(index))
        lp.a_matrix_.format_ = highspy.MatrixFormat.kRowwise
        lp.a_matrix_.start_ = np.asarray(starts, dtype=np.int32)
        lp.a_matrix_.index_ = np.asarray(index, dtype=np.int32)
        lp.a_matrix_.value_ = np.asarray(value, dtype=float)
        h.passModel(lp)
        if start_basis is not None and len(start_basis) == n + len(compiled.rows):
            basis = highspy.HighsBasis()
            basis.col_status = [
                highspy.HighsBasisStatus(int(s)) for s in start_basis[:n]
            ]
            basis.row_status = [
                highspy.HighsBasisStatus(int(s)) for s in start_basis[n:]
            ]
            h.setBasis(basis)
        h.run()
        status = h.getModelStatus()
        if status != highspy.HighsModelStatus.kOptimal:
            return None  # let the milp path classify non-optimal outcomes
        values = np.asarray(h.getSolution().col_value, dtype=float)
        basis_out = h.getBasis()
        solution = Solution(status=SolveStatus.OPTIMAL, backend="highspy")
        solution.values = {
            var: _clean(values[col], False)
            for col, var in enumerate(compiled.columns)
            if var is not None
        }
        objective = float(h.getObjectiveValue()) + compiled.objective_offset
        solution.objective = -objective if compiled.negated else objective
        solution.basis = tuple(
            int(s) for s in list(basis_out.col_status) + list(basis_out.row_status)
        )
        return solution
    except Exception:  # pragma: no cover - any binding mismatch
        return None


def solve_blocks(
    blocks: list[CompiledModel],
    time_limit: float | None = None,
    mip_gap: float = 0.01,
) -> list[Solution]:
    """Solve independent compiled models as one block-diagonal program.

    The blocks share no columns, so the composite optimum decomposes into
    per-block optima exactly (the objective is separable); one HiGHS call
    amortizes presolve/setup over the whole batch.  This is how the fleet
    scheduler turns N concurrent replan certifications arriving in the
    same step into a single solve.

    Statuses are per-composite: an infeasible or unbounded *any* block
    makes the composite so, in which case every block reports that status
    and callers should retry the blocks individually to isolate it.
    """
    if not blocks:
        return []
    if len(blocks) == 1:
        return [solve(blocks[0], time_limit, mip_gap)]

    offsets = []
    total_cols = 0
    for block in blocks:
        offsets.append(total_cols)
        total_cols += block.num_vars

    c = np.zeros(total_cols)
    lb = np.empty(total_cols)
    ub = np.empty(total_cols)
    integrality = np.zeros(total_cols, dtype=int)
    data, row_idx, col_idx, row_lb, row_ub = [], [], [], [], []
    r = 0
    for block, offset in zip(blocks, offsets):
        for col, coef in block.objective.items():
            c[offset + col] = coef
        lb[offset:offset + block.num_vars] = block.var_lb
        ub[offset:offset + block.num_vars] = block.var_ub
        for col, flag in enumerate(block.integrality):
            if flag:
                integrality[offset + col] = 1
        for row, lo, hi in zip(block.rows, block.row_lb, block.row_ub):
            for col, coef in row.items():
                row_idx.append(r)
                col_idx.append(offset + col)
                data.append(coef)
            row_lb.append(lo)
            row_ub.append(hi)
            r += 1

    constraints = []
    if r:
        matrix = sparse.csr_matrix((data, (row_idx, col_idx)), shape=(r, total_cols))
        constraints.append(
            LinearConstraint(matrix, np.asarray(row_lb), np.asarray(row_ub))
        )
    options: dict[str, float] = {"mip_rel_gap": mip_gap}
    if time_limit is not None:
        options["time_limit"] = float(time_limit)
    with _muted_stdout():
        result = milp(
            c=c,
            constraints=constraints,
            bounds=Bounds(lb, ub),
            integrality=integrality,
            options=options,
        )

    status = _STATUS_MAP.get(result.status, SolveStatus.ERROR)
    if status.has_solution and result.x is None:
        status = SolveStatus.ERROR
    solutions = []
    for block, offset in zip(blocks, offsets):
        solution = Solution(
            status=status, backend="scipy-highs-block", message=result.message or ""
        )
        if status.has_solution:
            values = np.asarray(result.x)[offset:offset + block.num_vars]
            solution.values = {
                var: _clean(values[col], block.integrality[col])
                for col, var in enumerate(block.columns)
                if var is not None
            }
            objective = (
                sum(coef * values[col] for col, coef in block.objective.items())
                + block.objective_offset
            )
            solution.objective = -objective if block.negated else objective
        solutions.append(solution)
    return solutions
