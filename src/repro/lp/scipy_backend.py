"""Solver backend built on ``scipy.optimize.milp`` (HiGHS).

Stands in for the CPLEX 11.2.1 solver used by the paper (Section 4.8).  The
backend consumes a :class:`repro.lp.model.CompiledModel`, converts it to the
sparse form HiGHS expects, and maps the result back onto model variables.
"""

from __future__ import annotations

import contextlib
import math
import os
import sys
import tempfile

import numpy as np
from scipy import sparse
from scipy.optimize import Bounds, LinearConstraint, milp

from .model import CompiledModel, Solution, SolveStatus


@contextlib.contextmanager
def _muted_stdout():
    """Silence HiGHS's C-level printf noise during a solve.

    HiGHS 1.x prints internal notes (e.g. ``HighsMipSolverData::...``)
    straight to file descriptor 1, bypassing ``sys.stdout``; redirect
    the fd itself for the duration of the call.  Pytest's capture can
    replace ``sys.stdout`` with an object without ``fileno``; fall back
    to no-op muting there (the noise only matters on real terminals).
    """
    try:
        stdout_fd = sys.stdout.fileno()
    except (AttributeError, OSError, ValueError):
        yield
        return
    sys.stdout.flush()
    saved_fd = os.dup(stdout_fd)
    try:
        with tempfile.TemporaryFile() as sink:
            os.dup2(sink.fileno(), stdout_fd)
            try:
                yield
            finally:
                sys.stdout.flush()
                os.dup2(saved_fd, stdout_fd)
    finally:
        os.close(saved_fd)

#: HiGHS status codes (scipy's ``result.status``) mapped to our statuses.
_STATUS_MAP = {
    0: SolveStatus.OPTIMAL,
    1: SolveStatus.FEASIBLE,  # iteration/time limit with incumbent
    2: SolveStatus.INFEASIBLE,
    3: SolveStatus.UNBOUNDED,
    4: SolveStatus.ERROR,
}


def solve(
    compiled: CompiledModel,
    time_limit: float | None = None,
    mip_gap: float = 0.01,
) -> Solution:
    """Solve a compiled model and return a :class:`Solution`.

    The returned solution's ``values`` only cover original model variables;
    auxiliary lowering columns are dropped.
    """
    n = compiled.num_vars
    c = np.zeros(n)
    for col, coef in compiled.objective.items():
        c[col] = coef

    constraints = []
    if compiled.rows:
        data, row_idx, col_idx = [], [], []
        for r, row in enumerate(compiled.rows):
            for col, coef in row.items():
                row_idx.append(r)
                col_idx.append(col)
                data.append(coef)
        matrix = sparse.csr_matrix(
            (data, (row_idx, col_idx)), shape=(len(compiled.rows), n)
        )
        constraints.append(
            LinearConstraint(matrix, np.asarray(compiled.row_lb), np.asarray(compiled.row_ub))
        )

    bounds = Bounds(np.asarray(compiled.var_lb), np.asarray(compiled.var_ub))
    integrality = np.asarray([1 if flag else 0 for flag in compiled.integrality])

    options: dict[str, float] = {"mip_rel_gap": mip_gap}
    if time_limit is not None:
        options["time_limit"] = float(time_limit)

    with _muted_stdout():
        result = milp(
            c=c,
            constraints=constraints,
            bounds=bounds,
            integrality=integrality,
            options=options,
        )

    status = _STATUS_MAP.get(result.status, SolveStatus.ERROR)
    if status.has_solution and result.x is None:  # limit hit with no incumbent
        status = SolveStatus.ERROR
    solution = Solution(status=status, backend="scipy-highs", message=result.message or "")
    if status.has_solution:
        values = np.asarray(result.x)
        solution.values = {
            var: _clean(values[col], compiled.integrality[col])
            for col, var in enumerate(compiled.columns)
            if var is not None
        }
        objective = float(result.fun) + compiled.objective_offset
        solution.objective = -objective if compiled.negated else objective
    return solution


def _clean(value: float, is_integer: bool) -> float:
    """Snap solver noise: integral columns to ints, tiny values to zero."""
    if is_integer:
        return float(round(value))
    if abs(value) < 1e-9:
        return 0.0
    return float(value)
