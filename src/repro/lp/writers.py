"""Model exporters: CPLEX LP format and MPS format.

The paper "dispatch[es] the generated linear program to the CPLEX
solver" (Section 4.8).  These writers produce the artifacts that
dispatch would ship: the human-readable CPLEX LP format (including its
``Semi-Continuous`` section, which the paper's phase-barrier variables
use) and the interchange MPS format (free-form, integer markers).

Both emit deterministic text — same model, same bytes — so golden tests
can diff them, and a real CPLEX/HiGHS/Gurobi binary could consume the
files unchanged.
"""

from __future__ import annotations

import math
import re
from typing import Iterable

from .expr import LinExpr, Sense, Variable, VarType
from .model import Model, ObjectiveSense

_NAME_RE = re.compile(r"[^A-Za-z0-9_.#\[\]]")


def _safe_name(name: str, index: int, prefix: str) -> str:
    """LP/MPS-safe identifier: sanitize or synthesize a stable name."""
    cleaned = _NAME_RE.sub("_", name) if name else ""
    if not cleaned or cleaned[0].isdigit():
        cleaned = f"{prefix}{index}"
    return cleaned


def _format_coef(value: float) -> str:
    """Human-stable coefficient formatting (no trailing noise)."""
    if value == int(value) and abs(value) < 1e15:
        return str(int(value))
    return repr(value)


def _expr_terms(expr: LinExpr, names: dict[Variable, str]) -> str:
    """``3 x + 2 y - z`` rendering of an expression's linear part."""
    parts: list[str] = []
    for var, coef in expr.terms.items():
        if coef == 0.0:
            continue
        sign = "-" if coef < 0 else "+"
        magnitude = abs(coef)
        term = names[var] if magnitude == 1.0 else f"{_format_coef(magnitude)} {names[var]}"
        if not parts:
            parts.append(term if coef > 0 else f"- {term}")
        else:
            parts.append(f"{sign} {term}")
    return " ".join(parts) if parts else "0 __zero"


def _variable_names(model: Model) -> dict[Variable, str]:
    names: dict[Variable, str] = {}
    used: set[str] = set()
    for var in model.variables:
        name = _safe_name(var.name, var.index, "x")
        while name in used:
            name = f"{name}_{var.index}"
        used.add(name)
        names[var] = name
    return names


def _constraint_names(model: Model) -> list[str]:
    used: set[str] = set()
    names = []
    for index, constraint in enumerate(model.constraints):
        name = _safe_name(getattr(constraint, "name", "") or "", index, "c")
        while name in used:
            name = f"{name}_{index}"
        used.add(name)
        names.append(name)
    return names


def write_lp(model: Model) -> str:
    """Render the model in CPLEX LP format."""
    names = _variable_names(model)
    constraint_names = _constraint_names(model)
    lines: list[str] = [f"\\ Problem: {model.name}"]
    sense = (
        "Minimize" if model.sense is ObjectiveSense.MINIMIZE else "Maximize"
    )
    lines.append(sense)
    objective = _expr_terms(model.objective, names)
    if model.objective.constant:
        objective += f" + {_format_coef(model.objective.constant)} __const"
    lines.append(f" obj: {objective}")

    lines.append("Subject To")
    for constraint, cname in zip(model.constraints, constraint_names):
        expr = constraint.expr
        rhs = -expr.constant
        op = {Sense.LE: "<=", Sense.GE: ">=", Sense.EQ: "="}[constraint.sense]
        lines.append(
            f" {cname}: {_expr_terms(expr, names)} {op} {_format_coef(rhs)}"
        )
    if model.objective.constant:
        # LP format has no objective constant; encode it with a fixed
        # dummy column (the CPLEX-documented workaround).
        lines.append(" __fix_const: __const = 1")

    lines.append("Bounds")
    for var in model.variables:
        name = names[var]
        lb, ub = var.lb, var.ub
        if var.vtype is VarType.SEMI_CONTINUOUS:
            # Bounds give the [L, U] band; the section below adds the
            # "or zero" semantics.
            lines.append(f" {_format_coef(var.sc_lb)} <= {name} <= {_format_coef(ub)}")
            continue
        if lb == 0.0 and math.isinf(ub):
            continue  # the LP-format default
        if math.isinf(ub) and not math.isinf(lb):
            lines.append(f" {name} >= {_format_coef(lb)}")
        elif lb == ub:
            lines.append(f" {name} = {_format_coef(lb)}")
        else:
            lo = "-inf" if math.isinf(lb) else _format_coef(lb)
            hi = "+inf" if math.isinf(ub) else _format_coef(ub)
            lines.append(f" {lo} <= {name} <= {hi}")

    generals = [
        names[v] for v in model.variables if v.vtype is VarType.INTEGER
    ]
    binaries = [names[v] for v in model.variables if v.vtype is VarType.BINARY]
    semis = [
        names[v]
        for v in model.variables
        if v.vtype is VarType.SEMI_CONTINUOUS
    ]
    if generals:
        lines.append("Generals")
        lines.extend(f" {name}" for name in generals)
    if binaries:
        lines.append("Binaries")
        lines.extend(f" {name}" for name in binaries)
    if semis:
        lines.append("Semi-Continuous")
        lines.extend(f" {name}" for name in semis)
    lines.append("End")
    return "\n".join(lines) + "\n"


def write_mps(model: Model) -> str:
    """Render the model in (free-form) MPS format.

    Semi-continuous columns use the ``SC`` bound type; maximization uses
    the ``OBJSENSE`` extension both CPLEX and HiGHS accept.
    """
    names = _variable_names(model)
    constraint_names = _constraint_names(model)
    lines = [f"NAME          {_safe_name(model.name, 0, 'MODEL')}"]
    if model.sense is ObjectiveSense.MAXIMIZE:
        lines.append("OBJSENSE")
        lines.append("    MAX")

    lines.append("ROWS")
    lines.append(" N  OBJ")
    row_types = {Sense.LE: "L", Sense.GE: "G", Sense.EQ: "E"}
    for constraint, cname in zip(model.constraints, constraint_names):
        lines.append(f" {row_types[constraint.sense]}  {cname}")

    # COLUMNS: gather per-variable entries (objective + each row).
    entries: dict[Variable, list[tuple[str, float]]] = {
        var: [] for var in model.variables
    }
    for var, coef in model.objective.terms.items():
        if coef != 0.0:
            entries[var].append(("OBJ", coef))
    for constraint, cname in zip(model.constraints, constraint_names):
        for var, coef in constraint.expr.terms.items():
            if coef != 0.0:
                entries[var].append((cname, coef))

    lines.append("COLUMNS")
    integer_open = False
    marker = 0
    for var in model.variables:
        needs_marker = var.vtype in (VarType.INTEGER, VarType.BINARY)
        if needs_marker and not integer_open:
            lines.append(f"    MARKER{marker}  'MARKER'  'INTORG'")
            marker += 1
            integer_open = True
        elif not needs_marker and integer_open:
            lines.append(f"    MARKER{marker}  'MARKER'  'INTEND'")
            marker += 1
            integer_open = False
        row_entries = entries[var] or [("OBJ", 0.0)]
        for row_name, coef in row_entries:
            lines.append(f"    {names[var]}  {row_name}  {_format_coef(coef)}")
    if integer_open:
        lines.append(f"    MARKER{marker}  'MARKER'  'INTEND'")

    lines.append("RHS")
    for constraint, cname in zip(model.constraints, constraint_names):
        rhs = -constraint.expr.constant
        if rhs != 0.0:
            lines.append(f"    RHS  {cname}  {_format_coef(rhs)}")
    if model.objective.constant:
        # MPS encodes an objective constant as a negated OBJ RHS.
        lines.append(
            f"    RHS  OBJ  {_format_coef(-model.objective.constant)}"
        )

    lines.append("BOUNDS")
    for var in model.variables:
        name = names[var]
        if var.vtype is VarType.SEMI_CONTINUOUS:
            lines.append(f" LO BND  {name}  {_format_coef(var.sc_lb)}")
            lines.append(f" SC BND  {name}  {_format_coef(var.ub)}")
            continue
        if var.vtype is VarType.BINARY:
            lines.append(f" BV BND  {name}")
            continue
        lb, ub = var.lb, var.ub
        if lb == ub:
            lines.append(f" FX BND  {name}  {_format_coef(lb)}")
            continue
        if lb != 0.0:
            if math.isinf(lb):
                lines.append(f" MI BND  {name}")
            else:
                lines.append(f" LO BND  {name}  {_format_coef(lb)}")
        if not math.isinf(ub):
            lines.append(f" UP BND  {name}  {_format_coef(ub)}")
    lines.append("ENDATA")
    return "\n".join(lines) + "\n"


def save(model: Model, path: str) -> None:
    """Write the model to ``path``; format chosen by extension."""
    if path.endswith(".lp"):
        text = write_lp(model)
    elif path.endswith(".mps"):
        text = write_mps(model)
    else:
        raise ValueError(f"unknown model-file extension in {path!r} (.lp/.mps)")
    with open(path, "w", encoding="ascii") as handle:
        handle.write(text)
