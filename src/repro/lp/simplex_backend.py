"""Pure-Python backend: standard-form conversion + branch & bound.

Converts a :class:`repro.lp.model.CompiledModel` (ranged rows, general
bounds, integrality flags) into the equality standard form consumed by
:mod:`repro.lp.simplex`, and layers a best-first branch & bound on top for
integer columns.  Used when scipy is unavailable and for cross-validating
the HiGHS backend in tests.
"""

from __future__ import annotations

import heapq
import itertools
import math
import time
from dataclasses import dataclass

import numpy as np

from .model import CompiledModel, Solution, SolveStatus, SolverError
from .simplex import LpStatus, solve_standard_form

_INT_TOL = 1e-6


@dataclass
class _StandardForm:
    """min c x, A x = b, x >= 0 plus the recipe to map x back to columns."""

    c: np.ndarray
    a: np.ndarray
    b: np.ndarray
    shift: np.ndarray  # original = standard + shift (per original column)
    num_original: int


def solve(
    compiled: CompiledModel,
    time_limit: float | None = None,
    start_basis: tuple[int, ...] | None = None,
) -> Solution:
    """Solve a compiled model with the pure-Python engine.

    For pure LPs the result carries the optimal standard-form basis
    (``Solution.basis``); passing it back as ``start_basis`` on a
    structurally identical model (same rows/sparsity/bound finiteness, so
    the standard-form layout matches) skips phase 1.  Branch & bound only
    uses the basis for the root relaxation — node relaxations layer extra
    bounds, which changes the standard-form shape.
    """
    deadline = None if time_limit is None else time.monotonic() + time_limit
    if any(compiled.integrality):
        return _branch_and_bound(compiled, deadline, start_basis)
    status, objective, values, basis = _solve_relaxation(
        compiled, {}, {}, start_basis
    )
    solution = Solution(status=status, backend="simplex")
    if status.has_solution:
        solution.values = _to_variable_map(compiled, values)
        solution.objective = _signed_objective(compiled, objective)
        solution.basis = basis
    return solution


def _signed_objective(compiled: CompiledModel, minimized: float) -> float:
    return -minimized if compiled.negated else minimized


def _to_variable_map(compiled: CompiledModel, values: np.ndarray) -> dict:
    return {
        var: float(values[col])
        for col, var in enumerate(compiled.columns)
        if var is not None
    }


def _solve_relaxation(
    compiled: CompiledModel,
    extra_lb: dict[int, float],
    extra_ub: dict[int, float],
    start_basis: tuple[int, ...] | None = None,
) -> tuple[SolveStatus, float, np.ndarray, tuple[int, ...] | None]:
    """Solve the LP relaxation with branching bounds layered on top."""
    form = _to_standard_form(compiled, extra_lb, extra_ub)
    if form is None:
        return SolveStatus.INFEASIBLE, math.nan, np.zeros(0), None
    result = solve_standard_form(form.c, form.a, form.b, start_basis=start_basis)
    if result.status is LpStatus.INFEASIBLE:
        return SolveStatus.INFEASIBLE, math.nan, np.zeros(0), None
    if result.status is LpStatus.UNBOUNDED:
        return SolveStatus.UNBOUNDED, math.nan, np.zeros(0), None
    if result.status is LpStatus.ITERATION_LIMIT:
        raise SolverError("simplex iteration limit exceeded")
    x = result.x[: form.num_original] + form.shift
    return SolveStatus.OPTIMAL, result.objective + float(
        compiled.objective_offset
    ) + _shift_cost(compiled, form.shift), x, result.basis


def _shift_cost(compiled: CompiledModel, shift: np.ndarray) -> float:
    return sum(coef * shift[col] for col, coef in compiled.objective.items())


def _to_standard_form(
    compiled: CompiledModel,
    extra_lb: dict[int, float],
    extra_ub: dict[int, float],
) -> _StandardForm | None:
    """Build equality standard form; ``None`` when bounds cross (infeasible).

    Each original column is shifted by its lower bound so the standard-form
    variable is non-negative; finite upper bounds and ranged constraint rows
    become extra rows with slack columns.
    """
    n = compiled.num_vars
    lb = np.asarray(compiled.var_lb, dtype=float).copy()
    ub = np.asarray(compiled.var_ub, dtype=float).copy()
    for col, bound in extra_lb.items():
        lb[col] = max(lb[col], bound)
    for col, bound in extra_ub.items():
        ub[col] = min(ub[col], bound)
    if np.any(lb > ub + 1e-12):
        return None
    if np.any(~np.isfinite(lb)):
        raise SolverError("simplex backend requires finite lower bounds")

    shift = lb
    rows: list[tuple[dict[int, float], float, float]] = []
    for row, lo, hi in zip(compiled.rows, compiled.row_lb, compiled.row_ub):
        base = sum(coef * shift[col] for col, coef in row.items())
        rows.append((row, lo - base, hi - base))
    for col in range(n):
        if math.isfinite(ub[col]):
            rows.append(({col: 1.0}, -math.inf, ub[col] - shift[col]))

    # Count slack columns: one per non-equality side.
    slacks = []
    for _, lo, hi in rows:
        if math.isfinite(lo) and math.isfinite(hi) and abs(hi - lo) < 1e-12:
            slacks.append(0)
        elif math.isfinite(hi) and not math.isfinite(lo):
            slacks.append(1)  # <= : positive slack
        elif math.isfinite(lo) and not math.isfinite(hi):
            slacks.append(-1)  # >= : surplus
        else:
            slacks.append(2)  # ranged: lower as >=, upper as <= (two rows)

    num_rows = sum(2 if s == 2 else 1 for s in slacks)
    num_slack = sum(abs(s) if s != 2 else 2 for s in slacks)
    a = np.zeros((num_rows, n + num_slack))
    b = np.zeros(num_rows)
    r_out = 0
    s_out = n
    for (row, lo, hi), kind in zip(rows, slacks):
        if kind == 0:
            for col, coef in row.items():
                a[r_out, col] = coef
            b[r_out] = hi
            r_out += 1
        elif kind == 1:
            for col, coef in row.items():
                a[r_out, col] = coef
            a[r_out, s_out] = 1.0
            b[r_out] = hi
            r_out += 1
            s_out += 1
        elif kind == -1:
            for col, coef in row.items():
                a[r_out, col] = coef
            a[r_out, s_out] = -1.0
            b[r_out] = lo
            r_out += 1
            s_out += 1
        else:
            for col, coef in row.items():
                a[r_out, col] = coef
                a[r_out + 1, col] = coef
            a[r_out, s_out] = -1.0
            b[r_out] = lo
            a[r_out + 1, s_out + 1] = 1.0
            b[r_out + 1] = hi
            r_out += 2
            s_out += 2

    c = np.zeros(n + num_slack)
    for col, coef in compiled.objective.items():
        c[col] = coef
    return _StandardForm(c=c, a=a, b=b, shift=shift, num_original=n)


def _branch_and_bound(
    compiled: CompiledModel,
    deadline: float | None,
    start_basis: tuple[int, ...] | None = None,
) -> Solution:
    """Best-first branch & bound over the simplex relaxation."""
    counter = itertools.count()
    status, bound, x, _ = _solve_relaxation(compiled, {}, {}, start_basis)
    if not status.has_solution:
        return Solution(status=status, backend="simplex-bb")

    heap: list[tuple[float, int, dict[int, float], dict[int, float]]] = []
    heapq.heappush(heap, (bound, next(counter), {}, {}))
    best_objective = math.inf
    best_x: np.ndarray | None = None
    timed_out = False

    while heap:
        if deadline is not None and time.monotonic() > deadline:
            timed_out = True
            break
        node_bound, _, node_lb, node_ub = heapq.heappop(heap)
        if node_bound >= best_objective - 1e-9:
            continue
        status, objective, x, _ = _solve_relaxation(compiled, node_lb, node_ub)
        if status is not SolveStatus.OPTIMAL or objective >= best_objective - 1e-9:
            continue
        frac_col = _most_fractional(compiled, x)
        if frac_col is None:
            best_objective = objective
            best_x = x
            continue
        value = x[frac_col]
        down_ub = dict(node_ub)
        down_ub[frac_col] = math.floor(value + _INT_TOL)
        up_lb = dict(node_lb)
        up_lb[frac_col] = math.ceil(value - _INT_TOL)
        heapq.heappush(heap, (objective, next(counter), node_lb, down_ub))
        heapq.heappush(heap, (objective, next(counter), up_lb, node_ub))

    if best_x is None:
        if timed_out:
            return Solution(status=SolveStatus.ERROR, backend="simplex-bb",
                            message="time limit before first incumbent")
        return Solution(status=SolveStatus.INFEASIBLE, backend="simplex-bb")

    rounded = best_x.copy()
    for col, is_int in enumerate(compiled.integrality):
        if is_int:
            rounded[col] = round(rounded[col])
    solution = Solution(
        status=SolveStatus.FEASIBLE if timed_out else SolveStatus.OPTIMAL,
        backend="simplex-bb",
    )
    solution.values = _to_variable_map(compiled, rounded)
    solution.objective = _signed_objective(compiled, best_objective)
    return solution


def _most_fractional(compiled: CompiledModel, x: np.ndarray) -> int | None:
    """Column whose value is farthest from integral, or ``None`` if none."""
    best_col, best_frac = None, _INT_TOL
    for col, is_int in enumerate(compiled.integrality):
        if not is_int:
            continue
        frac = abs(x[col] - round(x[col]))
        if frac > best_frac:
            best_col, best_frac = col, frac
    return best_col
