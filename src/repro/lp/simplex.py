"""Pure-Python two-phase primal simplex on a dense tableau.

This is the portable fallback engine underneath the LP substrate: it solves
``min c x  s.t.  A x = b, x >= 0`` after the caller converts general bounds
and inequality rows to standard form (see :mod:`repro.lp.simplex_backend`).
It uses Bland's rule to guarantee termination and is intended for the small
models exercised by tests and cross-validation against HiGHS — the planner's
production path uses the scipy backend.
"""

from __future__ import annotations

import enum
import math
from dataclasses import dataclass, field

import numpy as np


class LpStatus(enum.Enum):
    OPTIMAL = "optimal"
    INFEASIBLE = "infeasible"
    UNBOUNDED = "unbounded"
    ITERATION_LIMIT = "iteration_limit"


@dataclass
class SimplexResult:
    status: LpStatus
    objective: float = math.nan
    x: np.ndarray = field(default_factory=lambda: np.zeros(0))
    iterations: int = 0
    #: Optimal basis (standard-form column index per row) when the solve
    #: ended OPTIMAL — feed it back as ``start_basis`` to warm-start a
    #: re-solve of the same structure with patched data.
    basis: tuple[int, ...] | None = None
    #: True when the solve skipped phase 1 entirely (warm start accepted).
    warm_started: bool = False


_EPS = 1e-9


def solve_standard_form(
    c: np.ndarray,
    a_eq: np.ndarray,
    b_eq: np.ndarray,
    max_iterations: int = 20_000,
    start_basis: tuple[int, ...] | None = None,
) -> SimplexResult:
    """Solve ``min c x  s.t.  a_eq x = b_eq, x >= 0``.

    Phase 1 drives artificial variables out of the basis; phase 2 optimizes
    the real objective.  Rows with negative right-hand side are flipped so
    artificials start feasible.

    ``start_basis`` (the ``basis`` of a previous result on an identically
    shaped system) warm-starts phase 2 directly from the old basis.  If the
    basis is no longer valid under the new data — singular, or primal
    infeasible after a bound/RHS patch — the solve transparently falls back
    to the full two-phase method (the phase-1 repair path).
    """
    a = np.array(a_eq, dtype=float, copy=True)
    b = np.array(b_eq, dtype=float, copy=True)
    c = np.asarray(c, dtype=float)
    m, n = a.shape
    if b.shape != (m,) or c.shape != (n,):
        raise ValueError("inconsistent simplex dimensions")

    if start_basis is not None:
        warm = _warm_phase2(c, a, b, start_basis, max_iterations)
        if warm is not None:
            return warm

    negative = b < 0
    a[negative] *= -1.0
    b[negative] *= -1.0

    # Phase 1 tableau: [A | I] with artificial objective = sum(artificials).
    tableau = np.hstack([a, np.eye(m), b.reshape(-1, 1)])
    basis = list(range(n, n + m))
    phase1_cost = np.concatenate([np.zeros(n), np.ones(m), [0.0]])

    iterations = _optimize(tableau, basis, phase1_cost, max_iterations)
    if iterations < 0:
        return SimplexResult(LpStatus.ITERATION_LIMIT)
    phase1_value = _objective_value(tableau, basis, phase1_cost)
    if phase1_value > 1e-7:
        return SimplexResult(LpStatus.INFEASIBLE, iterations=iterations)

    # Pivot remaining artificial variables out of the basis where possible;
    # rows that cannot pivot are redundant and are dropped.
    keep_rows = []
    for row, bv in enumerate(basis):
        if bv < n:
            keep_rows.append(row)
            continue
        pivot_col = next(
            (j for j in range(n) if abs(tableau[row, j]) > _EPS), None
        )
        if pivot_col is None:
            continue  # redundant row
        _pivot(tableau, row, pivot_col)
        basis[row] = pivot_col
        keep_rows.append(row)

    if len(keep_rows) != m:
        tableau = tableau[keep_rows]
        basis = [basis[r] for r in keep_rows]

    # Phase 2 on the real objective, artificial columns removed.
    tableau = np.hstack([tableau[:, :n], tableau[:, -1:]])
    phase2_cost = np.concatenate([c, [0.0]])
    more = _optimize(tableau, basis, phase2_cost, max_iterations)
    if more < 0:
        return SimplexResult(LpStatus.ITERATION_LIMIT, iterations=iterations)
    if more == math.inf:
        return SimplexResult(LpStatus.UNBOUNDED, iterations=iterations)

    x = np.zeros(n)
    for row, bv in enumerate(basis):
        if bv < n:
            x[bv] = tableau[row, -1]
    return SimplexResult(
        LpStatus.OPTIMAL,
        objective=float(c @ x),
        x=x,
        iterations=iterations + int(more),
        basis=tuple(basis),
    )


def _warm_phase2(
    c: np.ndarray,
    a: np.ndarray,
    b: np.ndarray,
    start_basis: tuple[int, ...],
    max_iterations: int,
) -> SimplexResult | None:
    """Phase 2 straight from a prior basis; ``None`` means "repair via
    phase 1" (cold two-phase restart).

    The basis must name one column per row, the basis matrix must be
    invertible, and the implied basic solution must be primal feasible
    under the (possibly patched) right-hand side.  Anything else is left
    to the cold path — a full phase-1 restart is the repair strategy, and
    redundant-row systems (whose cold basis is shorter than ``m``) always
    take it.
    """
    m, n = a.shape
    basis = [int(j) for j in start_basis]
    if len(basis) != m or len(set(basis)) != m:
        return None
    if any(not 0 <= j < n for j in basis):
        return None
    try:
        binv = np.linalg.inv(a[:, basis])
    except np.linalg.LinAlgError:
        return None
    if not np.all(np.isfinite(binv)):
        return None
    rhs = binv @ b
    if np.any(rhs < -1e-7):
        return None  # patched bounds broke primal feasibility
    tableau = np.hstack([binv @ a, np.clip(rhs, 0.0, None).reshape(-1, 1)])
    more = _optimize(tableau, basis, np.concatenate([c, [0.0]]), max_iterations)
    if more < 0:
        return SimplexResult(LpStatus.ITERATION_LIMIT, warm_started=True)
    if more == math.inf:
        return SimplexResult(LpStatus.UNBOUNDED, warm_started=True)
    x = np.zeros(n)
    for row, bv in enumerate(basis):
        x[bv] = tableau[row, -1]
    return SimplexResult(
        LpStatus.OPTIMAL,
        objective=float(c @ x),
        x=x,
        iterations=int(more),
        basis=tuple(basis),
        warm_started=True,
    )


def _optimize(
    tableau: np.ndarray,
    basis: list[int],
    cost: np.ndarray,
    max_iterations: int,
) -> float:
    """Run primal simplex pivots in place.

    Returns the number of iterations, ``-1`` on iteration limit, or
    ``math.inf`` if the problem is unbounded in the given objective.
    """
    num_cols = tableau.shape[1] - 1
    for iteration in range(max_iterations):
        reduced = _reduced_costs(tableau, basis, cost)
        entering = next(
            (j for j in range(num_cols) if reduced[j] < -1e-9), None
        )  # Bland: smallest index
        if entering is None:
            return iteration
        column = tableau[:, entering]
        rhs = tableau[:, -1]
        best_row, best_ratio = None, math.inf
        for row in range(tableau.shape[0]):
            if column[row] > _EPS:
                ratio = rhs[row] / column[row]
                if ratio < best_ratio - _EPS or (
                    abs(ratio - best_ratio) <= _EPS
                    and best_row is not None
                    and basis[row] < basis[best_row]
                ):
                    best_row, best_ratio = row, ratio
        if best_row is None:
            return math.inf
        _pivot(tableau, best_row, entering)
        basis[best_row] = entering
    return -1


def _reduced_costs(tableau: np.ndarray, basis: list[int], cost: np.ndarray) -> np.ndarray:
    basic_cost = cost[basis]
    return cost[:-1] - basic_cost @ tableau[:, :-1]


def _objective_value(tableau: np.ndarray, basis: list[int], cost: np.ndarray) -> float:
    return float(cost[basis] @ tableau[:, -1])


def _pivot(tableau: np.ndarray, row: int, col: int) -> None:
    tableau[row] /= tableau[row, col]
    for r in range(tableau.shape[0]):
        if r != row and abs(tableau[r, col]) > _EPS:
            tableau[r] -= tableau[r, col] * tableau[row]
