"""Command-line interface: ``python -m repro <command>``.

A thin front-end over the versioned public API (:mod:`repro.api`) for
the workflows a Conductor user would actually run:

- ``plan``      — print the optimal execution plan for a job;
- ``deploy``    — run the full simulated deployment (Conductor or one of
  the paper's baselines); ``--stream`` runs the live controller loop and
  emits each interval as a versioned ``deploy_event`` JSON line;
- ``services``  — show or validate a service-description XML document;
- ``spot``      — evaluate spot-market deployment under a predictor;
- ``pig``       — compile a Pig-Latin script to MapReduce stages and
  plan the multi-stage deployment;
- ``export``    — write the generated linear program to a .lp/.mps file;
- ``fleet``     — run many concurrent deployments over one shared
  substrate (spot trace, failure injector) with event-driven
  re-planning, streaming every interval and re-plan as versioned
  ``deploy_event`` JSON lines;
- ``serve``     — run the multi-tenant planning service over a JSON-lines
  request stream (file or stdin).  The wire dialect is exactly the
  versioned API: ``plan_request`` in, ``hello`` / ``plan_response`` /
  ``error`` out;
- ``submit``    — submit one job through the planning service (with
  ``--repeat`` to demonstrate the plan cache, ``--json`` for the wire
  responses);
- ``loadgen``   — drive the service with a synthetic tenant workload and
  report throughput, cache hit rate and latency percentiles.

Examples::

    python -m repro plan --input-gb 32 --deadline 6
    python -m repro plan --input-gb 32 --deadline 4 --local-nodes 5
    python -m repro deploy --strategy conductor --input-gb 8 --deadline 3
    python -m repro deploy --stream --input-gb 4 --deadline 3
    python -m repro services --emit
    python -m repro spot --trace electricity --predictor p5 --deadline 10
    python -m repro fleet --deployments 8 --trace aws --mode event
    python -m repro pig script.pig --input-gb 24 --deadline 10
    python -m repro export --input-gb 32 --deadline 6 model.lp
    python -m repro serve --requests-file requests.jsonl
    python -m repro submit --input-gb 16 --deadline 6 --repeat 3
    python -m repro loadgen --tenants 8 --requests 64
"""

from __future__ import annotations

import argparse
import sys

from .cloud import hybrid_cloud, load_services, public_cloud, to_xml
from .core import (
    PlannerJob,
    run_conductor,
    run_hadoop_direct,
    run_hadoop_s3,
    run_hadoop_upload_first,
)
from .core.spot_sim import run_spot_scenario

_STRATEGIES = {
    "conductor": run_conductor,
    "hadoop-direct": run_hadoop_direct,
    "hadoop-s3": run_hadoop_s3,
    "hadoop-upload-first": run_hadoop_upload_first,
}


def package_version() -> str:
    """The installed distribution version (falls back to the source tree)."""
    try:
        from importlib.metadata import PackageNotFoundError, version

        return version("conductor-repro")
    except PackageNotFoundError:
        from . import __version__

        return __version__


def _add_job_arguments(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--input-gb", type=float, default=32.0,
                        help="input data size (default: the paper's 32 GB)")
    parser.add_argument("--deadline", type=float, default=6.0,
                        help="completion deadline in hours")
    parser.add_argument("--uplink-mbit", type=float, default=16.0,
                        help="customer uplink in Mbit/s")
    parser.add_argument("--local-nodes", type=int, default=0,
                        help="size of the customer's own cluster (hybrid)")


def _spec_for(args):
    """The JobSpec described by the shared job arguments."""
    from .api import GoalSpec, JobSpec, NetworkSpec

    if getattr(args, "services_xml", None):
        catalog, services_xml = "xml", args.services_xml
    elif args.local_nodes > 0:
        catalog, services_xml = "hybrid", None
    else:
        catalog, services_xml = "public", None
    return JobSpec(
        input_gb=args.input_gb,
        goal=GoalSpec(deadline_hours=args.deadline),
        network=NetworkSpec(uplink_mbit_s=args.uplink_mbit),
        catalog=catalog,
        local_nodes=args.local_nodes,
        services_xml=services_xml,
    )


def cmd_plan(args) -> int:
    from .api import Orchestrator, OrchestratorError, SchemaError

    orchestrator = Orchestrator()
    try:
        plan = orchestrator.plan(_spec_for(args))
    except SchemaError as exc:
        print(f"bad job spec: {exc}", file=sys.stderr)
        return 2
    except OrchestratorError as exc:
        print(f"planning failed [{exc.error.code}]: {exc.error.message}",
              file=sys.stderr)
        return 1
    print(plan.describe())
    print(f"\npredicted cost:  ${plan.predicted_cost:.2f}")
    print(f"peak instances:  {plan.peak_nodes()}")
    for key, value in sorted(plan.predicted_cost_breakdown.items()):
        if value > 1e-4:
            print(f"  {key:28s} ${value:.3f}")
    return 0


def _cmd_deploy_stream(args) -> int:
    """Live controller deployment, streaming versioned deploy events."""
    from .api import Orchestrator, OrchestratorError, SchemaError, encode

    writer = tracer = None
    if getattr(args, "trace_log", None):
        from .obs.trace import RunTracer, TraceWriter

        writer = TraceWriter(args.trace_log)
        tracer = RunTracer(writer)
    orchestrator = Orchestrator()
    try:
        result = orchestrator.deploy(
            _spec_for(args),
            on_event=lambda event: print(encode(event)),
            tracer=tracer,
            backend=getattr(args, "backend", "sim"),
        )
    except SchemaError as exc:
        print(f"bad job spec: {exc}", file=sys.stderr)
        return 2
    except OrchestratorError as exc:
        print(f"deployment failed [{exc.error.code}]: {exc.error.message}",
              file=sys.stderr)
        return 1
    finally:
        if writer is not None:
            writer.close()
    print(f"deployed: ${result.total_cost:.2f}, "
          f"{result.completion_hours:.2f} h, {result.replans} re-plans "
          f"({'met' if result.deadline_met else 'MISSED'} the deadline)")
    return 0


def cmd_deploy(args) -> int:
    from .api import SchemaError, scenario_for

    if args.stream:
        # The stream runs the live controller loop — Conductor itself —
        # so a baseline strategy or node-count override cannot apply.
        if args.strategy != "conductor" or args.nodes != 16:
            print("--stream runs the Conductor controller loop; "
                  "it cannot be combined with --strategy/--nodes",
                  file=sys.stderr)
            return 2
        return _cmd_deploy_stream(args)
    if args.trace_log:
        print("--trace-log requires --stream (the live controller loop "
              "is what gets traced)", file=sys.stderr)
        return 2
    if args.backend != "sim":
        print("--backend runs the live controller loop; it requires "
              "--stream", file=sys.stderr)
        return 2
    try:
        scenario = scenario_for(_spec_for(args))
    except (SchemaError, ValueError) as exc:
        print(f"bad job spec: {exc}", file=sys.stderr)
        return 2
    strategy = _STRATEGIES[args.strategy]
    kwargs = {} if args.strategy == "conductor" else {"nodes": args.nodes}
    result = strategy(scenario, **kwargs)
    print(f"{result.name}: ${result.total_cost:.2f}, "
          f"{result.runtime_s / 3600:.2f} h "
          f"({'met' if result.deadline_met else 'MISSED'} the deadline)")
    for key, value in sorted(result.cost_breakdown().items()):
        if value > 1e-4:
            print(f"  {key:20s} ${value:.3f}")
    return 0


def cmd_services(args) -> int:
    if args.emit:
        services = hybrid_cloud() if args.local_nodes else public_cloud()
        print(to_xml(services))
        return 0
    if args.validate:
        try:
            services = load_services(args.validate)
        except Exception as exc:
            print(f"invalid: {exc}", file=sys.stderr)
            return 1
        print(f"ok: {len(services)} services")
        for service in services:
            kinds = "+".join(sorted(k.value for k in service.kinds))
            print(f"  {service.name:20s} {kinds}")
        return 0
    print("use --emit or --validate PATH", file=sys.stderr)
    return 2


def cmd_spot(args) -> int:
    trace = _trace_for(args.trace, args.days, args.seed)
    predictor = _predictor_for(args.predictor)
    if predictor is None:
        print(f"unknown predictor {args.predictor!r}", file=sys.stderr)
        return 2
    result = run_spot_scenario(
        PlannerJob(name="job", input_gb=args.input_gb),
        trace,
        predictor,
        deadline_hours=args.deadline,
    )
    summary = result.summary
    print(f"{result.label}: {len(result.costs)} runs")
    print(f"  average ${summary['average']:.2f}  max ${summary['maximum']:.2f}  "
          f"stddev {summary['stddev']:.2f}")
    print(f"  re-plans per run: {result.replans}")
    return 0


def _trace_for(name: str, days: int, seed: int):
    """Shared synthetic-trace selector for ``spot`` and ``fleet``."""
    from .obs.replay import trace_for

    return trace_for(name, days, seed)


def _predictor_for(name: str):
    """Shared predictor selector for the ``spot`` and ``fleet`` commands."""
    from .obs.replay import predictor_for

    return predictor_for(name)


def _write_metrics_json(path: str, snapshot: dict) -> None:
    """Write a unified telemetry snapshot (obs registry format)."""
    import json

    with open(path, "w", encoding="utf-8") as handle:
        json.dump(snapshot, handle, indent=2, sort_keys=True)
        handle.write("\n")


def cmd_fleet(args) -> int:
    """Run concurrent deployments over one substrate, streaming events.

    Stdout speaks the same protocol ``serve`` does: a versioned
    ``hello`` line first, then one ``deploy_event`` JSON line per
    executed interval and per adopted re-plan (``"event": "replan"``,
    with the trigger kind and reason); the fleet summary goes to stderr,
    keeping stdout machine-parseable end to end.  ``--trace-log PATH``
    additionally appends the run's full event-sourced trace —
    lifecycle, substrate events, solver spans and the deterministic
    ``run_end`` summary — for ``repro replay`` / ``repro trace``.
    """
    from .api import HelloV1, Orchestrator, OrchestratorError, encode
    from .obs.replay import fleet_inputs

    if args.deployments < 1:
        print("--deployments must be >= 1", file=sys.stderr)
        return 2
    if not 0.0 <= args.failure_rate < 1.0:
        print("--failure-rate must be in [0, 1)", file=sys.stderr)
        return 2
    scenario = {
        "deployments": args.deployments,
        "mode": args.mode,
        "cadence": args.cadence,
        "replan_budget": args.replan_budget,
        "start_hour": args.start_hour,
        "trace": args.trace,
        "days": args.days,
        "seed": args.seed,
        "predictor": args.predictor,
        "failure_rate": args.failure_rate,
        "input_gb": args.input_gb,
        "deadline": args.deadline,
        "uplink_mbit": args.uplink_mbit,
    }
    try:
        specs, substrate, config, predictor = fleet_inputs(scenario)
    except ValueError as exc:
        print(str(exc), file=sys.stderr)
        return 2
    writer = tracer = None
    registry = None
    if args.trace_log:
        from .obs import MetricsRegistry
        from .obs.trace import RunTracer, TraceWriter

        registry = MetricsRegistry()
        writer = TraceWriter(args.trace_log)
        tracer = RunTracer(writer, registry=registry)
        tracer.begin("fleet", scenario, version=package_version())
    print(encode(HelloV1(version=package_version())))
    try:
        result = Orchestrator().fleet(
            specs,
            substrate,
            fleet_config=config,
            predictor=predictor,
            on_event=lambda event: print(encode(event)),
            tracer=tracer,
        )
    except OrchestratorError as exc:
        print(f"fleet failed [{exc.error.code}]: {exc.error.message}",
              file=sys.stderr)
        return 1
    finally:
        if writer is not None:
            writer.close()
    print(result.describe(), file=sys.stderr)
    if args.metrics_json and registry is not None:
        _write_metrics_json(args.metrics_json, registry.snapshot())
    return 0 if result.completed == len(specs) else 1


def cmd_replay(args) -> int:
    """Replay a trace log: inspect (default), ``--verify`` or ``--resume``.

    Verify mode re-executes the log's recorded scenario and diffs the
    deterministic record streams — exit 1 on divergence.  Resume mode
    finishes a crashed run (a log without ``run_end``): ``deploy`` logs
    rehydrate from their last ``snapshot`` record, ``fleet`` logs
    recover by prefix-checked re-execution.  Inspect mode prints the
    hour-stamped timeline; ``--mermaid PATH`` also writes a gantt chart.
    """
    from .obs import TraceError, read_trace

    try:
        records = read_trace(args.log)
    except (TraceError, OSError) as exc:
        print(f"bad trace log: {exc}", file=sys.stderr)
        return 2
    if args.verify:
        from .obs.replay import verify

        try:
            report = verify(records)
        except (TraceError, ValueError) as exc:
            print(f"replay failed: {exc}", file=sys.stderr)
            return 2
        print(report.describe())
        return 0 if report.ok else 1
    if args.resume:
        from .obs.replay import resume

        try:
            result = resume(records)
        except (TraceError, ValueError) as exc:
            print(f"resume failed: {exc}", file=sys.stderr)
            return 2
        if hasattr(result, "describe"):
            print(result.describe())
        else:
            print(f"resumed: ${result.total_cost:.2f}, "
                  f"{result.completion_hours:.2f} h, "
                  f"{result.replans} re-plans "
                  f"({'met' if result.deadline_met else 'MISSED'} "
                  f"the deadline)")
        return 0
    from .obs.timeline import render_timeline, to_mermaid

    print(render_timeline(records))
    if args.mermaid:
        with open(args.mermaid, "w", encoding="utf-8") as handle:
            handle.write(to_mermaid(records) + "\n")
        print(f"wrote {args.mermaid}", file=sys.stderr)
    return 0


def cmd_trace(args) -> int:
    """Trace-log analysis: ``summarize`` folds a log into the unified
    telemetry snapshot format (the same shape ``--metrics-json`` files
    and ``metrics.registry.snapshot()`` carry)."""
    import json

    from .obs import TraceError, read_trace
    from .obs.summary import summarize_records

    try:
        records = read_trace(args.log)
    except (TraceError, OSError) as exc:
        print(f"bad trace log: {exc}", file=sys.stderr)
        return 2
    print(json.dumps(summarize_records(records), indent=2, sort_keys=True))
    return 0


def cmd_pig(args) -> int:
    from .api import GoalSpec, NetworkSpec, from_pig, resolve_services
    from .core import plan_pipeline
    from .pig import ParseError, PlanError, compile_script

    try:
        with open(args.script, encoding="utf-8") as handle:
            source = handle.read()
    except OSError as exc:
        print(f"cannot read script: {exc}", file=sys.stderr)
        return 1
    try:
        pipeline = compile_script(source)
    except (ParseError, PlanError) as exc:
        print(f"compile error: {exc}", file=sys.stderr)
        return 1
    print(pipeline.describe())
    print(f"\npipeline depth: {pipeline.depth}")
    specs = from_pig(
        source,
        input_gb=args.input_gb,
        goal=GoalSpec(deadline_hours=args.deadline),
        network=NetworkSpec(uplink_mbit_s=args.uplink_mbit),
        catalog="hybrid" if args.local_nodes > 0 else "public",
        local_nodes=args.local_nodes,
    )
    jobs = [spec.to_planner_job() for spec in specs]
    if args.compile_only:
        for job in jobs:
            print(f"  {job.name}: in={job.input_gb:.2f} GB "
                  f"map_ratio={job.map_output_ratio:.4f} "
                  f"reduce_ratio={job.reduce_output_ratio:.4f}")
        return 0
    try:
        plan = plan_pipeline(
            jobs,
            resolve_services(specs[0]),
            specs[0].goal.to_goal(),
            specs[0].network.to_conditions(),
        )
    except Exception as exc:
        print(f"planning failed: {exc}", file=sys.stderr)
        return 1
    print()
    print(plan.describe())
    return 0


def cmd_export(args) -> int:
    from .api import Orchestrator, OrchestratorError, SchemaError
    from .core import build_model
    from .lp import save

    try:
        built = build_model(Orchestrator().compile(_spec_for(args)))
    except (SchemaError, OrchestratorError) as exc:
        print(f"bad problem: {exc}", file=sys.stderr)
        return 1
    try:
        save(built.model, args.path)
    except ValueError as exc:
        print(str(exc), file=sys.stderr)
        return 2
    stats = built.model.stats()
    print(f"wrote {args.path}: {stats['variables']} columns, "
          f"{stats['constraints']} rows, {stats['integers']} integers")
    return 0


def _add_service_arguments(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--pool", choices=("process", "thread", "inline"),
                        default="process",
                        help="solver pool mode (default: process)")
    parser.add_argument("--workers", type=int, default=2,
                        help="concurrent solver workers")
    parser.add_argument("--cache-capacity", type=int, default=256,
                        help="plan cache entries (0 disables the cache)")
    parser.add_argument("--time-limit", type=float, default=180.0,
                        help="solver cut-off ceiling in seconds")
    parser.add_argument("--incremental", action="store_true",
                        help="warm-start structurally repeated solves "
                        "(thread/inline pools; see docs/solver.md)")
    parser.add_argument("--max-pending-total", type=int, default=256,
                        help="admission bound on queued requests "
                        "(per shard with --listen)")
    parser.add_argument("--max-pending-per-tenant", type=int, default=64,
                        help="admission bound on one tenant's queued requests")
    parser.add_argument("--metrics-json", metavar="PATH",
                        help="write the unified telemetry snapshot "
                        "(obs registry format)")


def _service_config_for(args, **overrides):
    from .service import ServiceConfig

    return ServiceConfig(
        max_workers=args.workers,
        pool_mode=args.pool,
        cache_capacity=args.cache_capacity,
        solver_time_limit_s=args.time_limit,
        incremental=getattr(args, "incremental", False),
        max_pending_total=getattr(args, "max_pending_total", 256),
        max_pending_per_tenant=getattr(args, "max_pending_per_tenant", 64),
        **overrides,
    )


def _orchestrator_for(args):
    from .api import Orchestrator

    return Orchestrator(service_config=_service_config_for(args))


def cmd_serve(args) -> int:
    """Process a JSON-lines request stream through the planning service.

    The protocol *is* the versioned API: the service greets with a
    ``hello`` line (build + schema version), each input line must decode
    to a ``plan_request`` payload, and every outcome comes back as a
    ``plan_response`` (or a bare ``error`` for lines that decode to
    nothing), in submission order.  An unknown ``schema_version`` yields
    a structured ``bad_schema`` error, never a traceback.  The metrics
    summary goes to stderr.

    Example request line::

        {"schema_version": 1, "kind": "plan_request", "tenant": "acme",
         "job": {"input_gb": 16, "goal": {"deadline_hours": 6}}}

    With ``--listen HOST:PORT`` the same dialect is served over TCP by
    the asyncio sharded frontend instead (``--shards`` broker shards,
    strict per-tenant FIFO, deadline-aware shedding); the stream path
    below is untouched.
    """
    from .api import (
        ErrorV1,
        HelloV1,
        OrchestratorError,
        PlanRequestV1,
        PlanResponseV1,
        SchemaError,
        decode,
        encode,
    )

    if getattr(args, "listen", None):
        return _cmd_serve_listen(args)

    if args.requests_file:
        try:
            handle = open(args.requests_file, encoding="utf-8")
        except OSError as exc:
            print(f"cannot read requests: {exc}", file=sys.stderr)
            return 1
    else:
        handle = sys.stdin
    from collections import deque

    orchestrator = _orchestrator_for(args)
    exit_code = 0
    #: Admitted requests whose response has not been printed yet, in
    #: submission order (responses always come out in that order).
    entries: deque = deque()

    def emit(request, ticket, timeout) -> None:
        nonlocal exit_code
        try:
            result = ticket.result(timeout=timeout)
        except TimeoutError as exc:
            # Keep reporting the rest: their solves may have finished.
            print(encode(PlanResponseV1(
                status="failed",
                tenant=request.tenant,
                request_id=request.request_id,
                error=ErrorV1(code="timeout", message=str(exc)),
            )), flush=True)
            exit_code = 1
            return
        if not result.ok:
            # A scripted caller must see failed/expired streams in the
            # exit code, not just in the per-line status field.
            exit_code = 1
        print(encode(
            orchestrator.respond(result, request_id=request.request_id)
        ), flush=True)

    try:
        # Every response line is flushed as it is printed, so a consumer
        # piping from a live stream sees results as they land instead of
        # at EOF.
        print(encode(HelloV1(version=package_version())), flush=True)
        with orchestrator:
            try:
                for lineno, line in enumerate(handle, 1):
                    line = line.strip()
                    if not line or line.startswith("#"):
                        continue
                    try:
                        request = decode(line)
                    except SchemaError as exc:
                        print(encode(ErrorV1(
                            code="bad_schema",
                            message=str(exc),
                            details={"line": str(lineno)},
                        )), flush=True)
                        exit_code = 1
                        continue
                    if not isinstance(request, PlanRequestV1):
                        print(encode(ErrorV1(
                            code="bad_schema",
                            message=f"expected kind 'plan_request', "
                            f"got {request.KIND!r}",
                            details={"line": str(lineno)},
                        )), flush=True)
                        exit_code = 1
                        continue
                    try:
                        # A batch stream applies backpressure on a full
                        # backlog rather than dropping the tail.
                        entries.append(
                            (request, orchestrator.submit(request, block=True))
                        )
                    except OrchestratorError as exc:
                        # Keep stdout line-parseable: rejections get a
                        # response record too, not just a stderr note.
                        print(encode(PlanResponseV1(
                            status="rejected",
                            tenant=request.tenant,
                            request_id=request.request_id,
                            error=exc.error,
                        )), flush=True)
                        exit_code = 1
                        continue
                    # Drain whatever has already finished at the head of
                    # the line, preserving submission order.
                    while entries and entries[0][1].done():
                        head, ticket = entries.popleft()
                        emit(head, ticket, timeout=0.1)
            finally:
                if handle is not sys.stdin:
                    handle.close()
            # A ticket's turnaround includes time queued behind every
            # other admitted request, so the wait bound covers the whole
            # stream, not one solve.
            stream_timeout = args.time_limit * max(1, len(entries)) + 60.0
            while entries:
                request, ticket = entries.popleft()
                emit(request, ticket, timeout=stream_timeout)
            print(orchestrator.service.metrics.describe(), file=sys.stderr)
            if args.metrics_json:
                _write_metrics_json(
                    args.metrics_json,
                    orchestrator.service.metrics.registry.snapshot(),
                )
    except BrokenPipeError:
        # The consumer hung up mid-stream.  Stdout is useless now, but
        # the operator still gets the metrics summary on stderr.
        print(orchestrator.service.metrics.describe(), file=sys.stderr)
        return 1
    except KeyboardInterrupt:
        print(orchestrator.service.metrics.describe(), file=sys.stderr)
        return 130
    return exit_code


def _cmd_serve_listen(args) -> int:
    """``repro serve --listen``: the asyncio sharded socket frontend."""
    from .service.frontend import FrontendConfig, run_server
    from .service.frontend.client import parse_address

    try:
        host, port = parse_address(args.listen)
    except ValueError as exc:
        print(str(exc), file=sys.stderr)
        return 2
    if args.shards < 1:
        print("--shards must be >= 1", file=sys.stderr)
        return 2
    return run_server(
        FrontendConfig(host=host, port=port, shards=args.shards),
        # The socket frontend opts into strict per-tenant FIFO (cache
        # hits queue like misses) and deadline-aware shedding.
        _service_config_for(
            args, ordered_admission=True, deadline_shedding=True
        ),
        metrics_json=args.metrics_json,
    )


def cmd_submit(args) -> int:
    from .api import (
        Orchestrator,
        OrchestratorError,
        PlanRequestV1,
        SchemaError,
        encode,
    )
    from .service import ServiceConfig

    try:
        request = PlanRequestV1(
            job=_spec_for(args), tenant=args.tenant, priority=args.priority
        )
    except SchemaError as exc:
        print(f"bad job spec: {exc}", file=sys.stderr)
        return 1
    responses = []
    with Orchestrator(service_config=ServiceConfig(
        max_workers=args.workers,
        pool_mode=args.pool,
        cache_capacity=args.cache_capacity,
        solver_time_limit_s=args.time_limit,
        incremental=getattr(args, "incremental", False),
    )) as orchestrator:
        first_plan = None
        for _ in range(max(1, args.repeat)):
            try:
                ticket = orchestrator.submit(request)
                result = ticket.result(timeout=args.time_limit + 60.0)
            except OrchestratorError as exc:
                print(f"planning failed [{exc.error.code}]: "
                      f"{exc.error.message}", file=sys.stderr)
                return 1
            except TimeoutError as exc:
                print(f"planning timed out: {exc}", file=sys.stderr)
                return 1
            if first_plan is None:
                first_plan = result.plan
            responses.append(orchestrator.respond(result))
    if args.json:
        for response in responses:
            print(encode(response))
        return 0 if all(r.ok for r in responses) else 1
    first = responses[0]
    if not first.ok:
        error = first.error
        code = error.code if error else first.status
        message = error.message if error else first.status
        print(f"planning failed [{code}]: {message}", file=sys.stderr)
        return 1
    print(first_plan.describe())
    print(f"\npredicted cost:  ${first.predicted_cost:.2f}")
    for index, response in enumerate(responses):
        source = "cache" if response.cached else "solver"
        print(f"request {index + 1}: {response.total_s * 1e3:8.1f} ms "
              f"via {source}")
    return 0


def _cmd_loadgen_connect(args) -> int:
    """``repro loadgen --connect``: drive a socket frontend with N
    concurrent tenant connections and report client-observed latency."""
    import asyncio

    from .service.frontend import generate_wire_workload, run_loadgen
    from .service.frontend.client import parse_address

    addresses = [part for part in args.connect.split(",") if part]
    try:
        for address in addresses:
            parse_address(address)
        workload = generate_wire_workload(
            args.tenants,
            args.requests_per_tenant,
            seed=args.seed,
            distinct=args.distinct,
            deadline_s=args.deadline_s,
        )
    except ValueError as exc:
        print(f"bad loadgen arguments: {exc}", file=sys.stderr)
        return 2
    report = asyncio.run(run_loadgen(
        addresses,
        workload,
        connect_concurrency=args.connect_concurrency,
        response_timeout_s=args.response_timeout,
    ))
    print(report.describe())
    if args.metrics_json:
        _write_metrics_json(args.metrics_json, report.snapshot())
    # Success means *accountability*, not zero shedding: every request
    # either completed or came back as a structured error response.
    ok = (
        report.connect_failures == 0
        and report.lost == 0
        and report.answered == report.sent
    )
    return 0 if ok else 1


def cmd_loadgen(args) -> int:
    import time as _time

    from .service import generate_workload, run_workload

    if getattr(args, "connect", None):
        return _cmd_loadgen_connect(args)
    try:
        requests = generate_workload(
            tenants=args.tenants, requests=args.requests, seed=args.seed
        )
    except ValueError as exc:
        print(f"bad workload: {exc}", file=sys.stderr)
        return 2
    orchestrator = _orchestrator_for(args)
    with orchestrator:
        service = orchestrator.service
        start = _time.perf_counter()
        results, rejected = run_workload(service, requests)
        elapsed = _time.perf_counter() - start
        metrics = service.metrics.describe()
        if args.metrics_json:
            _write_metrics_json(
                args.metrics_json, service.metrics.registry.snapshot()
            )
    completed = sum(1 for r in results if r.ok)
    failed = sum(1 for r in results if r.status.value == "failed")
    rate = len(results) / elapsed if elapsed > 0 else 0.0
    print(f"workload:    {args.requests} requests from {args.tenants} tenants "
          f"(seed {args.seed}, pool {args.pool} x{args.workers})")
    print(f"throughput:  {rate:.2f} requests/s "
          f"({elapsed:.2f} s wall, {completed} ok, {failed} failed, "
          f"{rejected} rejected at admission)")
    print(metrics)
    return 0 if completed > 0 else 1


def build_parser() -> argparse.ArgumentParser:
    from .api import SCHEMA_VERSION

    parser = argparse.ArgumentParser(
        prog="repro",
        description="Conductor (NSDI 2012) reproduction — plan and deploy "
        "MapReduce jobs across cloud services",
    )
    parser.add_argument(
        "--version",
        action="version",
        version=f"repro {package_version()} (api schema v{SCHEMA_VERSION})",
    )
    commands = parser.add_subparsers(dest="command", required=True)

    plan = commands.add_parser("plan", help="compute an execution plan")
    _add_job_arguments(plan)
    plan.add_argument("--services-xml", help="service catalog XML (Fig. 3 format)")
    plan.set_defaults(handler=cmd_plan)

    deploy = commands.add_parser("deploy", help="run a simulated deployment")
    _add_job_arguments(deploy)
    deploy.add_argument("--strategy", choices=sorted(_STRATEGIES), default="conductor")
    deploy.add_argument("--nodes", type=int, default=16,
                        help="node count for the Hadoop baselines")
    deploy.add_argument("--stream", action="store_true",
                        help="run the live controller loop and stream "
                        "deploy_event JSON lines")
    deploy.add_argument("--backend", choices=["sim", "pool", "stub"],
                        default="sim",
                        help="execution backend for the controller loop "
                        "(requires --stream): deterministic fluid "
                        "simulator, local process-pool MapReduce, or "
                        "stub container subprocess")
    deploy.add_argument("--trace-log", metavar="PATH",
                        help="append the run's event-sourced trace "
                        "(requires --stream)")
    deploy.set_defaults(handler=cmd_deploy)

    services = commands.add_parser("services", help="emit/validate service XML")
    services.add_argument("--emit", action="store_true")
    services.add_argument("--validate", metavar="PATH")
    services.add_argument("--local-nodes", type=int, default=0)
    services.set_defaults(handler=cmd_services)

    spot = commands.add_parser("spot", help="evaluate a spot-market scenario")
    spot.add_argument("--trace", choices=("aws", "electricity"), default="aws")
    spot.add_argument("--predictor", default="p0",
                      help="opt, p0, or pN (window of N days)")
    spot.add_argument("--days", type=int, default=10)
    spot.add_argument("--seed", type=int, default=0)
    spot.add_argument("--input-gb", type=float, default=32.0)
    spot.add_argument("--deadline", type=float, default=10.0)
    spot.set_defaults(handler=cmd_spot)

    fleet = commands.add_parser(
        "fleet",
        help="run concurrent deployments over one substrate, streaming "
        "deploy_event JSON lines",
    )
    fleet.add_argument("--deployments", type=int, default=8,
                       help="concurrent deployments sharing the substrate")
    fleet.add_argument("--mode", choices=("event", "interval"), default="event",
                       help="event-driven re-planning or fixed-cadence only")
    fleet.add_argument("--cadence", type=float, default=6.0,
                       help="fixed re-plan cadence in hours (both modes)")
    fleet.add_argument("--replan-budget", type=int, default=16,
                       help="event-driven re-plans per deployment "
                       "(0 = interval-only)")
    fleet.add_argument("--trace", choices=("aws", "electricity"), default="aws")
    fleet.add_argument("--predictor", default="p5",
                       help="opt, p0, or pN (window of N days)")
    fleet.add_argument("--days", type=int, default=8)
    fleet.add_argument("--seed", type=int, default=0)
    fleet.add_argument("--start-hour", type=float, default=24.0,
                       help="substrate hour at which the fleet starts")
    fleet.add_argument("--failure-rate", type=float, default=0.0,
                       help="node-failure probability per service-hour")
    fleet.add_argument("--input-gb", type=float, default=4.0)
    fleet.add_argument("--deadline", type=float, default=12.0)
    fleet.add_argument("--uplink-mbit", type=float, default=16.0)
    fleet.add_argument("--trace-log", metavar="PATH",
                       help="append the run's event-sourced trace for "
                       "repro replay / repro trace")
    fleet.add_argument("--metrics-json", metavar="PATH",
                       help="write the unified telemetry snapshot "
                       "(requires --trace-log)")
    fleet.set_defaults(handler=cmd_fleet)

    replay = commands.add_parser(
        "replay",
        help="replay a trace log: timeline (default), --verify or --resume",
    )
    replay.add_argument("log", help="path to the JSON-lines trace log")
    replay.add_argument("--verify", action="store_true",
                        help="re-execute the recorded scenario and diff "
                        "the deterministic record streams")
    replay.add_argument("--resume", action="store_true",
                        help="finish a crashed run from its log")
    replay.add_argument("--mermaid", metavar="PATH",
                        help="write a Mermaid gantt chart of the run")
    replay.set_defaults(handler=cmd_replay)

    trace = commands.add_parser(
        "trace", help="analyze a trace log (summarize)"
    )
    trace_commands = trace.add_subparsers(dest="trace_command", required=True)
    summarize = trace_commands.add_parser(
        "summarize",
        help="fold a log into the unified telemetry snapshot format",
    )
    summarize.add_argument("log", help="path to the JSON-lines trace log")
    summarize.set_defaults(handler=cmd_trace)

    pig = commands.add_parser(
        "pig", help="compile a Pig-Latin script and plan the pipeline"
    )
    pig.add_argument("script", help="path to the .pig script")
    _add_job_arguments(pig)
    pig.add_argument("--compile-only", action="store_true",
                     help="show stages and per-stage jobs without planning")
    pig.set_defaults(handler=cmd_pig)

    export = commands.add_parser(
        "export", help="write the generated LP to a .lp or .mps file"
    )
    export.add_argument("path", help="output file (.lp or .mps)")
    _add_job_arguments(export)
    export.set_defaults(handler=cmd_export)

    serve = commands.add_parser(
        "serve", help="run the planning service over a JSON-lines stream"
    )
    serve.add_argument("--requests-file",
                       help="JSON-lines request file (default: stdin)")
    serve.add_argument("--listen", metavar="HOST:PORT",
                       help="serve the same dialect over TCP with the "
                       "asyncio sharded frontend (port 0 = OS-assigned)")
    serve.add_argument("--shards", type=int, default=4,
                       help="broker shards behind --listen (default: 4)")
    _add_service_arguments(serve)
    serve.set_defaults(handler=cmd_serve)

    submit = commands.add_parser(
        "submit", help="submit one job through the planning service"
    )
    _add_job_arguments(submit)
    submit.add_argument("--services-xml", help="service catalog XML (Fig. 3 format)")
    submit.add_argument("--tenant", default="default")
    submit.add_argument("--priority", type=int, default=1)
    submit.add_argument("--repeat", type=int, default=1,
                        help="submit the same request N times (cache demo)")
    submit.add_argument("--json", action="store_true",
                        help="emit versioned plan_response JSON lines")
    _add_service_arguments(submit)
    submit.set_defaults(handler=cmd_submit)

    loadgen = commands.add_parser(
        "loadgen", help="drive the service with a synthetic tenant workload"
    )
    loadgen.add_argument("--tenants", type=int, default=8)
    loadgen.add_argument("--requests", type=int, default=64)
    loadgen.add_argument("--seed", type=int, default=0)
    loadgen.add_argument("--connect", metavar="ADDR[,ADDR...]",
                         help="drive running socket frontend(s) with one "
                         "concurrent connection per tenant instead of an "
                         "in-process service; tenants route to addresses "
                         "by the stable shard hash")
    loadgen.add_argument("--requests-per-tenant", type=int, default=1,
                         help="pipelined requests per tenant connection "
                         "(--connect mode)")
    loadgen.add_argument("--distinct", type=int, default=8,
                         help="distinct job specs in the wire workload "
                         "(--connect mode; small = cache-heavy)")
    loadgen.add_argument("--deadline-s", type=float, default=None,
                         help="per-request turnaround SLO in seconds "
                         "(--connect mode)")
    loadgen.add_argument("--connect-concurrency", type=int, default=512,
                         help="simultaneous connection attempts while "
                         "ramping up (--connect mode)")
    loadgen.add_argument("--response-timeout", type=float, default=120.0,
                         help="per-connection wait for outstanding "
                         "responses in seconds (--connect mode)")
    _add_service_arguments(loadgen)
    loadgen.set_defaults(handler=cmd_loadgen)
    return parser


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    return args.handler(args)


if __name__ == "__main__":  # pragma: no cover - exercised via __main__
    raise SystemExit(main())
