"""Command-line interface: ``python -m repro <command>``.

A thin front-end over the library for the workflows a Conductor user
would actually run:

- ``plan``      — print the optimal execution plan for a job;
- ``deploy``    — run the full simulated deployment (Conductor or one of
  the paper's baselines) and print the bill;
- ``services``  — show or validate a service-description XML document;
- ``spot``      — evaluate spot-market deployment under a predictor;
- ``pig``       — compile a Pig-Latin script to MapReduce stages and
  plan the multi-stage deployment;
- ``export``    — write the generated linear program to a .lp/.mps file;
- ``serve``     — run the multi-tenant planning service over a JSON-lines
  request stream (file or stdin);
- ``submit``    — submit one job through the planning service (with
  ``--repeat`` to demonstrate the plan cache);
- ``loadgen``   — drive the service with a synthetic tenant workload and
  report throughput, cache hit rate and latency percentiles.

Examples::

    python -m repro plan --input-gb 32 --deadline 6
    python -m repro plan --input-gb 32 --deadline 4 --local-nodes 5
    python -m repro deploy --strategy conductor --input-gb 8 --deadline 3
    python -m repro services --emit
    python -m repro spot --trace electricity --predictor p5 --deadline 10
    python -m repro pig script.pig --input-gb 24 --deadline 10
    python -m repro export --input-gb 32 --deadline 6 model.lp
    python -m repro serve --requests-file requests.jsonl
    python -m repro submit --input-gb 16 --deadline 6 --repeat 3
    python -m repro loadgen --tenants 8 --requests 64
"""

from __future__ import annotations

import argparse
import sys

from .cloud import (
    aws_like_trace,
    electricity_like_trace,
    hybrid_cloud,
    load_services,
    public_cloud,
    to_xml,
)
from .core import (
    CurrentPricePredictor,
    DeploymentScenario,
    Goal,
    NetworkConditions,
    OptimalPredictor,
    PlannerJob,
    WindowMaxPredictor,
    plan_job,
    run_conductor,
    run_hadoop_direct,
    run_hadoop_s3,
    run_hadoop_upload_first,
)
from .core.spot_sim import run_spot_scenario

_STRATEGIES = {
    "conductor": run_conductor,
    "hadoop-direct": run_hadoop_direct,
    "hadoop-s3": run_hadoop_s3,
    "hadoop-upload-first": run_hadoop_upload_first,
}


def _add_job_arguments(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--input-gb", type=float, default=32.0,
                        help="input data size (default: the paper's 32 GB)")
    parser.add_argument("--deadline", type=float, default=6.0,
                        help="completion deadline in hours")
    parser.add_argument("--uplink-mbit", type=float, default=16.0,
                        help="customer uplink in Mbit/s")
    parser.add_argument("--local-nodes", type=int, default=0,
                        help="size of the customer's own cluster (hybrid)")


def _services_for(args) -> list:
    if getattr(args, "services_xml", None):
        return load_services(args.services_xml)
    if args.local_nodes > 0:
        return hybrid_cloud(local_nodes=args.local_nodes)
    return public_cloud()


def _problem_for(args):
    """The PlanningProblem described by the shared job arguments."""
    from .core import PlanningProblem

    return PlanningProblem(
        job=PlannerJob(name="job", input_gb=args.input_gb),
        services=_services_for(args),
        network=NetworkConditions.from_mbit_s(args.uplink_mbit),
        goal=Goal.min_cost(deadline_hours=args.deadline),
    )


def cmd_plan(args) -> int:
    job = PlannerJob(name="job", input_gb=args.input_gb)
    try:
        plan = plan_job(
            job,
            _services_for(args),
            Goal.min_cost(deadline_hours=args.deadline),
            network=NetworkConditions.from_mbit_s(args.uplink_mbit),
        )
    except Exception as exc:
        print(f"planning failed: {exc}", file=sys.stderr)
        return 1
    print(plan.describe())
    print(f"\npredicted cost:  ${plan.predicted_cost:.2f}")
    print(f"peak instances:  {plan.peak_nodes()}")
    for key, value in sorted(plan.predicted_cost_breakdown.items()):
        if value > 1e-4:
            print(f"  {key:28s} ${value:.3f}")
    return 0


def cmd_deploy(args) -> int:
    from .cloud import local_cluster

    scenario = DeploymentScenario(
        input_gb=args.input_gb,
        deadline_hours=args.deadline,
        uplink_mbit_s=args.uplink_mbit,
        local=local_cluster(args.local_nodes) if args.local_nodes else None,
        local_nodes=args.local_nodes,
    )
    strategy = _STRATEGIES[args.strategy]
    kwargs = {} if args.strategy == "conductor" else {"nodes": args.nodes}
    result = strategy(scenario, **kwargs)
    print(f"{result.name}: ${result.total_cost:.2f}, "
          f"{result.runtime_s / 3600:.2f} h "
          f"({'met' if result.deadline_met else 'MISSED'} the deadline)")
    for key, value in sorted(result.cost_breakdown().items()):
        if value > 1e-4:
            print(f"  {key:20s} ${value:.3f}")
    return 0


def cmd_services(args) -> int:
    if args.emit:
        services = hybrid_cloud() if args.local_nodes else public_cloud()
        print(to_xml(services))
        return 0
    if args.validate:
        try:
            services = load_services(args.validate)
        except Exception as exc:
            print(f"invalid: {exc}", file=sys.stderr)
            return 1
        print(f"ok: {len(services)} services")
        for service in services:
            kinds = "+".join(sorted(k.value for k in service.kinds))
            print(f"  {service.name:20s} {kinds}")
        return 0
    print("use --emit or --validate PATH", file=sys.stderr)
    return 2


def cmd_spot(args) -> int:
    trace = (
        electricity_like_trace(days=args.days, seed=args.seed)
        if args.trace == "electricity"
        else aws_like_trace(days=args.days, seed=args.seed)
    )
    predictors = {
        "opt": OptimalPredictor,
        "p0": CurrentPricePredictor,
    }
    if args.predictor in predictors:
        predictor = predictors[args.predictor]()
    elif args.predictor.startswith("p"):
        predictor = WindowMaxPredictor(int(args.predictor[1:]))
    else:
        print(f"unknown predictor {args.predictor!r}", file=sys.stderr)
        return 2
    result = run_spot_scenario(
        PlannerJob(name="job", input_gb=args.input_gb),
        trace,
        predictor,
        deadline_hours=args.deadline,
    )
    summary = result.summary
    print(f"{result.label}: {len(result.costs)} runs")
    print(f"  average ${summary['average']:.2f}  max ${summary['maximum']:.2f}  "
          f"stddev {summary['stddev']:.2f}")
    print(f"  re-plans per run: {result.replans}")
    return 0


def cmd_pig(args) -> int:
    from .core import plan_pipeline
    from .pig import PlanError, ParseError, compile_script

    try:
        with open(args.script, encoding="utf-8") as handle:
            source = handle.read()
    except OSError as exc:
        print(f"cannot read script: {exc}", file=sys.stderr)
        return 1
    try:
        pipeline = compile_script(source)
    except (ParseError, PlanError) as exc:
        print(f"compile error: {exc}", file=sys.stderr)
        return 1
    print(pipeline.describe())
    print(f"\npipeline depth: {pipeline.depth}")
    loads = pipeline.plan.loads
    input_gb = {load.path: args.input_gb / len(loads) for load in loads}
    jobs = pipeline.to_planner_jobs(input_gb)
    if args.compile_only:
        for job in jobs:
            print(f"  {job.name}: in={job.input_gb:.2f} GB "
                  f"map_ratio={job.map_output_ratio:.4f} "
                  f"reduce_ratio={job.reduce_output_ratio:.4f}")
        return 0
    try:
        plan = plan_pipeline(
            jobs,
            _services_for(args),
            Goal.min_cost(deadline_hours=args.deadline),
            NetworkConditions.from_mbit_s(args.uplink_mbit),
        )
    except Exception as exc:
        print(f"planning failed: {exc}", file=sys.stderr)
        return 1
    print()
    print(plan.describe())
    return 0


def cmd_export(args) -> int:
    from .core import build_model
    from .lp import save

    try:
        built = build_model(_problem_for(args))
    except Exception as exc:
        print(f"bad problem: {exc}", file=sys.stderr)
        return 1
    try:
        save(built.model, args.path)
    except ValueError as exc:
        print(str(exc), file=sys.stderr)
        return 2
    stats = built.model.stats()
    print(f"wrote {args.path}: {stats['variables']} columns, "
          f"{stats['constraints']} rows, {stats['integers']} integers")
    return 0


def _add_service_arguments(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--pool", choices=("process", "thread", "inline"),
                        default="process",
                        help="solver pool mode (default: process)")
    parser.add_argument("--workers", type=int, default=2,
                        help="concurrent solver workers")
    parser.add_argument("--cache-capacity", type=int, default=256,
                        help="plan cache entries (0 disables the cache)")
    parser.add_argument("--time-limit", type=float, default=180.0,
                        help="solver cut-off ceiling in seconds")


def _service_for(args):
    from .service import PlanningService, ServiceConfig

    return PlanningService(ServiceConfig(
        max_workers=args.workers,
        pool_mode=args.pool,
        cache_capacity=args.cache_capacity,
        solver_time_limit_s=args.time_limit,
    ))


def _result_json(result) -> str:
    import json

    payload = {
        "request_id": result.request_id,
        "tenant": result.tenant,
        "status": result.status.value,
        "cached": result.cached,
        "queue_wait_s": round(result.queue_wait_s, 4),
        "solve_s": round(result.solve_s, 4),
        "total_s": round(result.total_s, 4),
    }
    if result.plan is not None:
        payload["predicted_cost"] = round(result.plan.predicted_cost, 4)
        payload["predicted_completion_hours"] = round(
            result.plan.predicted_completion_hours, 3
        )
        payload["peak_nodes"] = result.plan.peak_nodes()
    if result.error:
        payload["error"] = result.error
    return json.dumps(payload)


def cmd_serve(args) -> int:
    """Process a JSON-lines request stream through the planning service.

    Each input line describes one request, e.g.::

        {"tenant": "acme", "scenario": "quickstart", "input_gb": 16,
         "deadline": 6, "priority": 1}

    Results are emitted as JSON lines on stdout (submission order);
    the metrics summary goes to stderr.
    """
    import json

    from .service import AdmissionError, PlanRequest, problem_for_scenario

    if args.requests_file:
        try:
            handle = open(args.requests_file, encoding="utf-8")
        except OSError as exc:
            print(f"cannot read requests: {exc}", file=sys.stderr)
            return 1
    else:
        handle = sys.stdin
    service = _service_for(args)
    exit_code = 0
    with service:
        tickets = []
        try:
            for lineno, line in enumerate(handle, 1):
                line = line.strip()
                if not line or line.startswith("#"):
                    continue
                try:
                    spec = json.loads(line)
                    if not isinstance(spec, dict):
                        raise ValueError("request must be a JSON object")
                    problem = problem_for_scenario(
                        spec.get("scenario", "quickstart"),
                        input_gb=float(spec.get("input_gb", 16.0)),
                        deadline_hours=float(spec.get("deadline", 6.0)),
                        uplink_mbit=float(spec.get("uplink_mbit", 16.0)),
                        local_nodes=int(spec.get("local_nodes", 5)),
                        spot_price=float(spec.get("spot_price", 0.2)),
                    )
                    request = PlanRequest(
                        tenant=str(spec.get("tenant", "default")),
                        problem=problem,
                        priority=int(spec.get("priority", 1)),
                        deadline_s=spec.get("deadline_s"),
                        time_budget_s=spec.get("time_budget_s"),
                    )
                except (ValueError, KeyError, TypeError) as exc:
                    print(f"line {lineno}: bad request: {exc}", file=sys.stderr)
                    exit_code = 1
                    continue
                try:
                    # A batch stream applies backpressure on a full
                    # backlog rather than dropping the tail.
                    tickets.append(service.submit_request(request, block=True))
                except AdmissionError as exc:
                    # Keep stdout line-parseable: rejections get a result
                    # record too, not just a stderr note.
                    print(json.dumps({
                        "line": lineno,
                        "tenant": request.tenant,
                        "status": "rejected",
                        "error": str(exc),
                    }))
                    exit_code = 1
        finally:
            if handle is not sys.stdin:
                handle.close()
        # A ticket's turnaround includes time queued behind every other
        # admitted request, so the wait bound covers the whole stream,
        # not one solve.
        stream_timeout = args.time_limit * max(1, len(tickets)) + 60.0
        for ticket in tickets:
            try:
                result = ticket.result(timeout=stream_timeout)
            except TimeoutError as exc:
                # Keep reporting the rest: their solves may have finished.
                print(json.dumps({
                    "request_id": ticket.request_id,
                    "tenant": ticket.tenant,
                    "status": "timeout",
                    "error": str(exc),
                }))
                exit_code = 1
                continue
            if not result.ok:
                # A scripted caller must see failed/expired streams in the
                # exit code, not just in the per-line status field.
                exit_code = 1
            print(_result_json(result))
        print(service.metrics.describe(), file=sys.stderr)
    return exit_code


def cmd_submit(args) -> int:
    try:
        problem = _problem_for(args)
    except Exception as exc:
        print(f"bad problem: {exc}", file=sys.stderr)
        return 1
    service = _service_for(args)
    with service:
        results = []
        for _ in range(max(1, args.repeat)):
            ticket = service.submit(
                problem, tenant=args.tenant, priority=args.priority
            )
            try:
                results.append(ticket.result(timeout=args.time_limit + 60.0))
            except TimeoutError as exc:
                print(f"planning timed out: {exc}", file=sys.stderr)
                return 1
    first = results[0]
    if not first.ok:
        print(f"planning failed: {first.error}", file=sys.stderr)
        return 1
    print(first.plan.describe())
    print(f"\npredicted cost:  ${first.plan.predicted_cost:.2f}")
    for index, result in enumerate(results):
        source = "cache" if result.cached else "solver"
        print(f"request {index + 1}: {result.total_s * 1e3:8.1f} ms via {source}")
    return 0


def cmd_loadgen(args) -> int:
    import time as _time

    from .service import generate_workload, run_workload

    try:
        requests = generate_workload(
            tenants=args.tenants, requests=args.requests, seed=args.seed
        )
    except ValueError as exc:
        print(f"bad workload: {exc}", file=sys.stderr)
        return 2
    service = _service_for(args)
    with service:
        start = _time.perf_counter()
        results, rejected = run_workload(service, requests)
        elapsed = _time.perf_counter() - start
    completed = sum(1 for r in results if r.ok)
    failed = sum(1 for r in results if r.status.value == "failed")
    rate = len(results) / elapsed if elapsed > 0 else 0.0
    print(f"workload:    {args.requests} requests from {args.tenants} tenants "
          f"(seed {args.seed}, pool {args.pool} x{args.workers})")
    print(f"throughput:  {rate:.2f} requests/s "
          f"({elapsed:.2f} s wall, {completed} ok, {failed} failed, "
          f"{rejected} rejected at admission)")
    print(service.metrics.describe())
    return 0 if completed > 0 else 1


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Conductor (NSDI 2012) reproduction — plan and deploy "
        "MapReduce jobs across cloud services",
    )
    commands = parser.add_subparsers(dest="command", required=True)

    plan = commands.add_parser("plan", help="compute an execution plan")
    _add_job_arguments(plan)
    plan.add_argument("--services-xml", help="service catalog XML (Fig. 3 format)")
    plan.set_defaults(handler=cmd_plan)

    deploy = commands.add_parser("deploy", help="run a simulated deployment")
    _add_job_arguments(deploy)
    deploy.add_argument("--strategy", choices=sorted(_STRATEGIES), default="conductor")
    deploy.add_argument("--nodes", type=int, default=16,
                        help="node count for the Hadoop baselines")
    deploy.set_defaults(handler=cmd_deploy)

    services = commands.add_parser("services", help="emit/validate service XML")
    services.add_argument("--emit", action="store_true")
    services.add_argument("--validate", metavar="PATH")
    services.add_argument("--local-nodes", type=int, default=0)
    services.set_defaults(handler=cmd_services)

    spot = commands.add_parser("spot", help="evaluate a spot-market scenario")
    spot.add_argument("--trace", choices=("aws", "electricity"), default="aws")
    spot.add_argument("--predictor", default="p0",
                      help="opt, p0, or pN (window of N days)")
    spot.add_argument("--days", type=int, default=10)
    spot.add_argument("--seed", type=int, default=0)
    spot.add_argument("--input-gb", type=float, default=32.0)
    spot.add_argument("--deadline", type=float, default=10.0)
    spot.set_defaults(handler=cmd_spot)

    pig = commands.add_parser(
        "pig", help="compile a Pig-Latin script and plan the pipeline"
    )
    pig.add_argument("script", help="path to the .pig script")
    _add_job_arguments(pig)
    pig.add_argument("--compile-only", action="store_true",
                     help="show stages and per-stage jobs without planning")
    pig.set_defaults(handler=cmd_pig)

    export = commands.add_parser(
        "export", help="write the generated LP to a .lp or .mps file"
    )
    export.add_argument("path", help="output file (.lp or .mps)")
    _add_job_arguments(export)
    export.set_defaults(handler=cmd_export)

    serve = commands.add_parser(
        "serve", help="run the planning service over a JSON-lines stream"
    )
    serve.add_argument("--requests-file",
                       help="JSON-lines request file (default: stdin)")
    _add_service_arguments(serve)
    serve.set_defaults(handler=cmd_serve)

    submit = commands.add_parser(
        "submit", help="submit one job through the planning service"
    )
    _add_job_arguments(submit)
    submit.add_argument("--services-xml", help="service catalog XML (Fig. 3 format)")
    submit.add_argument("--tenant", default="default")
    submit.add_argument("--priority", type=int, default=1)
    submit.add_argument("--repeat", type=int, default=1,
                        help="submit the same request N times (cache demo)")
    _add_service_arguments(submit)
    submit.set_defaults(handler=cmd_submit)

    loadgen = commands.add_parser(
        "loadgen", help="drive the service with a synthetic tenant workload"
    )
    loadgen.add_argument("--tenants", type=int, default=8)
    loadgen.add_argument("--requests", type=int, default=64)
    loadgen.add_argument("--seed", type=int, default=0)
    _add_service_arguments(loadgen)
    loadgen.set_defaults(handler=cmd_loadgen)
    return parser


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    return args.handler(args)


if __name__ == "__main__":  # pragma: no cover - exercised via __main__
    raise SystemExit(main())
