"""Seeded randomness helpers.

Every stochastic component (spot traces, straggler injection, workload
generators) derives its generator from a root seed through this module, so
one integer reproduces an entire experiment.
"""

from __future__ import annotations

import hashlib

import numpy as np


def derive_seed(root_seed: int, *labels: str | int) -> int:
    """Derive a stable child seed from a root seed and a label path.

    Hash-based derivation means adding a new consumer of randomness never
    perturbs the streams of existing consumers, which keeps recorded
    experiment numbers stable as the library grows.
    """
    digest = hashlib.sha256()
    digest.update(str(root_seed).encode())
    for label in labels:
        digest.update(b"/")
        digest.update(str(label).encode())
    return int.from_bytes(digest.digest()[:8], "big")


def generator(root_seed: int, *labels: str | int) -> np.random.Generator:
    """A numpy generator seeded from ``derive_seed(root_seed, *labels)``."""
    return np.random.default_rng(derive_seed(root_seed, *labels))
