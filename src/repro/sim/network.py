"""Fluid-flow network model with max-min fair bandwidth sharing.

The paper's evaluation is dominated by data movement: uploads over the
customer's 16 Mbit/s uplink, S3 ↔ EC2 transfers, HDFS replication traffic
(Sections 6.1-6.6).  Rather than simulating packets, we use a *fluid*
model: each transfer is a flow with a remaining size; concurrent flows
share link capacity max-min fairly; the event kernel advances flows
piecewise-linearly between rate changes.

Topology is explicit: links have capacities in MB/s, and routes map
``(src_site, dst_site)`` pairs to link sequences, so the same model covers
the client uplink, per-node NICs and per-node disks.
"""

from __future__ import annotations

import itertools
import math
from dataclasses import dataclass, field
from typing import Callable, Iterable, Sequence

from .clock import Simulation
from .events import Event

_EPS_MB = 1e-6


class RoutingError(KeyError):
    """No route is defined between the requested sites."""


@dataclass
class Link:
    """A shared capacity constraint (WAN uplink, NIC, disk spindle...)."""

    name: str
    capacity_mb_s: float
    #: Total MB that have traversed the link (for utilization reports).
    mb_transferred: float = 0.0

    def __post_init__(self) -> None:
        if self.capacity_mb_s <= 0:
            raise ValueError(f"link {self.name!r} needs positive capacity")


class Topology:
    """Named links plus (src, dst) -> link-sequence routes."""

    def __init__(self) -> None:
        self.links: dict[str, Link] = {}
        self._routes: dict[tuple[str, str], list[Link]] = {}

    def add_link(self, name: str, capacity_mb_s: float) -> Link:
        if name in self.links:
            raise ValueError(f"duplicate link {name!r}")
        link = Link(name, capacity_mb_s)
        self.links[name] = link
        return link

    def add_route(
        self,
        src: str,
        dst: str,
        link_names: Sequence[str],
        symmetric: bool = True,
    ) -> None:
        """Register the link path from ``src`` to ``dst``.

        An empty path means the transfer is node-local and completes at
        infinite rate.  With ``symmetric`` the reverse route reuses the
        same links (full-duplex links should be added twice instead).
        """
        links = [self.links[name] for name in link_names]
        self._routes[(src, dst)] = links
        if symmetric and (dst, src) not in self._routes:
            self._routes[(dst, src)] = list(reversed(links))

    def route(self, src: str, dst: str) -> list[Link]:
        if (src, dst) in self._routes:
            return self._routes[(src, dst)]
        if src == dst:
            return []  # node-local, no explicit self-route: instantaneous
        raise RoutingError(f"no route {src!r} -> {dst!r}")

    def has_route(self, src: str, dst: str) -> bool:
        return src == dst or (src, dst) in self._routes


@dataclass
class Flow:
    """An in-flight bulk transfer."""

    flow_id: int
    src: str
    dst: str
    size_mb: float
    links: list[Link]
    on_complete: Callable[["Flow"], None] | None
    started_at: float
    remaining_mb: float = field(init=False)
    rate_mb_s: float = 0.0
    completed_at: float | None = None
    cancelled: bool = False

    def __post_init__(self) -> None:
        self.remaining_mb = self.size_mb

    @property
    def active(self) -> bool:
        return self.completed_at is None and not self.cancelled


def max_min_fair_rates(
    flow_links: Sequence[Sequence[Link]],
    capacities: dict[str, float] | None = None,
) -> list[float]:
    """Compute max-min fair rates for flows given their link paths.

    Standard progressive filling: repeatedly find the most-contended link,
    fix the fair share of its unfrozen flows, remove that capacity, and
    continue.  Flows with an empty path get ``math.inf``.

    ``capacities`` optionally overrides link capacities by name (used by
    tests); by default each link's ``capacity_mb_s`` is used.
    """
    def capacity_of(link: Link) -> float:
        if capacities is not None and link.name in capacities:
            return capacities[link.name]
        return link.capacity_mb_s

    rates: list[float] = [math.inf] * len(flow_links)
    unfrozen = {i for i, links in enumerate(flow_links) if links}
    remaining = {}
    members: dict[str, set[int]] = {}
    link_by_name: dict[str, Link] = {}
    for i in unfrozen:
        for link in flow_links[i]:
            link_by_name[link.name] = link
            members.setdefault(link.name, set()).add(i)
            remaining.setdefault(link.name, capacity_of(link))

    while unfrozen:
        # Bottleneck link: smallest per-flow fair share among live links.
        best_name, best_share = None, math.inf
        for name, flows_here in members.items():
            live = flows_here & unfrozen
            if not live:
                continue
            share = remaining[name] / len(live)
            if share < best_share:
                best_name, best_share = name, share
        if best_name is None:
            break
        saturated = members[best_name] & unfrozen
        for i in saturated:
            rates[i] = best_share
            unfrozen.discard(i)
            for link in flow_links[i]:
                remaining[link.name] = max(0.0, remaining[link.name] - best_share)
    return rates


class FluidNetwork:
    """Max-min fair fluid network bound to a :class:`Simulation`.

    Rates are piecewise constant: every flow arrival/completion/cancel
    triggers a progress update (advancing ``remaining_mb`` at the old
    rates) followed by a global re-allocation and re-scheduling of the
    next completion event.
    """

    def __init__(self, sim: Simulation, topology: Topology) -> None:
        self.sim = sim
        self.topology = topology
        self._flows: list[Flow] = []
        self._flow_ids = itertools.count()
        self._last_update = sim.now
        self._completion_event: Event | None = None
        self.completed_flows: int = 0

    @property
    def active_flows(self) -> list[Flow]:
        return [f for f in self._flows if f.active]

    # -- public API ---------------------------------------------------------

    def start_flow(
        self,
        src: str,
        dst: str,
        size_mb: float,
        on_complete: Callable[[Flow], None] | None = None,
    ) -> Flow:
        """Begin transferring ``size_mb`` from ``src`` to ``dst``.

        ``on_complete`` fires from the event loop when the last byte is
        delivered.  Zero-sized and node-local flows complete via an
        immediately scheduled event (never synchronously) so callers can
        rely on callback ordering.
        """
        if size_mb < 0:
            raise ValueError("flow size must be non-negative")
        links = self.topology.route(src, dst)
        self._advance_progress()
        flow = Flow(
            flow_id=next(self._flow_ids),
            src=src,
            dst=dst,
            size_mb=size_mb,
            links=links,
            on_complete=on_complete,
            started_at=self.sim.now,
        )
        self._flows.append(flow)
        self._reallocate()
        return flow

    def cancel_flow(self, flow: Flow) -> None:
        """Abort a flow; delivered bytes stay delivered, callback never fires."""
        if not flow.active:
            return
        self._advance_progress()
        flow.cancelled = True
        self._flows.remove(flow)
        self._reallocate()

    def utilization_mb(self) -> dict[str, float]:
        """MB moved per link so far (includes in-flight progress)."""
        self._advance_progress()
        self._reallocate()
        return {name: link.mb_transferred for name, link in self.topology.links.items()}

    # -- internals ----------------------------------------------------------

    def _advance_progress(self) -> None:
        elapsed = self.sim.now - self._last_update
        if elapsed > 0:
            for flow in self._flows:
                if flow.rate_mb_s > 0 and math.isfinite(flow.rate_mb_s):
                    moved = min(flow.remaining_mb, flow.rate_mb_s * elapsed)
                    flow.remaining_mb -= moved
                    for link in flow.links:
                        link.mb_transferred += moved
        self._last_update = self.sim.now

    def _reallocate(self) -> None:
        active = [f for f in self._flows if f.active]
        rates = max_min_fair_rates([f.links for f in active])
        for flow, rate in zip(active, rates):
            flow.rate_mb_s = rate
        if self._completion_event is not None:
            self._completion_event.cancel()
            self._completion_event = None
        next_done = math.inf
        for flow in active:
            if flow.remaining_mb <= _EPS_MB or not math.isfinite(flow.rate_mb_s):
                next_done = 0.0
                break
            if flow.rate_mb_s > 0:
                next_done = min(next_done, flow.remaining_mb / flow.rate_mb_s)
        if math.isfinite(next_done):
            self._completion_event = self.sim.schedule(
                next_done, self._handle_completions, priority=-1
            )

    def _handle_completions(self) -> None:
        self._completion_event = None
        self._advance_progress()
        finished = [
            f
            for f in self._flows
            if f.active
            and (f.remaining_mb <= _EPS_MB or not math.isfinite(f.rate_mb_s))
        ]
        for flow in finished:
            flow.remaining_mb = 0.0
            flow.completed_at = self.sim.now
            self._flows.remove(flow)
            self.completed_flows += 1
        self._reallocate()
        for flow in finished:
            if flow.on_complete is not None:
                flow.on_complete(flow)
