"""Discrete-event simulation kernel.

Provides the shared virtual clock (:class:`Simulation`), the event queue,
a max-min fair fluid network model (:class:`FluidNetwork` over a
:class:`Topology` of :class:`Link` objects), and seeded RNG derivation.
The MapReduce engine, the storage layer and the job controller all run on
this kernel.
"""

from .clock import Simulation, SimulationError
from .events import Event, EventQueue
from .network import (
    Flow,
    FluidNetwork,
    Link,
    RoutingError,
    Topology,
    max_min_fair_rates,
)
from .rng import derive_seed, generator

__all__ = [
    "Event",
    "EventQueue",
    "Flow",
    "FluidNetwork",
    "Link",
    "RoutingError",
    "Simulation",
    "SimulationError",
    "Topology",
    "derive_seed",
    "generator",
    "max_min_fair_rates",
]
