"""The simulation driver: virtual clock plus event dispatch loop.

All simulated components (network flows, MapReduce tasks, billing meters,
the job controller's monitoring ticks) schedule callbacks on one shared
:class:`Simulation` instance.  Time is in **seconds**.
"""

from __future__ import annotations

import math
from typing import Any, Callable

from .events import Event, EventQueue


class SimulationError(RuntimeError):
    """Raised on misuse of the simulation kernel (e.g. scheduling in the
    past), which would silently corrupt causality if allowed."""


class Simulation:
    """Discrete-event simulation with a monotonically advancing clock."""

    def __init__(self, start_time: float = 0.0) -> None:
        self._now = float(start_time)
        self._queue = EventQueue()
        self._running = False
        self.events_dispatched = 0

    @property
    def now(self) -> float:
        """Current simulated time in seconds."""
        return self._now

    # -- scheduling ---------------------------------------------------------

    def schedule(
        self,
        delay: float,
        callback: Callable[..., Any],
        *args: Any,
        priority: int = 0,
    ) -> Event:
        """Schedule ``callback(*args)`` to run ``delay`` seconds from now."""
        if delay < 0:
            raise SimulationError(f"cannot schedule {delay} s in the past")
        return self._queue.push(self._now + delay, callback, args, priority)

    def schedule_at(
        self,
        time: float,
        callback: Callable[..., Any],
        *args: Any,
        priority: int = 0,
    ) -> Event:
        """Schedule ``callback(*args)`` at absolute simulated time ``time``."""
        if time < self._now - 1e-9:
            raise SimulationError(
                f"cannot schedule at {time} s; clock is already at {self._now} s"
            )
        return self._queue.push(max(time, self._now), callback, args, priority)

    # -- execution ----------------------------------------------------------

    def step(self) -> bool:
        """Dispatch the next event.  Returns ``False`` when queue is empty."""
        event = self._queue.pop()
        if event is None:
            return False
        if event.time < self._now - 1e-9:
            raise SimulationError("event queue returned an event from the past")
        self._now = max(self._now, event.time)
        self.events_dispatched += 1
        event.callback(*event.args)
        return True

    def run(self, until: float = math.inf, max_events: int = 10_000_000) -> float:
        """Run until the queue empties or the clock passes ``until``.

        Returns the clock value afterwards.  ``max_events`` is a runaway
        guard: exceeding it raises, as that almost always indicates an
        event-scheduling loop bug rather than a legitimately long run.
        """
        if self._running:
            raise SimulationError("run() called re-entrantly from a callback")
        self._running = True
        try:
            dispatched = 0
            while True:
                next_time = self._queue.peek_time()
                if next_time is None or next_time > until:
                    break
                self.step()
                dispatched += 1
                if dispatched > max_events:
                    raise SimulationError(
                        f"dispatched more than {max_events} events; likely a loop"
                    )
            # If asked to run to a horizon beyond the last event, advance the
            # clock there so subsequent schedule() calls are relative to it.
            if math.isfinite(until) and until > self._now:
                self._now = until
        finally:
            self._running = False
        return self._now

    def run_until_idle(self) -> float:
        """Run until no events remain; returns the final clock value."""
        return self.run()
