"""Event queue primitives for the discrete-event simulation kernel.

Events are ordered by ``(time, priority, sequence)``: ties at the same
timestamp resolve by priority, then by scheduling order, which keeps the
simulation deterministic for a fixed seed — a requirement for reproducible
experiments and for the property-based tests.
"""

from __future__ import annotations

import heapq
import itertools
from dataclasses import dataclass, field
from typing import Any, Callable


@dataclass(order=True)
class Event:
    """A scheduled callback.  Cancelled events stay in the heap but are
    skipped when popped (lazy deletion)."""

    time: float
    priority: int
    sequence: int
    callback: Callable[..., Any] = field(compare=False)
    args: tuple = field(compare=False, default=())
    cancelled: bool = field(compare=False, default=False)

    def cancel(self) -> None:
        """Mark the event so the queue drops it instead of firing it."""
        self.cancelled = True


class EventQueue:
    """A priority queue of :class:`Event` with lazy cancellation."""

    def __init__(self) -> None:
        self._heap: list[Event] = []
        self._sequence = itertools.count()

    def __len__(self) -> int:
        return sum(1 for e in self._heap if not e.cancelled)

    def __bool__(self) -> bool:
        return any(not e.cancelled for e in self._heap)

    def push(
        self,
        time: float,
        callback: Callable[..., Any],
        args: tuple = (),
        priority: int = 0,
    ) -> Event:
        event = Event(time, priority, next(self._sequence), callback, args)
        heapq.heappush(self._heap, event)
        return event

    def pop(self) -> Event | None:
        """Remove and return the earliest live event, or ``None`` if empty."""
        while self._heap:
            event = heapq.heappop(self._heap)
            if not event.cancelled:
                return event
        return None

    def peek_time(self) -> float | None:
        """Timestamp of the earliest live event without removing it."""
        while self._heap and self._heap[0].cancelled:
            heapq.heappop(self._heap)
        return self._heap[0].time if self._heap else None
