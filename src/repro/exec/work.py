"""Real-work execution: planned intervals materialized as task batches.

:class:`WorkExecutor` is the shared base of the process-pool and
stub-container backends.  Per interval it

1. derives a batch of :class:`~repro.exec.tasks.TaskSpec` from the
   plan's map/reduce flows (one node schema for every backend),
2. hands the batch to its :class:`TaskRunner` (a process pool, a
   subprocess, one day a container fleet), and
3. runs the fluid interval accounting with the map/reduce capacity
   **capped by what the workers actually completed** — a dead or
   timed-out worker becomes a progress shortfall plus an entry in
   ``IntervalOutcome.failed_services``, which fires the failure trigger
   and drives a re-plan, exactly the paper's monitor loop.

The plan-only invariant is preserved by construction: real completions
can only *lower* the fluid capacity, never raise it above the plan.

Runtime state (the worker pool, the task counter, collected reduce
output) lives on the executor and survives re-planning via
:meth:`~repro.exec.sim.SimExecutor.rebind` — a re-plan changes the
believed world, not the substrate.
"""

from __future__ import annotations

import abc
import math
from dataclasses import dataclass, field

from ..core.accounting import CostLedger
from ..core.conditions import ActualConditions
from ..core.executor import IntervalOutcome
from ..core.plan import PlanInterval
from ..core.problem import PlanningProblem, SystemState
from ..mapreduce.functions import resolve_reduce
from .sim import SimExecutor
from .tasks import DEFAULT_TIMEOUT_S, TaskResult, TaskSpec

_EPS = 1e-9

#: Default options shared by the real-execution backends.
DEFAULT_OPTIONS = {
    #: Plan-GB one task accounts for (chunking granularity).
    "task_gb": 1.0,
    #: Bytes of real input synthesized per map task.
    "payload_bytes": 16384,
    #: Per-node task timeout, seconds.
    "timeout_s": DEFAULT_TIMEOUT_S,
    #: Registry name of the map/reduce pair to run.
    "function": "wordcount",
    #: Worker processes (pool backend).
    "max_workers": 2,
    #: Chaos hook: global sequence number of the task whose worker
    #: SIGKILLs itself (``None`` = no chaos).  The sequence survives
    #: re-planning, so the kill happens exactly once per run.
    "chaos_kill_task": None,
}


class TaskRunner(abc.ABC):
    """Executes one task batch on some substrate; never raises per-task."""

    @abc.abstractmethod
    def run_batch(self, specs: list[TaskSpec]) -> list[TaskResult]:
        """Run the batch; returns one result per spec, in spec order."""

    def close(self) -> None:  # pragma: no cover - trivial default
        """Release the substrate's resources."""


@dataclass
class TaskReport:
    """What one interval's real task batch achieved."""

    results: list[TaskResult] = field(default_factory=list)
    #: Successfully completed map plan-GB per compute service.
    map_gb: dict[str, float] = field(default_factory=dict)
    #: Successfully completed reduce plan-GB (all services).
    reduce_gb: float = 0.0
    #: Services with at least one non-ok task this interval.
    failed_services: list[str] = field(default_factory=list)

    @property
    def failures(self) -> int:
        return sum(1 for result in self.results if not result.ok)


class WorkExecutor(SimExecutor):
    """Fluid accounting capped by real task execution (see module doc)."""

    name = "work"

    def __init__(
        self,
        problem: PlanningProblem,
        actual: ActualConditions,
        ledger: CostLedger | None = None,
        hour_offset: float = 0.0,
        options: dict | None = None,
    ) -> None:
        super().__init__(problem, actual, ledger, hour_offset=hour_offset)
        merged = dict(DEFAULT_OPTIONS)
        unknown = set(options or {}) - set(merged)
        if unknown:
            raise ValueError(
                f"unknown backend options {sorted(unknown)}; "
                f"expected a subset of {sorted(merged)}"
            )
        merged.update(options or {})
        self.options = merged
        self._runner = self._make_runner()
        self._task_seq = 0
        self._report: TaskReport | None = None
        #: Map-task outputs awaiting a reduce task.
        self._pending_partials: list[dict] = []
        self._collected: dict = {}
        self.tasks_run = 0
        self.tasks_failed = 0

    @abc.abstractmethod
    def _make_runner(self) -> TaskRunner:
        """The substrate this backend runs task batches on."""

    # -- protocol ----------------------------------------------------------

    def run_interval(
        self, interval: PlanInterval, state: SystemState
    ) -> IntervalOutcome:
        specs = self._plan_tasks(interval, state)
        report = self._execute_tasks(specs) if specs else None
        self._report = report
        try:
            outcome = self.execute_interval(interval, state)
        finally:
            self._report = None
        if report is not None:
            self._absorb(specs, report, outcome)
        return outcome

    def close(self) -> None:
        self._runner.close()

    # -- capacity caps (the seam into the fluid accounting) ----------------

    def _map_capacity(self, name: str, count: int, delta: float) -> float:
        capacity = super()._map_capacity(name, count, delta)
        if self._report is not None:
            capacity = min(capacity, self._report.map_gb.get(name, 0.0))
        return capacity

    def _reduce_capacity(
        self,
        interval: PlanInterval,
        nodes: dict[str, int],
        delta: float,
        map_gb_this_interval: float,
    ) -> float:
        capacity = super()._reduce_capacity(
            interval, nodes, delta, map_gb_this_interval
        )
        if self._report is not None:
            capacity = min(capacity, self._report.reduce_gb)
        return capacity

    # -- task derivation ---------------------------------------------------

    def _next_spec(self, kind: str, service: str, gb: float, **extra) -> TaskSpec:
        seq = self._task_seq
        self._task_seq += 1
        chaos = ""
        if self.options["chaos_kill_task"] is not None and (
            seq == int(self.options["chaos_kill_task"])
        ):
            chaos = "kill"
        return TaskSpec(
            task_id=f"{self.job.name}-{kind}-{seq:06d}",
            kind=kind,
            service=service,
            function=self.options["function"],
            gb=gb,
            payload_bytes=(
                int(self.options["payload_bytes"]) if kind == "map" else 0
            ),
            timeout_s=float(self.options["timeout_s"]),
            chaos=chaos,
            **extra,
        )

    def _chunks(self, total_gb: float) -> list[float]:
        """Split ``total_gb`` of planned work into task-sized chunks."""
        if total_gb <= _EPS:
            return []
        task_gb = max(float(self.options["task_gb"]), _EPS)
        count = max(1, math.ceil(total_gb / task_gb - 1e-9))
        return [total_gb / count] * count

    def _plan_tasks(
        self, interval: PlanInterval, state: SystemState
    ) -> list[TaskSpec]:
        """The interval's planned work, as a task batch.

        Map flows chunk per (source, compute) plan entry.  Reduce tasks
        are derived when the map phase is (or will be, per plan) done
        this interval: the remaining reduce work is chunked round-robin
        over the interval's allocated services, each task draining an
        equal share of the pending map partials.
        """
        job = self.job
        specs: list[TaskSpec] = []
        planned_map = 0.0
        for (src, dst), planned in sorted(interval.map_read_gb.items()):
            planned_map += planned
            for gb in self._chunks(planned):
                specs.append(self._next_spec("map", dst, gb))
        will_finish_map = (
            state.map_done_gb + planned_map >= job.input_gb - 1e-6
        )
        reduce_remaining = job.map_output_gb - state.reduce_done_gb
        services = sorted(interval.nodes)
        if (
            job.map_output_gb > _EPS
            and reduce_remaining > _EPS
            and will_finish_map
            and services
        ):
            chunks = self._chunks(reduce_remaining)
            pending = self._pending_partials
            self._pending_partials = []
            share = max(1, math.ceil(len(pending) / max(1, len(chunks))))
            for position, gb in enumerate(chunks):
                partials = tuple(
                    pending[position * share:(position + 1) * share]
                )
                specs.append(self._next_spec(
                    "reduce",
                    services[position % len(services)],
                    gb,
                    partials=partials,
                ))
        return specs

    # -- result absorption -------------------------------------------------

    def _execute_tasks(self, specs: list[TaskSpec]) -> TaskReport:
        results = self._runner.run_batch(specs)
        report = TaskReport(results=results)
        failed: set[str] = set()
        by_id = {result.task_id: result for result in results}
        for spec in specs:
            result = by_id.get(spec.task_id)
            if result is not None and result.ok:
                if spec.kind == "map":
                    report.map_gb[spec.service] = (
                        report.map_gb.get(spec.service, 0.0) + spec.gb
                    )
                else:
                    report.reduce_gb += spec.gb
            else:
                failed.add(spec.service)
        report.failed_services = sorted(failed)
        return report

    def _absorb(
        self,
        specs: list[TaskSpec],
        report: TaskReport,
        outcome: IntervalOutcome,
    ) -> None:
        by_id = {result.task_id: result for result in report.results}
        for spec in specs:
            result = by_id.get(spec.task_id)
            self.tasks_run += 1
            if result is not None and result.ok:
                if spec.kind == "map":
                    self._pending_partials.append(dict(result.counts))
                else:
                    self._collected = resolve_reduce(
                        self.options["function"]
                    )([self._collected, result.counts])
            else:
                self.tasks_failed += 1
                if spec.kind == "reduce" and spec.partials:
                    # The merge never happened; its inputs go back into
                    # the queue so the re-planned work re-merges them.
                    self._pending_partials.extend(
                        dict(p) for p in spec.partials
                    )
        if report.failed_services:
            outcome.failed_services = list(report.failed_services)

    def collected_counts(self) -> dict:
        """The reduce output merged so far (plus still-pending partials)."""
        return resolve_reduce(self.options["function"])(
            [self._collected, *self._pending_partials]
        )


__all__ = ["DEFAULT_OPTIONS", "TaskReport", "TaskRunner", "WorkExecutor"]
