"""Container-side task handler: ``python -m repro.exec.handler``.

Reads one task batch (``{"tasks": [...]}``) from stdin, executes each
task with the shared worker entry point, writes the result batch
(``{"results": [...]}``) to stdout, and exits 0.  Anything that breaks
the batch as a whole — undecodable input, a worker SIGKILL taking the
process down — surfaces as a non-zero exit status, which the caller
treats as a whole-batch failure (see :mod:`repro.exec.stub`).

This module is the stand-in for a container image's entrypoint: a real
image would ``COPY`` the ``repro`` package and run exactly this.
"""

from __future__ import annotations

import sys

from .tasks import decode_batch, encode_results, execute_task


def main(stdin=None, stdout=None) -> int:
    stdin = stdin if stdin is not None else sys.stdin
    stdout = stdout if stdout is not None else sys.stdout
    try:
        specs = decode_batch(stdin.read())
    except (ValueError, KeyError) as exc:
        print(f"handler: bad task batch on stdin: {exc}", file=sys.stderr)
        return 2
    results = [execute_task(spec) for spec in specs]
    stdout.write(encode_results(results))
    stdout.write("\n")
    return 0


if __name__ == "__main__":  # pragma: no cover - exercised via subprocess
    sys.exit(main())
