"""``backend="stub"``: the container contract, minus the container.

Each interval's task batch is shelled into a fresh subprocess running
:mod:`repro.exec.handler` — the batch JSON goes in on stdin, the result
JSON comes back on stdout, non-zero exit fails the whole batch.  That is
exactly the contract a real container image would speak; promoting this
backend to Docker/Kubernetes means swapping the command line for
``docker run`` (or a pod exec) and nothing else.
"""

from __future__ import annotations

import os
import subprocess
import sys
from pathlib import Path

from .tasks import TaskResult, TaskSpec, decode_results, encode_batch
from .work import TaskRunner, WorkExecutor

#: Extra wall-clock (seconds) allowed for interpreter startup + imports.
_STARTUP_SLACK_S = 15.0


def _handler_command() -> list[str]:
    """The "container entrypoint" — here, this interpreter + handler."""
    return [sys.executable, "-m", "repro.exec.handler"]


def _handler_env() -> dict[str, str]:
    """Subprocess env with ``repro`` importable from this checkout."""
    env = dict(os.environ)
    src_root = str(Path(__file__).resolve().parents[2])
    existing = env.get("PYTHONPATH", "")
    env["PYTHONPATH"] = (
        src_root + os.pathsep + existing if existing else src_root
    )
    return env


class SubprocessRunner(TaskRunner):
    """One subprocess per batch, speaking the stdin/stdout JSON contract."""

    def run_batch(self, specs: list[TaskSpec]) -> list[TaskResult]:
        budget = sum(spec.timeout_s for spec in specs) + _STARTUP_SLACK_S
        try:
            proc = subprocess.run(
                _handler_command(),
                input=encode_batch(specs),
                capture_output=True,
                text=True,
                timeout=budget,
                env=_handler_env(),
            )
        except subprocess.TimeoutExpired:
            return [
                TaskResult(
                    task_id=spec.task_id,
                    status="timeout",
                    error=f"batch exceeded {budget:g}s",
                )
                for spec in specs
            ]
        if proc.returncode != 0:
            # The contract: non-zero exit (e.g. a SIGKILLed worker, exit
            # status -9) fails the entire batch.
            detail = (proc.stderr or "").strip().splitlines()
            reason = detail[-1] if detail else f"exit status {proc.returncode}"
            return [
                TaskResult(
                    task_id=spec.task_id, status="killed", error=reason
                )
                for spec in specs
            ]
        try:
            results = decode_results(proc.stdout)
        except (ValueError, KeyError) as exc:
            return [
                TaskResult(
                    task_id=spec.task_id,
                    status="error",
                    error=f"unparseable handler output: {exc}",
                )
                for spec in specs
            ]
        by_id = {result.task_id: result for result in results}
        return [
            by_id.get(
                spec.task_id,
                TaskResult(
                    task_id=spec.task_id,
                    status="error",
                    error="no result for task in handler output",
                ),
            )
            for spec in specs
        ]


class StubContainerExecutor(WorkExecutor):
    """See module docstring."""

    name = "stub"

    def _make_runner(self) -> TaskRunner:
        return SubprocessRunner()


__all__ = ["StubContainerExecutor", "SubprocessRunner"]
