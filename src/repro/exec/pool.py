"""``backend="pool"``: local process-pool MapReduce execution.

Each interval's task batch runs on a
:class:`concurrent.futures.ProcessPoolExecutor`, one worker process per
"node".  Per-node timeouts are enforced on the result wait; a worker
death (the chaos SIGKILL, an OOM kill) breaks the pool — every task
still in flight is reported ``killed``, the pool is discarded and
lazily rebuilt, and the controller sees the loss as a service failure.
"""

from __future__ import annotations

import concurrent.futures as futures
from concurrent.futures.process import BrokenProcessPool

from .tasks import TaskResult, TaskSpec, execute_task_wire
from .work import TaskRunner, WorkExecutor


class ProcessPoolRunner(TaskRunner):
    """Task batches on a lazily (re)built process pool."""

    def __init__(self, max_workers: int = 2) -> None:
        self._max_workers = max(1, int(max_workers))
        self._pool: futures.ProcessPoolExecutor | None = None

    def _ensure_pool(self) -> futures.ProcessPoolExecutor:
        if self._pool is None:
            self._pool = futures.ProcessPoolExecutor(
                max_workers=self._max_workers
            )
        return self._pool

    def run_batch(self, specs: list[TaskSpec]) -> list[TaskResult]:
        try:
            pool = self._ensure_pool()
            pending = [
                (spec, pool.submit(execute_task_wire, spec.to_dict()))
                for spec in specs
            ]
        except BrokenProcessPool as exc:
            self._discard_pool()
            return [self._killed(spec, exc) for spec in specs]
        results: list[TaskResult] = []
        broken: BrokenProcessPool | None = None
        for spec, future in pending:
            if broken is not None:
                future.cancel()
                results.append(self._killed(spec, broken))
                continue
            try:
                results.append(
                    TaskResult.from_dict(future.result(timeout=spec.timeout_s))
                )
            except futures.TimeoutError:
                future.cancel()
                results.append(TaskResult(
                    task_id=spec.task_id,
                    status="timeout",
                    error=f"exceeded per-node timeout of {spec.timeout_s:g}s",
                ))
            except BrokenProcessPool as exc:
                broken = exc
                results.append(self._killed(spec, exc))
            except Exception as exc:  # submit-side failure, not task error
                results.append(TaskResult(
                    task_id=spec.task_id,
                    status="error",
                    error=f"{type(exc).__name__}: {exc}",
                ))
        if broken is not None:
            self._discard_pool()
        return results

    @staticmethod
    def _killed(spec: TaskSpec, exc: BaseException) -> TaskResult:
        return TaskResult(
            task_id=spec.task_id,
            status="killed",
            error=f"worker pool broken: {type(exc).__name__}",
        )

    def _discard_pool(self) -> None:
        if self._pool is not None:
            self._pool.shutdown(wait=False, cancel_futures=True)
            self._pool = None

    def close(self) -> None:
        if self._pool is not None:
            self._pool.shutdown(wait=True, cancel_futures=True)
            self._pool = None


class PoolExecutor(WorkExecutor):
    """See module docstring."""

    name = "pool"

    def _make_runner(self) -> TaskRunner:
        return ProcessPoolRunner(max_workers=self.options["max_workers"])


__all__ = ["PoolExecutor", "ProcessPoolRunner"]
