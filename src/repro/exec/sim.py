"""The fluid simulator adapted behind the :class:`Executor` protocol."""

from __future__ import annotations

from ..core.executor import FluidExecutor, IntervalOutcome
from ..core.plan import PlanInterval
from ..core.problem import PlanningProblem, SystemState


class SimExecutor(FluidExecutor):
    """``backend="sim"``: the historical fluid executor, protocol-shaped.

    Behaviour is byte-identical to driving :class:`FluidExecutor`
    directly — :meth:`run_interval` *is* ``execute_interval`` — which is
    what keeps sim-backend trace logs verifiable against runs recorded
    before the backend seam existed.
    """

    name = "sim"

    def run_interval(
        self, interval: PlanInterval, state: SystemState
    ) -> IntervalOutcome:
        return self.execute_interval(interval, state)

    def rebind(self, problem: PlanningProblem) -> None:
        """Adopt a re-planned problem in place.

        Equivalent to constructing a fresh executor against ``problem``
        (the historical re-plan path): ``actual``, the ledger and the
        hour offset are run-scoped and unchanged, and stale spot bids
        are irrelevant because the controller refreshes every spot
        service's bid before each interval.
        """
        self.problem = problem
        self.job = problem.job
        self._services = {s.name: s for s in problem.services}

    def close(self) -> None:
        """The simulator holds no external resources."""


__all__ = ["SimExecutor"]
