"""Pluggable execution backends behind one :class:`Executor` protocol.

See :mod:`repro.exec.base` for the protocol and the backend matrix, and
``docs/executors.md`` for the narrative guide (including how to add a
backend).
"""

from .base import BACKENDS, Executor, make_executor
from .sim import SimExecutor
from .tasks import (
    DEFAULT_TIMEOUT_S,
    TASK_KINDS,
    TASK_STATUSES,
    TaskResult,
    TaskSpec,
    decode_batch,
    decode_results,
    encode_batch,
    encode_results,
    execute_task,
    execute_task_wire,
)
from .work import DEFAULT_OPTIONS, TaskReport, TaskRunner, WorkExecutor

__all__ = [
    "BACKENDS",
    "DEFAULT_OPTIONS",
    "DEFAULT_TIMEOUT_S",
    "Executor",
    "SimExecutor",
    "TASK_KINDS",
    "TASK_STATUSES",
    "TaskReport",
    "TaskResult",
    "TaskRunner",
    "TaskSpec",
    "WorkExecutor",
    "decode_batch",
    "decode_results",
    "encode_batch",
    "encode_results",
    "execute_task",
    "execute_task_wire",
    "make_executor",
]


def __getattr__(name: str):
    # Pool/stub classes import concurrent.futures/subprocess machinery;
    # load them on demand so ``import repro.exec`` stays light.
    if name == "PoolExecutor":
        from .pool import PoolExecutor

        return PoolExecutor
    if name == "StubContainerExecutor":
        from .stub import StubContainerExecutor

        return StubContainerExecutor
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
