"""The ``Executor`` protocol: one controller, many substrates.

The deploy/monitor/adapt loop (:mod:`repro.core.controller`) is defined
by the paper's deployment invariant — execute only what the plan
contains, surface shortfalls, let re-planning absorb reality — not by
the fluid simulator it historically ran against.  This module names the
seam: anything satisfying :class:`Executor` can sit under a
:class:`~repro.core.controller.ControllerRun`.

Three backends ship (:data:`BACKENDS`):

``sim``
    The fluid simulator behind the interface — byte-identical behaviour
    to the historical controller, and the only *deterministic* backend
    (``repro replay --verify`` accepts only sim-backend logs).
``pool``
    A local process-pool MapReduce runner: the interval's planned work
    is materialized as tasks and actually executed — real map/reduce
    callables over real bytes — on a
    :class:`~concurrent.futures.ProcessPoolExecutor`, with per-node
    timeouts.  Worker deaths surface as ``failed_services`` on the
    outcome and fire the failure trigger.
``stub``
    A stand-in container backend: the same task batch is shelled into a
    subprocess speaking the JSON stdin/stdout contract
    (:mod:`repro.exec.handler`) — swap the command line for ``docker
    run`` and nothing else changes.

All three mutate the same :class:`~repro.core.problem.SystemState`
through the same fluid bookkeeping, so plan-only execution, shortfall
reporting and ledger accounting hold identically — the conformance
suite (``tests/exec``) asserts exactly that, parameterized over
:data:`BACKENDS`.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Protocol, runtime_checkable

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..core.accounting import CostLedger
    from ..core.conditions import ActualConditions
    from ..core.executor import IntervalOutcome
    from ..core.plan import PlanInterval
    from ..core.problem import PlanningProblem, SystemState

#: Execution backends :func:`make_executor` can build, in maturity order.
BACKENDS = ("sim", "pool", "stub")


@runtime_checkable
class Executor(Protocol):
    """What the controller requires of an execution backend.

    Attributes
    ----------
    name:
        The backend selector this executor answers to (``"sim"`` ...).
    bids:
        Per-spot-service bid, written by the controller before every
        interval (:meth:`JobController._update_bids`).
    """

    name: str
    bids: dict[str, float]

    def run_interval(
        self, interval: "PlanInterval", state: "SystemState"
    ) -> "IntervalOutcome":
        """Execute one planned interval, mutating ``state`` and charging
        the ledger; returns what actually happened."""
        ...

    def is_complete(self, state: "SystemState") -> bool:
        """True once the job's work is done under ``state``."""
        ...

    def rebind(self, problem: "PlanningProblem") -> None:
        """Adopt a re-planned problem (new believed services/estimates)
        without discarding executor-held runtime state — worker pools,
        task counters and collected results survive re-planning."""
        ...

    def close(self) -> None:
        """Release backend resources (worker pools, subprocesses)."""
        ...


def make_executor(
    backend: str,
    problem: "PlanningProblem",
    actual: "ActualConditions",
    ledger: "CostLedger | None" = None,
    *,
    hour_offset: float = 0.0,
    options: dict | None = None,
) -> Executor:
    """Build the named backend's executor.

    ``options`` is the backend's knob dict (ignored by ``sim``): task
    sizing (``task_gb``, ``payload_bytes``), per-node ``timeout_s``,
    ``max_workers``, the registry ``function`` to run, and the chaos
    hook ``chaos_kill_task``.  Raises :class:`ValueError` for an unknown
    backend, listing :data:`BACKENDS`.
    """
    if backend == "sim":
        from .sim import SimExecutor

        return SimExecutor(problem, actual, ledger, hour_offset=hour_offset)
    if backend == "pool":
        from .pool import PoolExecutor

        return PoolExecutor(
            problem, actual, ledger, hour_offset=hour_offset,
            options=options,
        )
    if backend == "stub":
        from .stub import StubContainerExecutor

        return StubContainerExecutor(
            problem, actual, ledger, hour_offset=hour_offset,
            options=options,
        )
    raise ValueError(
        f"unknown execution backend {backend!r}; expected one of {list(BACKENDS)}"
    )


__all__ = ["BACKENDS", "Executor", "make_executor"]
