"""The one node/task schema every execution backend speaks.

A backend executes an interval's planned work as a batch of *tasks*.
Whatever the substrate — an in-process call, a process-pool worker, a
subprocess standing in for a container — the task is the same JSON
object (:class:`TaskSpec`) and the answer is the same JSON object
(:class:`TaskResult`).  The stub-container contract is exactly the
reference design's Docker contract: the spec batch arrives on **stdin**,
the result batch leaves on **stdout**, and a non-zero exit status means
the whole batch failed (see :mod:`repro.exec.handler`).

Tasks are pure functions of their spec: input bytes are synthesized
deterministically from the task's seed, and the map/reduce callables
are named registry entries from :mod:`repro.mapreduce.functions` — a
spec never carries code, so it serializes to JSON and survives a
process boundary.

:func:`execute_task` is the single worker-side entry point all backends
share; :func:`execute_task_wire` is its dict-in/dict-out form (the
picklable target a :class:`~concurrent.futures.ProcessPoolExecutor`
submits, and the loop the stdin/stdout handler runs).
"""

from __future__ import annotations

import json
import os
import signal
import time
from dataclasses import dataclass, field
from typing import Mapping

from ..mapreduce.functions import (
    resolve_map,
    resolve_reduce,
    seed_for,
    synthesize_text,
)

#: Task kinds — the two MapReduce phases.
TASK_KINDS = ("map", "reduce")

#: Result statuses.  ``killed`` marks a worker that died (SIGKILL,
#: broken pool); ``timeout`` a task that exceeded its per-node budget.
TASK_STATUSES = ("ok", "error", "timeout", "killed")

#: Default per-node task timeout (seconds) when the spec sets none.
DEFAULT_TIMEOUT_S = 30.0


@dataclass(frozen=True)
class TaskSpec:
    """One unit of real work, addressed to one node of one service."""

    task_id: str
    #: ``"map"`` or ``"reduce"``.
    kind: str
    #: Compute service whose node runs this task (plan vocabulary).
    service: str
    #: Registry name of the map/reduce callable to run.
    function: str
    #: Plan-GB this task accounts for (fluid bookkeeping, not payload size).
    gb: float
    #: Bytes of input to synthesize for a map task.
    payload_bytes: int = 0
    #: Per-node timeout for this task, seconds.
    timeout_s: float = DEFAULT_TIMEOUT_S
    #: Reduce only: the partial counts this task merges.
    partials: tuple = ()
    #: Chaos hook: ``"kill"`` makes the worker SIGKILL itself (tests).
    chaos: str = ""

    def __post_init__(self) -> None:
        if self.kind not in TASK_KINDS:
            raise ValueError(
                f"unknown task kind {self.kind!r}; expected one of {TASK_KINDS}"
            )
        object.__setattr__(self, "gb", float(self.gb))
        object.__setattr__(self, "timeout_s", float(self.timeout_s))
        object.__setattr__(
            self, "partials", tuple(dict(p) for p in self.partials)
        )

    @property
    def seed(self) -> int:
        """Deterministic input seed — a pure function of the task id."""
        return seed_for(self.task_id)

    def to_dict(self) -> dict:
        data = {
            "task_id": self.task_id,
            "kind": self.kind,
            "service": self.service,
            "function": self.function,
            "gb": self.gb,
            "payload_bytes": self.payload_bytes,
            "timeout_s": self.timeout_s,
        }
        if self.partials:
            data["partials"] = [dict(p) for p in self.partials]
        if self.chaos:
            data["chaos"] = self.chaos
        return data

    @classmethod
    def from_dict(cls, data: Mapping) -> "TaskSpec":
        return cls(
            task_id=str(data["task_id"]),
            kind=str(data["kind"]),
            service=str(data["service"]),
            function=str(data["function"]),
            gb=float(data["gb"]),
            payload_bytes=int(data.get("payload_bytes", 0)),
            timeout_s=float(data.get("timeout_s", DEFAULT_TIMEOUT_S)),
            partials=tuple(dict(p) for p in data.get("partials", ())),
            chaos=str(data.get("chaos", "")),
        )


@dataclass(frozen=True)
class TaskResult:
    """What one task's execution produced."""

    task_id: str
    status: str
    #: Worker-side wall-clock seconds (diagnostic, nondeterministic).
    seconds: float = 0.0
    #: Merged/partial counts the task produced (map output / reduce output).
    counts: dict = field(default_factory=dict)
    error: str = ""

    def __post_init__(self) -> None:
        if self.status not in TASK_STATUSES:
            raise ValueError(
                f"unknown task status {self.status!r}; "
                f"expected one of {TASK_STATUSES}"
            )
        object.__setattr__(self, "counts", dict(self.counts))

    @property
    def ok(self) -> bool:
        return self.status == "ok"

    def to_dict(self) -> dict:
        data = {
            "task_id": self.task_id,
            "status": self.status,
            "seconds": self.seconds,
        }
        if self.counts:
            data["counts"] = dict(self.counts)
        if self.error:
            data["error"] = self.error
        return data

    @classmethod
    def from_dict(cls, data: Mapping) -> "TaskResult":
        return cls(
            task_id=str(data["task_id"]),
            status=str(data["status"]),
            seconds=float(data.get("seconds", 0.0)),
            counts=dict(data.get("counts", {})),
            error=str(data.get("error", "")),
        )


# ---------------------------------------------------------------------------
# worker-side execution — shared by every backend


def execute_task(spec: TaskSpec) -> TaskResult:
    """Run one task and return its result (never raises for task errors).

    The chaos hook runs *before* any work: a ``chaos="kill"`` spec makes
    the worker process SIGKILL itself, which is how the chaos suite
    injects a mid-interval worker death without mocking.
    """
    if spec.chaos == "kill":
        os.kill(os.getpid(), signal.SIGKILL)
    start = time.perf_counter()
    try:
        if spec.kind == "map":
            data = synthesize_text(spec.seed, spec.payload_bytes)
            counts = resolve_map(spec.function)(data)
        else:
            counts = resolve_reduce(spec.function)(spec.partials)
        return TaskResult(
            task_id=spec.task_id,
            status="ok",
            seconds=time.perf_counter() - start,
            counts=counts,
        )
    except Exception as exc:  # a task failure is data, not a crash
        return TaskResult(
            task_id=spec.task_id,
            status="error",
            seconds=time.perf_counter() - start,
            error=f"{type(exc).__name__}: {exc}",
        )


def execute_task_wire(spec_dict: dict) -> dict:
    """Dict-in/dict-out :func:`execute_task` — the process-pool target."""
    return execute_task(TaskSpec.from_dict(spec_dict)).to_dict()


# ---------------------------------------------------------------------------
# the stdin/stdout batch framing (stub-container contract)


def encode_batch(specs: list[TaskSpec]) -> str:
    """The JSON a container/subprocess reads from stdin."""
    return json.dumps({"tasks": [spec.to_dict() for spec in specs]})


def decode_batch(text: str) -> list[TaskSpec]:
    data = json.loads(text)
    return [TaskSpec.from_dict(entry) for entry in data["tasks"]]


def encode_results(results: list[TaskResult]) -> str:
    """The JSON a container/subprocess writes to stdout."""
    return json.dumps({"results": [result.to_dict() for result in results]})


def decode_results(text: str) -> list[TaskResult]:
    data = json.loads(text)
    return [TaskResult.from_dict(entry) for entry in data["results"]]


__all__ = [
    "DEFAULT_TIMEOUT_S",
    "TASK_KINDS",
    "TASK_STATUSES",
    "TaskResult",
    "TaskSpec",
    "decode_batch",
    "decode_results",
    "encode_batch",
    "encode_results",
    "execute_task",
    "execute_task_wire",
]
