"""Logical plan assembly, validation, and size estimation.

A :class:`LogicalPlan` is a DAG of :class:`~repro.pig.operators.Operator`
nodes keyed by alias.  Construction order is script order; validation
checks alias resolution and propagates schemas through every node so
that type errors surface before anything is compiled or executed.

Size estimation annotates each alias with estimated rows and bytes,
seeded by per-LOAD input sizes.  The estimates only need to be rough:
they feed the LP planner with per-stage data volumes, and the paper's
planner likewise runs off aggregate GB figures (Section 4.1).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Mapping

from .operators import Load, Operator, PlanError, Store
from .schema import Schema


@dataclass(frozen=True)
class SizeEstimate:
    """Estimated relation size at one point in the plan."""

    rows: float
    bytes_per_row: float

    @property
    def total_bytes(self) -> float:
        return self.rows * self.bytes_per_row

    @property
    def total_gb(self) -> float:
        return self.total_bytes / 1e9


#: Assumed on-disk width of one scalar column, bytes.  Text-serialized
#: numerics and short strings are all in the ~8-16 byte range; precision
#: here only scales LP coefficients.
DEFAULT_COLUMN_BYTES = 12.0


class LogicalPlan:
    """An ordered collection of operators forming a dataflow DAG."""

    def __init__(self) -> None:
        self._operators: dict[str, Operator] = {}
        self._order: list[str] = []
        self._stores: list[Store] = []

    # -- construction --------------------------------------------------------

    def add(self, operator: Operator) -> Operator:
        """Append an operator; inputs must already be defined."""
        if operator.alias in self._operators:
            raise PlanError(f"alias {operator.alias!r} is already defined")
        for name in operator.inputs:
            if name not in self._operators:
                raise PlanError(
                    f"{type(operator).__name__} {operator.alias!r} reads "
                    f"undefined alias {name!r}"
                )
        self._operators[operator.alias] = operator
        self._order.append(operator.alias)
        if isinstance(operator, Store):
            self._stores.append(operator)
        return operator

    def extend(self, operators: Iterable[Operator]) -> None:
        for operator in operators:
            self.add(operator)

    # -- access ---------------------------------------------------------------

    def __len__(self) -> int:
        return len(self._operators)

    def __contains__(self, alias: str) -> bool:
        return alias in self._operators

    def __getitem__(self, alias: str) -> Operator:
        try:
            return self._operators[alias]
        except KeyError:
            raise PlanError(
                f"unknown alias {alias!r}; defined: {self._order}"
            ) from None

    @property
    def aliases(self) -> list[str]:
        """Aliases in definition (= topological) order."""
        return list(self._order)

    @property
    def operators(self) -> list[Operator]:
        return [self._operators[a] for a in self._order]

    @property
    def loads(self) -> list[Load]:
        return [op for op in self.operators if isinstance(op, Load)]

    @property
    def stores(self) -> list[Store]:
        return list(self._stores)

    def consumers(self, alias: str) -> list[Operator]:
        return [op for op in self.operators if alias in op.inputs]

    # -- validation ------------------------------------------------------------

    def schemas(self) -> dict[str, Schema]:
        """Propagate schemas through the plan; raises PlanError on mismatch."""
        out: dict[str, Schema] = {}
        for alias in self._order:
            operator = self._operators[alias]
            input_schemas = [out[name] for name in operator.inputs]
            out[alias] = operator.output_schema(input_schemas)
        return out

    def validate(self) -> None:
        """Full static check: schemas resolve and at least one sink exists."""
        if not self._stores:
            raise PlanError("plan has no STORE; nothing would be computed")
        self.schemas()
        reachable = self._reachable_from_stores()
        dead = [a for a in self._order if a not in reachable]
        if dead:
            raise PlanError(
                f"aliases never reach a STORE (dead dataflow): {dead}"
            )

    def _reachable_from_stores(self) -> set[str]:
        reachable: set[str] = set()
        frontier = [s.alias for s in self._stores]
        while frontier:
            alias = frontier.pop()
            if alias in reachable:
                continue
            reachable.add(alias)
            frontier.extend(self._operators[alias].inputs)
        return reachable

    # -- size estimation ---------------------------------------------------------

    def estimate_sizes(
        self, input_gb: Mapping[str, float]
    ) -> dict[str, SizeEstimate]:
        """Estimated size of every alias, from per-LOAD-path input sizes.

        ``input_gb`` maps LOAD paths (or aliases) to gigabytes.  Row
        counts derive from the schema width; downstream operators apply
        their ``row_ratio`` and adjust widths (GROUP packs rows into
        bags, FOREACH re-projects, JOIN concatenates).
        """
        schemas = self.schemas()
        estimates: dict[str, SizeEstimate] = {}
        for alias in self._order:
            operator = self._operators[alias]
            if isinstance(operator, Load):
                gb = input_gb.get(operator.path, input_gb.get(alias))
                if gb is None:
                    raise PlanError(
                        f"no input size for LOAD {operator.path!r} "
                        f"(provide input_gb[{operator.path!r}])"
                    )
                width = max(1.0, len(operator.schema) * DEFAULT_COLUMN_BYTES)
                estimates[alias] = SizeEstimate(rows=gb * 1e9 / width,
                                                bytes_per_row=width)
                continue
            inputs = [estimates[name] for name in operator.inputs]
            input_schemas = [schemas[name] for name in operator.inputs]
            rows_in = sum(e.rows for e in inputs)
            ratio = operator.row_ratio(input_schemas)
            rows_out = max(0.0, rows_in * ratio)
            width_out = self._output_width(operator, inputs, schemas[alias], ratio)
            estimates[alias] = SizeEstimate(rows=rows_out, bytes_per_row=width_out)
        return estimates

    @staticmethod
    def _output_width(
        operator: Operator,
        inputs: list[SizeEstimate],
        output_schema: Schema,
        row_ratio: float,
    ) -> float:
        from .operators import ForEach, Group, Join

        if isinstance(operator, Group):
            # Bags keep every input byte; each output row carries
            # key + (rows_in/rows_out) packed tuples.
            per_key = inputs[0].bytes_per_row / max(row_ratio, 1e-9)
            return DEFAULT_COLUMN_BYTES + per_key
        if isinstance(operator, Join):
            return sum(e.bytes_per_row for e in inputs)
        if isinstance(operator, ForEach):
            return max(1.0, len(output_schema) * DEFAULT_COLUMN_BYTES)
        # Filters, order, distinct, limit, union, store keep the row shape.
        return max(e.bytes_per_row for e in inputs) if inputs else 1.0

    def describe(self) -> str:
        """Human-readable plan listing (``EXPLAIN``-style)."""
        schemas = self.schemas()
        lines = []
        for alias in self._order:
            operator = self._operators[alias]
            kind = type(operator).__name__.upper()
            inputs = ",".join(operator.inputs) or "-"
            lines.append(
                f"{alias:>12}  {kind:<8} <- {inputs:<16} ({schemas[alias]})"
            )
        return "\n".join(lines)
