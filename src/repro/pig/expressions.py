"""Expression AST for the Pig dialect: evaluation and type inference.

Expressions appear in ``FILTER ... BY``, ``FOREACH ... GENERATE``,
``GROUP ... BY`` and ``JOIN ... BY`` clauses.  Each node knows how to

- evaluate itself against one input tuple (``evaluate``), and
- infer its output field given the input schema (``infer``),

so the same AST drives both the record-level local engines and the
schema propagation in the logical plan.

Null semantics follow Pig: any comparison or arithmetic involving a null
yields null (which FILTER treats as false); aggregates skip nulls.
"""

from __future__ import annotations

import abc
import math
from dataclasses import dataclass
from typing import Any, Callable, Sequence

from .schema import Field, PigType, Schema, numeric_join


class ExpressionError(ValueError):
    """A semantically invalid expression for the given schema."""


class Expression(abc.ABC):
    """Base class for all expression nodes."""

    @abc.abstractmethod
    def evaluate(self, row: tuple, schema: Schema) -> Any:
        """Value of this expression for one input tuple."""

    @abc.abstractmethod
    def infer(self, schema: Schema) -> Field:
        """Output field (name + type) given the input schema."""

    @abc.abstractmethod
    def references(self) -> set[str]:
        """Column references appearing in the expression (for validation)."""

    def default_name(self) -> str:
        """Name used when a GENERATE item has no ``AS`` clause."""
        return self.infer_name_hint()

    def infer_name_hint(self) -> str:
        return "val"


@dataclass(frozen=True)
class Const(Expression):
    """A literal: number, string, or boolean."""

    value: Any

    def evaluate(self, row: tuple, schema: Schema) -> Any:
        return self.value

    def infer(self, schema: Schema) -> Field:
        if isinstance(self.value, bool):
            pig_type = PigType.BOOLEAN
        elif isinstance(self.value, int):
            pig_type = PigType.INT
        elif isinstance(self.value, float):
            pig_type = PigType.DOUBLE
        elif isinstance(self.value, str):
            pig_type = PigType.CHARARRAY
        else:
            pig_type = PigType.BYTEARRAY
        return Field("const", pig_type)

    def references(self) -> set[str]:
        return set()

    def infer_name_hint(self) -> str:
        return "const"


@dataclass(frozen=True)
class Column(Expression):
    """A column reference: ``x``, ``$0``, or ``a::x``."""

    ref: str

    def evaluate(self, row: tuple, schema: Schema) -> Any:
        return row[schema.index_of(self.ref)]

    def infer(self, schema: Schema) -> Field:
        try:
            return schema.field(self.ref)
        except KeyError as exc:
            raise ExpressionError(str(exc)) from None

    def references(self) -> set[str]:
        return {self.ref}

    def infer_name_hint(self) -> str:
        return self.ref.split("::")[-1].lstrip("$") or "col"


@dataclass(frozen=True)
class BagProject(Expression):
    """Project one column out of a bag-typed column: ``b.x``.

    Evaluates to a bag of 1-tuples — the shape Pig's aggregate functions
    consume (``SUM(b.x)``).
    """

    bag: str
    column: str

    def evaluate(self, row: tuple, schema: Schema) -> Any:
        bag_field = schema.field(self.bag)
        if bag_field.type is not PigType.BAG or bag_field.element is None:
            raise ExpressionError(f"{self.bag!r} is not a bag")
        inner_index = bag_field.element.index_of(self.column)
        bag = row[schema.index_of(self.bag)]
        if bag is None:
            return None
        return [(item[inner_index],) for item in bag]

    def infer(self, schema: Schema) -> Field:
        bag_field = schema.field(self.bag)
        if bag_field.type is not PigType.BAG or bag_field.element is None:
            raise ExpressionError(f"{self.bag!r} is not a bag")
        inner = bag_field.element.field(self.column)
        return Field(self.column, PigType.BAG, Schema((inner,)))

    def references(self) -> set[str]:
        return {self.bag}

    def infer_name_hint(self) -> str:
        return self.column


_ARITH: dict[str, Callable[[Any, Any], Any]] = {
    "+": lambda a, b: a + b,
    "-": lambda a, b: a - b,
    "*": lambda a, b: a * b,
    "/": lambda a, b: a / b if b != 0 else None,
    "%": lambda a, b: a % b if b != 0 else None,
}

_COMPARE: dict[str, Callable[[Any, Any], bool]] = {
    "==": lambda a, b: a == b,
    "!=": lambda a, b: a != b,
    "<": lambda a, b: a < b,
    "<=": lambda a, b: a <= b,
    ">": lambda a, b: a > b,
    ">=": lambda a, b: a >= b,
}


@dataclass(frozen=True)
class BinaryOp(Expression):
    """Arithmetic: ``a + b``, ``a * 2`` ..."""

    op: str
    left: Expression
    right: Expression

    def __post_init__(self) -> None:
        if self.op not in _ARITH:
            raise ValueError(f"unknown arithmetic operator {self.op!r}")

    def evaluate(self, row: tuple, schema: Schema) -> Any:
        left = self.left.evaluate(row, schema)
        right = self.right.evaluate(row, schema)
        if left is None or right is None:
            return None
        return _ARITH[self.op](left, right)

    def infer(self, schema: Schema) -> Field:
        left = self.left.infer(schema)
        right = self.right.infer(schema)
        try:
            joined = numeric_join(left.type, right.type)
        except TypeError as exc:
            raise ExpressionError(str(exc)) from None
        if self.op == "/":
            joined = PigType.DOUBLE
        return Field("expr", joined)

    def references(self) -> set[str]:
        return self.left.references() | self.right.references()

    def infer_name_hint(self) -> str:
        return self.left.infer_name_hint()


@dataclass(frozen=True)
class Negate(Expression):
    """Unary minus."""

    operand: Expression

    def evaluate(self, row: tuple, schema: Schema) -> Any:
        value = self.operand.evaluate(row, schema)
        return None if value is None else -value

    def infer(self, schema: Schema) -> Field:
        inner = self.operand.infer(schema)
        if not inner.type.is_numeric and inner.type is not PigType.BYTEARRAY:
            raise ExpressionError(f"cannot negate a {inner.type.value}")
        return Field("expr", inner.type)

    def references(self) -> set[str]:
        return self.operand.references()


@dataclass(frozen=True)
class Comparison(Expression):
    """``a < b``, ``name == 'x'`` — null-safe: null operand -> null."""

    op: str
    left: Expression
    right: Expression

    def __post_init__(self) -> None:
        if self.op not in _COMPARE:
            raise ValueError(f"unknown comparison operator {self.op!r}")

    def evaluate(self, row: tuple, schema: Schema) -> Any:
        left = self.left.evaluate(row, schema)
        right = self.right.evaluate(row, schema)
        if left is None or right is None:
            return None
        return _COMPARE[self.op](left, right)

    def infer(self, schema: Schema) -> Field:
        # Validate operands resolve; result is boolean.
        self.left.infer(schema)
        self.right.infer(schema)
        return Field("cond", PigType.BOOLEAN)

    def references(self) -> set[str]:
        return self.left.references() | self.right.references()


@dataclass(frozen=True)
class BoolOp(Expression):
    """``AND`` / ``OR`` with three-valued (null-aware) logic."""

    op: str  # "and" | "or"
    left: Expression
    right: Expression

    def __post_init__(self) -> None:
        if self.op not in ("and", "or"):
            raise ValueError(f"unknown boolean operator {self.op!r}")

    def evaluate(self, row: tuple, schema: Schema) -> Any:
        left = self.left.evaluate(row, schema)
        right = self.right.evaluate(row, schema)
        if self.op == "and":
            if left is False or right is False:
                return False
            if left is None or right is None:
                return None
            return bool(left and right)
        if left is True or right is True:
            return True
        if left is None or right is None:
            return None
        return bool(left or right)

    def infer(self, schema: Schema) -> Field:
        self.left.infer(schema)
        self.right.infer(schema)
        return Field("cond", PigType.BOOLEAN)

    def references(self) -> set[str]:
        return self.left.references() | self.right.references()


@dataclass(frozen=True)
class Not(Expression):
    operand: Expression

    def evaluate(self, row: tuple, schema: Schema) -> Any:
        value = self.operand.evaluate(row, schema)
        return None if value is None else not value

    def infer(self, schema: Schema) -> Field:
        self.operand.infer(schema)
        return Field("cond", PigType.BOOLEAN)

    def references(self) -> set[str]:
        return self.operand.references()


def _agg_values(argument: Any) -> list:
    """Non-null scalar values from a bag of 1-tuples (or a plain bag)."""
    if argument is None:
        return []
    values = []
    for item in argument:
        value = item[0] if isinstance(item, tuple) else item
        if value is not None:
            values.append(value)
    return values


def _fn_count(args: Sequence[Any]) -> int:
    # Pig's COUNT skips tuples whose first field is null; COUNT_STAR
    # counts every tuple.
    return len(_agg_values(args[0]))


def _fn_count_star(args: Sequence[Any]) -> int:
    return 0 if args[0] is None else len(args[0])


def _fn_sum(args: Sequence[Any]) -> Any:
    values = _agg_values(args[0])
    return sum(values) if values else None


def _fn_avg(args: Sequence[Any]) -> Any:
    values = _agg_values(args[0])
    return sum(values) / len(values) if values else None


def _fn_min(args: Sequence[Any]) -> Any:
    values = _agg_values(args[0])
    return min(values) if values else None


def _fn_max(args: Sequence[Any]) -> Any:
    values = _agg_values(args[0])
    return max(values) if values else None


def _fn_size(args: Sequence[Any]) -> Any:
    value = args[0]
    if value is None:
        return None
    return len(value)


def _fn_concat(args: Sequence[Any]) -> Any:
    if any(a is None for a in args):
        return None
    return "".join(str(a) for a in args)


def _fn_upper(args: Sequence[Any]) -> Any:
    return None if args[0] is None else str(args[0]).upper()


def _fn_lower(args: Sequence[Any]) -> Any:
    return None if args[0] is None else str(args[0]).lower()


def _fn_abs(args: Sequence[Any]) -> Any:
    return None if args[0] is None else abs(args[0])


def _fn_sqrt(args: Sequence[Any]) -> Any:
    if args[0] is None or args[0] < 0:
        return None
    return math.sqrt(args[0])


def _fn_round(args: Sequence[Any]) -> Any:
    return None if args[0] is None else int(round(args[0]))


@dataclass(frozen=True)
class _FunctionSpec:
    arity: int
    aggregate: bool
    result: Callable[[Sequence[Field]], PigType]
    apply: Callable[[Sequence[Any]], Any]


def _numeric_result(fields: Sequence[Field]) -> PigType:
    inner = fields[0]
    if inner.type is PigType.BAG and inner.element is not None:
        return inner.element.fields[0].type
    return inner.type


FUNCTIONS: dict[str, _FunctionSpec] = {
    "COUNT": _FunctionSpec(1, True, lambda f: PigType.LONG, _fn_count),
    "COUNT_STAR": _FunctionSpec(1, True, lambda f: PigType.LONG, _fn_count_star),
    "SUM": _FunctionSpec(1, True, _numeric_result, _fn_sum),
    "AVG": _FunctionSpec(1, True, lambda f: PigType.DOUBLE, _fn_avg),
    "MIN": _FunctionSpec(1, True, _numeric_result, _fn_min),
    "MAX": _FunctionSpec(1, True, _numeric_result, _fn_max),
    "SIZE": _FunctionSpec(1, False, lambda f: PigType.LONG, _fn_size),
    "CONCAT": _FunctionSpec(2, False, lambda f: PigType.CHARARRAY, _fn_concat),
    "UPPER": _FunctionSpec(1, False, lambda f: PigType.CHARARRAY, _fn_upper),
    "LOWER": _FunctionSpec(1, False, lambda f: PigType.CHARARRAY, _fn_lower),
    "ABS": _FunctionSpec(1, False, _numeric_result, _fn_abs),
    "SQRT": _FunctionSpec(1, False, lambda f: PigType.DOUBLE, _fn_sqrt),
    "ROUND": _FunctionSpec(1, False, lambda f: PigType.LONG, _fn_round),
}


@dataclass(frozen=True)
class FunctionCall(Expression):
    """A built-in function call: ``COUNT(b)``, ``SUM(b.x)``, ``UPPER(s)``."""

    name: str
    args: tuple[Expression, ...]

    def __post_init__(self) -> None:
        spec = FUNCTIONS.get(self.name.upper())
        if spec is None:
            raise ExpressionError(
                f"unknown function {self.name!r}; "
                f"available: {sorted(FUNCTIONS)}"
            )
        if len(self.args) != spec.arity:
            raise ExpressionError(
                f"{self.name} takes {spec.arity} argument(s), got {len(self.args)}"
            )

    @property
    def spec(self) -> _FunctionSpec:
        return FUNCTIONS[self.name.upper()]

    @property
    def is_aggregate(self) -> bool:
        return self.spec.aggregate

    def evaluate(self, row: tuple, schema: Schema) -> Any:
        values = [arg.evaluate(row, schema) for arg in self.args]
        return self.spec.apply(values)

    def infer(self, schema: Schema) -> Field:
        arg_fields = [arg.infer(schema) for arg in self.args]
        if self.is_aggregate:
            inner = arg_fields[0]
            if inner.type is not PigType.BAG:
                raise ExpressionError(
                    f"{self.name} aggregates a bag; got {inner.type.value} "
                    f"(hint: apply it to a grouped relation or a bag projection)"
                )
        return Field(self.name.lower(), self.spec.result(arg_fields))

    def references(self) -> set[str]:
        refs: set[str] = set()
        for arg in self.args:
            refs |= arg.references()
        return refs

    def infer_name_hint(self) -> str:
        return self.name.lower()


@dataclass(frozen=True)
class Flatten(Expression):
    """``FLATTEN(bag_or_tuple)`` — only valid inside GENERATE.

    Evaluation returns the raw bag/tuple; the ForEach operator performs
    the actual un-nesting (one output row per bag element).
    """

    operand: Expression

    def evaluate(self, row: tuple, schema: Schema) -> Any:
        return self.operand.evaluate(row, schema)

    def infer(self, schema: Schema) -> Field:
        inner = self.operand.infer(schema)
        if not inner.type.is_complex:
            raise ExpressionError("FLATTEN requires a bag or tuple argument")
        return inner

    def flattened_fields(self, schema: Schema) -> tuple[Field, ...]:
        """The scalar fields FLATTEN expands to in the output schema."""
        inner = self.infer(schema)
        assert inner.element is not None
        return inner.element.fields

    def references(self) -> set[str]:
        return self.operand.references()

    def infer_name_hint(self) -> str:
        return self.operand.infer_name_hint()


def as_condition(value: Any) -> bool:
    """FILTER semantics: null and False both drop the row."""
    return value is True


def selectivity_estimate(expression: Expression) -> float:
    """Crude selectivity heuristic used for size propagation.

    Mirrors the classic System-R constants: equality keeps ~10% of rows,
    range predicates ~33%, conjunction multiplies, disjunction adds (capped),
    everything else keeps half.  The planner only needs rough data-volume
    ratios to seed the LP; hints can override per-statement.
    """
    if isinstance(expression, Comparison):
        return 0.10 if expression.op in ("==",) else 0.33
    if isinstance(expression, BoolOp):
        left = selectivity_estimate(expression.left)
        right = selectivity_estimate(expression.right)
        if expression.op == "and":
            return left * right
        return min(1.0, left + right)
    if isinstance(expression, Not):
        return max(0.0, 1.0 - selectivity_estimate(expression.operand))
    return 0.5
