"""Logical plan -> MapReduce stage compiler.

Follows the same placement rules as Pig's MRCompiler:

- LOAD opens a map-side segment.
- FILTER / FOREACH / LIMIT fold into the current segment: map-side if the
  segment has not shuffled yet, reduce-side if it has.
- GROUP / ORDER / DISTINCT are *blocking*: they claim the segment's
  shuffle.  If the segment already shuffled, it is closed (its output
  materializes) and a new stage starts.
- JOIN merges two segments into one stage with tagged map branches.
- UNION concatenates map branches.
- STORE closes the segment with an output path.
- A fan-out (one alias consumed by several operators) forces
  materialization so each consumer reads the same stored bytes —
  exactly the intermediate results whose loss the paper's Section 2.1
  fault discussion is about.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from .logical import LogicalPlan
from .operators import (
    Distinct,
    Filter,
    ForEach,
    Group,
    Join,
    Limit,
    Load,
    Operator,
    Order,
    PlanError,
    Store,
    Union,
)
from .pipeline import (
    CompiledPipeline,
    LoadRef,
    StageBranch,
    StageRef,
    StageSpec,
)


@dataclass
class _Segment:
    """A stage under construction."""

    branches: list[StageBranch]
    shuffle_alias: str | None = None
    reduce_aliases: list[str] = field(default_factory=list)
    last_alias: str = ""

    @property
    def has_shuffle(self) -> bool:
        return self.shuffle_alias is not None


class PigCompiler:
    """Compiles one :class:`LogicalPlan` into a :class:`CompiledPipeline`."""

    def __init__(self, plan: LogicalPlan) -> None:
        plan.validate()
        self._plan = plan
        self._stages: list[StageSpec] = []
        #: alias -> open segment computing it (last_alias == alias)
        self._open: dict[str, _Segment] = {}
        #: alias -> stage index whose output materializes it
        self._materialized: dict[str, int] = {}
        self._consumer_count = {
            alias: len(plan.consumers(alias)) for alias in plan.aliases
        }

    def compile(self) -> CompiledPipeline:
        for operator in self._plan.operators:
            self._place(operator)
        # Close any segment that still holds a STORE-less dangling tail.
        # validate() guarantees everything reaches a STORE, so the only
        # open segments left are those closed by _place(Store).
        leftovers = {id(seg): seg for seg in self._open.values()}
        if leftovers:
            dangling = [seg.last_alias for seg in leftovers.values()]
            raise PlanError(f"unterminated dataflow segments: {dangling}")
        return CompiledPipeline(self._plan, self._stages)

    # -- operator placement ------------------------------------------------------

    def _place(self, operator: Operator) -> None:
        if isinstance(operator, Load):
            segment = _Segment(
                branches=[StageBranch(LoadRef(operator.alias, operator.path))],
                last_alias=operator.alias,
            )
            self._open[operator.alias] = segment
        elif isinstance(operator, Store):
            segment = self._claim(operator.source)
            self._close(segment, store_path=operator.path)
            return  # Store has no downstream consumers.
        elif isinstance(operator, (Group, Order, Distinct)):
            segment = self._claim(operator.inputs[0])
            if segment.has_shuffle:
                segment = self._restage(segment)
            segment.shuffle_alias = operator.alias
            segment.last_alias = operator.alias
            self._open[operator.alias] = segment
        elif isinstance(operator, Join):
            self._place_join(operator)
        elif isinstance(operator, Union):
            self._place_union(operator)
        elif isinstance(operator, (Filter, ForEach, Limit)):
            segment = self._claim(operator.inputs[0])
            if isinstance(operator, Limit) and len(segment.branches) > 1 and not segment.has_shuffle:
                # LIMIT does not distribute over a union of map branches.
                segment = self._restage(segment)
            if segment.has_shuffle:
                segment.reduce_aliases.append(operator.alias)
            else:
                branch = segment.branches[0]
                segment.branches[0] = StageBranch(
                    branch.source, branch.map_aliases + (operator.alias,), branch.side
                )
            segment.last_alias = operator.alias
            self._open[operator.alias] = segment
        else:  # pragma: no cover - new operator types must be placed here
            raise PlanError(f"compiler cannot place {type(operator).__name__}")

        # Fan-out forces materialization: both consumers read stored bytes.
        if self._consumer_count.get(operator.alias, 0) > 1:
            self._close(self._open[operator.alias])

    def _place_join(self, operator: Join) -> None:
        if operator.left == operator.right:
            # Self-join: materialize once, read twice.
            segment = self._claim(operator.left)
            index = self._close(segment)
            left_branches = [StageBranch(StageRef(index), (), "left")]
            right_branches = [StageBranch(StageRef(index), (), "right")]
        else:
            left_branches = self._branches_for_merge(operator.left, "left")
            right_branches = self._branches_for_merge(operator.right, "right")
        segment = _Segment(
            branches=left_branches + right_branches,
            shuffle_alias=operator.alias,
            last_alias=operator.alias,
        )
        self._open[operator.alias] = segment

    def _place_union(self, operator: Union) -> None:
        if operator.left == operator.right:
            segment = self._claim(operator.left)
            index = self._close(segment)
            branches = [
                StageBranch(StageRef(index)),
                StageBranch(StageRef(index)),
            ]
        else:
            branches = self._branches_for_merge(
                operator.left, None
            ) + self._branches_for_merge(operator.right, None)
        segment = _Segment(branches=branches, last_alias=operator.alias)
        self._open[operator.alias] = segment

    def _branches_for_merge(
        self, alias: str, side: str | None
    ) -> list[StageBranch]:
        """Map branches contributing ``alias`` to a JOIN/UNION stage."""
        if alias in self._materialized:
            return [StageBranch(StageRef(self._materialized[alias]), (), side)]
        segment = self._claim(alias)
        if segment.has_shuffle:
            index = self._close(segment)
            return [StageBranch(StageRef(index), (), side)]
        return [
            StageBranch(b.source, b.map_aliases, side) for b in segment.branches
        ]

    # -- segment bookkeeping --------------------------------------------------------

    def _claim(self, alias: str) -> _Segment:
        """The segment an operator reading ``alias`` should extend."""
        if alias in self._materialized:
            return _Segment(
                branches=[StageBranch(StageRef(self._materialized[alias]))],
                last_alias=alias,
            )
        segment = self._open.get(alias)
        if segment is None:
            raise PlanError(f"no open segment computes {alias!r}")
        if segment.last_alias != alias:
            # Someone extended the segment past this alias without a
            # fan-out materialization — a compiler invariant violation.
            raise PlanError(
                f"alias {alias!r} was folded into a segment now at "
                f"{segment.last_alias!r}; fan-out should have materialized it"
            )
        del self._open[alias]
        return segment

    def _close(self, segment: _Segment, store_path: str | None = None) -> int:
        """Seal a segment into a StageSpec; returns the stage index."""
        index = len(self._stages)
        self._stages.append(
            StageSpec(
                index=index,
                branches=tuple(segment.branches),
                shuffle_alias=segment.shuffle_alias,
                reduce_aliases=tuple(segment.reduce_aliases),
                output_alias=segment.last_alias,
                store_path=store_path,
            )
        )
        self._materialized[segment.last_alias] = index
        self._open.pop(segment.last_alias, None)
        return index

    def _restage(self, segment: _Segment) -> _Segment:
        """Materialize ``segment`` and open a fresh one reading its output."""
        index = self._close(segment)
        return _Segment(
            branches=[StageBranch(StageRef(index))],
            last_alias=self._stages[index].output_alias,
        )


def compile_plan(plan: LogicalPlan) -> CompiledPipeline:
    """Compile a logical plan into MapReduce stages."""
    return PigCompiler(plan).compile()


def compile_script(source: str) -> CompiledPipeline:
    """Parse and compile a Pig-Latin script in one step."""
    from .parser import parse

    return compile_plan(parse(source))
