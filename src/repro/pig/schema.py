"""Relational schemas for the Pig dataflow layer.

The paper motivates multi-stage MapReduce pipelines with Pig programs
(Section 2.1): "Pig programs ... compile down to multi-staged MapReduce
computations, in which the result of one stage is used as the input to
the subsequent stage".  :mod:`repro.pig` reproduces that substrate: a
small Pig-Latin dialect, a logical plan, and a compiler to MapReduce
stages.  This module defines the type system and schemas the dialect
uses.

Values are plain Python objects:

- scalars: ``int``, ``float``, ``str``, ``bool``, ``None`` (Pig null);
- tuples: Python ``tuple``;
- bags: Python ``list`` of tuples (order is not semantically meaningful).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Iterable, Iterator, Sequence


class PigType(enum.Enum):
    """The scalar and complex types of the dialect (a subset of Pig's)."""

    INT = "int"
    LONG = "long"
    FLOAT = "float"
    DOUBLE = "double"
    CHARARRAY = "chararray"
    BOOLEAN = "boolean"
    BYTEARRAY = "bytearray"  # Pig's "unknown" type
    TUPLE = "tuple"
    BAG = "bag"

    @property
    def is_numeric(self) -> bool:
        return self in (PigType.INT, PigType.LONG, PigType.FLOAT, PigType.DOUBLE)

    @property
    def is_complex(self) -> bool:
        return self in (PigType.TUPLE, PigType.BAG)


#: Parser keyword -> type mapping (``AS (x:int, y:double)``).
TYPE_NAMES = {t.value: t for t in PigType if not t.is_complex}


def numeric_join(left: PigType, right: PigType) -> PigType:
    """The result type of an arithmetic operation on two numeric types.

    Mirrors Pig's widening rules: int < long < float < double; BYTEARRAY
    (unknown) combined with anything numeric yields DOUBLE, Pig's safest
    runtime cast.
    """
    order = [PigType.INT, PigType.LONG, PigType.FLOAT, PigType.DOUBLE]
    if left is PigType.BYTEARRAY or right is PigType.BYTEARRAY:
        return PigType.DOUBLE
    if left not in order or right not in order:
        raise TypeError(f"non-numeric types in arithmetic: {left} and {right}")
    return order[max(order.index(left), order.index(right))]


@dataclass(frozen=True)
class Field:
    """One named, typed column of a relation.

    ``element`` carries the nested schema for TUPLE/BAG fields (the
    grouped relation inside a ``GROUP BY`` result, for instance).
    """

    name: str
    type: PigType = PigType.BYTEARRAY
    element: "Schema | None" = None

    def __post_init__(self) -> None:
        if not self.name:
            raise ValueError("field name must be non-empty")
        if self.type.is_complex and self.element is None:
            raise ValueError(f"complex field {self.name!r} needs an element schema")
        if not self.type.is_complex and self.element is not None:
            raise ValueError(f"scalar field {self.name!r} cannot carry a schema")

    def renamed(self, name: str) -> "Field":
        return Field(name, self.type, self.element)

    def __str__(self) -> str:
        if self.element is not None:
            return f"{self.name}:{self.type.value}({self.element})"
        return f"{self.name}:{self.type.value}"


@dataclass(frozen=True)
class Schema:
    """An ordered list of fields describing one relation.

    Column lookup accepts names (``"x"``), positional references
    (``"$0"``), and disambiguated names (``"a::x"``, produced by joins).
    """

    fields: tuple[Field, ...]

    def __post_init__(self) -> None:
        names = [f.name for f in self.fields]
        if len(set(names)) != len(names):
            raise ValueError(f"duplicate column names in schema: {names}")

    @classmethod
    def of(cls, *specs: str | Field) -> "Schema":
        """Build a schema from ``"name:type"`` strings or Field objects.

        >>> Schema.of("x:int", "name:chararray")
        Schema(fields=(Field(...), Field(...)))
        """
        fields = []
        for spec in specs:
            if isinstance(spec, Field):
                fields.append(spec)
                continue
            # Split on the *last* colon so join-style names ("a::x:int")
            # survive; a trailing segment that is not a type name means
            # the whole spec is an untyped column name.
            name, sep, type_name = spec.rpartition(":")
            if sep and type_name in TYPE_NAMES and not name.endswith(":"):
                fields.append(Field(name.strip(), TYPE_NAMES[type_name]))
            else:
                fields.append(Field(spec.strip(), PigType.BYTEARRAY))
        return cls(tuple(fields))

    def __len__(self) -> int:
        return len(self.fields)

    def __iter__(self) -> Iterator[Field]:
        return iter(self.fields)

    def __str__(self) -> str:
        return ", ".join(str(f) for f in self.fields)

    @property
    def names(self) -> tuple[str, ...]:
        return tuple(f.name for f in self.fields)

    def index_of(self, ref: str) -> int:
        """Resolve a column reference to a position.

        Raises :class:`KeyError` with the candidate columns on failure —
        schema errors are the most common user mistake in dataflow
        scripts, so the message lists what *is* available.
        """
        if ref.startswith("$"):
            try:
                position = int(ref[1:])
            except ValueError:
                raise KeyError(f"bad positional reference {ref!r}") from None
            if not 0 <= position < len(self.fields):
                raise KeyError(
                    f"{ref} out of range for schema with {len(self.fields)} columns"
                )
            return position
        for index, f in enumerate(self.fields):
            if f.name == ref:
                return index
        # Join-style disambiguation: "a::x" falls back to suffix match,
        # and a bare "x" matches a unique "...::x".
        suffix_hits = [
            index
            for index, f in enumerate(self.fields)
            if f.name.endswith("::" + ref)
        ]
        if len(suffix_hits) == 1:
            return suffix_hits[0]
        if len(suffix_hits) > 1:
            raise KeyError(
                f"ambiguous column {ref!r}; candidates: "
                f"{[self.fields[i].name for i in suffix_hits]}"
            )
        raise KeyError(f"no column {ref!r} in schema ({', '.join(self.names)})")

    def field(self, ref: str) -> Field:
        return self.fields[self.index_of(ref)]

    def project(self, refs: Sequence[str]) -> "Schema":
        return Schema(tuple(self.field(ref) for ref in refs))

    def prefixed(self, alias: str) -> "Schema":
        """Prefix every column with ``alias::`` (join output convention)."""
        return Schema(tuple(f.renamed(f"{alias}::{f.name}") for f in self.fields))

    def concat(self, other: "Schema") -> "Schema":
        return Schema(self.fields + other.fields)


def check_tuple(value: tuple, schema: Schema) -> None:
    """Validate a value tuple against a schema (arity + scalar types).

    Used by the local engines under test; the cost is only paid in tests.
    """
    if not isinstance(value, tuple):
        raise TypeError(f"expected a tuple, got {type(value).__name__}")
    if len(value) != len(schema):
        raise ValueError(
            f"tuple arity {len(value)} does not match schema arity {len(schema)}"
        )
    for item, f in zip(value, schema):
        if item is None:
            continue
        expected: type | tuple[type, ...]
        if f.type in (PigType.INT, PigType.LONG):
            expected = int
        elif f.type in (PigType.FLOAT, PigType.DOUBLE):
            expected = (int, float)
        elif f.type is PigType.CHARARRAY:
            expected = str
        elif f.type is PigType.BOOLEAN:
            expected = bool
        elif f.type is PigType.TUPLE:
            check_tuple(item, f.element)  # type: ignore[arg-type]
            continue
        elif f.type is PigType.BAG:
            if not isinstance(item, list):
                raise TypeError(f"field {f.name!r}: bags are Python lists")
            for row in item:
                check_tuple(row, f.element)  # type: ignore[arg-type]
            continue
        else:  # BYTEARRAY accepts anything
            continue
        if not isinstance(item, expected):
            raise TypeError(
                f"field {f.name!r}: {item!r} is not a {f.type.value}"
            )


def rows_of(schema: Schema, raw_rows: Iterable[Sequence]) -> list[tuple]:
    """Coerce an iterable of sequences into checked tuples."""
    rows = []
    for raw in raw_rows:
        row = tuple(raw)
        check_tuple(row, schema)
        rows.append(row)
    return rows
