"""Pig-like multi-stage dataflow layer (paper Section 2.1).

The paper motivates fault-tolerant storage choices with Pig: "Pig
programs ... compile down to multi-staged MapReduce computations, in
which the result of one stage is used as the input to the subsequent
stage".  This package reproduces that substrate end to end:

- a small Pig-Latin dialect (:func:`parse`) with schemas and expressions;
- a validated logical plan with size estimation (:class:`LogicalPlan`);
- a MapReduce compiler (:func:`compile_plan` / :func:`compile_script`)
  producing a :class:`CompiledPipeline` of :class:`StageSpec` stages;
- two record-level engines whose agreement property-tests the compiler
  (:func:`evaluate_logical`, :func:`run_pipeline_local`);
- conversion of stages to the planner's vocabulary
  (:meth:`CompiledPipeline.to_planner_jobs`), which is what
  :mod:`repro.core.pipeline_planner` optimizes across stages.

Quick example::

    from repro.pig import compile_script

    pipeline = compile_script('''
        pages  = LOAD 'pages' AS (url:chararray, size:int, site:chararray);
        big    = FILTER pages BY size > 1024;
        bysite = GROUP big BY site;
        counts = FOREACH bysite GENERATE group, COUNT(big) AS cnt;
        STORE counts INTO 'results';
    ''')
    jobs = pipeline.to_planner_jobs({'pages': 32.0})
"""

from .compiler import PigCompiler, compile_plan, compile_script
from .expressions import (
    BagProject,
    BinaryOp,
    BoolOp,
    Column,
    Comparison,
    Const,
    Expression,
    ExpressionError,
    Flatten,
    FunctionCall,
    Negate,
    Not,
)
from .local_engine import canonical, evaluate_logical, run_pipeline_local
from .logical import LogicalPlan, SizeEstimate
from .operators import (
    Distinct,
    Filter,
    ForEach,
    GenerateItem,
    Group,
    Join,
    Limit,
    Load,
    Operator,
    Order,
    PlanError,
    Store,
    Union,
)
from .parser import ParseError, parse, parse_expression, tokenize
from .pipeline import (
    CompiledPipeline,
    LoadRef,
    StageBranch,
    StageRef,
    StageSizes,
    StageSpec,
)
from .schema import Field, PigType, Schema, check_tuple, rows_of

__all__ = [
    "BagProject",
    "BinaryOp",
    "BoolOp",
    "Column",
    "Comparison",
    "CompiledPipeline",
    "Const",
    "Distinct",
    "Expression",
    "ExpressionError",
    "Field",
    "Filter",
    "Flatten",
    "ForEach",
    "FunctionCall",
    "GenerateItem",
    "Group",
    "Join",
    "Limit",
    "Load",
    "LoadRef",
    "LogicalPlan",
    "Negate",
    "Not",
    "Operator",
    "Order",
    "ParseError",
    "PigCompiler",
    "PigType",
    "PlanError",
    "Schema",
    "SizeEstimate",
    "StageBranch",
    "StageRef",
    "StageSizes",
    "StageSpec",
    "Store",
    "Union",
    "canonical",
    "check_tuple",
    "compile_plan",
    "compile_script",
    "evaluate_logical",
    "parse",
    "parse_expression",
    "rows_of",
    "run_pipeline_local",
    "tokenize",
]
