"""Parser for the Pig-Latin dialect.

Grammar (case-insensitive keywords, ``--`` line comments)::

    script     := statement*
    statement  := alias '=' operation ';'
                | 'STORE' alias 'INTO' string ';'
    operation  := 'LOAD' string ['AS' '(' fieldspec (',' fieldspec)* ')']
                | 'FILTER' alias 'BY' expr
                | 'FOREACH' alias 'GENERATE' genitem (',' genitem)*
                | 'GROUP' alias 'BY' expr
                | 'JOIN' alias 'BY' expr ',' alias 'BY' expr
                | 'ORDER' alias 'BY' column ['ASC'|'DESC']
                | 'DISTINCT' alias
                | 'LIMIT' alias integer
                | 'UNION' alias ',' alias
    genitem    := expr ['AS' name] | 'FLATTEN' '(' expr ')' ['AS' name]
    fieldspec  := name [':' typename]
    expr       := or-chain of AND/NOT/comparison/arithmetic terms, with
                  function calls NAME(args), columns, $n, bag.column,
                  numeric/string/boolean literals and parentheses.

Example::

    pages  = LOAD 'pages' AS (url:chararray, size:int, site:chararray);
    big    = FILTER pages BY size > 1024;
    bysite = GROUP big BY site;
    counts = FOREACH bysite GENERATE group, COUNT(big) AS cnt;
    top    = ORDER counts BY cnt DESC;
    STORE top INTO 'results';
"""

from __future__ import annotations

import re
from dataclasses import dataclass

from .expressions import (
    BagProject,
    BinaryOp,
    BoolOp,
    Column,
    Comparison,
    Const,
    Expression,
    Flatten,
    FunctionCall,
    Negate,
    Not,
)
from .logical import LogicalPlan
from .operators import (
    Distinct,
    Filter,
    ForEach,
    GenerateItem,
    Group,
    Join,
    Limit,
    Load,
    Order,
    Store,
    Union,
)
from .schema import Field, PigType, Schema, TYPE_NAMES


class ParseError(ValueError):
    """A syntax error, annotated with the line it occurred on."""

    def __init__(self, message: str, line: int) -> None:
        super().__init__(f"line {line}: {message}")
        self.line = line


KEYWORDS = {
    "load", "as", "filter", "by", "foreach", "generate", "group", "join",
    "order", "asc", "desc", "distinct", "limit", "union", "store", "into",
    "and", "or", "not", "flatten", "true", "false", "null",
}

_TOKEN_RE = re.compile(
    r"""
    (?P<ws>\s+)
  | (?P<comment>--[^\n]*)
  | (?P<number>\d+\.\d+([eE][-+]?\d+)?|\d+[eE][-+]?\d+|\d+[Ll]?|\.\d+)
  | (?P<string>'(?:[^'\\]|\\.)*')
  | (?P<name>[A-Za-z_][A-Za-z0-9_]*(::[A-Za-z_][A-Za-z0-9_]*)?)
  | (?P<positional>\$\d+)
  | (?P<op>==|!=|<=|>=|<|>|\+|-|\*|/|%|\(|\)|,|;|=|:|\.)
    """,
    re.VERBOSE,
)


@dataclass(frozen=True)
class Token:
    kind: str  # "number" | "string" | "name" | "keyword" | "positional" | "op" | "eof"
    text: str
    line: int


def tokenize(source: str) -> list[Token]:
    """Split a script into tokens; raises ParseError on stray characters."""
    tokens: list[Token] = []
    position = 0
    line = 1
    while position < len(source):
        match = _TOKEN_RE.match(source, position)
        if match is None:
            raise ParseError(f"unexpected character {source[position]!r}", line)
        line += source[position:match.end()].count("\n")
        position = match.end()
        kind = match.lastgroup
        text = match.group()
        if kind in ("ws", "comment"):
            continue
        if kind == "name" and text.lower() in KEYWORDS:
            tokens.append(Token("keyword", text.lower(), line))
        else:
            tokens.append(Token(kind or "op", text, line))
    tokens.append(Token("eof", "", line))
    return tokens


class _TokenStream:
    def __init__(self, tokens: list[Token]) -> None:
        self._tokens = tokens
        self._index = 0

    @property
    def current(self) -> Token:
        return self._tokens[self._index]

    def advance(self) -> Token:
        token = self.current
        if token.kind != "eof":
            self._index += 1
        return token

    def accept(self, kind: str, text: str | None = None) -> Token | None:
        token = self.current
        if token.kind == kind and (text is None or token.text == text):
            return self.advance()
        return None

    def expect(self, kind: str, text: str | None = None) -> Token:
        token = self.accept(kind, text)
        if token is None:
            want = text if text is not None else kind
            raise ParseError(
                f"expected {want!r}, found {self.current.text or 'end of input'!r}",
                self.current.line,
            )
        return token

    def at_keyword(self, word: str) -> bool:
        return self.current.kind == "keyword" and self.current.text == word


def parse(source: str) -> LogicalPlan:
    """Parse a script into a validated-on-construction LogicalPlan."""
    return _Parser(_TokenStream(tokenize(source))).parse_script()


def parse_expression(source: str) -> Expression:
    """Parse a standalone expression (used by tests and hint tooling)."""
    stream = _TokenStream(tokenize(source))
    parser = _Parser(stream)
    expression = parser._expr()
    stream.expect("eof")
    return expression


class _Parser:
    def __init__(self, stream: _TokenStream) -> None:
        self._ts = stream
        self._store_count = 0

    def parse_script(self) -> LogicalPlan:
        plan = LogicalPlan()
        while self._ts.current.kind != "eof":
            self._statement(plan)
        return plan

    # -- statements -----------------------------------------------------------

    def _statement(self, plan: LogicalPlan) -> None:
        if self._ts.at_keyword("store"):
            self._ts.advance()
            source = self._alias()
            self._ts.expect("keyword", "into")
            path = self._string()
            self._ts.expect("op", ";")
            self._store_count += 1
            plan.add(Store(f"__store{self._store_count}", source, path))
            return
        alias = self._alias()
        self._ts.expect("op", "=")
        operator = self._operation(alias)
        self._ts.expect("op", ";")
        plan.add(operator)

    def _operation(self, alias: str):
        token = self._ts.current
        if token.kind != "keyword":
            raise ParseError(
                f"expected an operation keyword, found {token.text!r}", token.line
            )
        word = token.text
        self._ts.advance()
        if word == "load":
            return self._load(alias)
        if word == "filter":
            source = self._alias()
            self._ts.expect("keyword", "by")
            return Filter(alias, source, self._expr())
        if word == "foreach":
            source = self._alias()
            self._ts.expect("keyword", "generate")
            return ForEach(alias, source, tuple(self._generate_items()))
        if word == "group":
            source = self._alias()
            self._ts.expect("keyword", "by")
            return Group(alias, source, self._expr())
        if word == "join":
            left = self._alias()
            self._ts.expect("keyword", "by")
            left_key = self._expr()
            self._ts.expect("op", ",")
            right = self._alias()
            self._ts.expect("keyword", "by")
            right_key = self._expr()
            return Join(alias, left, left_key, right, right_key)
        if word == "order":
            source = self._alias()
            self._ts.expect("keyword", "by")
            column = self._column_name()
            descending = False
            if self._ts.accept("keyword", "desc"):
                descending = True
            else:
                self._ts.accept("keyword", "asc")
            return Order(alias, source, column, descending)
        if word == "distinct":
            return Distinct(alias, self._alias())
        if word == "limit":
            source = self._alias()
            count_token = self._ts.expect("number")
            return Limit(alias, source, int(count_token.text.rstrip("Ll")))
        if word == "union":
            left = self._alias()
            self._ts.expect("op", ",")
            return Union(alias, left, self._alias())
        raise ParseError(f"unknown operation {word.upper()!r}", token.line)

    def _load(self, alias: str) -> Load:
        path = self._string()
        if self._ts.accept("keyword", "as"):
            self._ts.expect("op", "(")
            fields = [self._field_spec()]
            while self._ts.accept("op", ","):
                fields.append(self._field_spec())
            self._ts.expect("op", ")")
            schema = Schema(tuple(fields))
        else:
            schema = Schema((Field("value", PigType.BYTEARRAY),))
        return Load(alias, path, schema)

    def _field_spec(self) -> Field:
        name = self._ts.expect("name").text
        if self._ts.accept("op", ":"):
            type_token = self._ts.expect("name")
            pig_type = TYPE_NAMES.get(type_token.text.lower())
            if pig_type is None:
                raise ParseError(
                    f"unknown type {type_token.text!r} "
                    f"(expected one of {sorted(TYPE_NAMES)})",
                    type_token.line,
                )
            return Field(name, pig_type)
        return Field(name, PigType.BYTEARRAY)

    def _generate_items(self) -> list[GenerateItem]:
        items = [self._generate_item()]
        while self._ts.accept("op", ","):
            items.append(self._generate_item())
        return items

    def _generate_item(self) -> GenerateItem:
        if self._ts.accept("keyword", "flatten"):
            self._ts.expect("op", "(")
            inner = self._expr()
            self._ts.expect("op", ")")
            expression: Expression = Flatten(inner)
        else:
            expression = self._expr()
        name = None
        if self._ts.accept("keyword", "as"):
            name = self._ts.expect("name").text
        return GenerateItem(expression, name)

    # -- expressions -------------------------------------------------------------

    def _expr(self) -> Expression:
        return self._or_expr()

    def _or_expr(self) -> Expression:
        left = self._and_expr()
        while self._ts.accept("keyword", "or"):
            left = BoolOp("or", left, self._and_expr())
        return left

    def _and_expr(self) -> Expression:
        left = self._not_expr()
        while self._ts.accept("keyword", "and"):
            left = BoolOp("and", left, self._not_expr())
        return left

    def _not_expr(self) -> Expression:
        if self._ts.accept("keyword", "not"):
            return Not(self._not_expr())
        return self._comparison()

    def _comparison(self) -> Expression:
        left = self._additive()
        token = self._ts.current
        if token.kind == "op" and token.text in ("==", "!=", "<", "<=", ">", ">="):
            self._ts.advance()
            return Comparison(token.text, left, self._additive())
        return left

    def _additive(self) -> Expression:
        left = self._multiplicative()
        while True:
            token = self._ts.current
            if token.kind == "op" and token.text in ("+", "-"):
                self._ts.advance()
                left = BinaryOp(token.text, left, self._multiplicative())
            else:
                return left

    def _multiplicative(self) -> Expression:
        left = self._unary()
        while True:
            token = self._ts.current
            if token.kind == "op" and token.text in ("*", "/", "%"):
                self._ts.advance()
                left = BinaryOp(token.text, left, self._unary())
            else:
                return left

    def _unary(self) -> Expression:
        if self._ts.accept("op", "-"):
            return Negate(self._unary())
        return self._primary()

    def _primary(self) -> Expression:
        token = self._ts.current
        if token.kind == "number":
            self._ts.advance()
            text = token.text.rstrip("Ll")
            if "." in text or "e" in text.lower():
                return Const(float(text))
            return Const(int(text))
        if token.kind == "string":
            self._ts.advance()
            return Const(self._unquote(token.text))
        if token.kind == "positional":
            self._ts.advance()
            return Column(token.text)
        if token.kind == "keyword" and token.text in ("true", "false"):
            self._ts.advance()
            return Const(token.text == "true")
        if token.kind == "keyword" and token.text == "null":
            self._ts.advance()
            return Const(None)
        if token.kind == "keyword" and token.text == "group":
            # 'group' is a keyword but also the key column of GROUP output.
            self._ts.advance()
            return Column("group")
        if token.kind == "name":
            self._ts.advance()
            if self._ts.accept("op", "("):
                return self._call(token)
            if self._ts.accept("op", "."):
                column = self._ts.expect("name").text
                return BagProject(token.text, column)
            return Column(token.text)
        if self._ts.accept("op", "("):
            inner = self._expr()
            self._ts.expect("op", ")")
            return inner
        raise ParseError(f"unexpected token {token.text!r} in expression", token.line)

    def _call(self, name_token: Token) -> Expression:
        args: list[Expression] = []
        if not self._ts.accept("op", ")"):
            args.append(self._expr())
            while self._ts.accept("op", ","):
                args.append(self._expr())
            self._ts.expect("op", ")")
        try:
            return FunctionCall(name_token.text, tuple(args))
        except ValueError as exc:
            raise ParseError(str(exc), name_token.line) from None

    # -- terminals ----------------------------------------------------------------

    def _alias(self) -> str:
        return self._ts.expect("name").text

    def _column_name(self) -> str:
        token = self._ts.current
        if token.kind == "positional":
            self._ts.advance()
            return token.text
        if token.kind == "keyword" and token.text == "group":
            self._ts.advance()
            return "group"
        return self._ts.expect("name").text

    def _string(self) -> str:
        return self._unquote(self._ts.expect("string").text)

    @staticmethod
    def _unquote(text: str) -> str:
        body = text[1:-1]
        return body.replace("\\'", "'").replace("\\\\", "\\")
