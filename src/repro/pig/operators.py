"""Logical operators of the Pig dialect.

Each operator is a node in a :class:`repro.pig.logical.LogicalPlan`.
Operators know how to propagate schemas (``output_schema``) and carry
the cardinality knobs the MapReduce compiler uses for data-volume
estimation.

The blocking operators — GROUP, JOIN, ORDER, DISTINCT — are the ones
that force a shuffle and therefore a stage boundary when compiled to
MapReduce (see :mod:`repro.pig.compiler`).
"""

from __future__ import annotations

import abc
from dataclasses import dataclass, field
from typing import Sequence

from .expressions import (
    Expression,
    ExpressionError,
    Flatten,
    FunctionCall,
    selectivity_estimate,
)
from .schema import Field, PigType, Schema


class PlanError(ValueError):
    """An invalid logical plan (unknown alias, schema mismatch, ...)."""


@dataclass(frozen=True)
class GenerateItem:
    """One item of a GENERATE clause: an expression plus optional name."""

    expression: Expression
    name: str | None = None

    def output_name(self, used: set[str]) -> str:
        base = self.name or self.expression.default_name()
        candidate = base
        suffix = 1
        while candidate in used:
            candidate = f"{base}_{suffix}"
            suffix += 1
        return candidate


class Operator(abc.ABC):
    """Base class for logical operators.

    ``alias`` names the operator's output relation; ``inputs`` lists the
    aliases it consumes (empty for LOAD).
    """

    alias: str

    @property
    @abc.abstractmethod
    def inputs(self) -> tuple[str, ...]:
        """Aliases of the input relations."""

    @abc.abstractmethod
    def output_schema(self, input_schemas: Sequence[Schema]) -> Schema:
        """Schema of the output relation given the input schemas."""

    @property
    def blocking(self) -> bool:
        """Whether compiling this operator requires a shuffle."""
        return False

    def row_ratio(self, input_schemas: Sequence[Schema]) -> float:
        """Estimated output rows per input row (size propagation)."""
        return 1.0


@dataclass(frozen=True)
class Load(Operator):
    """``a = LOAD 'path' AS (x:int, y:double);``"""

    alias: str
    path: str
    schema: Schema

    @property
    def inputs(self) -> tuple[str, ...]:
        return ()

    def output_schema(self, input_schemas: Sequence[Schema]) -> Schema:
        return self.schema


@dataclass(frozen=True)
class Filter(Operator):
    """``b = FILTER a BY x > 3 AND name == 'web';``"""

    alias: str
    source: str
    condition: Expression
    #: Override the heuristic selectivity (rows kept / rows in).
    selectivity_hint: float | None = None

    @property
    def inputs(self) -> tuple[str, ...]:
        return (self.source,)

    def output_schema(self, input_schemas: Sequence[Schema]) -> Schema:
        (schema,) = input_schemas
        cond_field = self.condition.infer(schema)
        if cond_field.type not in (PigType.BOOLEAN, PigType.BYTEARRAY):
            raise PlanError(
                f"FILTER {self.source}: condition is {cond_field.type.value}, "
                "not boolean"
            )
        return schema

    def row_ratio(self, input_schemas: Sequence[Schema]) -> float:
        if self.selectivity_hint is not None:
            return self.selectivity_hint
        return selectivity_estimate(self.condition)


@dataclass(frozen=True)
class ForEach(Operator):
    """``c = FOREACH b GENERATE x, y * 2 AS doubled;``

    FLATTEN items multiply rows (one per bag element); plain items map
    one-to-one.
    """

    alias: str
    source: str
    items: tuple[GenerateItem, ...]
    #: Average bag size assumed when FLATTEN-ing (rows-out per row-in).
    flatten_ratio_hint: float | None = None

    @property
    def inputs(self) -> tuple[str, ...]:
        return (self.source,)

    @property
    def has_flatten(self) -> bool:
        return any(isinstance(i.expression, Flatten) for i in self.items)

    @property
    def has_aggregate(self) -> bool:
        return any(
            isinstance(i.expression, FunctionCall) and i.expression.is_aggregate
            for i in self.items
        )

    def output_schema(self, input_schemas: Sequence[Schema]) -> Schema:
        (schema,) = input_schemas
        out_fields: list[Field] = []
        used: set[str] = set()
        for item in self.items:
            if isinstance(item.expression, Flatten):
                for inner in item.expression.flattened_fields(schema):
                    name = inner.name
                    suffix = 1
                    while name in used:
                        name = f"{inner.name}_{suffix}"
                        suffix += 1
                    used.add(name)
                    out_fields.append(inner.renamed(name))
                continue
            try:
                inferred = item.expression.infer(schema)
            except ExpressionError as exc:
                raise PlanError(f"FOREACH {self.source}: {exc}") from None
            name = item.output_name(used)
            used.add(name)
            out_fields.append(inferred.renamed(name))
        return Schema(tuple(out_fields))

    def row_ratio(self, input_schemas: Sequence[Schema]) -> float:
        if self.has_flatten:
            return self.flatten_ratio_hint if self.flatten_ratio_hint else 4.0
        return 1.0


@dataclass(frozen=True)
class Group(Operator):
    """``g = GROUP b BY x;`` — output schema ``(group, b:bag)``.

    ``key_ratio_hint`` estimates distinct keys / input rows; it controls
    how much data survives the reduce that implements the grouping.
    """

    alias: str
    source: str
    key: Expression
    key_ratio_hint: float = 0.1

    @property
    def inputs(self) -> tuple[str, ...]:
        return (self.source,)

    @property
    def blocking(self) -> bool:
        return True

    def output_schema(self, input_schemas: Sequence[Schema]) -> Schema:
        (schema,) = input_schemas
        try:
            key_field = self.key.infer(schema)
        except ExpressionError as exc:
            raise PlanError(f"GROUP {self.source}: {exc}") from None
        return Schema(
            (
                key_field.renamed("group"),
                Field(self.source, PigType.BAG, schema),
            )
        )

    def row_ratio(self, input_schemas: Sequence[Schema]) -> float:
        return self.key_ratio_hint


@dataclass(frozen=True)
class Join(Operator):
    """``j = JOIN a BY x, b BY y;`` — inner equi-join.

    Output columns are prefixed ``a::`` / ``b::`` as in Pig.
    ``match_ratio_hint`` estimates output rows / (left rows + right rows).
    """

    alias: str
    left: str
    left_key: Expression
    right: str
    right_key: Expression
    match_ratio_hint: float = 0.5

    @property
    def inputs(self) -> tuple[str, ...]:
        return (self.left, self.right)

    @property
    def blocking(self) -> bool:
        return True

    def output_schema(self, input_schemas: Sequence[Schema]) -> Schema:
        left_schema, right_schema = input_schemas
        try:
            self.left_key.infer(left_schema)
            self.right_key.infer(right_schema)
        except ExpressionError as exc:
            raise PlanError(f"JOIN {self.left}/{self.right}: {exc}") from None
        # Self-joins need distinct prefixes or the output schema would
        # collide (Pig requires re-aliasing; we disambiguate directly).
        right_prefix = self.right if self.right != self.left else f"{self.right}__2"
        return left_schema.prefixed(self.left).concat(
            right_schema.prefixed(right_prefix)
        )

    def row_ratio(self, input_schemas: Sequence[Schema]) -> float:
        return self.match_ratio_hint


@dataclass(frozen=True)
class Order(Operator):
    """``o = ORDER c BY cnt DESC;`` — global sort (blocking)."""

    alias: str
    source: str
    column: str
    descending: bool = False

    @property
    def inputs(self) -> tuple[str, ...]:
        return (self.source,)

    @property
    def blocking(self) -> bool:
        return True

    def output_schema(self, input_schemas: Sequence[Schema]) -> Schema:
        (schema,) = input_schemas
        try:
            schema.index_of(self.column)
        except KeyError as exc:
            raise PlanError(f"ORDER {self.source}: {exc}") from None
        return schema


@dataclass(frozen=True)
class Distinct(Operator):
    """``d = DISTINCT b;`` — duplicate elimination (blocking)."""

    alias: str
    source: str
    unique_ratio_hint: float = 0.5

    @property
    def inputs(self) -> tuple[str, ...]:
        return (self.source,)

    @property
    def blocking(self) -> bool:
        return True

    def output_schema(self, input_schemas: Sequence[Schema]) -> Schema:
        (schema,) = input_schemas
        return schema

    def row_ratio(self, input_schemas: Sequence[Schema]) -> float:
        return self.unique_ratio_hint


@dataclass(frozen=True)
class Limit(Operator):
    """``l = LIMIT o 10;``"""

    alias: str
    source: str
    count: int

    def __post_init__(self) -> None:
        if self.count < 0:
            raise PlanError("LIMIT count must be non-negative")

    @property
    def inputs(self) -> tuple[str, ...]:
        return (self.source,)

    def output_schema(self, input_schemas: Sequence[Schema]) -> Schema:
        (schema,) = input_schemas
        return schema

    def row_ratio(self, input_schemas: Sequence[Schema]) -> float:
        # Unknowable without row counts; treat as a strong reduction.
        return 0.01


@dataclass(frozen=True)
class Union(Operator):
    """``u = UNION a, b;`` — bag union (schemas must agree in arity/types)."""

    alias: str
    left: str
    right: str

    @property
    def inputs(self) -> tuple[str, ...]:
        return (self.left, self.right)

    def output_schema(self, input_schemas: Sequence[Schema]) -> Schema:
        left_schema, right_schema = input_schemas
        if len(left_schema) != len(right_schema):
            raise PlanError(
                f"UNION {self.left}/{self.right}: arities differ "
                f"({len(left_schema)} vs {len(right_schema)})"
            )
        for lf, rf in zip(left_schema, right_schema):
            if lf.type is not rf.type and PigType.BYTEARRAY not in (lf.type, rf.type):
                raise PlanError(
                    f"UNION {self.left}/{self.right}: column {lf.name!r} is "
                    f"{lf.type.value} on the left but {rf.type.value} on the right"
                )
        return left_schema


@dataclass(frozen=True)
class Store(Operator):
    """``STORE d INTO 'output';`` — a sink; alias is synthesized."""

    alias: str
    source: str
    path: str

    @property
    def inputs(self) -> tuple[str, ...]:
        return (self.source,)

    def output_schema(self, input_schemas: Sequence[Schema]) -> Schema:
        (schema,) = input_schemas
        return schema
