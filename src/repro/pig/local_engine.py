"""Record-level execution of Pig plans, two ways.

1. :func:`evaluate_logical` interprets the logical plan directly,
   operator by operator, on in-memory rows — the semantic reference.
2. :func:`run_pipeline_local` executes the *compiled* pipeline stage by
   stage as real map / shuffle / reduce passes over the same rows.

The two must agree on every plan — that equivalence is the correctness
argument for the compiler, and the property tests exercise it with
generated datasets.  Neither engine is the simulator: the discrete-event
MapReduce engine moves synthetic bytes, while these move actual records
(small ones, in tests).
"""

from __future__ import annotations

from collections import defaultdict
from typing import Any, Iterable, Mapping, Sequence

from .expressions import Flatten, as_condition
from .logical import LogicalPlan
from .operators import (
    Distinct,
    Filter,
    ForEach,
    Group,
    Join,
    Limit,
    Load,
    Operator,
    Order,
    PlanError,
    Store,
    Union,
)
from .pipeline import CompiledPipeline, LoadRef, StageBranch, StageSpec
from .schema import Schema

Rows = list[tuple]


def _sort_key(value: tuple) -> tuple:
    """A total order over rows with possible None fields (None sorts first)."""
    return tuple((item is not None, item) for item in value)


def _freeze(value: Any) -> Any:
    """Hashable view of a row that may contain bags (lists)."""
    if isinstance(value, list):
        return ("<bag>",) + tuple(sorted((_freeze(v) for v in value), key=repr))
    if isinstance(value, tuple):
        return tuple(_freeze(v) for v in value)
    return value


def canonical(rows: Iterable[tuple]) -> list[tuple]:
    """Rows in a canonical order, for bag-equality assertions in tests."""
    return sorted(rows, key=lambda r: repr(_freeze(r)))


# ---------------------------------------------------------------------------
# Shared per-operator row semantics
# ---------------------------------------------------------------------------


def apply_filter(op: Filter, rows: Rows, schema: Schema) -> Rows:
    return [r for r in rows if as_condition(op.condition.evaluate(r, schema))]


def apply_foreach(op: ForEach, rows: Rows, schema: Schema) -> Rows:
    out: Rows = []
    for row in rows:
        # Evaluate every item; FLATTEN items expand multiplicatively.
        prefix_sets: list[list[tuple]] = [[()]]
        for item in op.items:
            if isinstance(item.expression, Flatten):
                value = item.expression.evaluate(row, schema)
                if value is None:
                    expansions: list[tuple] = []
                elif isinstance(value, list):  # bag -> one row per element
                    expansions = [tuple(v) for v in value]
                else:  # tuple -> splice in place
                    expansions = [tuple(value)]
                prefix_sets.append(expansions)
            else:
                prefix_sets.append([(item.expression.evaluate(row, schema),)])
        combos: list[tuple] = [()]
        for expansion in prefix_sets:
            combos = [c + e for c in combos for e in expansion]
        out.extend(combos)
    return out


def apply_group(op: Group, rows: Rows, schema: Schema) -> Rows:
    groups: dict[Any, Rows] = defaultdict(list)
    for row in rows:
        key = op.key.evaluate(row, schema)
        groups[_freeze(key)].append(row)
    out = []
    for frozen_key, members in groups.items():
        # Recover a representative key from the first member.
        key = op.key.evaluate(members[0], schema)
        out.append((key, list(members)))
    return out


def apply_join(
    op: Join, left_rows: Rows, right_rows: Rows,
    left_schema: Schema, right_schema: Schema,
) -> Rows:
    index: dict[Any, Rows] = defaultdict(list)
    for row in right_rows:
        key = op.right_key.evaluate(row, right_schema)
        if key is None:
            continue  # null keys never join (Pig inner-join semantics)
        index[_freeze(key)].append(row)
    out: Rows = []
    for row in left_rows:
        key = op.left_key.evaluate(row, left_schema)
        if key is None:
            continue
        for match in index.get(_freeze(key), ()):  # inner join
            out.append(row + match)
    return out


def apply_order(op: Order, rows: Rows, schema: Schema) -> Rows:
    position = schema.index_of(op.column)
    return sorted(
        rows, key=lambda r: _sort_key((r[position],)), reverse=op.descending
    )


def apply_distinct(rows: Rows) -> Rows:
    seen: set = set()
    out = []
    for row in rows:
        frozen = _freeze(row)
        if frozen not in seen:
            seen.add(frozen)
            out.append(row)
    return out


def apply_limit(op: Limit, rows: Rows, schema: Schema) -> Rows:
    # LIMIT without ORDER is nondeterministic in Pig; we take a canonical
    # prefix so both engines agree on which rows survive.
    if op.count >= len(rows):
        return list(rows)
    return canonical(rows)[: op.count]


# ---------------------------------------------------------------------------
# 1. Direct logical-plan interpretation (the reference)
# ---------------------------------------------------------------------------


def evaluate_logical(
    plan: LogicalPlan, inputs: Mapping[str, Rows]
) -> dict[str, Rows]:
    """Run the plan on in-memory rows; returns {store_path: rows}.

    ``inputs`` maps LOAD paths (or aliases) to row lists.
    """
    schemas = plan.schemas()
    relations: dict[str, Rows] = {}
    outputs: dict[str, Rows] = {}
    for operator in plan.operators:
        rows = _evaluate_operator(operator, relations, schemas, inputs)
        relations[operator.alias] = rows
        if isinstance(operator, Store):
            outputs[operator.path] = rows
    return outputs


def _evaluate_operator(
    operator: Operator,
    relations: Mapping[str, Rows],
    schemas: Mapping[str, Schema],
    inputs: Mapping[str, Rows],
) -> Rows:
    if isinstance(operator, Load):
        rows = inputs.get(operator.path, inputs.get(operator.alias))
        if rows is None:
            raise PlanError(f"no input rows for LOAD {operator.path!r}")
        return list(rows)
    if isinstance(operator, Filter):
        return apply_filter(
            operator, relations[operator.source], schemas[operator.source]
        )
    if isinstance(operator, ForEach):
        return apply_foreach(
            operator, relations[operator.source], schemas[operator.source]
        )
    if isinstance(operator, Group):
        return apply_group(
            operator, relations[operator.source], schemas[operator.source]
        )
    if isinstance(operator, Join):
        return apply_join(
            operator,
            relations[operator.left],
            relations[operator.right],
            schemas[operator.left],
            schemas[operator.right],
        )
    if isinstance(operator, Order):
        return apply_order(
            operator, relations[operator.source], schemas[operator.source]
        )
    if isinstance(operator, Distinct):
        return apply_distinct(relations[operator.source])
    if isinstance(operator, Limit):
        return apply_limit(
            operator, relations[operator.source], schemas[operator.source]
        )
    if isinstance(operator, Union):
        return list(relations[operator.left]) + list(relations[operator.right])
    if isinstance(operator, Store):
        return list(relations[operator.source])
    raise PlanError(f"cannot evaluate {type(operator).__name__}")


# ---------------------------------------------------------------------------
# 2. Staged map/shuffle/reduce execution of the compiled pipeline
# ---------------------------------------------------------------------------


def run_pipeline_local(
    pipeline: CompiledPipeline, inputs: Mapping[str, Rows]
) -> dict[str, Rows]:
    """Execute each compiled stage as map -> shuffle -> reduce.

    Returns {store_path: rows} like :func:`evaluate_logical`; the
    equivalence of the two is the compiler's correctness property.
    """
    plan = pipeline.plan
    schemas = plan.schemas()
    stage_outputs: dict[int, Rows] = {}
    stored: dict[str, Rows] = {}
    for stage in pipeline.stages:
        rows = _run_stage(stage, plan, schemas, inputs, stage_outputs)
        stage_outputs[stage.index] = rows
        if stage.store_path is not None:
            stored[stage.store_path] = rows
    return stored


def _branch_rows(
    branch: StageBranch,
    plan: LogicalPlan,
    schemas: Mapping[str, Schema],
    inputs: Mapping[str, Rows],
    stage_outputs: Mapping[int, Rows],
) -> Rows:
    if isinstance(branch.source, LoadRef):
        rows = inputs.get(branch.source.path, inputs.get(branch.source.alias))
        if rows is None:
            raise PlanError(f"no input rows for LOAD {branch.source.path!r}")
        rows = list(rows)
    else:
        rows = list(stage_outputs[branch.source.stage_index])
    for alias in branch.map_aliases:
        operator = plan[alias]
        source_schema = schemas[operator.inputs[0]]
        if isinstance(operator, Filter):
            rows = apply_filter(operator, rows, source_schema)
        elif isinstance(operator, ForEach):
            rows = apply_foreach(operator, rows, source_schema)
        elif isinstance(operator, Limit):
            rows = apply_limit(operator, rows, source_schema)
        else:  # pragma: no cover - compiler only folds these map-side
            raise PlanError(
                f"operator {type(operator).__name__} cannot run map-side"
            )
    return rows


def _run_stage(
    stage: StageSpec,
    plan: LogicalPlan,
    schemas: Mapping[str, Schema],
    inputs: Mapping[str, Rows],
    stage_outputs: Mapping[int, Rows],
) -> Rows:
    # Map phase: every branch produces its rows.
    sides: dict[str | None, Rows] = defaultdict(list)
    for branch in stage.branches:
        sides[branch.side].extend(
            _branch_rows(branch, plan, schemas, inputs, stage_outputs)
        )

    # Shuffle + blocking operator.
    if stage.shuffle_alias is None:
        rows = sides[None]
        current_alias = None
    else:
        operator = plan[stage.shuffle_alias]
        if isinstance(operator, Group):
            rows = apply_group(
                operator, sides[None], schemas[operator.source]
            )
        elif isinstance(operator, Join):
            rows = apply_join(
                operator,
                sides["left"],
                sides["right"],
                schemas[operator.left],
                schemas[operator.right],
            )
        elif isinstance(operator, Order):
            rows = apply_order(operator, sides[None], schemas[operator.source])
        elif isinstance(operator, Distinct):
            rows = apply_distinct(sides[None])
        else:  # pragma: no cover
            raise PlanError(
                f"operator {type(operator).__name__} cannot be a shuffle"
            )
        current_alias = stage.shuffle_alias

    # Reduce-side chain.
    for alias in stage.reduce_aliases:
        operator = plan[alias]
        source_schema = schemas[operator.inputs[0]]
        if isinstance(operator, Filter):
            rows = apply_filter(operator, rows, source_schema)
        elif isinstance(operator, ForEach):
            rows = apply_foreach(operator, rows, source_schema)
        elif isinstance(operator, Limit):
            rows = apply_limit(operator, rows, source_schema)
        else:  # pragma: no cover
            raise PlanError(
                f"operator {type(operator).__name__} cannot run reduce-side"
            )
        current_alias = alias

    del current_alias
    return rows
