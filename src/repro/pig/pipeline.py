"""Compiled multi-stage MapReduce pipelines.

The compiler (:mod:`repro.pig.compiler`) turns a logical plan into a
:class:`CompiledPipeline`: a DAG of :class:`StageSpec` MapReduce stages.
Each stage knows which logical operators run map-side, which single
blocking operator (if any) is realized by the shuffle, and which run
reduce-side — exactly the structure Pig's MapReduce compiler produces,
and the structure the paper's Section 2.1 failure discussion assumes
("the result of one stage is used as the input to the subsequent
stage").

Stages convert to the planner's aggregate job vocabulary via
:meth:`StageSpec.to_planner_job`, which is what lets Conductor's LP
planner reason about whole pipelines.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Mapping, Sequence, Union

from ..core.problem import PlannerJob
from .logical import LogicalPlan, SizeEstimate


@dataclass(frozen=True)
class LoadRef:
    """A stage input read from a source path (via a LOAD alias)."""

    alias: str
    path: str


@dataclass(frozen=True)
class StageRef:
    """A stage input read from an upstream stage's materialized output."""

    stage_index: int


StageInput = Union[LoadRef, StageRef]


@dataclass(frozen=True)
class StageBranch:
    """One map-side input branch of a stage.

    ``map_aliases`` is the chain of non-blocking operators applied to
    this branch's rows before the shuffle (or before output, for
    map-only stages).  ``side`` tags join branches.
    """

    source: StageInput
    map_aliases: tuple[str, ...] = ()
    side: str | None = None  # "left" / "right" for join branches


@dataclass(frozen=True)
class StageSpec:
    """One MapReduce stage of a compiled pipeline."""

    index: int
    branches: tuple[StageBranch, ...]
    #: Alias of the blocking operator realized by this stage's shuffle;
    #: ``None`` for map-only stages.
    shuffle_alias: str | None
    #: Non-blocking operators applied reduce-side, in order.
    reduce_aliases: tuple[str, ...]
    #: The alias whose rows are this stage's output.
    output_alias: str
    #: Where the output is stored (a STORE path), or None for an
    #: intermediate result parked on whichever service the plan picks.
    store_path: str | None = None

    @property
    def is_map_only(self) -> bool:
        return self.shuffle_alias is None

    @property
    def upstream_stages(self) -> tuple[int, ...]:
        return tuple(
            b.source.stage_index
            for b in self.branches
            if isinstance(b.source, StageRef)
        )

    @property
    def aliases(self) -> tuple[str, ...]:
        """Every logical alias computed inside this stage."""
        names: list[str] = []
        for branch in self.branches:
            names.extend(branch.map_aliases)
        if self.shuffle_alias is not None:
            names.append(self.shuffle_alias)
        names.extend(self.reduce_aliases)
        return tuple(names)

    def describe(self) -> str:
        parts = []
        for branch in self.branches:
            source = (
                f"load:{branch.source.alias}"
                if isinstance(branch.source, LoadRef)
                else f"stage:{branch.source.stage_index}"
            )
            chain = " > ".join(branch.map_aliases) or "(identity)"
            tag = f" [{branch.side}]" if branch.side else ""
            parts.append(f"  map{tag}  {source} > {chain}")
        if self.shuffle_alias:
            parts.append(f"  shuffle {self.shuffle_alias}")
        if self.reduce_aliases:
            parts.append(f"  reduce  {' > '.join(self.reduce_aliases)}")
        sink = f" -> store {self.store_path!r}" if self.store_path else ""
        return f"stage {self.index}{sink}\n" + "\n".join(parts)


@dataclass(frozen=True)
class StageSizes:
    """Estimated data volumes of one stage, in GB."""

    input_gb: float
    shuffle_gb: float
    output_gb: float

    @property
    def map_output_ratio(self) -> float:
        if self.input_gb <= 0:
            return 0.0
        return self.shuffle_gb / self.input_gb

    @property
    def reduce_output_ratio(self) -> float:
        if self.shuffle_gb <= 0:
            return 1.0
        return self.output_gb / self.shuffle_gb


@dataclass
class CompiledPipeline:
    """A DAG of MapReduce stages plus the plan it came from."""

    plan: LogicalPlan
    stages: list[StageSpec]

    def __post_init__(self) -> None:
        for stage in self.stages:
            for upstream in stage.upstream_stages:
                if upstream >= stage.index:
                    raise ValueError(
                        f"stage {stage.index} reads from stage {upstream}: "
                        "stages must be topologically ordered"
                    )

    def __len__(self) -> int:
        return len(self.stages)

    @property
    def depth(self) -> int:
        """Longest chain of dependent stages (pipeline depth)."""
        depths: dict[int, int] = {}
        for stage in self.stages:
            upstream = [depths[i] for i in stage.upstream_stages]
            depths[stage.index] = 1 + (max(upstream) if upstream else 0)
        return max(depths.values(), default=0)

    @property
    def final_stages(self) -> list[StageSpec]:
        """Stages whose output no other stage consumes."""
        consumed = {
            index for stage in self.stages for index in stage.upstream_stages
        }
        return [s for s in self.stages if s.index not in consumed]

    def estimate_stage_sizes(
        self, input_gb: Mapping[str, float]
    ) -> list[StageSizes]:
        """Per-stage data volumes from the logical plan's size estimates."""
        estimates = self.plan.estimate_sizes(input_gb)
        sizes: list[StageSizes] = []
        for stage in self.stages:
            stage_in = 0.0
            shuffle = 0.0
            for branch in stage.branches:
                if isinstance(branch.source, LoadRef):
                    source_est = estimates[branch.source.alias]
                else:
                    source_est = estimates[
                        self.stages[branch.source.stage_index].output_alias
                    ]
                stage_in += source_est.total_gb
                branch_last = (
                    branch.map_aliases[-1] if branch.map_aliases else None
                )
                if branch_last is not None:
                    shuffle += estimates[branch_last].total_gb
                else:
                    shuffle += source_est.total_gb
            output = estimates[stage.output_alias].total_gb
            if stage.is_map_only:
                shuffle = output
            sizes.append(
                StageSizes(input_gb=stage_in, shuffle_gb=shuffle, output_gb=output)
            )
        return sizes

    def to_planner_jobs(
        self,
        input_gb: Mapping[str, float],
        throughput_scale: float = 1.0,
        reduce_speed_factor: float = 4.0,
    ) -> list[PlannerJob]:
        """One aggregate :class:`PlannerJob` per stage, sizes propagated.

        The planner runs stages sequentially (a stage's input is its
        predecessors' output), so each job's ``input_gb`` is the stage
        input estimate, with map/reduce ratios from the size model.
        """
        jobs = []
        for stage, sizes in zip(self.stages, self.estimate_stage_sizes(input_gb)):
            ratio = sizes.map_output_ratio
            jobs.append(
                PlannerJob(
                    name=f"stage{stage.index}-{stage.output_alias}",
                    input_gb=max(sizes.input_gb, 1e-6),
                    map_output_ratio=max(ratio, 1e-9),
                    reduce_output_ratio=max(sizes.reduce_output_ratio, 1e-9),
                    throughput_scale=throughput_scale,
                    reduce_speed_factor=reduce_speed_factor,
                )
            )
        return jobs

    def describe(self) -> str:
        return "\n".join(stage.describe() for stage in self.stages)
